package stream

import (
	"context"
	"io"
	"math"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/cfd2d"
	"repro/internal/cfd3d"
	"repro/internal/grid"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/stats"
	"repro/internal/synth"
)

func testDataset() *grid.Dataset {
	return synth.SSTDataset("SST-stream-test", 6, synth.StratifiedConfig{
		Nx: 32, Ny: 16, Nz: 32, Seed: 5,
	})
}

func testPipelineConfig() sampling.PipelineConfig {
	return sampling.PipelineConfig{
		Hypercubes: "maxent", Method: "uips",
		NumHypercubes: 3, NumSamples: 128,
		CubeSx: 16, CubeSy: 16, CubeSz: 16,
		NumClusters: 4, Seed: 9,
	}
}

func featureRows(cubes []sampling.CubeSample) [][]float64 {
	var rows [][]float64
	for i := range cubes {
		rows = append(rows, cubes[i].Features...)
	}
	return rows
}

// TestStreamMatchesOffline is the acceptance criterion: the streamed
// selection over a synthetic dataset must reproduce the offline
// sickle-subsample result — identical per-cube counts and indistinguishable
// distribution stats — while never buffering more snapshots than the window.
func TestStreamMatchesOffline(t *testing.T) {
	d := testDataset()
	pcfg := testPipelineConfig()

	offline, err := sampling.SubsampleDataset(context.Background(), d, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	const window = 2
	res, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: pcfg, Ranks: 2, Window: window, MergeEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Snapshots != len(d.Snapshots) {
		t.Fatalf("streamed %d snapshots, want %d", res.Snapshots, len(d.Snapshots))
	}
	if res.PeakBuffered > window {
		t.Fatalf("peak buffered %d exceeds window %d", res.PeakBuffered, window)
	}
	if len(res.Cubes) != len(offline) {
		t.Fatalf("stream selected %d cube samples, offline %d", len(res.Cubes), len(offline))
	}
	for i := range offline {
		a, b := res.Cubes[i], offline[i]
		if a.Snapshot != b.Snapshot || a.Cube != b.Cube {
			t.Fatalf("cube %d: stream (%d,%d) vs offline (%d,%d)",
				i, a.Snapshot, a.Cube.ID, b.Snapshot, b.Cube.ID)
		}
		if len(a.LocalIdx) != len(b.LocalIdx) {
			t.Fatalf("cube %d: per-cube count %d vs offline %d", i, len(a.LocalIdx), len(b.LocalIdx))
		}
		for r := range a.LocalIdx {
			if a.LocalIdx[r] != b.LocalIdx[r] {
				t.Fatalf("cube %d point %d: index %d vs offline %d",
					i, r, a.LocalIdx[r], b.LocalIdx[r])
			}
		}
	}

	// Distribution stats of the two selections must agree within tolerance
	// (they are bit-identical here, so this is belt and braces).
	hs := stats.NDHistogramFromPoints(featureRows(res.Cubes), 8)
	ho := stats.NDHistogramFromPoints(featureRows(offline), 8)
	if du := math.Abs(hs.UniformityIndex() - ho.UniformityIndex()); du > 0.02 {
		t.Fatalf("UniformityIndex differs by %v (stream %v, offline %v)",
			du, hs.UniformityIndex(), ho.UniformityIndex())
	}

	// The merged sketch must have seen every selected point, across ranks
	// and merge rounds.
	if res.Sketch == nil || res.Sketch.N != res.Points {
		t.Fatalf("merged sketch N = %v, want %d points", res.Sketch.N, res.Points)
	}
	if res.MergeRounds < 2 {
		t.Fatalf("expected periodic + final merges, got %d rounds", res.MergeRounds)
	}
}

// TestStreamShardedMatchesOffline runs the pipeline in sharded-writer mode
// and checks the union of the per-rank shards equals the offline selection.
func TestStreamShardedMatchesOffline(t *testing.T) {
	d := testDataset()
	pcfg := testPipelineConfig()
	offline, err := sampling.SubsampleDataset(context.Background(), d, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	prefix := filepath.Join(t.TempDir(), "stream")
	res, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: pcfg, Ranks: 3, Window: 2, ShardPrefix: prefix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cubes != nil {
		t.Fatal("sharded mode should not retain cubes in memory")
	}
	if len(res.ShardPaths) != 3 {
		t.Fatalf("want 3 shards, got %v", res.ShardPaths)
	}
	var union []sampling.CubeSample
	for _, p := range res.ShardPaths {
		cubes, err := sickle.LoadCubeSamples(p)
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, cubes...)
	}
	sort.SliceStable(union, func(a, b int) bool {
		if union[a].Snapshot != union[b].Snapshot {
			return union[a].Snapshot < union[b].Snapshot
		}
		return union[a].Cube.ID < union[b].Cube.ID
	})
	if len(union) != len(offline) {
		t.Fatalf("shards hold %d cube samples, offline %d", len(union), len(offline))
	}
	total := 0
	for i := range union {
		a, b := union[i], offline[i]
		if a.Snapshot != b.Snapshot || a.Cube != b.Cube || len(a.LocalIdx) != len(b.LocalIdx) {
			t.Fatalf("cube %d mismatch vs offline", i)
		}
		for r := range a.LocalIdx {
			if a.LocalIdx[r] != b.LocalIdx[r] {
				t.Fatal("index mismatch vs offline")
			}
			for v := range a.Features[r] {
				if a.Features[r][v] != b.Features[r][v] {
					t.Fatal("feature mismatch vs offline")
				}
			}
		}
		total += len(a.LocalIdx)
	}
	if total != res.Points {
		t.Fatalf("Result.Points = %d, shards hold %d", res.Points, total)
	}
}

// TestStreamRemovesStaleShards pins the shard contract: re-running under the
// same prefix with fewer ranks must not leave a previous run's higher-rank
// shards behind, or a `<prefix>-rank*.skl` glob would union two runs.
func TestStreamRemovesStaleShards(t *testing.T) {
	d := testDataset()
	pcfg := testPipelineConfig()
	prefix := filepath.Join(t.TempDir(), "stream")
	if _, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: pcfg, Ranks: 4, Window: 2, ShardPrefix: prefix,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: pcfg, Ranks: 2, Window: 2, ShardPrefix: prefix,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := filepath.Glob(prefix + "-rank*.skl")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want exactly 2 shards after 2-rank rerun, got %v", got)
	}
}

// TestStreamWindowBackpressure pins the memory budget: with a window of 1
// the pipeline must never buffer more than one snapshot (and no more bytes
// than the largest single snapshot).
func TestStreamWindowBackpressure(t *testing.T) {
	d := testDataset()
	var maxSnap int64
	for _, f := range d.Snapshots {
		if b := f.SizeBytes(); b > maxSnap {
			maxSnap = b
		}
	}
	res, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: testPipelineConfig(), Ranks: 1, Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBuffered != 1 {
		t.Fatalf("peak buffered = %d, want 1", res.PeakBuffered)
	}
	if res.PeakBufferedBytes > maxSnap {
		t.Fatalf("peak buffered bytes %d exceed one snapshot (%d)", res.PeakBufferedBytes, maxSnap)
	}
	if res.SnapshotsPerSec <= 0 {
		t.Fatalf("throughput not reported: %v", res.SnapshotsPerSec)
	}
}

// TestStreamReservoirBudget checks the budgeted-reservoir mode: across the
// whole stream no cube may keep more than the budget, while the sketch still
// counts every candidate.
func TestStreamReservoirBudget(t *testing.T) {
	d := testDataset()
	pcfg := testPipelineConfig()
	const budget = 50
	res, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: pcfg, Ranks: 2, Window: 2, MergeEvery: 1, ReservoirBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	perCube := map[int]int{}
	for i := range res.Cubes {
		perCube[res.Cubes[i].Cube.ID] += len(res.Cubes[i].LocalIdx)
	}
	if len(perCube) == 0 {
		t.Fatal("reservoir kept nothing")
	}
	for id, n := range perCube {
		if n > budget {
			t.Fatalf("cube %d kept %d > budget %d", id, n, budget)
		}
		if n < budget/2 {
			t.Fatalf("cube %d kept only %d of budget %d", id, n, budget)
		}
	}
	// Candidates: NumHypercubes cubes × NumSamples per snapshot × snapshots.
	wantCandidates := pcfg.NumHypercubes * pcfg.NumSamples * len(d.Snapshots)
	if res.Sketch.N != wantCandidates {
		t.Fatalf("sketch saw %d candidates, want %d", res.Sketch.N, wantCandidates)
	}
	if res.Points > pcfg.NumHypercubes*budget {
		t.Fatalf("kept %d points, budget allows %d", res.Points, pcfg.NumHypercubes*budget)
	}
}

// TestLiveSolverSources exercises the three live adapters end to end on tiny
// grids: each must stream the declared number of snapshots carrying the
// declared variables, then report EOF.
func TestLiveSolverSources(t *testing.T) {
	sources := []SnapshotSource{
		NewCFD3DSource(cfd3d.Config{N: 8, Seed: 3}, 3, 1),
		NewCFD2DSource(cfd2d.Config{
			Nx: 64, Ny: 32, U0: 0.1, Reynolds: 100, D: 8, Cx: 16, Cy: 16,
		}, 5, 3, 2),
		NewSynthSource(synth.StratifiedConfig{Nx: 16, Ny: 8, Nz: 16, Seed: 7}, 3),
	}
	for _, src := range sources {
		meta := src.Meta()
		need := append(append([]string{}, meta.InputVars...), meta.OutputVars...)
		need = append(need, meta.ClusterVar)
		for i := 0; i < meta.TotalSnapshots; i++ {
			f, err := src.Next()
			if err != nil {
				t.Fatalf("%s snapshot %d: %v", meta.Label, i, err)
			}
			for _, v := range need {
				if !f.HasVar(v) {
					t.Fatalf("%s snapshot %d missing %q", meta.Label, i, v)
				}
			}
		}
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("%s: want io.EOF after %d snapshots, got %v",
				meta.Label, meta.TotalSnapshots, err)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCFD3DSourceMatchesEvolveDataset pins the live adapter to the offline
// trajectory: streaming the solver must see the exact fields EvolveDataset
// materializes.
func TestCFD3DSourceMatchesEvolveDataset(t *testing.T) {
	cfg := cfd3d.Config{N: 8, Seed: 11}
	ref := cfd3d.EvolveDataset("ref", 3, 2, cfg)
	src := NewCFD3DSource(cfg, 3, 2)
	for tstep := 0; tstep < 3; tstep++ {
		f, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Snapshots[tstep]
		u, wu := f.Var("u"), want.Var("u")
		for i := range u {
			if u[i] != wu[i] {
				t.Fatalf("snapshot %d: u[%d] = %v, want %v", tstep, i, u[i], wu[i])
			}
		}
	}
}

// TestSynthSourceMatchesSSTDataset pins the generator adapter to the
// materializing constructor it replaces.
func TestSynthSourceMatchesSSTDataset(t *testing.T) {
	cfg := synth.StratifiedConfig{Nx: 16, Ny: 8, Nz: 16, Seed: 13}
	ref := synth.SSTDataset("ref", 3, cfg)
	src := NewSynthSource(cfg, 3)
	for tstep := 0; tstep < 3; tstep++ {
		f, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Snapshots[tstep]
		r, wr := f.Var("r"), want.Var("r")
		for i := range r {
			if r[i] != wr[i] {
				t.Fatalf("snapshot %d: r[%d] = %v, want %v", tstep, i, r[i], wr[i])
			}
		}
	}
}

// TestStreamRankLayoutInvariance checks the parity-mode selection does not
// depend on the rank count (per-snapshot seeding makes distribution
// irrelevant).
func TestStreamRankLayoutInvariance(t *testing.T) {
	d := testDataset()
	pcfg := testPipelineConfig()
	var ref []sampling.CubeSample
	for _, ranks := range []int{1, 3} {
		res, err := Run(t.Context(), NewReplaySource(d), Config{
			Pipeline: pcfg, Ranks: ranks, Window: 3, MergeEvery: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Cubes
			continue
		}
		if len(res.Cubes) != len(ref) {
			t.Fatalf("ranks=%d: %d cube samples, want %d", ranks, len(res.Cubes), len(ref))
		}
		for i := range ref {
			if res.Cubes[i].Snapshot != ref[i].Snapshot || res.Cubes[i].Cube != ref[i].Cube {
				t.Fatalf("ranks=%d: cube %d identity mismatch", ranks, i)
			}
			for r := range ref[i].LocalIdx {
				if res.Cubes[i].LocalIdx[r] != ref[i].LocalIdx[r] {
					t.Fatalf("ranks=%d: cube %d index mismatch", ranks, i)
				}
			}
		}
	}
}

// TestEffectiveBins pins the dense-merge budget contract: bins shrink to
// fit, and impossibly wide feature spaces are rejected instead of
// over-allocating the collective buffer.
func TestEffectiveBins(t *testing.T) {
	if b, err := effectiveBins(8, 4); err != nil || b != 8 {
		t.Fatalf("8 bins / 4 dims: got %d, %v", b, err)
	}
	b, err := effectiveBins(64, 8) // 64^8 way over budget; must shrink
	if err != nil {
		t.Fatal(err)
	}
	cells := 1
	for i := 0; i < 8; i++ {
		cells *= b
	}
	if cells > maxDenseCells || b < 2 {
		t.Fatalf("shrunk bins %d give %d cells", b, cells)
	}
	if _, err := effectiveBins(8, 30); err == nil {
		t.Fatal("2^30 cells should be rejected")
	}
}

// TestEmptyStreamErrors pins the error contract for sources that produce
// nothing.
func TestEmptyStreamErrors(t *testing.T) {
	d := testDataset()
	empty := &grid.Dataset{
		Label: "empty", InputVars: d.InputVars, OutputVars: d.OutputVars,
		ClusterVar: d.ClusterVar,
	}
	if _, err := Run(t.Context(), NewReplaySource(empty), Config{Pipeline: testPipelineConfig()}); err == nil {
		t.Fatal("empty stream should error")
	}
}
