package spectral

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := DFTNaive(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]complex128, 6))
}

// Property: IFFT(FFT(x)) == x.
func TestFFTRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		for i := range y {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — Σ|x|² = (1/N)Σ|X|².
func TestParsevalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(6))
		x := make([]complex128, n)
		tEnergy := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tEnergy += real(x[i]) * real(x[i])
		}
		FFT(x)
		fEnergy := 0.0
		for _, c := range x {
			fEnergy += real(c)*real(c) + imag(c)*imag(c)
		}
		return math.Abs(tEnergy-fEnergy/float64(n)) < 1e-8*(1+tEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTSingleMode(t *testing.T) {
	// x[n] = exp(2πi·3n/N) should transform to a single spike at k=3.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * 3 * float64(i) / float64(n)
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	FFT(x)
	for k := range x {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		if cmplx.Abs(x[k]-complex(want, 0)) > 1e-9 {
			t.Fatalf("spike test: X[%d] = %v", k, x[k])
		}
	}
}

func TestFFT3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGrid3(8, 4, 16)
	orig := make([]float64, len(g.Data))
	for i := range orig {
		orig[i] = rng.NormFloat64()
	}
	g.FromReal(orig)
	g.FFT3()
	g.IFFT3()
	got := g.RealPart(nil)
	for i := range got {
		if math.Abs(got[i]-orig[i]) > 1e-9 {
			t.Fatalf("3-D round trip failed at %d: %v vs %v", i, got[i], orig[i])
		}
	}
}

func TestWaveNumber(t *testing.T) {
	// For n=8: indices 0..4 map to 0..4, 5..7 map to -3..-1.
	wants := []float64{0, 1, 2, 3, 4, -3, -2, -1}
	for m, w := range wants {
		if got := WaveNumber(m, 8); got != w {
			t.Fatalf("WaveNumber(%d,8) = %v, want %v", m, got, w)
		}
	}
}

// TestDerivativeSine: d/dx sin(x) = cos(x), exact in spectral space.
func TestDerivativeSine(t *testing.T) {
	nx, ny, nz := 32, 4, 4
	f := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := 2 * math.Pi * float64(i) / float64(nx)
				f[(k*ny+j)*nx+i] = math.Sin(x)
			}
		}
	}
	df := Derivative(f, nx, ny, nz, 0)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := 2 * math.Pi * float64(i) / float64(nx)
				if math.Abs(df[(k*ny+j)*nx+i]-math.Cos(x)) > 1e-9 {
					t.Fatalf("derivative(%d,%d,%d) = %v, want %v", i, j, k, df[(k*ny+j)*nx+i], math.Cos(x))
				}
			}
		}
	}
}

// TestPoissonManufactured: ∇²p = f with p = sin(x)cos(2y) ⇒
// f = -(1+4)·p = -5p. Solve and compare (up to the zero-mean convention).
func TestPoissonManufactured(t *testing.T) {
	nx, ny, nz := 32, 32, 4
	want := make([]float64, nx*ny*nz)
	f := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := 2 * math.Pi * float64(i) / float64(nx)
				y := 2 * math.Pi * float64(j) / float64(ny)
				p := math.Sin(x) * math.Cos(2*y)
				want[(k*ny+j)*nx+i] = p
				f[(k*ny+j)*nx+i] = -5 * p
			}
		}
	}
	got := SolvePoisson(f, nx, ny, nz)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Poisson[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestPressureTaylorGreen: for the 2-D Taylor-Green vortex
// u = sin x cos y, v = -cos x sin y, steady momentum balance
// u·∇u = -∇p gives p = +(cos 2x + cos 2y)/4 (zero mean).
func TestPressureTaylorGreen(t *testing.T) {
	nx, ny, nz := 32, 32, 4
	u := make([]float64, nx*ny*nz)
	v := make([]float64, nx*ny*nz)
	w := make([]float64, nx*ny*nz)
	want := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := 2 * math.Pi * float64(i) / float64(nx)
				y := 2 * math.Pi * float64(j) / float64(ny)
				idx := (k*ny+j)*nx + i
				u[idx] = math.Sin(x) * math.Cos(y)
				v[idx] = -math.Cos(x) * math.Sin(y)
				want[idx] = (math.Cos(2*x) + math.Cos(2*y)) / 4
			}
		}
	}
	got := PressureFromVelocity(u, v, w, nx, ny, nz)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("pressure[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEnergySpectrumSingleMode(t *testing.T) {
	// u = sin(3x): all energy in shell k=3; E(3) = ¼ per Fourier pair... just
	// verify the shell location and total.
	nx, ny, nz := 32, 8, 8
	u := make([]float64, nx*ny*nz)
	v := make([]float64, nx*ny*nz)
	w := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := 2 * math.Pi * float64(i) / float64(nx)
				u[(k*ny+j)*nx+i] = math.Sin(3 * x)
			}
		}
	}
	e := EnergySpectrum(u, v, w, nx, ny, nz)
	for shell, ev := range e {
		if shell == 3 {
			if math.Abs(ev-0.25) > 1e-9 {
				t.Fatalf("E(3) = %v, want 0.25", ev)
			}
		} else if ev > 1e-12 {
			t.Fatalf("E(%d) = %v, want 0", shell, ev)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := append([]complex128(nil), x...)
		FFT(y)
	}
}

func BenchmarkFFT3_64cubed(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := NewGrid3(64, 64, 64)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FFT3()
		g.IFFT3()
	}
}

// TestFFT3BitIdenticalSerialVsParallel asserts the pooled line fan-out of
// the 3-D transform matches the serial execution bit for bit.
func TestFFT3BitIdenticalSerialVsParallel(t *testing.T) {
	tensor.SetWorkers(4) // force a real pool even on single-core machines
	defer tensor.SetWorkers(0)
	mk := func() *Grid3 {
		g := NewGrid3(16, 8, 4)
		for i := range g.Data {
			g.Data[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*1.3))
		}
		return g
	}
	a, b := mk(), mk()
	tensor.SetParallel(false)
	b.FFT3()
	b.IFFT3()
	tensor.SetParallel(true)
	a.FFT3()
	a.IFFT3()
	for i := range a.Data {
		if math.Float64bits(real(a.Data[i])) != math.Float64bits(real(b.Data[i])) ||
			math.Float64bits(imag(a.Data[i])) != math.Float64bits(imag(b.Data[i])) {
			t.Fatalf("FFT3 parallel vs serial differs at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}
