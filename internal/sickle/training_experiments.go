package sickle

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Fig6Row reports the drag-surrogate accuracy study for one
// (method, sample-count) cell: mean and standard deviation of the test
// loss over replicates — the reproducibility comparison of Fig. 6.
type Fig6Row struct {
	Method     string
	NumSamples int
	MeanLoss   float64
	StdLoss    float64
}

// Fig6Config scales the experiment.
type Fig6Config struct {
	SampleSizes []int // paper: 540, 1080, 2160
	Replicates  int   // paper: 3
	Epochs      int
	Window      int // paper: 3
}

func (c *Fig6Config) defaults() {
	if len(c.SampleSizes) == 0 {
		c.SampleSizes = []int{540, 1080, 2160}
	}
	if c.Replicates <= 0 {
		c.Replicates = 3
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.Window <= 0 {
		c.Window = 3
	}
}

// Fig6 trains LSTM drag surrogates on OF2D with random vs MaxEnt sampling
// across sample counts and replicates.
func Fig6(ctx context.Context, scale Scale, cfg Fig6Config) ([]Fig6Row, error) {
	cfg.defaults()
	d, err := BuildDataset("OF2D", scale)
	if err != nil {
		return nil, err
	}
	var out []Fig6Row
	for _, method := range []string{"random", "maxent"} {
		for _, ns := range cfg.SampleSizes {
			var losses []float64
			for rep := 0; rep < cfg.Replicates; rep++ {
				seed := int64(1000*rep + ns)
				pcfg := sampling.PipelineConfig{
					Hypercubes: "random", Method: method,
					NumHypercubes: 1 << 30, // keep every cube: 2-D snapshot-wide sampling
					NumSamples:    ns,
					CubeSx:        d.Snapshots[0].Nx, CubeSy: d.Snapshots[0].Ny, CubeSz: 1,
					NumClusters: 10, Seed: seed,
				}
				cubes, err := sampling.SubsampleDataset(ctx, d, pcfg)
				if err != nil {
					return nil, err
				}
				ex, err := train.BuildSampleSingle(d, cubes, cfg.Window)
				if err != nil {
					return nil, err
				}
				factory := func(rng *rand.Rand) train.Model {
					return train.NewLSTMModel(rng, ex[0].Input.Dim(1), 16, 1)
				}
				_, hist, err := train.Train(ctx, factory, ex, train.Config{
					Epochs: cfg.Epochs, Batch: 8, Seed: seed, Normalize: true,
				})
				if err != nil {
					return nil, err
				}
				losses = append(losses, hist.FinalLoss)
			}
			m := stats.ComputeMoments(losses)
			out = append(out, Fig6Row{
				Method: method, NumSamples: ns,
				MeanLoss: m.Mean, StdLoss: math.Sqrt(m.Variance),
			})
		}
	}
	return out, nil
}

// Fig8Case is one point of the loss-vs-energy comparison: a hypercube
// selector × point sampler combination on one dataset, with metered
// sampling and training energy (Eq. 3's two cost terms).
type Fig8Case struct {
	Dataset string
	Case    string // e.g. "Hmaxent-Xmaxent"
	Report  energy.Report
}

// Fig8Config scales the experiment.
type Fig8Config struct {
	Datasets []string
	Epochs   int
	CubeEdge int
	NumCubes int
}

func (c *Fig8Config) defaults() {
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"SST-P1F4", "SST-P1F100", "GESTS-2048"}
	}
	if c.Epochs <= 0 {
		c.Epochs = 12
	}
	if c.CubeEdge <= 0 {
		c.CubeEdge = 16
	}
	if c.NumCubes <= 0 {
		c.NumCubes = 2
	}
}

// Fig8 runs the paper's case matrix (the slurm script's CASES list) and
// reports test loss vs total energy for each.
func Fig8(ctx context.Context, scale Scale, cfg Fig8Config) ([]Fig8Case, error) {
	cfg.defaults()
	cases := []struct {
		name, hsel, method string
	}{
		{"Hmaxent-Xmaxent", "maxent", "maxent"},
		{"Hmaxent-Xuips", "maxent", "uips"},
		{"Hrandom-Xfull", "random", "full"},
		{"Hrandom-Xmaxent", "random", "maxent"},
		{"Hrandom-Xuips", "random", "uips"},
	}
	var out []Fig8Case
	for _, dsName := range cfg.Datasets {
		d, err := BuildDataset(dsName, scale)
		if err != nil {
			return nil, err
		}
		edge := cfg.CubeEdge
		if d.Snapshots[0].Nz < edge {
			edge = d.Snapshots[0].Nz
		}
		for _, cs := range cases {
			meterSample := energy.NewMeter()
			meterTrain := energy.NewMeter()
			pcfg := sampling.PipelineConfig{
				Hypercubes: cs.hsel, Method: cs.method,
				NumHypercubes: cfg.NumCubes,
				NumSamples:    edge * edge * edge / 10, // the paper's 10% rate
				CubeSx:        edge, CubeSy: edge, CubeSz: edge,
				NumClusters: 5, Seed: 4, Meter: meterSample,
			}
			cubes, err := sampling.SubsampleDataset(ctx, d, pcfg)
			if err != nil {
				return nil, err
			}
			var ex []train.Example
			var factory train.ModelFactory
			inV, outV := len(d.InputVars), len(d.OutputVars)
			if cs.method == "full" {
				// Dense cubes -> CNN-Transformer (per the paper's notes).
				ex, err = train.BuildFullFull(d, cubes, 1)
				factory = func(rng *rand.Rand) train.Model {
					return train.NewCNNTransformer(rng, inV, 16, 2, outV, edge)
				}
			} else {
				ex, err = train.BuildSampleFull(d, cubes, 1)
				factory = func(rng *rand.Rand) train.Model {
					return train.NewMLPTransformer(rng, inV, 16, 2, outV, edge)
				}
			}
			if err != nil {
				return nil, err
			}
			_, hist, err := train.Train(ctx, factory, ex, train.Config{
				Epochs: cfg.Epochs, Batch: 4, Seed: 5, Normalize: true, Meter: meterTrain,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8Case{
				Dataset: dsName, Case: cs.name,
				Report: energy.Report{
					Label:        fmt.Sprintf("%s/%s", dsName, cs.name),
					SampleJoules: meterSample.Joules(),
					TrainJoules:  meterTrain.Joules(),
					EvalLoss:     hist.FinalLoss,
				},
			})
		}
	}
	return out, nil
}

// Fig9Row reports the MATEY foundation-model comparison for one sampling
// strategy: validation loss and total energy at 10% sampling.
type Fig9Row struct {
	Method string
	Report energy.Report
}

// Fig9Config scales the experiment.
type Fig9Config struct {
	Epochs   int // paper: 50
	CubeEdge int
	NumCubes int
}

func (c *Fig9Config) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.CubeEdge <= 0 {
		c.CubeEdge = 16
	}
	if c.NumCubes <= 0 {
		c.NumCubes = 2
	}
}

// Fig9 trains the MATEY-like multiscale model on SST-P1F4 with uniform,
// random, and MaxEnt sampling at 10%: sampled points are scattered into
// zero-masked dense cubes (SICKLE as a data-sparsification preprocessor for
// a dense foundation model).
func Fig9(ctx context.Context, scale Scale, cfg Fig9Config) ([]Fig9Row, error) {
	cfg.defaults()
	d, err := BuildDataset("SST-P1F4", scale)
	if err != nil {
		return nil, err
	}
	edge := cfg.CubeEdge
	if d.Snapshots[0].Nz < edge {
		edge = d.Snapshots[0].Nz
	}
	var out []Fig9Row
	for _, method := range []string{"uniform", "random", "maxent"} {
		meterSample := energy.NewMeter()
		meterTrain := energy.NewMeter()
		pcfg := sampling.PipelineConfig{
			Hypercubes: "random", Method: method,
			NumHypercubes: cfg.NumCubes,
			NumSamples:    edge * edge * edge / 10,
			CubeSx:        edge, CubeSy: edge, CubeSz: edge,
			NumClusters: 5, Seed: 6, Meter: meterSample,
		}
		cubes, err := sampling.SubsampleDataset(ctx, d, pcfg)
		if err != nil {
			return nil, err
		}
		ex, err := buildMaskedFullFull(d, cubes, edge)
		if err != nil {
			return nil, err
		}
		inV, outV := len(d.InputVars), len(d.OutputVars)
		factory := func(rng *rand.Rand) train.Model {
			return train.NewMATEYModel(rng, inV, 16, 2, outV, edge)
		}
		_, hist, err := train.Train(ctx, factory, ex, train.Config{
			Epochs: cfg.Epochs, Batch: 4, Seed: 7, Normalize: true, Meter: meterTrain,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig9Row{
			Method: method,
			Report: energy.Report{
				Label:        "MATEY/" + method,
				SampleJoules: meterSample.Joules(),
				TrainJoules:  meterTrain.Joules(),
				EvalLoss:     hist.FinalLoss,
			},
		})
	}
	return out, nil
}

// buildMaskedFullFull scatters each cube's sampled points into a dense,
// zero-masked input cube (unsampled points = 0), with the dense output
// cube as target — how a dense foundation model consumes sparse samples.
func buildMaskedFullFull(d *grid.Dataset, cubes []sampling.CubeSample, edge int) ([]train.Example, error) {
	cIn := len(d.InputVars)
	var out []train.Example
	for _, cs := range cubes {
		f := d.Snapshots[cs.Snapshot]
		flat := cs.Cube.Indices(f)
		in := tensor.New(1, cIn, edge, edge, edge)
		for r, li := range cs.LocalIdx {
			for v := 0; v < cIn; v++ {
				in.Data[v*edge*edge*edge+li] = cs.Features[r][v]
			}
		}
		tgt := tensor.New(1, len(d.OutputVars), edge, edge, edge)
		for v, name := range d.OutputVars {
			src := f.Var(name)
			for p, fi := range flat {
				tgt.Data[v*edge*edge*edge+p] = src[fi]
			}
		}
		out = append(out, train.Example{Input: in, Target: tgt})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sickle: no masked examples built")
	}
	return out, nil
}
