package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Forward/backward micro-benchmarks with allocation tracking. The matmul
// family keeps layer math out of the allocator; remaining allocs are the
// layer outputs themselves (which escape by design).

func BenchmarkLinearForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 128, 128)
	x := tensor.Randn(rng, 1, 64, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x)
	}
}

func BenchmarkLinearBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 128, 128)
	x := tensor.Randn(rng, 1, 64, 128)
	dy := tensor.Randn(rng, 1, 64, 128)
	l.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Backward(dy)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(rng, 32, 64)
	x := tensor.Randn(rng, 1, 8, 10, 32)
	dy := tensor.Randn(rng, 1, 8, 10, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x)
		l.Backward(dy)
	}
}

func BenchmarkAttentionForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMultiHeadAttention(rng, 64, 4)
	x := tensor.Randn(rng, 1, 4, 16, 64)
	dy := tensor.Randn(rng, 1, 4, 16, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
		m.Backward(dy)
	}
}

func BenchmarkConv3DForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv3D(rng, 4, 8, 2, 2, 0)
	x := tensor.Randn(rng, 1, 4, 4, 16, 16, 16)
	c.Forward(x)
	dy := tensor.Randn(rng, 1, 4, 8, 8, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
		c.Backward(dy)
	}
}
