package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, rep kernelReport) string {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareKernelBaseline(t *testing.T) {
	base := kernelReport{
		MatMul:    []matmulBench{{Size: 128, Speedup: 3.0}},
		TrainStep: stepBench{Speedup: 2.5},
		CFD2DStep: stepBench{Speedup: 2.0},
		CFD3DStep: []cfd3dBench{{N: 32, stepBench: stepBench{Speedup: 2.2}}},
	}
	path := writeBaseline(t, base)

	ok := base
	ok.MatMul = []matmulBench{{Size: 128, Speedup: 2.6}} // within 20% of 3.0
	if err := compareKernelBaseline(ok, path, 0.20); err != nil {
		t.Fatalf("within-tolerance run flagged as regression: %v", err)
	}

	bad := base
	bad.TrainStep.Speedup = 1.2 // far below 2.5·0.8
	if err := compareKernelBaseline(bad, path, 0.20); err == nil {
		t.Fatal("regressed train-step speedup not flagged")
	}

	// Benchmarks missing from the baseline (or with zero speedup) are
	// skipped rather than failing, so the gate tolerates schema growth.
	sparsePath := writeBaseline(t, kernelReport{})
	if err := compareKernelBaseline(base, sparsePath, 0.20); err != nil {
		t.Fatalf("empty baseline should gate nothing: %v", err)
	}
}

func TestCheckParallelFloor(t *testing.T) {
	// Single-core hosts are exempt (pooled == serial there by design).
	serial := kernelReport{GOMAXPROCS: 1, CFD2DStep: stepBench{Speedup: 1.0}}
	if err := checkParallelFloor(serial); err != nil {
		t.Fatalf("single-core run must not be floor-gated: %v", err)
	}
	// Multi-core hosts must show real fan-out on the parallel benchmarks.
	flat := kernelReport{
		GOMAXPROCS: 4,
		MatMul:     []matmulBench{{Size: 256, Speedup: 1.0}},
		CFD2DStep:  stepBench{Speedup: 2.0},
		CFD3DStep:  []cfd3dBench{{N: 32, stepBench: stepBench{Speedup: 2.0}}},
	}
	if err := checkParallelFloor(flat); err == nil {
		t.Fatal("dead pool on 4 cores must fail the floor")
	}
	good := flat
	good.MatMul = []matmulBench{{Size: 256, Speedup: 2.8}}
	if err := checkParallelFloor(good); err != nil {
		t.Fatalf("healthy multi-core run flagged: %v", err)
	}
}
