// Package api is SICKLE-Go's versioned public wire contract: the request
// and response structs, the typed error envelope, and the job types spoken
// over HTTP by sickle-serve and consumed by pkg/client.
//
// # Versions
//
// Two API versions share these types:
//
//   - /v2 is the current surface. Errors use the typed envelope
//     {"error":{"code":"...","message":"..."}} with machine-readable codes
//     (see ErrorCode), and long-running work runs as cancellable jobs under
//     /v2/jobs.
//   - /v1 is a frozen compatibility shim over the same request/response
//     types. Its success payloads are byte-identical to the original
//     handlers and its errors keep the legacy {"error":"message"} shape.
//     v1 is deprecated: it receives no new routes and will be removed one
//     minor release after a v3 surface ships.
//
// GET /api/version reports the versions a server speaks; pkg/client's
// Negotiate uses it to pick the newest version both sides understand.
//
// # Errors
//
// Every v2 failure is an *Error. The Code field is stable and
// machine-readable; Message is human-oriented and may change between
// releases. Each code maps to one HTTP status via ErrorCode.HTTPStatus;
// Overloaded responses additionally carry Retry-After.
//
// # Jobs
//
// Work that outlives a request/response cycle (subsampling a dataset,
// training a surrogate) is submitted as a job: POST /v2/jobs returns a Job
// in state "pending", GET /v2/jobs/{id} polls state and progress,
// GET /v2/jobs/{id}/result fetches the output of a succeeded job, and
// DELETE /v2/jobs/{id} cancels — cancellation propagates through
// context.Context into the sampling/training loops, which stop between
// cube batches or epochs.
package api
