package apierr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/apierr"
)

func TestApierr(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, apierr.Analyzer, "apierr/a")
}
