// Package stream is SICKLE-Go's in-situ streaming subsampling subsystem:
// it couples the simulation producers (internal/synth, internal/cfd2d,
// internal/cfd3d — or a replay of an on-disk dataset) directly to the
// two-phase sampler under a fixed memory budget, so extreme-scale DNS output
// never has to land on disk before being subsampled.
//
// The pipeline is producer → bounded window → rank workers → shard writers:
//
//   - a single producer pulls snapshots from a SnapshotSource and
//     round-robins them to minimpi rank workers through bounded channels;
//     a window semaphore caps how many snapshots are in flight, which is
//     the pipeline's peak-RSS proxy (backpressure stalls the solver, it
//     never buffers unboundedly);
//   - phase 1 (hypercube selection) runs once on the first snapshot, exactly
//     as the offline pipeline runs it on snapshot 0, so streamed and offline
//     runs share the cube set;
//   - each worker runs phase 2 per snapshot with the offline per-snapshot
//     seeding, updates an online NDHistogram sketch of the selected
//     feature-space occupancy, and either appends results to its own .skl
//     shard (ShardPrefix), feeds a per-cube budgeted reservoir
//     (ReservoirBudget), or collects them in memory;
//   - the producer injects merge markers every MergeEvery snapshots (and
//     once at end-of-stream); on a marker every rank joins a collective
//     sketch merge over minimpi (dense Allreduce of the per-rank deltas), so
//     each rank's global sketch converges without any rank ever seeing the
//     full dataset.
//
// With ReservoirBudget == 0 the streamed selection is bit-identical to the
// offline sampling.SubsampleDataset result (asserted in tests); with a
// budget it becomes a streaming UIPS-style selector whose inverse-density
// weights come from the merged sketch.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/minimpi"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/stats"
	"repro/pkg/api"

	"strconv"
)

// Config sizes the streaming pipeline.
type Config struct {
	// Pipeline is the two-phase sampling configuration, shared verbatim
	// with the offline pipeline (same seeds → same selection).
	Pipeline sampling.PipelineConfig
	// Ranks is the number of minimpi worker ranks (default 1).
	Ranks int
	// Window caps in-flight snapshots (producer blocks when full);
	// default 2. This is the pipeline's memory budget knob.
	Window int
	// MergeEvery injects a collective sketch merge every N snapshots
	// (0 = merge only at end of stream).
	MergeEvery int
	// SketchBins is the per-dimension bin count of the online feature
	// sketch (default 8, shrunk automatically if bins^dims would exceed
	// the dense-merge budget).
	SketchBins int
	// ReservoirBudget, when > 0, caps the samples kept per hypercube
	// across the whole stream via weighted reservoir sampling with
	// inverse-density weights from the merged sketch. 0 keeps every
	// per-snapshot selection (offline-parity mode).
	ReservoirBudget int
	// ShardPrefix, when non-empty, streams results to per-rank
	// "<prefix>-rankNNN.skl" shards instead of holding them in memory.
	ShardPrefix string
	// Cost is the simulated interconnect model charged for the merges.
	Cost minimpi.CostModel
	// Metrics, when non-nil, receives stage-level pipeline metrics
	// (snapshots ingested, points selected, backpressure stalls, buffered
	// bytes, reservoir occupancy) under sickle_stream_* family names.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one trace per Run: a pipeline:run root
	// span with phase1:select, per-snapshot phase2:snapshot, and
	// merge:sketch child spans. The trace ID comes back in Result.TraceID.
	Tracer *obs.Tracer
	// Journal, when non-nil, receives a stall event per producer
	// backpressure stall, cross-linked to the run's trace ID.
	Journal *events.Journal
}

func (c *Config) defaults() {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.SketchBins <= 0 {
		c.SketchBins = 8
	}
}

// Result summarizes a streaming run.
type Result struct {
	// Cubes holds the selection when ShardPrefix is empty (in-memory
	// mode), ordered snapshot-major like the offline pipeline output.
	Cubes []sampling.CubeSample
	// Kept is the fixed phase-1 cube set.
	Kept []grid.Hypercube
	// Pipeline is the effective sampling configuration after cube-geometry
	// clamping against the reference snapshot — use it (not the input
	// config) to reproduce the run offline.
	Pipeline sampling.PipelineConfig
	// Snapshots is how many snapshots the stream carried.
	Snapshots int
	// Points is the total number of selected points.
	Points int
	// PeakBuffered is the high-water mark of simultaneously buffered
	// snapshots (always ≤ Window).
	PeakBuffered int
	// PeakBufferedBytes is the high-water mark of buffered snapshot
	// bytes — the pipeline's peak-RSS proxy.
	PeakBufferedBytes int64
	// MergeRounds counts the collective sketch merges performed.
	MergeRounds int
	// Stalls counts producer backpressure stalls (reserve found the window
	// full and had to wait); StallSeconds is their summed wait time.
	Stalls       int
	StallSeconds float64
	// TraceID identifies the run's trace when Config.Tracer was set.
	TraceID string
	// Sketch is the merged global occupancy sketch of the selected
	// features (its UniformityIndex is the selection-quality stat).
	Sketch *stats.NDHistogram
	// ShardPaths lists the shards written (sharded mode only).
	ShardPaths []string
	// Elapsed is the wall-clock pipeline time; SnapshotsPerSec the
	// resulting throughput.
	Elapsed         time.Duration
	SnapshotsPerSec float64
	// World exposes the minimpi world for sim-comm-cost queries.
	World *minimpi.World
}

// message is one unit of work handed to a rank worker: either a snapshot or
// a merge marker. The producer sends markers to every rank at the same
// stream position, so the collective merges stay aligned across ranks.
type message struct {
	f     *grid.Field
	snap  int
	bytes int64
	merge bool
}

// instruments bundles the optional sickle_stream_* metric handles. All
// series handles are nil-safe no-ops when Config.Metrics is unset, so the
// instrumented paths never branch.
type instruments struct {
	snapshots *obs.Counter
	points    *obs.Counter
	merges    *obs.Counter
	stalls    *obs.Counter
	stallSecs *obs.Counter
	buffered  *obs.Gauge
	bufBytes  *obs.Gauge
	snapSec   *obs.Histogram
	reservoir *obs.GaugeVec // per-rank reservoir occupancy
}

func newInstruments(reg *obs.Registry) *instruments {
	ins := &instruments{}
	if reg == nil {
		return ins
	}
	ins.snapshots = reg.Counter("sickle_stream_snapshots_total",
		"Snapshots ingested by the streaming pipeline.").With()
	ins.points = reg.Counter("sickle_stream_points_total",
		"Points selected by phase 2, before any reservoir reduction.").With()
	ins.merges = reg.Counter("sickle_stream_merge_rounds_total",
		"Collective sketch merge rounds performed.").With()
	ins.stalls = reg.Counter("sickle_stream_backpressure_stalls_total",
		"Producer stalls waiting for a free window slot.").With()
	ins.stallSecs = reg.Counter("sickle_stream_backpressure_stall_seconds_total",
		"Total seconds the producer spent stalled on the window.").With()
	ins.buffered = reg.Gauge("sickle_stream_buffered_snapshots",
		"Snapshots currently buffered in the window.").With()
	ins.bufBytes = reg.Gauge("sickle_stream_buffered_bytes",
		"Bytes of snapshot data currently buffered in the window.").With()
	ins.snapSec = reg.Histogram("sickle_stream_snapshot_seconds",
		"Per-snapshot phase-2 processing time in seconds.", nil).With()
	ins.reservoir = reg.Gauge("sickle_stream_reservoir_items",
		"Items currently held in a rank's per-cube reservoirs.", "rank")
	return ins
}

// windowTracker enforces the in-flight snapshot window and records the
// high-water marks reported in Result. A slot is reserved BEFORE the source
// materializes the next snapshot, so the snapshot in the producer's hand is
// counted: the reported peak is the true residency, not residency minus one.
type windowTracker struct {
	sem       chan struct{}
	ins       *instruments
	journal   *events.Journal
	traceID   string
	mu        sync.Mutex
	cur, peak int
	curBytes  int64
	peakBytes int64
	stalls    int
	stallSecs float64
}

func newWindowTracker(window int, ins *instruments, journal *events.Journal, traceID string) *windowTracker {
	return &windowTracker{sem: make(chan struct{}, window), ins: ins,
		journal: journal, traceID: traceID}
}

// reserve claims a window slot for a snapshot about to be produced. A full
// window means the samplers are behind the solver: the wait is counted as a
// backpressure stall so the imbalance is visible, not just implied by
// throughput.
func (t *windowTracker) reserve() {
	select {
	case t.sem <- struct{}{}:
	default:
		start := time.Now()
		t.sem <- struct{}{}
		wait := time.Since(start).Seconds()
		t.mu.Lock()
		t.stalls++
		t.stallSecs += wait
		t.mu.Unlock()
		t.ins.stalls.Inc()
		t.ins.stallSecs.Add(wait)
		t.journal.Emit(events.TypeStall, "producer stalled on backpressure", t.traceID,
			"seconds", strconv.FormatFloat(wait, 'g', 4, 64))
	}
	t.mu.Lock()
	t.cur++
	if t.cur > t.peak {
		t.peak = t.cur
	}
	cur := t.cur
	t.mu.Unlock()
	t.ins.buffered.Set(float64(cur))
}

// addBytes records the size of the snapshot that filled the reserved slot.
func (t *windowTracker) addBytes(bytes int64) {
	t.mu.Lock()
	t.curBytes += bytes
	if t.curBytes > t.peakBytes {
		t.peakBytes = t.curBytes
	}
	cur := t.curBytes
	t.mu.Unlock()
	t.ins.bufBytes.Set(float64(cur))
}

// cancel returns a reserved slot that never received a snapshot (EOF/error).
func (t *windowTracker) cancel() {
	t.mu.Lock()
	t.cur--
	cur := t.cur
	t.mu.Unlock()
	<-t.sem
	t.ins.buffered.Set(float64(cur))
}

func (t *windowTracker) release(bytes int64) {
	t.mu.Lock()
	t.cur--
	t.curBytes -= bytes
	cur, curBytes := t.cur, t.curBytes
	t.mu.Unlock()
	<-t.sem
	t.ins.buffered.Set(float64(cur))
	t.ins.bufBytes.Set(float64(curBytes))
}

// ShardPath returns the shard file for one rank under a prefix.
func ShardPath(prefix string, rank int) string {
	return fmt.Sprintf("%s-rank%03d.skl", prefix, rank)
}

// Run drives the in-situ pipeline over a snapshot source until io.EOF.
func Run(ctx context.Context, src SnapshotSource, cfg Config) (*Result, error) {
	cfg.defaults()
	meta := src.Meta()
	if len(meta.InputVars) == 0 {
		return nil, errors.New("stream: source declares no input variables")
	}
	ins := newInstruments(cfg.Metrics)
	tracer := cfg.Tracer
	// One trace per run. The IDs are minted unconditionally (cheap) and the
	// Record calls no-op on a nil tracer.
	tc := api.TraceContext{TraceID: api.NewTraceID()}
	rootSpanID := api.NewSpanID()
	runStart := time.Now()
	defer func() {
		tracer.Record(obs.Span{
			TraceID: tc.TraceID, SpanID: rootSpanID, Name: "pipeline:run",
			Start: runStart, Seconds: time.Since(runStart).Seconds(),
		})
	}()

	cs := &countingSource{src: src}
	tracker := newWindowTracker(cfg.Window, ins, cfg.Journal, tc.TraceID)
	tracker.reserve()
	f0, err := cs.next()
	if err != nil {
		if err == io.EOF {
			return nil, errors.New("stream: empty snapshot stream")
		}
		return nil, err
	}
	tracker.addBytes(f0.SizeBytes())

	// Clamp cube geometry to the reference snapshot, mirroring the offline
	// CLI's behaviour, so live sources with modest grids just work.
	pcfg := cfg.Pipeline
	if pcfg.CubeSx <= 0 || pcfg.CubeSx > f0.Nx {
		pcfg.CubeSx = min(32, f0.Nx)
	}
	if pcfg.CubeSy <= 0 || pcfg.CubeSy > f0.Ny {
		pcfg.CubeSy = min(32, f0.Ny)
	}
	if pcfg.CubeSz <= 0 || pcfg.CubeSz > f0.Nz {
		pcfg.CubeSz = min(32, f0.Nz)
	}

	// Phase 1 once, on the reference snapshot — the fixed sensor regions
	// every streamed snapshot is sampled through.
	p1Start := time.Now()
	kept, err := sampling.SelectCubesForField(ctx, f0, meta.ClusterVar, pcfg)
	if err != nil {
		return nil, err
	}
	tracer.Record(obs.Span{
		TraceID: tc.TraceID, SpanID: api.NewSpanID(), ParentID: rootSpanID,
		Name: "phase1:select", Start: p1Start,
		Seconds: time.Since(p1Start).Seconds(),
		Attrs:   map[string]string{"cubes": strconv.Itoa(len(kept))},
	})

	lo, hi := featureBounds(f0, meta.InputVars)
	bins, err := effectiveBins(cfg.SketchBins, len(meta.InputVars))
	if err != nil {
		return nil, err
	}

	chans := make([]chan message, cfg.Ranks)
	for r := range chans {
		chans[r] = make(chan message, cfg.Window+1)
	}

	var (
		prodErr     error
		snapTotal   int
		mergeRounds int
	)
	start := time.Now()
	go func() {
		defer func() {
			for _, ch := range chans {
				ch <- message{merge: true} // final end-of-stream merge
			}
			mergeRounds++
			ins.merges.Inc()
			for _, ch := range chans {
				close(ch)
			}
		}()
		emit := func(f *grid.Field, snap int) {
			chans[snap%cfg.Ranks] <- message{f: f, snap: snap, bytes: f.SizeBytes()}
			ins.snapshots.Inc()
		}
		emit(f0, 0) // its slot was reserved before phase 1 ran
		snapTotal = 1
		for {
			// Reserve before asking the source to materialize: the snapshot
			// being produced occupies real memory and must count against
			// the window.
			tracker.reserve()
			f, err := cs.next()
			if err == io.EOF {
				tracker.cancel()
				return
			}
			if err != nil {
				tracker.cancel()
				prodErr = err
				return
			}
			tracker.addBytes(f.SizeBytes())
			snap := snapTotal
			snapTotal++
			emit(f, snap)
			if cfg.MergeEvery > 0 && snapTotal%cfg.MergeEvery == 0 {
				for _, ch := range chans {
					ch <- message{merge: true}
				}
				mergeRounds++
				ins.merges.Inc()
			}
		}
	}()

	results := make([][]sampling.CubeSample, cfg.Ranks)
	reservoirsPerRank := make([]map[int]*cubeReservoir, cfg.Ranks)
	pointsPerRank := make([]int, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	var shardPaths []string
	if cfg.ShardPrefix != "" {
		// Remove stale shards under this prefix first: a previous run with
		// more ranks (or one that failed mid-stream) leaves files a
		// `<prefix>-rank*.skl` glob would silently union with this run's
		// output.
		if stale, gerr := filepath.Glob(cfg.ShardPrefix + "-rank*.skl"); gerr == nil {
			for _, p := range stale {
				os.Remove(p)
			}
		}
		shardPaths = make([]string, cfg.Ranks)
		for r := range shardPaths {
			shardPaths[r] = ShardPath(cfg.ShardPrefix, r)
		}
	}
	var mergedSketch *stats.NDHistogram

	world := minimpi.Run(cfg.Ranks, cfg.Cost, func(c *minimpi.Comm) {
		rank := c.Rank()
		delta := stats.NewNDHistogram(lo, hi, bins)
		global := stats.NewNDHistogram(lo, hi, bins)
		var app *sickle.ShardAppender
		if cfg.ShardPrefix != "" && cfg.ReservoirBudget == 0 {
			// In reservoir mode the survivors are only known after the
			// cross-rank reservoir reduction; shards are written then.
			var aerr error
			app, aerr = sickle.OpenShardAppender(shardPaths[rank])
			if aerr != nil {
				errs[rank] = aerr
			}
		}
		reservoirs := map[int]*cubeReservoir{}

		for msg := range chans[rank] {
			if msg.merge {
				// Merges are collective: every rank must join even after a
				// local failure, or the others would deadlock in Allreduce.
				mergeStart := time.Now()
				if merr := mergeSketches(c, &delta, global); merr != nil && errs[rank] == nil {
					errs[rank] = merr
				}
				// One span per round, not per rank: rank 0 speaks for the
				// collective, whose members finish together anyway.
				if rank == 0 {
					tracer.Record(obs.Span{
						TraceID: tc.TraceID, SpanID: api.NewSpanID(), ParentID: rootSpanID,
						Name: "merge:sketch", Start: mergeStart,
						Seconds: time.Since(mergeStart).Seconds(),
					})
				}
				continue
			}
			func() {
				defer tracker.release(msg.bytes)
				if errs[rank] != nil {
					return // keep draining so backpressure keeps moving
				}
				snapStart := time.Now()
				defer func() {
					elapsed := time.Since(snapStart).Seconds()
					ins.snapSec.Observe(elapsed)
					tracer.Record(obs.Span{
						TraceID: tc.TraceID, SpanID: api.NewSpanID(), ParentID: rootSpanID,
						Name: "phase2:snapshot", Start: snapStart, Seconds: elapsed,
						Attrs: map[string]string{
							"snap": strconv.Itoa(msg.snap),
							"rank": strconv.Itoa(rank),
						},
					})
				}()
				out, serr := sampling.SubsampleFieldWithCubes(ctx, msg.f, msg.snap, kept,
					meta.InputVars, meta.OutputVars, meta.ClusterVar, pcfg)
				if serr != nil {
					errs[rank] = serr
					return
				}
				for i := range out {
					ins.points.Add(float64(len(out[i].LocalIdx)))
				}
				for i := range out {
					for _, row := range out[i].Features {
						delta.Add(row)
					}
				}
				switch {
				case cfg.ReservoirBudget > 0:
					offerToReservoirs(reservoirs, out, msg.snap, cfg.ReservoirBudget,
						pcfg.Seed, global, delta)
					if ins.reservoir != nil {
						held := 0
						for _, r := range reservoirs {
							held += len(r.items)
						}
						ins.reservoir.With(strconv.Itoa(rank)).Set(float64(held))
					}
				case app != nil:
					if aerr := app.Append(out...); aerr != nil {
						errs[rank] = aerr
						return
					}
					for i := range out {
						pointsPerRank[rank] += len(out[i].LocalIdx)
					}
				default:
					// Compact before retaining: Features rows alias the
					// per-cube backing slab (cube volume × vars floats), and
					// keeping them as-is would pin every slab for the
					// stream's lifetime — the overhead the window exists to
					// prevent. Targets are already per-point allocations.
					compactFeatures(out)
					results[rank] = append(results[rank], out...)
					for i := range out {
						pointsPerRank[rank] += len(out[i].LocalIdx)
					}
				}
			}()
		}

		if cfg.ReservoirBudget > 0 {
			reservoirsPerRank[rank] = reservoirs
		}
		if app != nil {
			if cerr := app.Close(); cerr != nil && errs[rank] == nil {
				errs[rank] = cerr
			}
		}
		// Gather per-rank point counts (reservoir-held candidates in budget
		// mode, selected points otherwise) on rank 0, charging the cost
		// model for the same wrap-up communication the offline driver
		// performs.
		count := float64(pointsPerRank[rank])
		if cfg.ReservoirBudget > 0 {
			for _, r := range reservoirs {
				count += float64(len(r.items))
			}
		}
		c.Gather(0, []float64{count})
		if rank == 0 {
			mergedSketch = global
		}
	})

	elapsed := time.Since(start)
	// A failed run must not leave valid-looking shards behind.
	cleanupShards := func() {
		for _, p := range shardPaths {
			os.Remove(p)
		}
	}
	if prodErr != nil {
		cleanupShards()
		return nil, prodErr
	}
	for r := 0; r < cfg.Ranks; r++ {
		if errs[r] != nil {
			cleanupShards()
			return nil, fmt.Errorf("stream: rank %d: %w", r, errs[r])
		}
	}

	res := &Result{
		Kept:              kept,
		Pipeline:          pcfg,
		Snapshots:         snapTotal,
		PeakBuffered:      tracker.peak,
		PeakBufferedBytes: tracker.peakBytes,
		MergeRounds:       mergeRounds,
		Stalls:            tracker.stalls,
		StallSeconds:      tracker.stallSecs,
		Sketch:            mergedSketch,
		ShardPaths:        shardPaths,
		Elapsed:           elapsed,
		World:             world,
	}
	if tracer != nil {
		res.TraceID = tc.TraceID
	}
	if elapsed > 0 {
		res.SnapshotsPerSec = float64(snapTotal) / elapsed.Seconds()
	}
	for _, p := range pointsPerRank {
		res.Points += p
	}
	if cfg.ReservoirBudget > 0 {
		// Cross-rank reservoir reduction: the global top-budget per cube is
		// always contained in the union of the per-rank top-budget sets, so
		// re-offering every survivor into a fresh reservoir recovers it.
		flushed := flushReservoirs(mergeRankReservoirs(reservoirsPerRank, cfg.ReservoirBudget))
		for i := range flushed {
			res.Points += len(flushed[i].LocalIdx)
		}
		if cfg.ShardPrefix == "" {
			res.Cubes = flushed
		} else if err := writeShards(shardPaths, flushed); err != nil {
			cleanupShards()
			return nil, err
		}
		return res, nil
	}
	if cfg.ShardPrefix == "" {
		for r := 0; r < cfg.Ranks; r++ {
			res.Cubes = append(res.Cubes, results[r]...)
		}
		sort.SliceStable(res.Cubes, func(a, b int) bool {
			if res.Cubes[a].Snapshot != res.Cubes[b].Snapshot {
				return res.Cubes[a].Snapshot < res.Cubes[b].Snapshot
			}
			return res.Cubes[a].Cube.ID < res.Cubes[b].Cube.ID
		})
	}
	return res, nil
}

// compactFeatures rewrites each cube sample's Features rows into a fresh
// backing array sized to the selected points, releasing the per-cube slab
// they were subsliced from.
func compactFeatures(cubes []sampling.CubeSample) {
	for i := range cubes {
		cs := &cubes[i]
		if len(cs.Features) == 0 {
			continue
		}
		d := len(cs.Features[0])
		backing := make([]float64, len(cs.Features)*d)
		for r, row := range cs.Features {
			dst := backing[r*d : (r+1)*d]
			copy(dst, row)
			cs.Features[r] = dst
		}
	}
}

// mergeRankReservoirs reduces the per-rank reservoirs to one global
// budgeted reservoir per cube by re-offering every locally-kept item.
func mergeRankReservoirs(perRank []map[int]*cubeReservoir, budget int) map[int]*cubeReservoir {
	merged := map[int]*cubeReservoir{}
	for _, rankRes := range perRank {
		for id, r := range rankRes {
			g, ok := merged[id]
			if !ok {
				g = newCubeReservoir(r.cube, budget)
				merged[id] = g
			}
			for _, it := range r.items {
				g.offer(it)
			}
		}
	}
	return merged
}

// writeShards distributes finalized cube samples round-robin across the
// per-rank shard files.
func writeShards(paths []string, cubes []sampling.CubeSample) error {
	for r, path := range paths {
		a, err := sickle.OpenShardAppender(path)
		if err != nil {
			return err
		}
		for i := r; i < len(cubes); i += len(paths) {
			if err := a.Append(cubes[i]); err != nil {
				_ = a.Close() // the append error dominates
				return err
			}
		}
		if err := a.Close(); err != nil {
			return err
		}
	}
	return nil
}

// mergeSketches is the collective sketch merge: each rank contributes its
// unmerged delta as a dense vector, the Allreduce sums them, every rank
// folds the sum into its global sketch, and the delta resets. The dense
// buffer is bounded by effectiveBins.
func mergeSketches(c *minimpi.Comm, delta **stats.NDHistogram, global *stats.NDHistogram) error {
	d := *delta
	buf := make([]float64, d.TotalCells())
	for cell, cnt := range d.Counts {
		buf[cell] = float64(cnt)
	}
	c.Allreduce(buf, minimpi.Sum)
	summed := stats.NewNDHistogram(d.Lo, d.Hi, d.Bins)
	for cell, v := range buf {
		if v > 0 {
			n := int(v + 0.5)
			summed.Counts[cell] = n
			summed.N += n
		}
	}
	if err := global.Merge(summed); err != nil {
		return err
	}
	*delta = stats.NewNDHistogram(d.Lo, d.Hi, d.Bins)
	return nil
}

// offerToReservoirs feeds one snapshot's phase-2 selection into the per-cube
// budgeted reservoirs. The Exp(1) key draws come from a per-snapshot rng
// (seeded like the offline per-snapshot seeding) and so are independent of
// rank layout, but the inverse-density weights read the rank's own sketch
// state, which does depend on which snapshots the rank has seen and how
// many merges have landed — reservoir selections are therefore reproducible
// for a fixed (seed, ranks, merge cadence) but only approximately invariant
// across rank counts. Only parity mode (ReservoirBudget == 0) is bit-exact.
func offerToReservoirs(reservoirs map[int]*cubeReservoir, out []sampling.CubeSample,
	snap, budget int, seed int64, global, delta *stats.NDHistogram) {

	rng := newKeyRNG(seed, snap)
	for i := range out {
		cs := &out[i]
		r, ok := reservoirs[cs.Cube.ID]
		if !ok {
			r = newCubeReservoir(cs.Cube, budget)
			reservoirs[cs.Cube.ID] = r
		}
		for p := range cs.LocalIdx {
			w := invDensityWeight(global, delta, cs.Features[p])
			// Copy the feature row: cs.Features rows are subslices of one
			// per-cube backing slab, and holding a reference from the
			// reservoir would pin the whole slab (cube volume × vars) for
			// the stream's lifetime, silently breaking the memory budget.
			// Targets are already per-point allocations.
			r.offer(resItem{
				key:      -rng.ExpFloat64() / w,
				snap:     snap,
				localIdx: cs.LocalIdx[p],
				features: append([]float64(nil), cs.Features[p]...),
				targets:  cs.Targets[p],
			})
		}
	}
}
