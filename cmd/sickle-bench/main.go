// sickle-bench regenerates the paper's tables and figures. Each experiment
// prints the rows/series the paper reports; Fig. 3 additionally writes PGM
// sampling visualizations.
//
// Usage:
//
//	sickle-bench -exp table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all
//	             [-scale small|large] [-outdir plots]
//
// With -serve it becomes a load generator against a running sickle-serve
// instance instead, verifying micro-batched inference against the
// unbatched reference and exercising the dataset LRU:
//
//	sickle-bench -serve http://localhost:8080 [-model demo] [-clients 32] [-requests 256]
//
// With -kernels it benchmarks the tensor/solver compute engine (matmul
// GFLOP/s, train-step and solver-step throughput, allocs/op, pooled÷serial
// speedups) into BENCH_kernels.json and optionally gates regressions
// against a committed baseline:
//
//	sickle-bench -kernels [-kernelsout BENCH_kernels.json] [-baseline BENCH_kernels.json] [-tol 0.20]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/sickle"
	"repro/internal/viz"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig3..fig9, all)")
	scaleStr := flag.String("scale", "small", "dataset scale: small or large")
	outdir := flag.String("outdir", "plots", "directory for figure artifacts")
	serveURL := flag.String("serve", "", "load-generator mode: base URL of a running sickle-serve (or sickle-shard)")
	model := flag.String("model", "", "model to load-test (default: first registered)")
	clients := flag.Int("clients", 32, "concurrent clients in load-generator mode")
	requests := flag.Int("requests", 256, "total requests in load-generator mode")
	shardPhase := flag.Bool("shard", false, "with -serve pointed at sickle-shard: verify routing via the router's shard metrics")
	serveOut := flag.String("serveout", "", "output path for the -serve durability-phase JSON report (\"\" = print only)")
	streamBench := flag.Bool("stream", false, "streaming-pipeline bench mode: run the in-situ pipeline and emit a JSON report")
	streamOut := flag.String("streamout", "BENCH_stream.json", "output path for the -stream JSON report")
	kernels := flag.Bool("kernels", false, "kernel bench mode: measure the tensor/solver compute engine and emit a JSON report")
	kernelsOut := flag.String("kernelsout", "BENCH_kernels.json", "output path for the -kernels JSON report")
	baseline := flag.String("baseline", "", "committed BENCH_kernels.json to gate speedup regressions against (with -kernels)")
	tol := flag.Float64("tol", 0.20, "relative speedup-regression tolerance for -baseline")
	lintURL := flag.String("lintmetrics", "", "exposition-lint mode: fetch this /metrics URL, lint it, exit non-zero on violations")
	flag.Parse()

	if *lintURL != "" {
		if err := runMetricsLint(*lintURL); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *serveURL != "" {
		if err := runLoadGen(*serveURL, *model, *clients, *requests, *shardPhase, *serveOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *streamBench {
		if err := runStreamBench(*streamOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *kernels {
		if err := runKernelBench(*kernelsOut, *baseline, *tol); err != nil {
			log.Fatal(err)
		}
		return
	}

	scale := sickle.Small
	if *scaleStr == "large" {
		scale = sickle.Large
	}
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := sickle.Table1(scale)
		if err != nil {
			return err
		}
		fmt.Print(sickle.FormatTable1(rows))
		return nil
	})

	run("fig3", func() error {
		res, f, err := sickle.Fig3(scale, 0.10)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
		fmt.Printf("%-8s %10s %10s %10s\n", "method", "samples", "wakeFrac", "tailCover")
		for _, r := range res {
			fmt.Printf("%-8s %10d %10.3f %10.3f\n", r.Method, r.NumSamples, r.WakeFrac, r.TailCover)
			img := viz.SamplesToPGM(f, "wz", 0, r.Indices)
			path := filepath.Join(*outdir, fmt.Sprintf("fig3_%s.pgm", r.Method))
			if err := viz.WritePGM(path, img); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
		}
		return nil
	})

	run("fig4", func() error {
		res, err := sickle.Fig4(scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %14s\n", "dataset", "UIPS coverage")
		for _, r := range res {
			fmt.Printf("%-10s %14.3f\n", r.Dataset, r.Coverage)
		}
		fmt.Println("(1.0 = uniform phase-space coverage; low = the clumping of Fig. 4 right)")
		return nil
	})

	run("fig5", func() error {
		rows, err := sickle.Fig5(scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-10s %12s %12s\n", "dataset", "method", "KL(full‖s)", "tailCover")
		for _, r := range rows {
			fmt.Printf("%-12s %-10s %12.4f %12.3f\n", r.Dataset, r.Method, r.KLtoFull, r.TailCover)
		}
		return nil
	})

	run("fig6", func() error {
		cfg := sickle.Fig6Config{}
		if scale == sickle.Small {
			cfg = sickle.Fig6Config{SampleSizes: []int{540, 1080, 2160}, Replicates: 3, Epochs: 150}
		}
		rows, err := sickle.Fig6(context.Background(), scale, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10s %14s %14s\n", "method", "samples", "mean loss", "std loss")
		for _, r := range rows {
			fmt.Printf("%-8s %10d %14.6f %14.6f\n", r.Method, r.NumSamples, r.MeanLoss, r.StdLoss)
		}
		return nil
	})

	run("fig7", func() error {
		rows, err := sickle.Fig7(context.Background(), scale, 512, sickle.DefaultCostModel())
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %6s %10s %10s\n", "dataset", "ranks", "speedup", "efficiency")
		for _, r := range rows {
			fmt.Printf("%-12s %6d %10.2f %10.3f\n", r.Dataset, r.Ranks, r.Speedup, r.Efficiency)
		}
		fmt.Printf("knee(SST-P1F4)=%d ranks, knee(SST-P1F100)=%d ranks (efficiency >= 0.5)\n",
			sickle.KneeRanks(rows, "SST-P1F4", 0.5), sickle.KneeRanks(rows, "SST-P1F100", 0.5))
		return nil
	})

	run("fig8", func() error {
		rows, err := sickle.Fig8(context.Background(), scale, sickle.Fig8Config{})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(sickle.EnergyReportString(r.Report))
		}
		return nil
	})

	run("fig9", func() error {
		rows, err := sickle.Fig9(context.Background(), scale, sickle.Fig9Config{})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(sickle.EnergyReportString(r.Report))
		}
		return nil
	})
}
