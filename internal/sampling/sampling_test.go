package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/stats"
)

// gaussData builds an n-point 2-feature dataset whose first feature is
// N(0,1) — heavy center, thin tails — with the same scalar as KCV.
func gaussData(n int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	feats := make([][]float64, n)
	kcv := make([]float64, n)
	for i := range feats {
		x := rng.NormFloat64()
		feats[i] = []float64{x, rng.Float64()}
		kcv[i] = x
	}
	return &Data{Features: feats, ClusterVar: kcv}
}

func col(d *Data, idx []int, j int) []float64 {
	out := make([]float64, len(idx))
	for r, i := range idx {
		out[r] = d.Features[i][j]
	}
	return out
}

func allSamplers() []PointSampler {
	return []PointSampler{
		Random{}, Full{}, LHS{}, Stratified{}, UIPS{}, MaxEnt{},
	}
}

// TestSamplerContract checks the base contract for every sampler: correct
// count, valid unique indices, deterministic under a fixed rng seed.
func TestSamplerContract(t *testing.T) {
	d := gaussData(600, 1)
	for _, s := range allSamplers() {
		n := 60
		idx := s.SelectPoints(d, n, rand.New(rand.NewSource(42)))
		wantN := n
		if _, isFull := s.(Full); isFull {
			wantN = d.N()
		}
		if len(idx) != wantN {
			t.Fatalf("%s: got %d indices, want %d", s.Name(), len(idx), wantN)
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= d.N() {
				t.Fatalf("%s: index %d out of range", s.Name(), i)
			}
			if seen[i] {
				t.Fatalf("%s: duplicate index %d", s.Name(), i)
			}
			seen[i] = true
		}
		idx2 := s.SelectPoints(d, n, rand.New(rand.NewSource(42)))
		for r := range idx {
			if idx[r] != idx2[r] {
				t.Fatalf("%s: not deterministic under fixed seed", s.Name())
			}
		}
	}
}

func TestSamplersDoNotMutateInput(t *testing.T) {
	d := gaussData(300, 2)
	orig := make([]float64, len(d.Features))
	for i := range d.Features {
		orig[i] = d.Features[i][0]
	}
	for _, s := range allSamplers() {
		s.SelectPoints(d, 30, rand.New(rand.NewSource(1)))
		for i := range d.Features {
			if d.Features[i][0] != orig[i] {
				t.Fatalf("%s mutated input features", s.Name())
			}
		}
	}
}

func TestRequestLargerThanData(t *testing.T) {
	d := gaussData(20, 3)
	for _, s := range allSamplers() {
		idx := s.SelectPoints(d, 100, rand.New(rand.NewSource(1)))
		if len(idx) != 20 {
			t.Fatalf("%s: oversize request returned %d, want all 20", s.Name(), len(idx))
		}
	}
}

func TestRandomUniformCoverage(t *testing.T) {
	d := gaussData(10000, 4)
	idx := Random{}.SelectPoints(d, 5000, rand.New(rand.NewSource(5)))
	// The sampled mean of a symmetric distribution stays near 0.
	m := stats.ComputeMoments(col(d, idx, 0))
	if math.Abs(m.Mean) > 0.1 {
		t.Fatalf("random sample mean = %v, want ~0", m.Mean)
	}
}

// TestUIPSFlattensPDF: UIPS must over-represent tails relative to random
// sampling — the mechanism behind Fig. 5's tail coverage.
func TestUIPSFlattensPDF(t *testing.T) {
	d := gaussData(20000, 6)
	rng := rand.New(rand.NewSource(7))
	full := make([]float64, d.N())
	for i := range full {
		full[i] = d.Features[i][0]
	}
	uipsIdx := UIPS{Bins: 30}.SelectPoints(d, 2000, rng)
	randIdx := Random{}.SelectPoints(d, 2000, rand.New(rand.NewSource(8)))
	tcUIPS := stats.TailCoverage(full, col(d, uipsIdx, 0), 0.02)
	tcRand := stats.TailCoverage(full, col(d, randIdx, 0), 0.02)
	if tcUIPS <= 1.5*tcRand {
		t.Fatalf("UIPS tail coverage %v should far exceed random %v", tcUIPS, tcRand)
	}
}

// TestMaxEntCoversTails: MaxEnt must also over-represent the rare clusters.
func TestMaxEntCoversTails(t *testing.T) {
	d := gaussData(20000, 9)
	full := make([]float64, d.N())
	for i := range full {
		full[i] = d.Features[i][0]
	}
	meIdx := MaxEnt{NumClusters: 12}.SelectPoints(d, 2000, rand.New(rand.NewSource(10)))
	randIdx := Random{}.SelectPoints(d, 2000, rand.New(rand.NewSource(11)))
	tcME := stats.TailCoverage(full, col(d, meIdx, 0), 0.02)
	tcRand := stats.TailCoverage(full, col(d, randIdx, 0), 0.02)
	if tcME <= 1.2*tcRand {
		t.Fatalf("MaxEnt tail coverage %v should exceed random %v", tcME, tcRand)
	}
}

// TestMaxEntMoreReproducibleTailCoverage reproduces the paper's
// reproducibility claim (§7, Fig. 6) at the sampler level: across seeds the
// *relative* spread of the tail representation — the statistic that drives
// surrogate quality in Fig. 5/6 — is smaller for MaxEnt than for random,
// because MaxEnt allocates the tail budget deterministically from cluster
// strengths while random sampling leaves tail counts to Poisson noise.
func TestMaxEntMoreReproducibleTailCoverage(t *testing.T) {
	d := gaussData(8000, 12)
	full := make([]float64, d.N())
	for i := range full {
		full[i] = d.Features[i][0]
	}
	relSpread := func(s PointSampler) float64 {
		var tcs []float64
		for seed := int64(0); seed < 10; seed++ {
			idx := s.SelectPoints(d, 400, rand.New(rand.NewSource(seed)))
			tcs = append(tcs, stats.TailCoverage(full, col(d, idx, 0), 0.02))
		}
		m := stats.ComputeMoments(tcs)
		if m.Mean == 0 {
			return math.Inf(1)
		}
		return math.Sqrt(m.Variance) / m.Mean // coefficient of variation
	}
	cvRand := relSpread(Random{})
	cvME := relSpread(MaxEnt{NumClusters: 12})
	if cvME > cvRand {
		t.Fatalf("MaxEnt tail-coverage CV %v should be <= random %v", cvME, cvRand)
	}
}

func TestStratifiedHitsEveryStratum(t *testing.T) {
	// Bimodal KCV: two well-separated blobs, one 10× rarer.
	rng := rand.New(rand.NewSource(13))
	n := 11000
	feats := make([][]float64, n)
	kcv := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64() * 0.1
		if i < 1000 {
			v += 10
		}
		feats[i] = []float64{v}
		kcv[i] = v
	}
	d := &Data{Features: feats, ClusterVar: kcv}
	idx := Stratified{NumStrata: 10}.SelectPoints(d, 200, rng)
	rare := 0
	for _, i := range idx {
		if kcv[i] > 5 {
			rare++
		}
	}
	// Proportional sampling would give ~18 rare points; equal-allocation
	// stratification should give far more.
	if rare < 40 {
		t.Fatalf("stratified rare-mode count = %d, want >= 40", rare)
	}
}

func TestLHSStratification(t *testing.T) {
	// LHS over uniform data: the selected first-feature values should hit
	// most deciles.
	rng := rand.New(rand.NewSource(14))
	n := 5000
	feats := make([][]float64, n)
	for i := range feats {
		feats[i] = []float64{rng.Float64(), rng.Float64()}
	}
	d := &Data{Features: feats}
	idx := LHS{}.SelectPoints(d, 50, rng)
	bins := make([]int, 10)
	for _, i := range idx {
		b := int(feats[i][0] * 10)
		if b > 9 {
			b = 9
		}
		bins[b]++
	}
	empty := 0
	for _, c := range bins {
		if c == 0 {
			empty++
		}
	}
	if empty > 1 {
		t.Fatalf("LHS left %d deciles empty: %v", empty, bins)
	}
}

func TestWeightedSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	w := []float64{100, 1, 1, 1, 0, math.NaN()}
	counts := make([]int, len(w))
	for trial := 0; trial < 2000; trial++ {
		idx := weightedSampleWithoutReplacement(w, 2, rng)
		if len(idx) != 2 || idx[0] == idx[1] {
			t.Fatalf("bad sample %v", idx)
		}
		for _, i := range idx {
			counts[i]++
		}
	}
	// Heaviest item appears in almost every draw.
	if counts[0] < 1800 {
		t.Fatalf("heavy item drawn only %d/2000 times", counts[0])
	}
	// Oversize request returns everything.
	if got := weightedSampleWithoutReplacement(w, 10, rng); len(got) != len(w) {
		t.Fatalf("oversize request returned %d", len(got))
	}
}

// Property: weighted sampling returns exactly n distinct valid indices.
func TestWeightedSampleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(50)
		w := make([]float64, m)
		for i := range w {
			w[i] = rng.Float64()
		}
		n := 1 + rng.Intn(m)
		idx := weightedSampleWithoutReplacement(w, n, rng)
		if len(idx) != n {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= m || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyCharged(t *testing.T) {
	d := gaussData(500, 16)
	for _, name := range MethodNames() {
		m := energy.NewMeter()
		s, err := NewPointSampler(name, 5, m)
		if err != nil {
			t.Fatal(err)
		}
		s.SelectPoints(d, 50, rand.New(rand.NewSource(1)))
		if m.Joules() <= 0 {
			t.Fatalf("%s charged no energy", name)
		}
	}
}

func TestNewPointSamplerUnknown(t *testing.T) {
	if _, err := NewPointSampler("bogus", 0, nil); err == nil {
		t.Fatal("expected error for unknown sampler")
	}
	if _, err := NewHypercubeSelector("bogus", 0, nil); err == nil {
		t.Fatal("expected error for unknown selector")
	}
}

func TestValidateRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty data")
		}
	}()
	Random{}.SelectPoints(&Data{}, 5, rand.New(rand.NewSource(1)))
}

func TestDataKCVFallback(t *testing.T) {
	d := &Data{Features: [][]float64{{1, 9}, {2, 8}}}
	kcv := d.KCV()
	if kcv[0] != 1 || kcv[1] != 2 {
		t.Fatalf("KCV fallback = %v", kcv)
	}
}

func BenchmarkRandom10k(b *testing.B) {
	d := gaussData(10000, 20)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Random{}.SelectPoints(d, 1000, rng)
	}
}

func BenchmarkUIPS10k(b *testing.B) {
	d := gaussData(10000, 21)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UIPS{}.SelectPoints(d, 1000, rng)
	}
}

func BenchmarkMaxEnt10k(b *testing.B) {
	d := gaussData(10000, 22)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxEnt{}.SelectPoints(d, 1000, rng)
	}
}
