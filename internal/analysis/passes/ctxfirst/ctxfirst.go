// Package ctxfirst enforces the stack's context-first cancellation
// contract (established in PR 4 and load-bearing for the serve/shard
// tiers): cancellation flows from the caller, so library code must not
// mint root contexts, functions that take a context take it first, and
// outbound HTTP requests carry one.
//
// Three rules:
//
//  1. No context.Background() or context.TODO() outside package main.
//     Libraries receive their context; a Background() call severs the
//     caller's cancellation and trace propagation. Legitimate lifecycle
//     roots (a manager whose context is canceled by its own Stop/Close)
//     annotate the one construction site with
//     //sicklevet:ignore ctxfirst <reason>.
//
//  2. A context.Context parameter must be the first parameter.
//
//  3. http.NewRequest must be http.NewRequestWithContext.
//
// Test files are exempt (the driver never passes them).
package ctxfirst

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxfirst pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "enforce context-first cancellation: no root contexts in libraries, ctx as first parameter, context-bound HTTP requests",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, isMain)
			case *ast.FuncDecl:
				checkSignature(pass, n.Type)
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						checkSignature(pass, ft)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, isMain bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case analysis.IsFuncNamed(fn, "context", "Background"), analysis.IsFuncNamed(fn, "context", "TODO"):
		if isMain {
			return
		}
		pass.Reportf(call.Pos(),
			"context.%s() severs the caller's cancellation and trace; thread a context.Context parameter instead "+
				"(lifecycle roots: //sicklevet:ignore ctxfirst <reason>)", fn.Name())
	case analysis.IsFuncNamed(fn, "net/http", "NewRequest"):
		pass.Reportf(call.Pos(), "http.NewRequest ignores cancellation; use http.NewRequestWithContext")
	}
}

// checkSignature flags a context.Context parameter that is not first.
func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.Types[field.Type].Type) && index > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			return
		}
		index += n
	}
}

func isContextType(t types.Type) bool {
	return t != nil && analysis.NamedTypePath(t, "context", "Context")
}
