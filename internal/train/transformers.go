package train

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// cubeDecoder upsamples a per-timestep latent vector to a dense cube
// [C', G, G, G] through a linear seed plus stacked ConvTranspose3D layers
// (kernel 2, stride 2), the paper's ConvTranspose3D decoder.
type cubeDecoder struct {
	seedDim, seedCh, outCh, outG int
	lin                          *nn.Linear
	ups                          []*nn.ConvTranspose3D
	acts                         []*nn.Activation
	bt                           int
}

// newCubeDecoder targets a G³ output cube with outCh channels from latent
// dimension d. G must be seed·2^k for the 2³ seed (G ∈ {4, 8, 16, 32, ...}).
func newCubeDecoder(rng *rand.Rand, d, outCh, outG int) *cubeDecoder {
	seed := 2
	levels := 0
	for g := seed; g < outG; g *= 2 {
		levels++
	}
	if seed<<levels != outG {
		panic(fmt.Sprintf("train: decoder output size %d must be 2·2^k", outG))
	}
	ch := 8
	dec := &cubeDecoder{seedDim: d, seedCh: ch, outCh: outCh, outG: outG,
		lin: nn.NewLinear(rng, d, ch*seed*seed*seed)}
	cur := ch
	for l := 0; l < levels; l++ {
		next := cur / 2
		if next < outCh || l == levels-1 {
			next = outCh
		}
		dec.ups = append(dec.ups, nn.NewConvTranspose3D(rng, cur, next, 2, 2))
		if l < levels-1 {
			dec.acts = append(dec.acts, nn.NewActivation("relu"))
		} else {
			dec.acts = append(dec.acts, nil)
		}
		cur = next
	}
	return dec
}

func (d *cubeDecoder) params() []*nn.Param {
	out := append([]*nn.Param{}, d.lin.Params()...)
	for _, u := range d.ups {
		out = append(out, u.Params()...)
	}
	return out
}

// forward maps z [BT, D] to [BT, C', G, G, G].
func (d *cubeDecoder) forward(z *tensor.Tensor) *tensor.Tensor {
	d.bt = z.Dim(0)
	h := d.lin.Forward(z).Reshape(d.bt, d.seedCh, 2, 2, 2)
	var cur *tensor.Tensor = h
	for l, u := range d.ups {
		cur = u.Forward(cur)
		if d.acts[l] != nil {
			cur = d.acts[l].Forward(cur)
		}
	}
	return cur
}

// backward consumes dL/dout and returns dL/dz.
func (d *cubeDecoder) backward(dy *tensor.Tensor) *tensor.Tensor {
	cur := dy
	for l := len(d.ups) - 1; l >= 0; l-- {
		if d.acts[l] != nil {
			cur = d.acts[l].Backward(cur)
		}
		cur = d.ups[l].Backward(cur)
	}
	return d.lin.Backward(cur.Reshape(d.bt, d.seedCh*8))
}

// MLPTransformer is the sample-full architecture of Table 2: unstructured
// subsampled points [B, T, C, N] are embedded point-wise by an MLP encoder,
// mean-pooled per timestep, passed through a transformer encoder over time,
// and decoded to dense cubes [B, T, C', G, G, G].
type MLPTransformer struct {
	InVars, NPoints, ModelDim, OutVars, OutG int
	enc1, enc2                               *nn.Linear
	encAct                                   *nn.Activation
	block                                    *nn.TransformerBlock
	dec                                      *cubeDecoder
	b, t                                     int
}

// NewMLPTransformer builds the MLP-encoder/transformer/CNN-decoder stack.
func NewMLPTransformer(rng *rand.Rand, inVars, modelDim, heads, outVars, outG int) *MLPTransformer {
	return &MLPTransformer{
		InVars: inVars, ModelDim: modelDim, OutVars: outVars, OutG: outG,
		enc1:   nn.NewLinear(rng, inVars, modelDim),
		encAct: nn.NewActivation("relu"),
		enc2:   nn.NewLinear(rng, modelDim, modelDim),
		block:  nn.NewTransformerBlock(rng, modelDim, heads, 2*modelDim),
		dec:    newCubeDecoder(rng, modelDim, outVars, outG),
	}
}

// Name implements Model.
func (m *MLPTransformer) Name() string { return "MLP_Transformer" }

// Params implements nn.Module.
func (m *MLPTransformer) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.enc1.Params()...)
	out = append(out, m.enc2.Params()...)
	out = append(out, m.block.Params()...)
	out = append(out, m.dec.params()...)
	return out
}

// Forward maps x [B, T, N, C] to [B, T, C', G, G, G].
// (Point-major layout: N points each with C features.)
func (m *MLPTransformer) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, t, n, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m.b, m.t, m.NPoints = b, t, n
	flatPts := x.Reshape(b*t*n, c)
	emb := m.enc2.Forward(m.encAct.Forward(m.enc1.Forward(flatPts))) // [B*T*N, D]
	// Mean-pool over points.
	pooled := tensor.New(b*t, m.ModelDim)
	inv := 1 / float64(n)
	for row := 0; row < b*t; row++ {
		dst := pooled.Data[row*m.ModelDim : (row+1)*m.ModelDim]
		for p := 0; p < n; p++ {
			src := emb.Data[(row*n+p)*m.ModelDim : (row*n+p+1)*m.ModelDim]
			for j := range dst {
				dst[j] += src[j] * inv
			}
		}
	}
	z := m.block.Forward(pooled.Reshape(b, t, m.ModelDim)).Reshape(b*t, m.ModelDim)
	cube := m.dec.forward(z) // [B*T, C', G, G, G]
	return cube.Reshape(b, t, m.OutVars, m.OutG, m.OutG, m.OutG)
}

// Backward implements Model.
func (m *MLPTransformer) Backward(dy *tensor.Tensor) {
	b, t, n := m.b, m.t, m.NPoints
	dz := m.dec.backward(dy.Reshape(b*t, m.OutVars, m.OutG, m.OutG, m.OutG))
	dpooled := m.block.Backward(dz.Reshape(b, t, m.ModelDim)).Reshape(b*t, m.ModelDim)
	// Un-pool: each point receives dpooled/n.
	demb := tensor.New(b*t*n, m.ModelDim)
	inv := 1 / float64(n)
	for row := 0; row < b*t; row++ {
		src := dpooled.Data[row*m.ModelDim : (row+1)*m.ModelDim]
		for p := 0; p < n; p++ {
			dst := demb.Data[(row*n+p)*m.ModelDim : (row*n+p+1)*m.ModelDim]
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
	}
	m.enc1.Backward(m.encAct.Backward(m.enc2.Backward(demb)))
}

// CNNTransformer is the full-full architecture of Table 2: dense hypercubes
// [B, T, C, G, G, G] are encoded with strided Conv3D layers, passed through
// a transformer encoder over time, and decoded back to cubes.
type CNNTransformer struct {
	InVars, ModelDim, OutVars, G int
	conv1, conv2                 *nn.Conv3D
	act1, act2                   *nn.Activation
	toLatent                     *nn.Linear
	block                        *nn.TransformerBlock
	dec                          *cubeDecoder
	b, t, flatDim, encG          int
}

// NewCNNTransformer builds the Conv3D/transformer/ConvTranspose3D stack for
// G³ cubes (G a power of two ≥ 8).
func NewCNNTransformer(rng *rand.Rand, inVars, modelDim, heads, outVars, g int) *CNNTransformer {
	c1 := nn.NewConv3D(rng, inVars, 4, 2, 2, 0) // G -> G/2
	c2 := nn.NewConv3D(rng, 4, 8, 2, 2, 0)      // G/2 -> G/4
	encG := g / 4
	flat := 8 * encG * encG * encG
	return &CNNTransformer{
		InVars: inVars, ModelDim: modelDim, OutVars: outVars, G: g,
		conv1: c1, act1: nn.NewActivation("relu"),
		conv2: c2, act2: nn.NewActivation("relu"),
		toLatent: nn.NewLinear(rng, flat, modelDim),
		block:    nn.NewTransformerBlock(rng, modelDim, heads, 2*modelDim),
		dec:      newCubeDecoder(rng, modelDim, outVars, g),
		flatDim:  flat, encG: encG,
	}
}

// Name implements Model.
func (m *CNNTransformer) Name() string { return "CNN_Transformer" }

// Params implements nn.Module.
func (m *CNNTransformer) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.conv1.Params()...)
	out = append(out, m.conv2.Params()...)
	out = append(out, m.toLatent.Params()...)
	out = append(out, m.block.Params()...)
	out = append(out, m.dec.params()...)
	return out
}

// Forward maps x [B, T, C, G, G, G] to [B, T, C', G, G, G].
func (m *CNNTransformer) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, t := x.Dim(0), x.Dim(1)
	m.b, m.t = b, t
	g := m.G
	h := x.Reshape(b*t, m.InVars, g, g, g)
	h = m.act1.Forward(m.conv1.Forward(h))
	h = m.act2.Forward(m.conv2.Forward(h))
	z := m.toLatent.Forward(h.Reshape(b*t, m.flatDim))
	z = m.block.Forward(z.Reshape(b, t, m.ModelDim)).Reshape(b*t, m.ModelDim)
	cube := m.dec.forward(z)
	return cube.Reshape(b, t, m.OutVars, g, g, g)
}

// Backward implements Model.
func (m *CNNTransformer) Backward(dy *tensor.Tensor) {
	b, t, g := m.b, m.t, m.G
	dz := m.dec.backward(dy.Reshape(b*t, m.OutVars, g, g, g))
	dz = m.block.Backward(dz.Reshape(b, t, m.ModelDim)).Reshape(b*t, m.ModelDim)
	dh := m.toLatent.Backward(dz).Reshape(b*t, 8, m.encG, m.encG, m.encG)
	dh = m.conv2.Backward(m.act2.Backward(dh))
	m.conv1.Backward(m.act1.Backward(dh))
}
