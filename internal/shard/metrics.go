package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is the router's instrumentation: per-replica liveness and
// routing counters, failover/ejection/re-admission counters, and
// per-route request accounting. Rendered in Prometheus text exposition
// format on GET /metrics.
type Metrics struct {
	mu sync.Mutex

	up     map[string]int   // replica -> 0/1
	routed map[string]int64 // replica -> successfully routed requests
	failed map[string]int64 // replica -> failed downstream calls

	failovers    int64 // requests retried on a non-primary ring node
	ejections    int64
	readmissions int64

	routeCount   map[string]int64
	routeErrors  map[string]int64
	routeSeconds map[string]float64
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		up:           map[string]int{},
		routed:       map[string]int64{},
		failed:       map[string]int64{},
		routeCount:   map[string]int64{},
		routeErrors:  map[string]int64{},
		routeSeconds: map[string]float64{},
	}
}

// SetUp records a replica's liveness gauge.
func (m *Metrics) SetUp(replica string, up bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if up {
		m.up[replica] = 1
	} else {
		m.up[replica] = 0
	}
}

// ObserveRouted counts one request successfully served by replica.
func (m *Metrics) ObserveRouted(replica string) {
	m.mu.Lock()
	m.routed[replica]++
	m.mu.Unlock()
}

// ObserveFailed counts one downstream call that failed on replica (and was
// failed over or surfaced to the client).
func (m *Metrics) ObserveFailed(replica string) {
	m.mu.Lock()
	m.failed[replica]++
	m.mu.Unlock()
}

// ObserveFailover counts one attempt on a non-primary ring node.
func (m *Metrics) ObserveFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

// ObserveEjection counts one replica leaving the ring.
func (m *Metrics) ObserveEjection() {
	m.mu.Lock()
	m.ejections++
	m.mu.Unlock()
}

// ObserveReadmission counts one replica rejoining the ring.
func (m *Metrics) ObserveReadmission() {
	m.mu.Lock()
	m.readmissions++
	m.mu.Unlock()
}

// ObserveRequest records one router request on a route.
func (m *Metrics) ObserveRequest(route string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routeCount[route]++
	m.routeSeconds[route] += d.Seconds()
	if failed {
		m.routeErrors[route]++
	}
}

// RoutedTotal returns the routed counter for one replica (tests).
func (m *Metrics) RoutedTotal(replica string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routed[replica]
}

// FailoversTotal returns the cumulative failover count (tests).
func (m *Metrics) FailoversTotal() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Render writes the Prometheus text format.
func (m *Metrics) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	fmt.Fprintf(&b, "# TYPE sickle_shard_replica_up gauge\n")
	for _, r := range sortedKeys(m.up) {
		fmt.Fprintf(&b, "sickle_shard_replica_up{replica=%q} %d\n", r, m.up[r])
	}
	fmt.Fprintf(&b, "# TYPE sickle_shard_routed_requests_total counter\n")
	for _, r := range sortedKeys(m.routed) {
		fmt.Fprintf(&b, "sickle_shard_routed_requests_total{replica=%q} %d\n", r, m.routed[r])
	}
	fmt.Fprintf(&b, "# TYPE sickle_shard_failed_requests_total counter\n")
	for _, r := range sortedKeys(m.failed) {
		fmt.Fprintf(&b, "sickle_shard_failed_requests_total{replica=%q} %d\n", r, m.failed[r])
	}
	fmt.Fprintf(&b, "# TYPE sickle_shard_failovers_total counter\n")
	fmt.Fprintf(&b, "sickle_shard_failovers_total %d\n", m.failovers)
	fmt.Fprintf(&b, "# TYPE sickle_shard_ejections_total counter\n")
	fmt.Fprintf(&b, "sickle_shard_ejections_total %d\n", m.ejections)
	fmt.Fprintf(&b, "# TYPE sickle_shard_readmissions_total counter\n")
	fmt.Fprintf(&b, "sickle_shard_readmissions_total %d\n", m.readmissions)

	fmt.Fprintf(&b, "# TYPE sickle_shard_requests_total counter\n")
	for _, route := range sortedKeys(m.routeCount) {
		fmt.Fprintf(&b, "sickle_shard_requests_total{route=%q} %d\n", route, m.routeCount[route])
	}
	fmt.Fprintf(&b, "# TYPE sickle_shard_request_errors_total counter\n")
	for _, route := range sortedKeys(m.routeErrors) {
		fmt.Fprintf(&b, "sickle_shard_request_errors_total{route=%q} %d\n", route, m.routeErrors[route])
	}
	fmt.Fprintf(&b, "# TYPE sickle_shard_request_seconds_sum counter\n")
	for _, route := range sortedKeys(m.routeSeconds) {
		fmt.Fprintf(&b, "sickle_shard_request_seconds_sum{route=%q} %g\n", route, m.routeSeconds[route])
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
