package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// TraceHeader is the wire contract for end-to-end tracing: every tier
// (pkg/client, the shard router, serve handlers) propagates it so one
// request produces one trace across tier boundaries. The value is
// "<trace-id>" or "<trace-id>:<parent-span-id>".
const TraceHeader = "X-Sickle-Trace"

// TraceContext is a request's trace identity as it crosses a boundary:
// which trace it belongs to and which span is the parent of whatever the
// next tier records.
type TraceContext struct {
	TraceID string
	SpanID  string
}

// HeaderValue renders the X-Sickle-Trace value for this context.
func (tc TraceContext) HeaderValue() string {
	if tc.SpanID == "" {
		return tc.TraceID
	}
	return tc.TraceID + ":" + tc.SpanID
}

// ParseTraceHeader decodes an X-Sickle-Trace value; ok is false for empty
// or malformed values (IDs must be non-empty hex-ish tokens).
func ParseTraceHeader(v string) (TraceContext, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return TraceContext{}, false
	}
	id, span, _ := strings.Cut(v, ":")
	if !validID(id) || (span != "" && !validID(span)) {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, SpanID: span}, true
}

func validID(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == '-') {
			return false
		}
	}
	return true
}

// NewTraceID mints a 16-hex-char random trace ID.
func NewTraceID() string { return randomHex(8) }

// NewSpanID mints an 8-hex-char random span ID.
func NewSpanID() string { return randomHex(4) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// fixed ID rather than panicking in an instrumentation path.
		return strings.Repeat("0", 2*n)
	}
	return hex.EncodeToString(b)
}

type traceCtxKey struct{}

// WithTrace returns a context carrying the trace identity.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the trace identity from ctx.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.TraceID != ""
}
