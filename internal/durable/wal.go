// Package durable persists job state across process crashes. It gives a
// serve replica three on-disk structures under one data directory:
//
//   - a write-ahead job log (wal.log): CRC-framed JSON records, fsync'd
//     per append, replayed on startup so pending/running jobs can be
//     re-enqueued and terminal jobs restored with their results;
//   - a result store (results/): one CRC-framed blob per terminal job,
//     written before the terminal WAL record so recovery never promises
//     a result it cannot produce;
//   - a content-addressed cache (cas/): blobs keyed by a SHA-256 over
//     the canonicalized request, memoizing identical subsample jobs
//     into a disk read.
//
// The log is single-writer (the owning JobManager) and append-only
// between compactions. Opening replays the previous log and starts a
// fresh compacted file; Seal atomically renames it over the old log
// once recovery has re-appended the retained records. Append failures
// (including fsync errors) surface as typed api.CodeUnavailable errors
// and latch the log failed — a replica that cannot persist a submission
// must refuse it rather than silently degrade to at-most-once.
//
// For fault injection, a crash point "freezes" the log at a chosen
// stage: the trip and every later append are dropped, exactly the
// on-disk state a process killed at that instant would leave behind.
// Tests freeze in-process and then InProc.Kill the replica; the
// SICKLE_CRASH_POINT environment variable instead exits the process
// outright so shell-level smoke tests can crash a real binary.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/api"
)

const (
	walMagic   = "SWAL"
	walVersion = 1

	walName    = "wal.log"
	walCompact = "wal.compact"

	// maxFrame bounds a frame's payload; anything larger is treated as
	// tail corruption rather than an allocation request.
	maxFrame = 16 << 20
)

// CrashPointEnv names the environment variable that arms a process-level
// crash point: when the WAL reaches the named stage the process exits
// with status 3, simulating a crash for shell-driven recovery tests.
// Values look like "before:terminal" or "after:submit".
const CrashPointEnv = "SICKLE_CRASH_POINT"

// Kind discriminates WAL record types.
type Kind string

const (
	// KindSubmit records a job's admission: ID, type, idempotency key,
	// and the serialized submission payload recovery rebuilds it from.
	KindSubmit Kind = "submit"
	// KindStart records the pending→running transition.
	KindStart Kind = "start"
	// KindTerminal records the final state (and error, if any). The
	// job's result blob, when it has one, is persisted before this
	// record is appended.
	KindTerminal Kind = "terminal"
)

// stage maps a record kind to its crash-point stage name.
func stage(k Kind) string { return string(k) }

// Record is one WAL entry. Submit carries Type/Key/Payload, terminal
// carries State/Error; Time is the event time (created/started/finished).
type Record struct {
	Kind    Kind            `json:"kind"`
	ID      string          `json:"id"`
	Type    string          `json:"type,omitempty"`
	Key     string          `json:"key,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	State   string          `json:"state,omitempty"`
	Error   *api.Error      `json:"error,omitempty"`
	Time    time.Time       `json:"time"`
}

// JobRecord is a job's state folded from its WAL records, in submission
// order. State is api.JobPending if the job never started, api.JobRunning
// if a start record was seen without a terminal one, else the terminal
// state.
type JobRecord struct {
	ID       string
	Type     api.JobType
	Key      string
	Payload  json.RawMessage
	State    api.JobState
	Err      *api.Error
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Log is the write-ahead job log. Safe for concurrent use; each append
// is written and fsync'd under one lock so records land in admission
// order.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	dir    string
	sealed bool // post-recovery: appends fsync individually
	frozen bool // crash point tripped or Freeze called: appends dropped
	closed bool
	failed error // sticky typed append failure

	crashPoint string
	onTrip     func()
	tripped    bool

	appends   *obs.Counter
	appendErr *obs.Counter
	bytes     *obs.Counter
	seconds   *obs.Histogram
	recovered *obs.CounterVec
}

// openLog replays dir/wal.log and starts a fresh compaction file. The
// returned log is unsealed: recovery re-appends retained records without
// per-append fsync, then Seal atomically replaces the old log.
func openLog(dir string) (*Log, []JobRecord, error) {
	recs, err := readWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walCompact), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	hdr := make([]byte, 8)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close() // the header write error dominates
		return nil, nil, err
	}
	l := &Log{f: f, dir: dir}
	if p := os.Getenv(CrashPointEnv); p != "" {
		l.crashPoint = p
		l.onTrip = func() { os.Exit(3) }
	}
	return l, reduce(recs), nil
}

// SetCrashPoint arms a fault-injection point ("before:submit",
// "after:terminal", ...). When the log reaches it, the log freezes —
// that append and every later one are silently dropped, leaving exactly
// the bytes a crash at that instant would have left — and onTrip (if
// non-nil) runs once, under the log's lock, so it must not call back
// into the log. Tests pair this with serve.InProc.Kill.
func (l *Log) SetCrashPoint(point string, onTrip func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashPoint = point
	l.onTrip = onTrip
	l.tripped = false
}

// Freeze drops all future appends, simulating process death for abrupt
// InProc.Kill teardown: runner goroutines the harness still reaps write
// nothing more to disk, as if the process had stopped with them.
func (l *Log) Freeze() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frozen = true
}

// Seal fsyncs the compaction file and atomically renames it over
// wal.log. After Seal every append is individually fsync'd before it is
// acknowledged.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed || l.frozen {
		l.sealed = true
		return l.failed
	}
	if err := l.f.Sync(); err != nil {
		return l.fail("seal fsync", err)
	}
	if err := os.Rename(filepath.Join(l.dir, walCompact), filepath.Join(l.dir, walName)); err != nil {
		return l.fail("seal rename", err)
	}
	syncDir(l.dir)
	l.sealed = true
	return nil
}

// Append durably records rec. An error is always typed
// api.CodeUnavailable (fsync failures included) and latches: once an
// append fails the log accepts nothing more, so a caller can trust that
// a nil error means the record is on disk (crash-point freezes excepted,
// which exist precisely to simulate the machine lying about that).
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return api.Errorf(api.CodeUnavailable, "wal: closed")
	}
	if l.failed != nil {
		return l.failed
	}
	st := stage(rec.Kind)
	l.hit("before:" + st)
	if l.frozen {
		return nil
	}
	start := time.Now()
	payload, err := json.Marshal(rec)
	if err != nil {
		return l.fail("encode", err)
	}
	if len(payload) > maxFrame {
		return l.fail("encode", fmt.Errorf("record exceeds %d bytes", maxFrame))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return l.fail("append", err)
	}
	if l.sealed {
		if err := l.f.Sync(); err != nil {
			return l.fail("fsync", err)
		}
	}
	l.appends.Inc()
	l.bytes.Add(float64(len(frame)))
	l.seconds.Observe(time.Since(start).Seconds())
	l.hit("after:" + st)
	return nil
}

// hit trips the crash point if it matches; called with mu held.
func (l *Log) hit(point string) {
	if l.tripped || l.crashPoint == "" || l.crashPoint != point {
		return
	}
	l.tripped = true
	l.frozen = true
	if l.onTrip != nil {
		l.onTrip()
	}
}

// fail latches the log failed with a typed unavailable error; mu held.
func (l *Log) fail(op string, err error) error {
	l.appendErr.Inc()
	l.failed = api.Errorf(api.CodeUnavailable, "wal %s: %v", op, err)
	return l.failed
}

// Close flushes and closes the log file. A frozen log skips the flush —
// it is pretending to be dead — but still releases the descriptor.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.frozen || l.failed != nil {
		_ = l.f.Close() // already failed or sealed; nothing left to lose
		return nil
	}
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close() // the sync error dominates
		return err
	}
	return l.f.Close()
}

// register mounts the WAL metrics on reg.
func (l *Log) register(reg *obs.Registry) {
	l.appends = reg.Counter("sickle_wal_appends_total",
		"WAL records durably appended.").With()
	l.appendErr = reg.Counter("sickle_wal_append_errors_total",
		"WAL appends that failed (write or fsync); each also fails the submission.").With()
	l.bytes = reg.Counter("sickle_wal_appended_bytes_total",
		"Bytes appended to the WAL, framing included.").With()
	l.seconds = reg.Histogram("sickle_wal_append_seconds",
		"Latency of one durable WAL append (encode + write + fsync).",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}).With()
	l.recovered = reg.Counter("sickle_wal_recovered_jobs_total",
		"Jobs recovered from the WAL at startup, by action taken.", "action")
}

// CountRecovered records one recovered job by action ("reenqueued",
// "restored", "dropped"). Nil-safe before register.
func (l *Log) CountRecovered(action string) { l.recovered.With(action).Inc() }

// readWAL replays one log file. A missing file is an empty log. The
// tail is forgiving — a torn frame, bad CRC, or undecodable record ends
// the replay at the last good record, the contract fsync-per-append
// makes safe — but a bad header is a hard error: that file is not ours
// to compact away.
func readWAL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, nil // torn header: crashed before the first record
	}
	if string(hdr[:4]) != walMagic {
		return nil, errors.New("durable: wal.log has unknown magic; refusing to compact it away")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != walVersion {
		return nil, fmt.Errorf("durable: wal.log version %d, want %d", v, walVersion)
	}
	var recs []Record
	fh := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, fh); err != nil {
			return recs, nil
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n == 0 || n > maxFrame {
			return recs, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, nil
		}
		recs = append(recs, rec)
	}
}

// reduce folds raw records into per-job state, in first-submit order.
func reduce(recs []Record) []JobRecord {
	byID := make(map[string]*JobRecord)
	var order []string
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case KindSubmit:
			if _, ok := byID[r.ID]; ok {
				continue
			}
			byID[r.ID] = &JobRecord{
				ID:      r.ID,
				Type:    api.JobType(r.Type),
				Key:     r.Key,
				Payload: r.Payload,
				State:   api.JobPending,
				Created: r.Time,
			}
			order = append(order, r.ID)
		case KindStart:
			if j := byID[r.ID]; j != nil && !j.State.Terminal() {
				j.State = api.JobRunning
				j.Started = r.Time
			}
		case KindTerminal:
			if j := byID[r.ID]; j != nil {
				j.State = api.JobState(r.State)
				j.Err = r.Error
				j.Finished = r.Time
			}
		}
	}
	out := make([]JobRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// syncDir best-effort fsyncs a directory so a rename within it is
// durable; some filesystems reject directory fsync, hence no error.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
