package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/api"
)

// TestMetricsExpositionLint drives real traffic through the handler and
// then checks /metrics line by line: valid exposition, le-bucketed request
// histograms, build info, and every pre-registry series name intact.
func TestMetricsExpositionLint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Touch the surfaces whose series the assertions below expect.
	if _, code, err := doInfer(ts.URL, api.InferRequest{
		Model: "m", Items: []api.InferItem{randomItem(rand.New(rand.NewSource(5)))},
	}); err != nil || code != 200 {
		t.Fatalf("infer: HTTP %d, err %v", code, err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()

	if errs := obs.LintExposition(text); len(errs) != 0 {
		t.Errorf("/metrics fails lint: %v", errs)
	}
	for _, want := range []string{
		`sickle_request_seconds_bucket{route="/v1/infer",le="`,
		`sickle_request_seconds_sum{route="/v1/infer"}`,
		`sickle_request_seconds_count{route="/v1/infer"}`,
		"sickle_build_info{go_version=",
		"sickle_process_start_time_seconds",
		"sickle_go_goroutines",
		"sickle_tensor_pool_workers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, name := range []string{
		"sickle_requests_total", "sickle_request_errors_total",
		"sickle_batch_size", "sickle_inflight_requests",
		"sickle_rejected_requests_total", "sickle_queue_depth",
		"sickle_jobs", "sickle_cache_hits_total", "sickle_cache_misses_total",
		"sickle_cache_evictions_total", "sickle_cache_entries",
	} {
		if !strings.Contains(text, fmt.Sprintf("# TYPE %s ", name)) {
			t.Errorf("/metrics missing family %s", name)
		}
	}
}

// TestServeTraceEndpoints covers the serve tier's /debug/traces surface
// and that a traced job submission yields a job span in the same trace.
func TestServeTraceEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tc := api.TraceContext{TraceID: api.NewTraceID()}
	body, err := json.Marshal(api.InferRequest{
		Model: "m", Items: []api.InferItem{randomItem(rand.New(rand.NewSource(6)))},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v2/infer", bytes.NewReader(body))
	req.Header.Set(api.TraceHeader, tc.HeaderValue())
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body.String())
	}

	deadline := time.Now().Add(2 * time.Second)
	for len(s.Tracer().Spans(tc.TraceID)) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d spans recorded", len(s.Tracer().Spans(tc.TraceID)))
		}
		time.Sleep(time.Millisecond)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+tc.TraceID, nil))
	if rec.Code != 200 {
		t.Fatalf("debug trace: HTTP %d", rec.Code)
	}
	var payload obs.TracePayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range payload.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"server:/v2/infer", "queue:m", "execute:m"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

// TestJobSpanJoinsSubmitterTrace: a job submitted under a trace records a
// job:<type> span in that trace once it finishes.
func TestJobSpanJoinsSubmitterTrace(t *testing.T) {
	jm := NewJobManager(1, 4, time.Minute)
	defer jm.Close()
	tracer := obs.NewTracer("serve", 16)
	jm.SetTracer(tracer)

	tc := api.TraceContext{TraceID: api.NewTraceID(), SpanID: api.NewSpanID()}
	ctx := api.WithTrace(context.Background(), tc)
	job, err := jm.SubmitTraced(ctx, api.JobSubsample,
		func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
			return &api.JobResult{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := jm.Done(job.ID)
	<-done

	spans := tracer.Spans(tc.TraceID)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "job:subsample" || sp.ParentID != tc.SpanID {
		t.Errorf("span = %+v", sp)
	}
	if sp.Attrs["state"] != "succeeded" || sp.Attrs["id"] != job.ID {
		t.Errorf("attrs = %v", sp.Attrs)
	}
}
