package shard

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/events"
	"repro/pkg/api"
	"repro/pkg/client"
)

// Replica is one serve backend fronted by the router: a stable ID (its
// ring identity), the base URL, and a pkg/client transport with SDK-side
// retry disabled — the router's failover loop is the retry policy.
type Replica struct {
	ID  string
	URL string
	C   *client.Client

	mu          sync.Mutex
	up          bool
	draining    bool
	consecFails int
	lastHealth  api.Health
	lastErr     error
}

// Up reports the replica's current liveness (a draining replica is still
// up — it keeps serving sticky reads while it bleeds).
func (r *Replica) Up() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up
}

// Draining reports whether the replica is bleeding sticky jobs before
// leaving the membership. Draining replicas are off both rings (no new
// keyed traffic) but still resolvable for job reads.
func (r *Replica) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Degraded reports whether the replica's last health answer declared it
// degraded (SLO burn-rate rules firing). Degraded replicas stay on the
// ring but are deprioritized in failover order — breaching an SLO means
// "slow or erroring", not "dead", and ejecting it would shift its whole
// load onto the remaining replicas mid-incident.
func (r *Replica) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up && r.lastHealth.Status == "degraded"
}

// ReplicaStatus is one replica's state snapshot (healthz, tests).
type ReplicaStatus struct {
	ID          string
	URL         string
	Up          bool
	Draining    bool
	ConsecFails int
	LastErr     error
	Health      api.Health // last successful /healthz body
}

// SetConfig sizes a ReplicaSet. Zero values select the documented
// defaults.
type SetConfig struct {
	URLs       []string      // backend base URLs (required; more can join later)
	VNodes     int           // virtual nodes per replica (default DefaultVNodes)
	ProbeEvery time.Duration // health-probe period (default 1s)
	FailAfter  int           // consecutive failures before ejection (default 2)
	HTTPClient *http.Client  // optional transport override (tests)

	// Journal receives ejection/re-admission events; nil discards them.
	Journal *events.Journal
}

// ReplicaSet owns the router's replica list, the consistent-hash ring over
// the live subset, and the health prober that ejects unreachable backends
// and re-admits them when /healthz answers again. Membership is dynamic:
// AddReplica/Admit bring a newcomer in (off-ring until admitted, so a cold
// cache never takes traffic), SetDraining takes one off both rings while
// its sticky jobs bleed, and RemoveReplica retires it — into the former
// map, so job IDs minted while it was a member keep resolving for reads.
type ReplicaSet struct {
	mu       sync.RWMutex // guards membership (replicas/byID/former/nextID) and both rings
	replicas []*Replica
	byID     map[string]*Replica
	former   map[string]*Replica // removed members, kept resolvable for sticky reads
	nextID   int                 // monotonic — IDs are never reused, or old sticky IDs would misroute
	ring     *Ring
	fullRing *Ring // every admitted member regardless of health — the last-resort order when everything is ejected

	probeEvery   time.Duration
	probeTimeout time.Duration
	failAfter    int
	httpClient   *http.Client // optional shared transport for late joiners (tests)
	met          *Metrics
	journal      *events.Journal

	// onEject runs (outside locks) whenever a replica leaves the ring for
	// health reasons; the router hooks it to evict the replica's entries
	// from the sticky-routing cache.
	onEject func(id string)

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewReplicaSet builds the set with every seed replica initially admitted;
// the first probe round corrects optimism about backends that are already
// down. Seed replica IDs are r0, r1, ... in URL order; later joiners
// continue the sequence and never reuse a retired ID.
func NewReplicaSet(cfg SetConfig, met *Metrics) (*ReplicaSet, error) {
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("shard: replica set needs at least one backend URL")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	probeTimeout := cfg.ProbeEvery
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	rs := &ReplicaSet{
		byID:         map[string]*Replica{},
		former:       map[string]*Replica{},
		ring:         NewRing(cfg.VNodes),
		fullRing:     NewRing(cfg.VNodes),
		probeEvery:   cfg.ProbeEvery,
		probeTimeout: probeTimeout,
		failAfter:    cfg.FailAfter,
		httpClient:   cfg.HTTPClient,
		met:          met,
		journal:      cfg.Journal,
		stop:         make(chan struct{}),
	}
	for i, url := range cfg.URLs {
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		if url == "" {
			return nil, fmt.Errorf("shard: empty replica URL at position %d", i)
		}
		r := rs.newReplica(fmt.Sprintf("r%d", i), url)
		r.up = true
		rs.replicas = append(rs.replicas, r)
		rs.byID[r.ID] = r
		rs.ring.Add(r.ID)
		rs.fullRing.Add(r.ID)
		met.SetUp(r.ID, true)
	}
	rs.nextID = len(cfg.URLs)
	return rs, nil
}

// newReplica builds the replica value and its transport. Each replica gets
// its own transport (unless the caller injects one): sharing
// http.DefaultTransport's global keep-alive pool would let a stale pooled
// connection to a died-and-respawned backend — or another process that
// reused its port — poison calls, and per-backend pools keep one slow
// replica from starving the others' idle-connection budget.
func (rs *ReplicaSet) newReplica(id, url string) *Replica {
	hc := rs.httpClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return &Replica{
		ID:  id,
		URL: url,
		C:   client.New(url, client.WithRetry(0, 0), client.WithHTTPClient(hc)),
	}
}

// OnEject installs the ejection hook (must be set before Start).
func (rs *ReplicaSet) OnEject(fn func(id string)) { rs.onEject = fn }

// Start launches the background health prober (probe immediately, then
// every ProbeEvery).
func (rs *ReplicaSet) Start() {
	rs.wg.Add(1)
	go func() {
		defer rs.wg.Done()
		rs.ProbeAll()
		t := time.NewTicker(rs.probeEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rs.ProbeAll()
			case <-rs.stop:
				return
			}
		}
	}()
}

// Stop halts the prober. Safe to call more than once.
func (rs *ReplicaSet) Stop() {
	rs.stopOnce.Do(func() { close(rs.stop) })
	rs.wg.Wait()
}

// ProbeAll probes every member's /healthz concurrently and applies the
// ejection/re-admission rules. Called by the prober loop; exported so
// tests can force a deterministic round.
func (rs *ReplicaSet) ProbeAll() {
	var wg sync.WaitGroup
	for _, r := range rs.Replicas() {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			// Probes are owned by the prober loop, not a request; the
			// timeout is their only deadline.
			//sicklevet:ignore ctxfirst background health probe, bounded by probeTimeout
			ctx, cancel := context.WithTimeout(context.Background(), rs.probeTimeout)
			defer cancel()
			h, err := r.C.Health(ctx)
			if err != nil {
				rs.NoteFailure(r, err)
				return
			}
			rs.noteUp(r, h)
		}(r)
	}
	wg.Wait()
}

// NoteOK records a successful routed call: the replica is demonstrably
// alive, so its failure streak resets and, if it had been ejected, it
// rejoins the ring without waiting for the next probe.
func (rs *ReplicaSet) NoteOK(r *Replica) { rs.noteUp(r, nil) }

// noteUp and NoteFailure hold rs.mu around both the up-flag decision and
// the ring mutation (with r.mu nested for the replica fields): deciding
// under one lock and mutating the ring under another would let a racing
// success/failure pair strand a healthy replica off the ring (or a dead
// one on it) permanently. Lock order is always rs.mu → r.mu.
func (rs *ReplicaSet) noteUp(r *Replica, h *api.Health) {
	rs.mu.Lock()
	r.mu.Lock()
	wasUp := r.up
	r.up = true
	r.consecFails = 0
	r.lastErr = nil
	if h != nil {
		r.lastHealth = *h
	}
	// Only current, non-draining members may (re)join the ring: a probe or
	// sticky read succeeding against a draining or already-removed replica
	// must not put it back in the keyed-traffic rotation.
	member := rs.byID[r.ID] == r && !r.draining
	r.mu.Unlock()
	if !wasUp && member {
		rs.ring.Add(r.ID)
	}
	rs.mu.Unlock()
	if !wasUp && member {
		rs.met.ObserveReadmission()
		rs.met.SetUp(r.ID, true)
		rs.journal.Emit(events.TypeReadmission, "replica re-admitted to the ring", "",
			"replica", r.ID, "url", r.URL)
	}
}

// NoteFailure records a failed probe or routed call; failAfter consecutive
// failures eject the replica from the ring until a probe (or routed call)
// succeeds again.
func (rs *ReplicaSet) NoteFailure(r *Replica, err error) {
	rs.mu.Lock()
	r.mu.Lock()
	r.consecFails++
	r.lastErr = err
	eject := r.up && r.consecFails >= rs.failAfter
	if eject {
		r.up = false
	}
	r.mu.Unlock()
	if eject {
		rs.ring.Remove(r.ID)
	}
	rs.mu.Unlock()
	if eject {
		rs.met.ObserveEjection()
		rs.met.SetUp(r.ID, false)
		if rs.onEject != nil {
			rs.onEject(r.ID)
		}
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		rs.journal.Emit(events.TypeEjection, "replica ejected from the ring", "",
			"replica", r.ID, "url", r.URL, "error", msg)
	}
}

// ---- dynamic membership ----

// AddReplica creates a pending member for url: in the membership list (so
// the prober and healthz see it) but off both rings and marked down, so it
// takes no traffic until Admit. Fails on a URL already fronted by a
// current member.
func (rs *ReplicaSet) AddReplica(url string) (*Replica, error) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return nil, fmt.Errorf("shard: empty replica URL")
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, r := range rs.replicas {
		if r.URL == url {
			return nil, fmt.Errorf("shard: replica %s already fronts %s", r.ID, url)
		}
	}
	r := rs.newReplica(fmt.Sprintf("r%d", rs.nextID), url)
	rs.nextID++
	rs.replicas = append(rs.replicas, r)
	rs.byID[r.ID] = r
	rs.met.SetUp(r.ID, false)
	return r, nil
}

// Admit puts a pending replica on both rings and marks it up — call only
// after it has passed a health check and been warm-prefetched. A replica
// that was removed or set draining in the meantime is left alone.
func (rs *ReplicaSet) Admit(r *Replica) bool {
	rs.mu.Lock()
	r.mu.Lock()
	ok := rs.byID[r.ID] == r && !r.draining
	if ok {
		r.up = true
		r.consecFails = 0
		r.lastErr = nil
	}
	r.mu.Unlock()
	if ok {
		rs.ring.Add(r.ID)
		rs.fullRing.Add(r.ID)
	}
	rs.mu.Unlock()
	if ok {
		rs.met.SetUp(r.ID, true)
	}
	return ok
}

// SetDraining takes a member off both rings (no new keyed traffic, not
// even as a last resort) while keeping it in the membership, up, and
// resolvable — sticky job reads and the bleed-out keep working.
func (rs *ReplicaSet) SetDraining(id string) (*Replica, bool) {
	rs.mu.Lock()
	r, ok := rs.byID[id]
	if ok {
		r.mu.Lock()
		r.draining = true
		r.mu.Unlock()
		rs.ring.Remove(id)
		rs.fullRing.Remove(id)
	}
	rs.mu.Unlock()
	return r, ok
}

// RemoveReplica retires a member: off both rings, out of the membership
// list, into the former map — where job IDs minted while it was a member
// keep resolving, so clients can still fetch results of jobs that lived
// on it. The backend process is left running.
func (rs *ReplicaSet) RemoveReplica(id string) (*Replica, bool) {
	rs.mu.Lock()
	r, ok := rs.byID[id]
	if ok {
		delete(rs.byID, id)
		for i, cur := range rs.replicas {
			if cur == r {
				rs.replicas = append(rs.replicas[:i], rs.replicas[i+1:]...)
				break
			}
		}
		rs.former[id] = r
		rs.ring.Remove(id)
		rs.fullRing.Remove(id)
	}
	rs.mu.Unlock()
	if ok {
		rs.met.SetUp(id, false)
	}
	return r, ok
}

// Replicas returns a snapshot of the current membership in join order.
func (rs *ReplicaSet) Replicas() []*Replica {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return append([]*Replica(nil), rs.replicas...)
}

// Live returns the members currently up, in join order (draining members
// included — they are alive, just off the rings).
func (rs *ReplicaSet) Live() []*Replica {
	out := make([]*Replica, 0, 4)
	for _, r := range rs.Replicas() {
		if r.Up() {
			out = append(out, r)
		}
	}
	return out
}

// Get resolves a replica by ID — current members first, then retired ones
// (whose sticky job IDs must keep resolving for reads).
func (rs *ReplicaSet) Get(id string) (*Replica, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	if r, ok := rs.byID[id]; ok {
		return r, true
	}
	r, ok := rs.former[id]
	return r, ok
}

// RingMembers reports how many replicas are on the live ring.
func (rs *ReplicaSet) RingMembers() int {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.ring.Len()
}

// Owner returns the live replica owning key.
func (rs *ReplicaSet) Owner(key string) (*Replica, bool) {
	seq := rs.Sequence(key, 1)
	if len(seq) == 0 {
		return nil, false
	}
	return seq[0], true
}

// Sequence returns up to n distinct replicas in consistent-hash order for
// key: the owner first, then the failover candidates. When every replica
// has been ejected it falls back to the full admitted set in hash order —
// a last-resort attempt beats refusing outright, and one success
// re-admits. Replicas reporting themselves degraded (SLO breach) are
// stably moved behind the healthy candidates: still reachable, tried last.
func (rs *ReplicaSet) Sequence(key string, n int) []*Replica {
	rs.mu.RLock()
	ids := rs.ring.Sequence(key, n)
	if len(ids) == 0 {
		ids = rs.fullRing.Sequence(key, n)
	}
	reps := make([]*Replica, 0, len(ids))
	for _, id := range ids {
		if r, ok := rs.byID[id]; ok {
			reps = append(reps, r)
		}
	}
	rs.mu.RUnlock()
	out := make([]*Replica, 0, len(reps))
	var degraded []*Replica
	for _, r := range reps {
		if r.Degraded() {
			degraded = append(degraded, r)
		} else {
			out = append(out, r)
		}
	}
	return append(out, degraded...)
}

// Snapshot returns every current member's state, in join order.
func (rs *ReplicaSet) Snapshot() []ReplicaStatus {
	reps := rs.Replicas()
	out := make([]ReplicaStatus, 0, len(reps))
	for _, r := range reps {
		r.mu.Lock()
		out = append(out, ReplicaStatus{
			ID: r.ID, URL: r.URL, Up: r.up, Draining: r.draining,
			ConsecFails: r.consecFails, LastErr: r.lastErr, Health: r.lastHealth,
		})
		r.mu.Unlock()
	}
	return out
}
