package client

import (
	"context"
	"net/http"

	"repro/pkg/api"
)

// The /admin/replicas surface exists only on a sickle-shard router; a
// plain sickle-serve backend answers these paths with a typed not_found.
// The endpoints are unversioned — membership is an operator surface, not
// part of the /v2 wire contract clients negotiate.

// AdminReplicas fetches the router's current ring membership and
// replication factor (GET /admin/replicas).
func (c *Client) AdminReplicas(ctx context.Context) (*api.AdminReplicas, error) {
	var out api.AdminReplicas
	if err := c.do(ctx, http.MethodGet, "/admin/replicas", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminJoinReplica adds a running sickle-serve backend to the router's
// ring (POST /admin/replicas). The router health-checks the URL and
// warm-prefetches the fleet's model catalog onto it before admitting it;
// the response lists which models made it over.
func (c *Client) AdminJoinReplica(ctx context.Context, url string) (*api.JoinReplicaResponse, error) {
	var out api.JoinReplicaResponse
	if err := c.do(ctx, http.MethodPost, "/admin/replicas", &api.JoinReplicaRequest{URL: url}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminDrainReplica drains and removes one replica from the router's
// ring (DELETE /admin/replicas/{id}): the replica stops receiving new
// keyed traffic immediately, the call blocks until its sticky jobs reach
// terminal states (bounded by ctx), and the replica then leaves the
// membership. force skips the bleed and removes immediately. The backend
// process itself is left running — it is not the router's to stop.
func (c *Client) AdminDrainReplica(ctx context.Context, id string, force bool) (*api.DrainReplicaResponse, error) {
	p := "/admin/replicas/" + id
	if force {
		p += "?force=true"
	}
	var out api.DrainReplicaResponse
	if err := c.do(ctx, http.MethodDelete, p, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
