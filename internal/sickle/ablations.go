package sickle

import (
	"context"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/minimpi"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// AblationRow is one point of a design-choice sweep.
type AblationRow struct {
	Param     string
	Value     float64
	TailCover float64
	KLtoFull  float64
}

// AblateClusterCount sweeps MaxEnt's cluster count (the paper's
// num_clusters, 5-20 across configs) on the SST-P1F4 KCV and reports tail
// coverage: too few clusters cannot isolate the tails, too many fragment
// them.
func AblateClusterCount(scale Scale, counts []int) ([]AblationRow, error) {
	if len(counts) == 0 {
		counts = []int{2, 5, 10, 20, 40}
	}
	d, err := BuildDataset("SST-P1F4", scale)
	if err != nil {
		return nil, err
	}
	full, data := kcvView(d)
	n := len(full) / 10
	var out []AblationRow
	for _, k := range counts {
		idx := sampling.MaxEnt{NumClusters: k}.SelectPoints(data, n, rand.New(rand.NewSource(1)))
		out = append(out, AblationRow{
			Param: "num_clusters", Value: float64(k),
			TailCover: tailOf(full, idx), KLtoFull: klOf(full, idx),
		})
	}
	return out, nil
}

// AblateUIPSBins sweeps the UIPS histogram resolution: with too few bins
// the PDF estimate is too coarse to flatten; with too many, cells become
// singletons and the weights saturate (the paper's Fig. 4 failure mode).
func AblateUIPSBins(scale Scale, bins []int) ([]AblationRow, error) {
	if len(bins) == 0 {
		bins = []int{4, 10, 20, 50, 100}
	}
	d, err := BuildDataset("SST-P1F4", scale)
	if err != nil {
		return nil, err
	}
	full, data := kcvView(d)
	n := len(full) / 10
	var out []AblationRow
	for _, b := range bins {
		idx := sampling.UIPS{Bins: b}.SelectPoints(data, n, rand.New(rand.NewSource(2)))
		out = append(out, AblationRow{
			Param: "uips_bins", Value: float64(b),
			TailCover: tailOf(full, idx), KLtoFull: klOf(full, idx),
		})
	}
	return out, nil
}

// AblateCubeSize sweeps the hypercube edge (the paper fixed 32³ as the
// largest tractable for the quadratic attention): smaller cubes mean more,
// cheaper units of parallel work but less spatial context per sample.
// Reported value is the number of cubes the domain tiles into.
func AblateCubeSize(scale Scale, edges []int) ([]AblationRow, error) {
	if len(edges) == 0 {
		edges = []int{4, 8, 16, 32}
	}
	d, err := BuildDataset("SST-P1F4", scale)
	if err != nil {
		return nil, err
	}
	f := d.Snapshots[0]
	var out []AblationRow
	for _, e := range edges {
		if e > f.Nz {
			continue
		}
		cubes := grid.Tile(f, e, e, e)
		out = append(out, AblationRow{
			Param: "cube_edge", Value: float64(e),
			TailCover: float64(len(cubes)), // work units, not a tail metric
		})
	}
	return out, nil
}

// AblateCommLatency sweeps the interconnect latency in the Fig. 7 model
// and reports the knee rank of the large dataset: slower networks move the
// knee to fewer ranks.
func AblateCommLatency(ctx context.Context, scale Scale, latencies []float64) ([]AblationRow, error) {
	if len(latencies) == 0 {
		latencies = []float64{2e-6, 20e-6, 200e-6}
	}
	var out []AblationRow
	for _, lat := range latencies {
		rows, err := Fig7(ctx, scale, 512, minimpi.CostModel{Latency: lat, Bandwidth: 10e9})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Param: "latency_s", Value: lat,
			TailCover: float64(KneeRanks(rows, "SST-P1F100", 0.5)),
		})
	}
	return out, nil
}

// TemporalSelectionSummary applies §4.3 temporal sampling to the periodic
// OF2D trajectory and returns (kept, total): periodic shedding phases are
// heavily deduplicated.
func TemporalSelectionSummary(scale Scale, threshold float64) (kept, total int, err error) {
	d, err := BuildDataset("OF2D", scale)
	if err != nil {
		return 0, 0, err
	}
	sel := sampling.SelectSnapshots(d, sampling.TemporalConfig{Var: "wz", Threshold: threshold})
	return len(sel), d.NTime(), nil
}

func kcvView(d *grid.Dataset) ([]float64, *sampling.Data) {
	f := d.Snapshots[d.NTime()-1]
	full := append([]float64(nil), f.Var(d.ClusterVar)...)
	return full, &sampling.Data{Features: oneColumn(full), ClusterVar: full}
}

func tailOf(full []float64, idx []int) float64 {
	vals := make([]float64, len(idx))
	for r, i := range idx {
		vals[r] = full[i]
	}
	return stats.TailCoverage(full, vals, 0.02)
}

func klOf(full []float64, idx []int) float64 {
	lo, hi := minMax(full)
	fh := stats.NewHistogram(lo, hi+1e-12, 100)
	fh.AddAll(full)
	sh := stats.NewHistogram(lo, hi+1e-12, 100)
	for _, i := range idx {
		sh.Add(full[i])
	}
	return stats.KLDivergence(fh.PDF(), sh.PDF())
}
