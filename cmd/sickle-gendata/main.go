// sickle-gendata generates any of the Table 1 synthetic dataset analogues
// and reports its summary row, optionally rendering a field slice for
// inspection.
//
// Usage:
//
//	sickle-gendata -dataset GESTS-2048 -scale small -pgm enstrophy.pgm -var enstrophy
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sickle"
	"repro/internal/viz"
)

func main() {
	dataset := flag.String("dataset", "OF2D", "dataset name")
	scaleStr := flag.String("scale", "small", "small or large")
	pgm := flag.String("pgm", "", "write a PGM slice of -var to this path")
	varName := flag.String("var", "", "variable to render (defaults to the cluster variable)")
	ascii := flag.Bool("ascii", false, "print an ASCII rendering")
	flag.Parse()

	scale := sickle.Small
	if *scaleStr == "large" {
		scale = sickle.Large
	}
	d, err := sickle.BuildDataset(*dataset, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s grid=%s snapshots=%d size=%.1f MB\n",
		d.Label, d.GridString(), d.NTime(), float64(d.SizeBytes())/1e6)
	fmt.Printf("inputs=%v outputs=%v kcv=%s\n", d.InputVars, d.OutputVars, d.ClusterVar)

	v := *varName
	if v == "" {
		v = d.ClusterVar
	}
	f := d.Snapshots[d.NTime()-1]
	if *pgm != "" {
		if err := viz.WritePGM(*pgm, viz.FieldToPGM(f, v, f.Nz/2)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%s, z=%d)\n", *pgm, v, f.Nz/2)
	}
	if *ascii {
		fmt.Print(viz.FieldToASCII(f, v, f.Nz/2, 100))
	}
}
