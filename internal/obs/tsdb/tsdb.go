// Package tsdb gives the observability stack a memory: a fixed-size ring
// time-series store that samples an obs.Registry on an interval, so the
// point-in-time /metrics scrape becomes a queryable history. Counters are
// stored as per-interval deltas (counter resets — a restarted process —
// are detected and absorbed), gauges as raw values, histograms as
// per-interval bucket snapshots with their trace-ID exemplars. The store
// is the substrate the SLO burn-rate engine (internal/obs/slo) evaluates
// over, and GET /debug/history serves it as JSON; the shard router
// scatter-gathers every replica's history into one fleet-wide view.
package tsdb

import (
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults when the caller passes zero values.
const (
	DefaultInterval = time.Second
	DefaultCapacity = 600 // points per series (10 min at 1s)
	maxSeries       = 2048
)

// Store samples a registry into bounded per-series rings. All methods are
// safe for concurrent use; a nil *Store no-ops its handlers and queries.
type Store struct {
	reg      *obs.Registry
	tier     string
	interval time.Duration
	capacity int

	mu     sync.RWMutex
	series map[string]*series
	order  []string

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	now func() time.Time // injectable clock (tests)
}

// series is one metric stream's ring. Points are appended at next; when
// the ring is full the oldest point is overwritten.
type series struct {
	name    string
	labels  map[string]string
	kind    string
	buckets []float64 // histogram upper bounds, +Inf excluded

	// last raw cumulative values, for delta computation across samples.
	primed      bool
	prevValue   float64
	prevBuckets []uint64
	prevCount   uint64
	prevSum     float64

	pts  []point
	next int
	full bool

	exemplars []string // latest bucket exemplars (histogram), +Inf last
}

// point is one sampled interval: a gauge's raw value, a counter's delta,
// or a histogram's per-bucket delta snapshot.
type point struct {
	t time.Time
	v float64 // gauge value / counter delta

	bucketDeltas []uint64 // histogram only, +Inf last
	countDelta   uint64
	sumDelta     float64
}

// NewStore builds a store sampling reg every interval, keeping capacity
// points per series. Zero values select the defaults. The tier label is
// echoed in the /debug/history payload.
func NewStore(tier string, reg *obs.Registry, interval time.Duration, capacity int) *Store {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		reg: reg, tier: tier, interval: interval, capacity: capacity,
		series: map[string]*series{},
		stop:   make(chan struct{}),
		now:    time.Now,
	}
}

// SetNowFunc injects the store's clock. Tests script sample timestamps
// and window cutoffs with it; production code never calls this.
func (s *Store) SetNowFunc(f func() time.Time) {
	if s == nil || f == nil {
		return
	}
	s.mu.Lock()
	s.now = f
	s.mu.Unlock()
}

// Interval returns the sampling period.
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Start launches the background sampler (one pass immediately, then every
// interval). Safe on nil.
func (s *Store) Start() {
	if s == nil {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.SampleNow()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleNow()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the sampler. Safe to call more than once, and on nil.
func (s *Store) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// SampleNow runs one sampling pass over the registry. Exported so tests
// (and -once tooling) can drive deterministic histories.
func (s *Store) SampleNow() {
	if s == nil {
		return
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.now()
	for i := range snap {
		s.ingestLocked(&snap[i], t)
	}
}

func seriesKey(sm *obs.Sample) string {
	if len(sm.LabelValues) == 0 {
		return sm.Name
	}
	return sm.Name + "\x00" + strings.Join(sm.LabelValues, "\x00")
}

func (s *Store) ingestLocked(sm *obs.Sample, t time.Time) {
	key := seriesKey(sm)
	sr, ok := s.series[key]
	if !ok {
		if len(s.series) >= maxSeries {
			return // bounded: new series beyond the cap are not tracked
		}
		labels := map[string]string{}
		for i, n := range sm.LabelNames {
			if i < len(sm.LabelValues) {
				labels[n] = sm.LabelValues[i]
			}
		}
		sr = &series{
			name: sm.Name, labels: labels, kind: sm.Kind, buckets: sm.Buckets,
			pts: make([]point, 0, s.capacity),
		}
		s.series[key] = sr
		s.order = append(s.order, key)
	}

	var p point
	p.t = t
	switch sm.Kind {
	case "gauge":
		p.v = sm.Value
	case "counter":
		p.v = counterDelta(sr.prevValue, sm.Value, sr.primed)
		sr.prevValue = sm.Value
	case "histogram":
		p.bucketDeltas = make([]uint64, len(sm.BucketCounts))
		reset := sr.primed && sm.Count < sr.prevCount
		for i, c := range sm.BucketCounts {
			prev := uint64(0)
			if sr.primed && !reset && i < len(sr.prevBuckets) {
				prev = sr.prevBuckets[i]
			}
			if c >= prev {
				p.bucketDeltas[i] = c - prev
			} else {
				p.bucketDeltas[i] = c
			}
		}
		if sr.primed && !reset {
			p.countDelta = sm.Count - sr.prevCount
			p.sumDelta = sm.Sum - sr.prevSum
		} else {
			p.countDelta = sm.Count
			p.sumDelta = sm.Sum
		}
		sr.prevBuckets = append(sr.prevBuckets[:0], sm.BucketCounts...)
		sr.prevCount = sm.Count
		sr.prevSum = sm.Sum
		sr.exemplars = sm.Exemplars
	}
	sr.primed = true

	if !sr.full && len(sr.pts) < cap(sr.pts) {
		sr.pts = append(sr.pts, p)
		if len(sr.pts) == cap(sr.pts) {
			sr.full = true
		}
	} else {
		sr.pts[sr.next] = p
		sr.full = true
	}
	sr.next = (sr.next + 1) % cap(sr.pts)
}

// counterDelta absorbs resets: a cumulative value that went backwards
// means the process restarted, so the new value IS the increase since.
func counterDelta(prev, cur float64, primed bool) float64 {
	if !primed || cur < prev {
		return cur
	}
	return cur - prev
}

// snapshotPoints copies a series' live points, oldest first.
func (sr *series) snapshotPoints() []point {
	if !sr.full {
		return append([]point(nil), sr.pts...)
	}
	out := make([]point, 0, cap(sr.pts))
	out = append(out, sr.pts[sr.next:]...)
	out = append(out, sr.pts[:sr.next]...)
	return out
}

// matchName reports whether a family name matches a glob pattern: "*"
// matches everything, a trailing "*" matches the prefix, otherwise exact.
func matchName(pattern, name string) bool {
	if pattern == "*" || pattern == "" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == name
}

// matchLabels reports whether a series' labels satisfy a match map; a "*"
// (or missing) value matches any.
func matchLabels(match, labels map[string]string) bool {
	for k, want := range match {
		if want == "*" || want == "" {
			continue
		}
		if labels[k] != want {
			return false
		}
	}
	return true
}

// ---- aggregation (the SLO engine's substrate) ----

// SumCounter sums counter deltas over the trailing window across every
// series of the family matching the label constraints.
func (s *Store) SumCounter(name string, match map[string]string, window time.Duration) float64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cutoff := s.now().Add(-window)
	total := 0.0
	for _, sr := range s.series {
		if sr.name != name || sr.kind != "counter" || !matchLabels(match, sr.labels) {
			continue
		}
		for _, p := range sr.snapshotPoints() {
			if !p.t.Before(cutoff) {
				total += p.v
			}
		}
	}
	return total
}

// HistWindow sums histogram bucket deltas over the trailing window across
// matching series. Returns the bucket bounds (+Inf excluded; nil when no
// series matched), summed per-bucket counts (+Inf last), and the summed
// count and sum.
func (s *Store) HistWindow(name string, match map[string]string, window time.Duration) (buckets []float64, counts []uint64, count uint64, sum float64) {
	if s == nil {
		return nil, nil, 0, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cutoff := s.now().Add(-window)
	for _, sr := range s.series {
		if sr.name != name || sr.kind != "histogram" || !matchLabels(match, sr.labels) {
			continue
		}
		if buckets == nil {
			buckets = sr.buckets
			counts = make([]uint64, len(sr.buckets)+1)
		}
		for _, p := range sr.snapshotPoints() {
			if p.t.Before(cutoff) {
				continue
			}
			for i, d := range p.bucketDeltas {
				if i < len(counts) {
					counts[i] += d
				}
			}
			count += p.countDelta
			sum += p.sumDelta
		}
	}
	return buckets, counts, count, sum
}

// GaugeAbove counts sampled points above the threshold (and the total
// sampled points) over the trailing window across matching gauge series.
func (s *Store) GaugeAbove(name string, match map[string]string, window time.Duration, threshold float64) (above, total int) {
	if s == nil {
		return 0, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cutoff := s.now().Add(-window)
	for _, sr := range s.series {
		if sr.name != name || sr.kind != "gauge" || !matchLabels(match, sr.labels) {
			continue
		}
		for _, p := range sr.snapshotPoints() {
			if p.t.Before(cutoff) {
				continue
			}
			total++
			if p.v > threshold {
				above++
			}
		}
	}
	return above, total
}
