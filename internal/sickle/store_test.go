package sickle

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sampling"
)

func TestSaveLoadCubeSamplesRoundTrip(t *testing.T) {
	d, err := BuildDataset("SST-P1F4", Small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampling.PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 2, NumSamples: 50,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, NumClusters: 4, Seed: 1,
	}
	cubes, err := sampling.SubsampleDataset(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub.skl")
	if err := SaveCubeSamples(path, cubes); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCubeSamples(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cubes) {
		t.Fatalf("round trip %d cubes, want %d", len(got), len(cubes))
	}
	for i := range got {
		a, b := got[i], cubes[i]
		if a.Snapshot != b.Snapshot || a.Cube != b.Cube {
			t.Fatalf("cube %d header mismatch", i)
		}
		for r := range a.LocalIdx {
			if a.LocalIdx[r] != b.LocalIdx[r] {
				t.Fatal("local index mismatch")
			}
			for v := range a.Features[r] {
				if a.Features[r][v] != b.Features[r][v] {
					t.Fatal("feature value mismatch")
				}
			}
			for v := range a.Targets[r] {
				if a.Targets[r][v] != b.Targets[r][v] {
					t.Fatal("target value mismatch")
				}
			}
		}
	}
	// Storage reduction must be substantial (10% points, few cubes).
	ratio, err := StorageReduction(d, path)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 10 {
		t.Fatalf("storage reduction %vx, want >= 10x", ratio)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.skl")
	if err := os.WriteFile(path, []byte("not a subsample"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCubeSamples(path); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := LoadCubeSamples(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
