// Package events is the operational flight recorder shared by the sickle
// tiers: a bounded in-memory ring of structured events (replica ejection
// and re-admission, routing failover, checkpoint hot-swap, job panics,
// backpressure stalls, SLO breaches) with trace-ID cross-links into
// /debug/traces. The ring is fixed-memory — when full, the oldest events
// are overwritten and a dropped counter (sickle_obs_events_dropped_total)
// makes the eviction visible. GET /debug/events serves the tail as JSON;
// the shard router scatter-gathers every replica's journal into one
// fleet-wide view.
package events

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Type classifies an event. The set is open — tiers may emit their own —
// but these names are the vocabulary the console and tests key on.
type Type string

const (
	TypeFailover    Type = "failover"    // request retried on a non-primary ring node
	TypeEjection    Type = "ejection"    // replica removed from the ring
	TypeReadmission Type = "readmission" // replica re-admitted to the ring
	TypeHotSwap     Type = "hotswap"     // model checkpoint hot-swapped under a live name
	TypeJobPanic    Type = "job_panic"   // a job runner panicked (recovered, typed internal)
	TypeStall       Type = "stall"       // producer stalled on backpressure
	TypeSLOBreach   Type = "slo_breach"  // an objective's burn rate crossed its threshold
	TypeSLORecover  Type = "slo_recover" // a breached objective returned under threshold
	TypeDegraded    Type = "degraded"    // tier health flipped to degraded
	TypeRecovered   Type = "recovered"   // tier health returned to ok
	TypeRecovery    Type = "recovery"    // a job was recovered from the WAL at startup
	TypeDedupHit    Type = "dedup_hit"   // a duplicate submission was served from prior work

	TypeReplicaJoin  Type = "replica_join"  // a replica joined the ring via the admin API
	TypeReplicaDrain Type = "replica_drain" // a replica began bleeding sticky jobs before removal
	TypeReplicaLeave Type = "replica_leave" // a replica was removed from the membership
	TypeRebalance    Type = "rebalance"     // ring membership changed and keyspace ownership moved
)

// Event is one journal entry. Attrs carry event-specific detail (replica
// ID, model name, burn rates); TraceID, when set, links to the
// /debug/traces/{id} view of the request that triggered the event.
type Event struct {
	Seq     uint64            `json:"seq"`
	Time    time.Time         `json:"time"`
	Tier    string            `json:"tier"`
	Type    Type              `json:"type"`
	Msg     string            `json:"msg"`
	TraceID string            `json:"trace_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Journal records events into a bounded ring; when full, the oldest are
// overwritten (counted, never silent). A nil *Journal is a valid no-op
// recorder so instrumentation never branches. Safe for concurrent use.
type Journal struct {
	tier string

	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64

	now func() time.Time // injectable clock (tests)
}

// DefaultCapacity bounds the ring when the caller does not.
const DefaultCapacity = 1024

// NewJournal builds a journal whose events carry the given tier label.
// capacity <= 0 selects DefaultCapacity.
func NewJournal(tier string, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{tier: tier, buf: make([]Event, 0, capacity), now: time.Now}
}

// Emit records one event. kv pairs become Attrs (odd tails are dropped).
func (j *Journal) Emit(typ Type, msg, traceID string, kv ...string) {
	if j == nil {
		return
	}
	var attrs map[string]string
	if len(kv) >= 2 {
		attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attrs[kv[i]] = kv[i+1]
		}
	}
	e := Event{Time: j.now(), Tier: j.tier, Type: typ, Msg: msg,
		TraceID: traceID, Attrs: attrs}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if !j.full && len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
		if len(j.buf) == cap(j.buf) {
			j.full = true
		}
	} else {
		j.buf[j.next] = e
		j.full = true
		j.dropped++
	}
	j.next = (j.next + 1) % cap(j.buf)
	j.mu.Unlock()
}

// Dropped reports how many events ring eviction has overwritten (0 on nil).
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns up to limit most recent events (all when limit <= 0),
// oldest first, optionally filtered by type and a since cutoff.
func (j *Journal) Events(limit int, typ Type, since time.Time) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	var snap []Event
	if !j.full {
		snap = append(snap, j.buf...)
	} else {
		snap = append(snap, j.buf[j.next:]...)
		snap = append(snap, j.buf[:j.next]...)
	}
	j.mu.Unlock()
	out := snap[:0]
	for _, e := range snap {
		if typ != "" && e.Type != typ {
			continue
		}
		if !since.IsZero() && e.Time.Before(since) {
			continue
		}
		out = append(out, e)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return append([]Event(nil), out...)
}

// Register mounts the eviction counter on reg as
// sickle_obs_events_dropped_total. Nil-safe.
func (j *Journal) Register(reg *obs.Registry) {
	reg.CounterFunc("sickle_obs_events_dropped_total",
		"Events overwritten by journal-ring eviction before they could be read.",
		func() float64 { return float64(j.Dropped()) })
}

// Payload is the /debug/events response body. The shard router returns
// the same shape with every replica's events merged in (each event keeps
// its own tier, and gains a "replica" attr naming its origin).
type Payload struct {
	Tier    string  `json:"tier"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// HandleEvents serves the journal tail (GET /debug/events). Query params:
// limit (default 256), type (exact event type), since (RFC3339 or a Go
// duration like "5m" meaning that long ago).
func (j *Journal) HandleEvents(w http.ResponseWriter, r *http.Request) {
	limit := 256
	if s := r.URL.Query().Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit = n
		}
	}
	typ := Type(r.URL.Query().Get("type"))
	since, _ := ParseSince(r.URL.Query().Get("since"), time.Now())
	tier := ""
	if j != nil {
		tier = j.tier
	}
	payload := Payload{Tier: tier, Dropped: j.Dropped(),
		Events: j.Events(limit, typ, since)}
	if payload.Events == nil {
		payload.Events = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

// Mount registers the /debug/events endpoint on a mux.
func (j *Journal) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/events", j.HandleEvents)
}

// ParseSince interprets a since query value: "" means no cutoff, a Go
// duration ("5m") means that long before now, anything else must be
// RFC3339. Shared with the history endpoint.
func ParseSince(s string, now time.Time) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return now.Add(-d), nil
	}
	return time.Parse(time.RFC3339, s)
}

// Merge combines event lists (the router's own plus every replica's) into
// one time-ordered slice, stable across equal timestamps.
func Merge(lists ...[]Event) []Event {
	var out []Event
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time.Before(out[b].Time) })
	return out
}
