package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Point is one sampled value in the wire payload: t is unix seconds, v is
// the gauge value or counter delta for that interval.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// HistPoint is one sampled histogram interval: per-bucket observation
// deltas (+Inf last), plus the interval's total count and sum.
type HistPoint struct {
	T      float64  `json:"t"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
}

// Series is one metric stream in the wire payload. Exemplars maps a
// bucket's le bound (or "+Inf") to the trace ID of a recent observation
// that landed there — the JSON-side exemplar surface that /metrics (text
// format 0.0.4) cannot carry. Replica is set only by the shard router's
// scatter-gather merge, naming the origin replica.
type Series struct {
	Name       string            `json:"name"`
	Kind       string            `json:"kind"`
	Labels     map[string]string `json:"labels,omitempty"`
	Replica    string            `json:"replica,omitempty"`
	Buckets    []float64         `json:"buckets,omitempty"`
	Exemplars  map[string]string `json:"exemplars,omitempty"`
	Points     []Point           `json:"points,omitempty"`
	HistPoints []HistPoint       `json:"histPoints,omitempty"`
}

// Payload is the /debug/history response body.
type Payload struct {
	Tier            string   `json:"tier"`
	IntervalSeconds float64  `json:"intervalSeconds"`
	Series          []Series `json:"series"`
}

// Query returns the stored history for series whose family name matches
// any of the glob patterns (nil/empty patterns match everything), clipped
// to points at or after since (zero means all). Series are ordered by
// first appearance, which the registry keeps sorted per snapshot.
func (s *Store) Query(patterns []string, since time.Time) []Series {
	if s == nil {
		return nil
	}
	match := func(name string) bool {
		if len(patterns) == 0 {
			return true
		}
		for _, p := range patterns {
			if matchName(p, name) {
				return true
			}
		}
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Series
	for _, key := range s.order {
		sr := s.series[key]
		if sr == nil || !match(sr.name) {
			continue
		}
		ws := Series{Name: sr.name, Kind: sr.kind}
		if len(sr.labels) > 0 {
			ws.Labels = make(map[string]string, len(sr.labels))
			for k, v := range sr.labels {
				ws.Labels[k] = v
			}
		}
		pts := sr.snapshotPoints()
		if sr.kind == "histogram" {
			ws.Buckets = sr.buckets
			ws.Exemplars = exemplarMap(sr.buckets, sr.exemplars)
			for _, p := range pts {
				if !since.IsZero() && p.t.Before(since) {
					continue
				}
				ws.HistPoints = append(ws.HistPoints, HistPoint{
					T: unixSec(p.t), Counts: p.bucketDeltas,
					Count: p.countDelta, Sum: p.sumDelta,
				})
			}
		} else {
			for _, p := range pts {
				if !since.IsZero() && p.t.Before(since) {
					continue
				}
				ws.Points = append(ws.Points, Point{T: unixSec(p.t), V: p.v})
			}
		}
		out = append(out, ws)
	}
	return out
}

func unixSec(t time.Time) float64 {
	return float64(t.UnixMilli()) / 1000
}

// exemplarMap pairs bucket bounds with their latest trace-ID exemplars,
// skipping buckets that never saw an exemplar.
func exemplarMap(buckets []float64, exemplars []string) map[string]string {
	var out map[string]string
	for i, ex := range exemplars {
		if ex == "" {
			continue
		}
		if out == nil {
			out = map[string]string{}
		}
		if i < len(buckets) {
			out[strconv.FormatFloat(buckets[i], 'g', -1, 64)] = ex
		} else {
			out["+Inf"] = ex
		}
	}
	return out
}

// HandleHistory serves the stored history (GET /debug/history). Query
// params: series (comma-separated name globs, default all), since
// (RFC3339 or a Go duration like "5m" meaning that long ago).
func (s *Store) HandleHistory(w http.ResponseWriter, r *http.Request) {
	var patterns []string
	if q := r.URL.Query().Get("series"); q != "" {
		for _, p := range strings.Split(q, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
	}
	var since time.Time
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := parseSince(q, time.Now())
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = t
	}
	tier := ""
	if s != nil {
		tier = s.tier
	}
	payload := Payload{Tier: tier, IntervalSeconds: s.Interval().Seconds(),
		Series: s.Query(patterns, since)}
	if payload.Series == nil {
		payload.Series = []Series{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

// parseSince mirrors events.ParseSince without the import: "" is no
// cutoff, a Go duration means that long before now, else RFC3339.
func parseSince(s string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return now.Add(-d), nil
	}
	return time.Parse(time.RFC3339, s)
}

// Mount registers the /debug/history endpoint on a mux.
func (s *Store) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/history", s.HandleHistory)
}
