package events

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func scriptedJournal(capacity int) (*Journal, *time.Time) {
	j := NewJournal("test", capacity)
	t := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	j.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
	return j, &t
}

func TestEmitAndFilters(t *testing.T) {
	j, _ := scriptedJournal(16)
	j.Emit(TypeFailover, "hop", "trace-1", "replica", "r1", "attempt", "1")
	j.Emit(TypeEjection, "gone", "", "replica", "r1")
	j.Emit(TypeFailover, "hop again", "trace-2")

	all := j.Events(0, "", time.Time{})
	if len(all) != 3 {
		t.Fatalf("events = %d, want 3", len(all))
	}
	if all[0].Seq != 1 || all[2].Seq != 3 {
		t.Errorf("sequence numbers = %d..%d, want 1..3", all[0].Seq, all[2].Seq)
	}
	if all[0].TraceID != "trace-1" || all[0].Attrs["replica"] != "r1" {
		t.Errorf("event 0 = %+v, want trace-1 with replica attr", all[0])
	}
	if got := j.Events(0, TypeFailover, time.Time{}); len(got) != 2 {
		t.Errorf("type filter matched %d, want 2", len(got))
	}
	if got := j.Events(1, "", time.Time{}); len(got) != 1 || got[0].Type != TypeFailover || got[0].Msg != "hop again" {
		t.Errorf("limit 1 = %+v, want just the newest event", got)
	}
	since := all[1].Time
	if got := j.Events(0, "", since); len(got) != 2 {
		t.Errorf("since filter matched %d, want 2", len(got))
	}
}

func TestRingEvictionCountsDropped(t *testing.T) {
	j, _ := scriptedJournal(4)
	for i := 0; i < 10; i++ {
		j.Emit(TypeStall, fmt.Sprintf("e%d", i), "")
	}
	got := j.Events(0, "", time.Time{})
	if len(got) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("e%d", 6+i); e.Msg != want {
			t.Errorf("event %d = %q, want %q (oldest first after wrap)", i, e.Msg, want)
		}
	}
	if j.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", j.Dropped())
	}
}

func TestRegisterExposesDroppedCounter(t *testing.T) {
	j, _ := scriptedJournal(2)
	reg := obs.NewRegistry()
	j.Register(reg)
	j.Emit(TypeStall, "a", "")
	j.Emit(TypeStall, "b", "")
	j.Emit(TypeStall, "c", "")
	text := reg.Render()
	if !strings.Contains(text, "sickle_obs_events_dropped_total 1") {
		t.Errorf("render missing dropped counter:\n%s", text)
	}
	if err := obs.LintExposition(text); err != nil {
		t.Errorf("exposition lint: %v", err)
	}
}

func TestMergeIsTimeOrderedAndStable(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	at := func(s int, tier, msg string) Event {
		return Event{Time: base.Add(time.Duration(s) * time.Second), Tier: tier, Msg: msg}
	}
	merged := Merge(
		[]Event{at(1, "shard", "a"), at(5, "shard", "d")},
		[]Event{at(3, "serve", "b"), at(5, "serve", "e")},
		[]Event{at(4, "serve", "c")},
	)
	var msgs []string
	for _, e := range merged {
		msgs = append(msgs, e.Msg)
	}
	// Equal timestamps keep list order (shard before serve here).
	if got := strings.Join(msgs, ""); got != "abcde" {
		t.Errorf("merged order = %q, want abcde", got)
	}
}

func TestHandleEventsJSON(t *testing.T) {
	j, _ := scriptedJournal(8)
	j.Emit(TypeEjection, "gone", "", "replica", "r0")
	j.Emit(TypeReadmission, "back", "", "replica", "r0")

	rec := httptest.NewRecorder()
	j.HandleEvents(rec, httptest.NewRequest("GET", "/debug/events?type=ejection", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var p Payload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Tier != "test" || len(p.Events) != 1 || p.Events[0].Type != TypeEjection {
		t.Fatalf("payload = %+v, want one ejection event from tier test", p)
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Emit(TypeStall, "x", "")
	if j.Dropped() != 0 || j.Events(0, "", time.Time{}) != nil {
		t.Error("nil journal must be inert")
	}
}

func TestParseSince(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	if got, err := ParseSince("", now); err != nil || !got.IsZero() {
		t.Errorf(`ParseSince("") = %v, %v; want zero`, got, err)
	}
	if got, err := ParseSince("5m", now); err != nil || !got.Equal(now.Add(-5*time.Minute)) {
		t.Errorf(`ParseSince("5m") = %v, %v`, got, err)
	}
	if got, err := ParseSince("2026-01-02T15:04:05Z", now); err != nil || got.Year() != 2026 {
		t.Errorf("RFC3339 parse = %v, %v", got, err)
	}
	if _, err := ParseSince("bogus", now); err == nil {
		t.Error("bogus since should error")
	}
}

// TestConcurrentEmit is the journal's -race proof.
func TestConcurrentEmit(t *testing.T) {
	j := NewJournal("race", 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Emit(TypeFailover, "hop", "t", "i", "x")
				j.Events(16, "", time.Time{})
				j.Dropped()
			}
		}()
	}
	wg.Wait()
	if got := j.Events(0, "", time.Time{}); len(got) != 32 {
		t.Fatalf("ring holds %d, want 32", len(got))
	}
}
