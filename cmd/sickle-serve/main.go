// sickle-serve exposes SICKLE-Go online: trained surrogates behind a
// micro-batched inference endpoint and the subsampling pipeline behind an
// LRU-cached dataset resolver. See internal/serve for the subsystem.
//
// Usage:
//
//	sickle-serve -addr :8080 -demo
//	sickle-serve -name drag -arch lstm -ckpt model.sknn -in-dim 8 -out-dim 1 \
//	             -input-shape 5,8
//	sickle-serve -case case.yaml -demo
//
// Routes (v2, the current surface — typed pkg/api error envelope):
//
//	POST /v2/infer          micro-batched inference
//	POST /v2/subsample      synchronous two-phase pipeline
//	GET|POST /v2/models     list / register-or-hot-swap models
//	POST /v2/jobs           submit an async subsample or train job
//	GET /v2/jobs[/{id}]     list / poll jobs
//	GET /v2/jobs/{id}/result  fetch a succeeded job's output
//	DELETE /v2/jobs/{id}    cancel (propagates through context into the
//	                        sampling/training loops)
//	GET /api/version        version negotiation handshake
//
// /v1/{infer,subsample,models} remain as a frozen byte-compatible shim
// with the legacy {"error":"..."} envelope; GET /healthz and GET /metrics
// are unversioned. Use pkg/client as the Go SDK.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8080 or the case file's serve.addr)")
	caseFile := flag.String("case", "", "YAML case file with an optional serve: section")
	maxBatch := flag.Int("max-batch", 0, "micro-batch cap (default 16)")
	windowMS := flag.Int("window-ms", 0, "batch collection window in ms (default 2)")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 0, "per-model queue bound before 429s (default 1024)")
	cacheEntries := flag.Int("cache-entries", 0, "dataset/shard LRU capacity (default 8)")
	replicas := flag.Int("replicas", 0, "model replicas per registered model (default 2)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async jobs (default 2)")
	jobTTLMin := flag.Int("job-ttl-min", 0, "terminal-job retention in minutes (default 15)")

	name := flag.String("name", "", "register a model under this name at startup")
	arch := flag.String("arch", "", "architecture: lstm|mlp_transformer|cnn_transformer|matey")
	ckpt := flag.String("ckpt", "", "checkpoint written by sickle-train -ckpt-out")
	inDim := flag.Int("in-dim", 0, "model input width / input variables")
	hidden := flag.Int("hidden", 16, "hidden size / model dim")
	heads := flag.Int("heads", 2, "attention heads")
	outDim := flag.Int("out-dim", 0, "model output width / output variables")
	edge := flag.Int("edge", 0, "decoder cube edge (transformers/MATEY)")
	inputShape := flag.String("input-shape", "", "per-example input shape, comma-separated (e.g. 1,64,4)")

	demo := flag.Bool("demo", false, "train a small surrogate at startup and register it as \"demo\"")
	flag.Parse()

	cfg := serve.Config{}
	if *caseFile != "" {
		c, err := config.LoadCase(*caseFile)
		if err != nil {
			log.Fatal(err)
		}
		cfg = serve.Config{
			Addr:         c.Serve.Addr,
			MaxBatch:     c.Serve.MaxBatch,
			Window:       time.Duration(c.Serve.WindowMS) * time.Millisecond,
			Workers:      c.Serve.Workers,
			QueueCap:     c.Serve.QueueCap,
			CacheEntries: c.Serve.CacheEntries,
			Replicas:     c.Serve.Replicas,
			JobWorkers:   c.Serve.JobWorkers,
			JobTTL:       time.Duration(c.Serve.JobTTLMin) * time.Minute,
		}
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *maxBatch > 0 {
		cfg.MaxBatch = *maxBatch
	}
	if *windowMS > 0 {
		cfg.Window = time.Duration(*windowMS) * time.Millisecond
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *queueCap > 0 {
		cfg.QueueCap = *queueCap
	}
	if *cacheEntries > 0 {
		cfg.CacheEntries = *cacheEntries
	}
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *jobWorkers > 0 {
		cfg.JobWorkers = *jobWorkers
	}
	if *jobTTLMin > 0 {
		cfg.JobTTL = time.Duration(*jobTTLMin) * time.Minute
	}

	s := serve.NewServer(cfg)

	if *name != "" {
		spec := train.ArchSpec{Arch: *arch, InDim: *inDim, Hidden: *hidden,
			Heads: *heads, OutDim: *outDim, Edge: *edge}
		shape, err := parseShape(*inputShape)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Registry().Register(*name, spec, *ckpt, shape, cfg.Replicas); err != nil {
			log.Fatal(err)
		}
		log.Printf("registered model %q (%s) from %s", *name, spec.Arch, *ckpt)
	}
	if *demo {
		if err := registerDemoModel(s, cfg.Replicas); err != nil {
			log.Fatal(err)
		}
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain in-flight
	// batches, then exit.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(done)
	}()

	log.Printf("sickle-serve listening")
	if err := s.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
	<-done
}

func parseShape(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -input-shape %q", s)
		}
		out[i] = v
	}
	return out, nil
}

// registerDemoModel trains the shared toy surrogate (serve.TrainDemo) and
// registers it as "demo", so a bare `sickle-serve -demo` is immediately
// load-testable with `sickle-bench -serve`.
func registerDemoModel(s *serve.Server, replicas int) error {
	dm, err := serve.TrainDemo(context.Background())
	if err != nil {
		return err
	}
	if err := dm.Register(s, "demo", replicas); err != nil {
		return err
	}
	log.Printf("demo model trained (%d params, test loss %.4g) and registered from %s",
		dm.Params, dm.FinalLoss, dm.Checkpoint)
	return nil
}
