package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·Wᵀ + b over 2-D inputs [B, in].
type Linear struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]
	// cached input for backward
	x *tensor.Tensor
}

// NewLinear builds a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		In: in, Out: out,
		W: NewParam("linear.w", initLinear(rng, out, in)),
		B: NewParam("linear.b", tensor.New(out)),
	}
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes y[B,Out] from x[B,In], caching x for backward. The
// weight is consumed in its stored [Out, In] orientation via MatMulTransB —
// no transposed copy is materialized per call.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	y := tensor.MatMulTransB(x, l.W.W)
	tensor.AddRowVecInto(y, y, l.B.W)
	return y
}

// Backward takes dL/dy [B,Out], accumulates parameter grads, and returns
// dL/dx [B,In].
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	// dW += dyᵀ·x directly into the grad accumulator; db += Σ_B dy; dx = dy·W.
	tensor.MatMulTransAAccum(l.W.Grad, dy, l.x)
	tensor.SumRowsInto(l.B.Grad, dy)
	return tensor.MatMul(dy, l.W.W)
}

// Activation is an element-wise nonlinearity with cached forward output or
// input, as its derivative requires.
type Activation struct {
	Kind string // "tanh" | "relu" | "sigmoid"
	out  *tensor.Tensor
	in   *tensor.Tensor
}

// NewActivation builds a named activation; it panics on unknown kinds so
// configuration errors surface at construction.
func NewActivation(kind string) *Activation {
	switch kind {
	case "tanh", "relu", "sigmoid":
		return &Activation{Kind: kind}
	}
	panic("nn: unknown activation " + kind)
}

// Params implements Module.
func (a *Activation) Params() []*Param { return nil }

// Forward applies the nonlinearity.
func (a *Activation) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Clone()
	switch a.Kind {
	case "tanh":
		y.Apply(tanh)
		a.out = y
	case "sigmoid":
		y.Apply(sigmoid)
		a.out = y
	case "relu":
		a.in = x
		for i, v := range y.Data {
			if v < 0 {
				y.Data[i] = 0
			}
		}
	}
	return y
}

// Backward maps dL/dy to dL/dx.
func (a *Activation) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := dy.Clone()
	switch a.Kind {
	case "tanh":
		for i := range dx.Data {
			o := a.out.Data[i]
			dx.Data[i] *= 1 - o*o
		}
	case "sigmoid":
		for i := range dx.Data {
			o := a.out.Data[i]
			dx.Data[i] *= o * (1 - o)
		}
	case "relu":
		for i := range dx.Data {
			if a.in.Data[i] < 0 {
				dx.Data[i] = 0
			}
		}
	}
	return dx
}

func tanh(x float64) float64 { return math.Tanh(x) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
