// Package tensor provides dense float64 tensors with shape metadata and the
// numerical kernels (element-wise ops, matrix multiplication, reductions)
// that the neural-network, solver, and sampling layers of SICKLE-Go are
// built on.
//
// Tensors are row-major and backed by a flat []float64, so they can be
// sliced, reshaped, and passed to kernels without copying.
//
// The package doubles as the repository's kernel engine:
//
//   - Pool is a persistent GOMAXPROCS-sized worker pool with a
//     deterministic ParallelFor; every kernel here (and the cfd2d/cfd3d
//     solver steps, spectral transforms, and clustering built on it) is
//     bit-identical serial or parallel, asserted against unexported *Ref
//     serial kernels in the parity tests.
//   - The matmul family includes cache-blocked MatMul/MatMulInto, the
//     transpose-free MatMulTransB / MatMulTransAAccum orientations that nn
//     layers use so no Transpose is materialized per forward/backward, and
//     Accum variants for gradient accumulation without temporaries.
//   - Get/Put is a size-classed workspace (free list) that makes per-
//     iteration temporaries in the trainer and serve batcher steady-state
//     allocation-free.
//
// Reductions (Sum, Dot, Norm2) use fixed-grain chunked accumulation with
// partials combined in chunk order — deterministic on any machine and
// identical with or without the pool.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The data is not
// copied; the caller must not alias it unless that is intended.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v requires %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Rand returns a tensor with entries drawn uniformly from [-scale, scale).
func Rand(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return t
}

// Randn returns a tensor with entries drawn from N(0, std²).
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape. One dimension
// may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	infer := -1
	n := 1
	for i, s := range shape {
		if s == -1 {
			if infer != -1 {
				panic("tensor: at most one -1 dimension allowed in Reshape")
			}
			infer = i
		} else {
			n *= s
		}
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension: %d elements into shape %v", len(t.Data), shape))
		}
		out[infer] = len(t.Data) / n
		n *= out[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: out, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

func assertSameLen(a, b *Tensor, op string) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s length mismatch %d vs %d", op, len(a.Data), len(b.Data)))
	}
}

// ewiseGrain is the fixed element-wise/reduction chunk size. It is part of
// the determinism contract: chunk boundaries depend only on tensor length,
// so chunked reductions give the same bits on every machine.
const ewiseGrain = 4096

// AddInto computes dst = a + b element-wise.
func AddInto(dst, a, b *Tensor) {
	assertSameLen(a, b, "add")
	assertSameLen(dst, a, "add")
	ad, bd, dd := a.Data, b.Data, dst.Data
	DefaultPool().ParallelFor(len(dd), ewiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] + bd[i]
		}
	})
}

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	AddInto(out, a, b)
	return out
}

// SubInto computes dst = a - b element-wise.
func SubInto(dst, a, b *Tensor) {
	assertSameLen(a, b, "sub")
	assertSameLen(dst, a, "sub")
	ad, bd, dd := a.Data, b.Data, dst.Data
	DefaultPool().ParallelFor(len(dd), ewiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] - bd[i]
		}
	})
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	SubInto(out, a, b)
	return out
}

// MulInto computes dst = a * b element-wise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	assertSameLen(a, b, "mul")
	assertSameLen(dst, a, "mul")
	ad, bd, dd := a.Data, b.Data, dst.Data
	DefaultPool().ParallelFor(len(dd), ewiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] * bd[i]
		}
	})
}

// Mul returns the Hadamard product a*b.
func Mul(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	MulInto(out, a, b)
	return out
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	d := t.Data
	DefaultPool().ParallelFor(len(d), ewiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] *= s
		}
	})
}

// AddScaled computes t += s*u in place (axpy).
func (t *Tensor) AddScaled(s float64, u *Tensor) {
	assertSameLen(t, u, "axpy")
	d, ud := t.Data, u.Data
	DefaultPool().ParallelFor(len(d), ewiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] += s * ud[i]
		}
	})
}

// Apply replaces each element x with f(x). f must be pure: it may run
// concurrently across chunks.
func (t *Tensor) Apply(f func(float64) float64) {
	d := t.Data
	DefaultPool().ParallelFor(len(d), ewiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = f(d[i])
		}
	})
}

// chunkedSum reduces f over [0, n) with fixed ewiseGrain chunks: each
// chunk's partial is accumulated left-to-right, partials are combined in
// chunk order. The decomposition depends only on n, so the result is
// bit-identical with or without a pool (see chunkedSumRef).
func chunkedSum(n int, p *Pool, f func(lo, hi int) float64) float64 {
	if n == 0 {
		return 0
	}
	chunks := (n + ewiseGrain - 1) / ewiseGrain
	if chunks == 1 {
		return f(0, n)
	}
	partials := make([]float64, chunks)
	p.ParallelFor(chunks, 1, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			lo := c * ewiseGrain
			hi := lo + ewiseGrain
			if hi > n {
				hi = n
			}
			partials[c] = f(lo, hi)
		}
	})
	s := 0.0
	for _, v := range partials {
		s += v
	}
	return s
}

// chunkedSumRef is the serial reference for chunkedSum: identical chunk
// decomposition, no pool. Parity tests assert both agree bit for bit.
func chunkedSumRef(n int, f func(lo, hi int) float64) float64 {
	return chunkedSum(n, nil, f)
}

// Sum returns the sum of all elements (chunked deterministic reduction).
func (t *Tensor) Sum() float64 {
	d := t.Data
	return chunkedSum(len(d), DefaultPool(), func(lo, hi int) float64 {
		s := 0.0
		for _, v := range d[lo:hi] {
			s += v
		}
		return s
	})
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element; panics on empty tensors.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; panics on empty tensors.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor (chunked
// deterministic reduction).
func (t *Tensor) Norm2() float64 {
	d := t.Data
	ss := chunkedSum(len(d), DefaultPool(), func(lo, hi int) float64 {
		s := 0.0
		for _, v := range d[lo:hi] {
			s += v * v
		}
		return s
	})
	return math.Sqrt(ss)
}

// Dot returns the inner product of the flattened tensors (chunked
// deterministic reduction).
func Dot(a, b *Tensor) float64 {
	assertSameLen(a, b, "dot")
	ad, bd := a.Data, b.Data
	return chunkedSum(len(ad), DefaultPool(), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += ad[i] * bd[i]
		}
		return s
	})
}
