package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

// runLoadGen drives a running sickle-serve instance through the pkg/client
// SDK (the acceptance harness for the serve subsystem): it negotiates the
// API version, replays a fixed input set serially to get unbatched
// reference outputs, then replays it through `clients` concurrent
// connections and verifies every response is bit-identical to the
// reference while micro-batching engages (mean batch size > 1). It also
// issues a repeated subsample request to show the dataset LRU serving
// hits, and finishes with an asynchronous job round trip
// (submit → poll → result). With shardPhase set (the base URL points at a
// sickle-shard router) a final phase scrapes the router's shard metrics
// and verifies requests were actually routed across live replicas.
func runLoadGen(base, model string, clients, requests int, shardPhase bool, serveOut string) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("need -clients >= 1 and -requests >= 1 (got %d, %d)", clients, requests)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base, client.WithRetry(5, 100*time.Millisecond))

	version, err := c.Negotiate(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("negotiated API %s at %s\n", version, base)

	entry, err := pickModel(ctx, c, model)
	if err != nil {
		return err
	}
	if len(entry.InputShape) == 0 {
		return fmt.Errorf("model %q registered without inputShape; pass one at registration", entry.Name)
	}
	fmt.Printf("target model: %s@v%d (%s), input shape %v\n",
		entry.Name, entry.Version, entry.Spec.Arch, entry.InputShape)

	// A small pool of distinct deterministic inputs, reused round-robin so
	// concurrent responses can be checked against the serial reference.
	const pool = 8
	rng := rand.New(rand.NewSource(42))
	n := 1
	for _, d := range entry.InputShape {
		n *= d
	}
	inputs := make([]api.InferItem, pool)
	for i := range inputs {
		data := make([]float64, n)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		inputs[i] = api.InferItem{Shape: entry.InputShape, Data: data}
	}

	fmt.Printf("phase 1: %d serial requests (unbatched reference)...\n", pool)
	refs := make([]api.InferItem, pool)
	for i := range inputs {
		resp, err := inferOne(ctx, c, entry.Name, inputs[i])
		if err != nil {
			return err
		}
		refs[i] = resp.Outputs[0]
	}

	fmt.Printf("phase 2: %d requests over %d concurrent clients...\n", requests, clients)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		mismatch  int
		firstErr  error
	)
	next := make(chan int, requests)
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	t0 := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				in := i % pool
				s0 := time.Now()
				resp, err := inferOne(ctx, c, entry.Name, inputs[in])
				lat := time.Since(s0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					latencies = append(latencies, lat)
					if !sameItem(resp.Outputs[0], refs[in]) {
						mismatch++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return firstErr
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no successful requests recorded")
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		return latencies[int(p*float64(len(latencies)-1))]
	}
	fmt.Printf("  %d ok, %.0f req/s, latency p50 %v p95 %v p99 %v\n",
		len(latencies), float64(len(latencies))/elapsed.Seconds(), pct(0.50), pct(0.95), pct(0.99))
	if mismatch > 0 {
		return fmt.Errorf("%d responses differ from unbatched reference", mismatch)
	}
	fmt.Println("  all concurrent responses bit-identical to unbatched reference ✓")

	mean, err := meanBatchSize(ctx, c)
	if err != nil {
		return err
	}
	fmt.Printf("  mean micro-batch size: %.2f", mean)
	if mean > 1 {
		fmt.Println(" (batching engaged ✓)")
	} else {
		fmt.Println(" (no batching observed — raise concurrency or -window-ms)")
	}

	fmt.Println("phase 3: repeated subsample (dataset LRU)...")
	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 32, Seed: 1}
	for i := 0; i < 2; i++ {
		out, err := c.Subsample(ctx, &sub)
		if err != nil {
			return err
		}
		fmt.Printf("  run %d: %d cubes, %d points, cacheHit=%v, %.1f ms\n",
			i+1, out.Cubes, out.Points, out.CacheHit, out.ElapsedMS)
	}

	fmt.Println("phase 4: async job round trip (submit → poll → result)...")
	job, err := c.SubmitSubsampleJob(ctx, &sub)
	if err != nil {
		return err
	}
	fmt.Printf("  submitted %s (%s)\n", job.ID, job.State)
	job, err = c.WaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("  terminal state %s (stage %q, %d/%d)\n",
		job.State, job.Progress.Stage, job.Progress.Done, job.Progress.Total)
	if job.State != api.JobSucceeded {
		return fmt.Errorf("job %s finished %s: %v", job.ID, job.State, job.Error)
	}
	res, err := c.JobResult(ctx, job.ID)
	if err != nil {
		return err
	}
	if res.Subsample == nil {
		return fmt.Errorf("job %s result carries no subsample payload", job.ID)
	}
	fmt.Printf("  result: %d cubes, %d points ✓\n", res.Subsample.Cubes, res.Subsample.Points)

	if err := runDurabilityPhase(ctx, c, serveOut); err != nil {
		return err
	}

	if shardPhase {
		return runShardPhase(ctx, c)
	}
	return nil
}

// serveBenchReport is the -serveout JSON artifact: the durability phase's
// dedup hit rate and WAL append latency, scraped as /metrics deltas
// around a duplicate-heavy submission burst.
type serveBenchReport struct {
	Schema          string  `json:"schema"`
	DupRequests     int     `json:"dupRequests"`
	DedupHits       float64 `json:"dedupHits"`
	DedupHitRate    float64 `json:"dedupHitRate"`
	WALAppends      float64 `json:"walAppends"`
	WALAppendMeanMS float64 `json:"walAppendMeanMS"`
}

// runDurabilityPhase submits a burst of byte-identical subsample jobs
// under distinct idempotency keys: the first computes, the rest must be
// served from the content-addressed result cache. It reports the dedup
// hit rate and the mean durable-append latency from the sickle_wal_* /
// sickle_dedup_* metric deltas, and writes them to serveOut when set.
// A server without -data-dir (or a shard router, whose own /metrics has
// no WAL) exposes none of these metrics; the phase then skips cleanly.
func runDurabilityPhase(ctx context.Context, c *client.Client, serveOut string) error {
	fmt.Println("phase 5: durability (CAS dedup + WAL append latency)...")
	before, err := scrapeMetrics(ctx, c)
	if err != nil {
		return err
	}
	if _, ok := before["sickle_wal_appends_total"]; !ok {
		fmt.Println("  no sickle_wal_* metrics (server runs without -data-dir, or URL is a router) — skipped")
		return nil
	}

	const dup = 8
	// A seed the earlier phases never used, so this burst owns its cache
	// entry and the counter deltas below are attributable to it.
	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 32, Seed: 777}
	var first *api.SubsampleResponse
	t0 := time.Now()
	for i := 0; i < dup; i++ {
		job, err := c.SubmitJob(ctx, &api.SubmitJobRequest{
			Type: api.JobSubsample, Subsample: &sub,
			IdempotencyKey: api.NewIdempotencyKey()})
		if err != nil {
			return err
		}
		done, err := c.WaitJob(ctx, job.ID, 25*time.Millisecond)
		if err != nil {
			return err
		}
		if done.State != api.JobSucceeded {
			return fmt.Errorf("duplicate job %s finished %s: %v", job.ID, done.State, done.Error)
		}
		res, err := c.JobResult(ctx, job.ID)
		if err != nil {
			return err
		}
		if res.Subsample == nil {
			return fmt.Errorf("duplicate job %s result carries no subsample payload", job.ID)
		}
		if first == nil {
			first = res.Subsample
		} else if res.Subsample.Cubes != first.Cubes || res.Subsample.Points != first.Points ||
			res.Subsample.ElapsedMS != first.ElapsedMS {
			// ElapsedMS is the tell: a cache hit replays the first run's
			// stored result verbatim, timing included.
			return fmt.Errorf("duplicate %d not served from cache: %+v vs %+v", i+1, res.Subsample, first)
		}
	}
	elapsed := time.Since(t0)

	after, err := scrapeMetrics(ctx, c)
	if err != nil {
		return err
	}
	delta := func(name string) float64 { return after[name] - before[name] }
	hits := delta("sickle_dedup_hits_total")
	hitRate := hits / float64(dup)
	appends := delta("sickle_wal_appends_total")
	meanMS := 0.0
	if n := delta("sickle_wal_append_seconds_count"); n > 0 {
		meanMS = delta("sickle_wal_append_seconds_sum") / n * 1000
	}
	fmt.Printf("  %d identical submissions in %v: %g served from CAS (hit rate %.2f)\n",
		dup, elapsed.Round(time.Millisecond), hits, hitRate)
	fmt.Printf("  WAL: %g durable appends, mean append latency %.3f ms\n", appends, meanMS)
	if hits < float64(dup-1) {
		return fmt.Errorf("dedup hit rate %.2f: want %d of %d duplicates served from cache", hitRate, dup-1, dup)
	}
	fmt.Println("  duplicate submissions deduplicated to one computation ✓")

	if serveOut != "" {
		report := serveBenchReport{
			Schema: "sickle-bench-serve/v1", DupRequests: dup,
			DedupHits: hits, DedupHitRate: hitRate,
			WALAppends: appends, WALAppendMeanMS: meanMS,
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(serveOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", serveOut)
	}
	return nil
}

// scrapeMetrics parses /metrics into a map of label-less series values.
func scrapeMetrics(ctx context.Context, c *client.Client) (map[string]float64, error) {
	raw, err := c.MetricsText(ctx)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(raw, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out, nil
}

// runShardPhase scrapes the router's /metrics for the shard counters and
// verifies the preceding phases were actually routed through live
// replicas — the smoke check that -serve was pointed at sickle-shard and
// the ring is doing its job.
func runShardPhase(ctx context.Context, c *client.Client) error {
	fmt.Println("phase 6: shard routing (router metrics)...")
	raw, err := c.MetricsText(ctx)
	if err != nil {
		return err
	}
	up := map[string]float64{}
	routed := map[string]float64{}
	var failovers float64
	for _, line := range strings.Split(raw, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name, replica := parseShardMetric(fields[0])
		switch name {
		case "sickle_shard_replica_up":
			up[replica] = v
		case "sickle_shard_routed_requests_total":
			routed[replica] = v
		case "sickle_shard_failovers_total":
			failovers = v
		}
	}
	if len(up) == 0 {
		return fmt.Errorf("no sickle_shard_replica_up metrics — is -serve pointed at sickle-shard?")
	}
	liveCount, routedTotal := 0, 0.0
	for _, replica := range sortedReplicaKeys(up) {
		fmt.Printf("  replica %-4s up=%g routed=%g\n", replica, up[replica], routed[replica])
		if up[replica] > 0 {
			liveCount++
		}
		routedTotal += routed[replica]
	}
	fmt.Printf("  failovers: %g\n", failovers)
	if liveCount == 0 {
		return fmt.Errorf("router reports zero live replicas")
	}
	if routedTotal == 0 {
		return fmt.Errorf("router routed no requests despite the load phases")
	}
	fmt.Printf("  %d live replicas, %.0f requests routed through the ring ✓\n", liveCount, routedTotal)
	return nil
}

// parseShardMetric splits `name{replica="r0"}` into (name, "r0"); metrics
// without a replica label return an empty replica.
func parseShardMetric(s string) (name, replica string) {
	i := strings.IndexByte(s, '{')
	if i < 0 {
		return s, ""
	}
	name = s[:i]
	rest := s[i:]
	const pre = `{replica="`
	if j := strings.Index(rest, pre); j >= 0 {
		rest = rest[j+len(pre):]
		if k := strings.IndexByte(rest, '"'); k >= 0 {
			replica = rest[:k]
		}
	}
	return name, replica
}

func sortedReplicaKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pickModel(ctx context.Context, c *client.Client, want string) (*api.ModelInfo, error) {
	entries, err := c.Models(ctx)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("server has no registered models (start sickle-serve with -demo or -name/-ckpt)")
	}
	if want == "" {
		return &entries[0], nil
	}
	for i := range entries {
		if entries[i].Name == want {
			return &entries[i], nil
		}
	}
	return nil, fmt.Errorf("model %q not registered on server", want)
}

func inferOne(ctx context.Context, c *client.Client, model string, item api.InferItem) (*api.InferResponse, error) {
	out, err := c.Infer(ctx, &api.InferRequest{Model: model, Items: []api.InferItem{item}})
	if err != nil {
		var ae *api.Error
		if errors.As(err, &ae) {
			return nil, fmt.Errorf("infer %s: %w", model, ae)
		}
		return nil, err
	}
	if len(out.Outputs) != 1 {
		return nil, fmt.Errorf("expected 1 output, got %d", len(out.Outputs))
	}
	return out, nil
}

func sameItem(a, b api.InferItem) bool {
	if len(a.Shape) != len(b.Shape) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// meanBatchSize scrapes /metrics for sickle_batch_size_sum / _count.
func meanBatchSize(ctx context.Context, c *client.Client) (float64, error) {
	raw, err := c.MetricsText(ctx)
	if err != nil {
		return 0, err
	}
	var sum, count float64
	for _, line := range strings.Split(raw, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "sickle_batch_size_sum":
			sum = v
		case "sickle_batch_size_count":
			count = v
		}
	}
	if count == 0 {
		return 0, nil
	}
	return sum / count, nil
}
