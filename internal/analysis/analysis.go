// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface that sicklevet needs. The
// repository deliberately carries zero third-party dependencies, so the
// vettool cannot import the real x/tools module; this package keeps the
// same shape (Analyzer, Pass, Diagnostic, SuggestedFix) so the analyzers
// under internal/analysis/passes could be ported to the upstream API by
// changing one import path.
//
// The framework is smaller than upstream in three deliberate ways: there
// is no Facts mechanism (cross-package state lives in the analyzers that
// need it and degrades gracefully under per-package `go vet` drivers),
// passes always see a fully type-checked package, and diagnostics are
// filtered through the project-wide `//sicklevet:ignore` escape hatch
// (ignore.go) before they reach any printer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named check. Run inspects a single package via
// its Pass and reports diagnostics; the driver decides which packages each
// analyzer sees and applies ignore-directive filtering afterwards.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sicklevet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces; the
	// multichecker prints it for -help.
	Doc string
	// Run performs the check. The returned value is ignored by the
	// drivers (kept for upstream API shape).
	Run func(*Pass) (any, error)
}

// Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test syntax trees. Test files
	// participate in type checking when present (go vet test variants)
	// but are never analyzed: the correctness contracts sicklevet
	// enforces are production-code contracts.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgPath returns the package's import path with any go-vet test-variant
// suffix ("pkg [pkg.test]") stripped, so path-scoped analyzers behave
// identically under the standalone driver and `go vet -vettool`.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// Diagnostic is one finding, optionally carrying mechanical fixes.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // zero means unknown
	Message string
	// SuggestedFixes are mechanical rewrites a tool (or analysistest's
	// golden-file runner) may apply. Fixes must be safe to apply blindly.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one named set of text edits.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText. End == token.NoPos means an
// insertion at Pos.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// --- shared type/AST helpers used by the passes ---

// CalleeFunc resolves the static function or method a call dispatches to,
// or nil for calls through function-typed values and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsFuncNamed reports whether fn is the named package-level function
// pkgpath.name (e.g. "time", "Now").
func IsFuncNamed(fn *types.Func, pkgpath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgpath
}

// PathHasSuffix reports whether the import path equals suffix or ends in
// "/"+suffix — the way the passes recognize this repository's packages
// (matching by suffix keeps testdata packages, which mirror real paths
// under a synthetic prefix, in scope).
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// NamedTypePath reports whether t (after pointer indirection) is the named
// type `name` declared in a package whose path ends in pkgSuffix.
func NamedTypePath(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// HasMethod reports whether typ has a method with the given name and a
// signature matching check (check may be nil to accept any signature).
// Both value and pointer method sets are consulted.
func HasMethod(typ types.Type, name string, check func(*types.Signature) bool) bool {
	obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if check == nil {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && check(sig)
}

// IsErrorOnlySignature reports whether sig is func() error — the shape of
// Close and Sync.
func IsErrorOnlySignature(sig *types.Signature) bool {
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
