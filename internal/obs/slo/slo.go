// Package slo turns the tsdb metrics history into judgement: declarative
// service-level objectives (per-route p-latency, availability, queue
// depth) evaluated with multi-window burn rates in the Google SRE style.
// An objective's burn rate is its observed error fraction divided by its
// error budget (1 - target); a fast rule (5m AND 1h windows both burning
// ≥ 14.4×) catches sudden outages, a slow rule (6h AND 1h both ≥ 6×)
// catches slow bleeds. A breach flips the tier's health to "degraded" —
// which the shard prober deprioritizes but does not eject — and lands in
// the event journal. GET /debug/slo serves the full report; the
// sickle_slo_* gauges surface the same numbers on /metrics.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/tsdb"
)

// Kind names what an objective measures.
type Kind string

const (
	KindLatency      Kind = "latency"      // fraction of requests over a duration threshold
	KindAvailability Kind = "availability" // fraction of requests that errored
	KindQueueDepth   Kind = "queue_depth"  // fraction of samples with the queue above a depth
)

// Objective is one declared target. Specs are compact colon-joined
// scalars so they survive the config parser's scalar-only block lists:
//
//	latency:<route>:<threshold duration>:<target percent>
//	availability:<route>:<target percent>
//	queue_depth:<max depth>:<target percent>
//
// Route may be "*" to match every route.
type Objective struct {
	Kind      Kind          `json:"kind"`
	Route     string        `json:"route,omitempty"`
	Threshold time.Duration `json:"threshold,omitempty"` // latency only
	Depth     float64       `json:"depth,omitempty"`     // queue_depth only
	Target    float64       `json:"target"`              // percent, e.g. 99.9
}

// ParseObjective decodes a compact spec string.
func ParseObjective(spec string) (Objective, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	bad := func(why string) (Objective, error) {
		return Objective{}, fmt.Errorf("slo spec %q: %s", spec, why)
	}
	if len(parts) < 2 {
		return bad("want kind:...:target")
	}
	target, err := strconv.ParseFloat(parts[len(parts)-1], 64)
	if err != nil || target <= 0 || target >= 100 {
		return bad("target must be a percent in (0, 100)")
	}
	switch Kind(parts[0]) {
	case KindLatency:
		if len(parts) != 4 {
			return bad("want latency:<route>:<threshold>:<target>")
		}
		d, err := time.ParseDuration(parts[2])
		if err != nil || d <= 0 {
			return bad("bad threshold duration")
		}
		return Objective{Kind: KindLatency, Route: parts[1], Threshold: d, Target: target}, nil
	case KindAvailability:
		if len(parts) != 3 {
			return bad("want availability:<route>:<target>")
		}
		return Objective{Kind: KindAvailability, Route: parts[1], Target: target}, nil
	case KindQueueDepth:
		if len(parts) != 3 {
			return bad("want queue_depth:<depth>:<target>")
		}
		depth, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || depth < 0 {
			return bad("bad depth")
		}
		return Objective{Kind: KindQueueDepth, Depth: depth, Target: target}, nil
	default:
		return bad("unknown kind " + parts[0])
	}
}

// ParseObjectives decodes a config list, failing on the first bad spec.
func ParseObjectives(specs []string) ([]Objective, error) {
	var out []Objective
	for _, s := range specs {
		o, err := ParseObjective(s)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Name is the objective's stable identity, used as the slo label value.
func (o Objective) Name() string {
	switch o.Kind {
	case KindLatency:
		return fmt.Sprintf("latency:%s<%s", o.Route, o.Threshold)
	case KindAvailability:
		return "availability:" + o.Route
	default:
		return fmt.Sprintf("queue_depth<=%g", o.Depth)
	}
}

// MetricNames maps an engine onto a tier's metric vocabulary.
type MetricNames struct {
	RequestsTotal string // counter, labeled by RouteLabel
	ErrorsTotal   string // counter, labeled by RouteLabel
	LatencyHist   string // histogram of seconds, labeled by RouteLabel
	QueueGauge    string // gauge (queue_depth objectives)
	RouteLabel    string
}

// ServeMetrics and ShardMetrics are the two tiers' vocabularies.
var (
	ServeMetrics = MetricNames{
		RequestsTotal: "sickle_requests_total",
		ErrorsTotal:   "sickle_request_errors_total",
		LatencyHist:   "sickle_request_seconds",
		QueueGauge:    "sickle_queue_depth",
		RouteLabel:    "route",
	}
	ShardMetrics = MetricNames{
		RequestsTotal: "sickle_shard_requests_total",
		ErrorsTotal:   "sickle_shard_request_errors_total",
		LatencyHist:   "sickle_shard_request_seconds",
		RouteLabel:    "route",
	}
)

// Windows parameterizes the multi-window burn-rate rules. The fast rule
// fires when both the Fast and Mid windows burn at ≥ FastBurn; the slow
// rule when both the Slow and Mid windows burn at ≥ SlowBurn. Tests
// shrink the windows to drive deterministic breaches.
type Windows struct {
	Fast     time.Duration
	Mid      time.Duration
	Slow     time.Duration
	FastBurn float64
	SlowBurn float64
}

// DefaultWindows is the classic 2%-of-monthly-budget-in-an-hour pairing.
var DefaultWindows = Windows{
	Fast: 5 * time.Minute, Mid: time.Hour, Slow: 6 * time.Hour,
	FastBurn: 14.4, SlowBurn: 6,
}

// WindowBurn is one window's evaluation for one objective.
type WindowBurn struct {
	Window        string  `json:"window"`
	Seconds       float64 `json:"seconds"`
	ErrorFraction float64 `json:"errorFraction"`
	BurnRate      float64 `json:"burnRate"`
	Samples       float64 `json:"samples"` // requests (or gauge points) seen
}

// ObjectiveReport is one objective's evaluation.
type ObjectiveReport struct {
	Name            string       `json:"name"`
	Objective       Objective    `json:"objective"`
	Windows         []WindowBurn `json:"windows"` // fast, mid, slow
	Breached        bool         `json:"breached"`
	BudgetRemaining float64      `json:"budgetRemaining"` // of the slow window, in [0, 1]
}

// Report is the /debug/slo response body.
type Report struct {
	Tier       string            `json:"tier"`
	Status     string            `json:"status"` // ok | degraded
	Objectives []ObjectiveReport `json:"objectives"`
}

// Engine evaluates objectives against a tsdb store, keeps the
// sickle_slo_* gauges current, and journals breach transitions. Safe for
// concurrent use; a nil *Engine reports status "ok" and no objectives.
type Engine struct {
	tier       string
	store      *tsdb.Store
	names      MetricNames
	objectives []Objective
	journal    *events.Journal

	mu       sync.Mutex
	windows  Windows
	breached map[string]bool
	degraded bool
	last     Report

	burnG   *obs.GaugeVec
	breachG *obs.GaugeVec
	budgetG *obs.GaugeVec
}

// NewEngine builds an engine over store for the given objectives. reg and
// journal may be nil (gauges / events are then skipped).
func NewEngine(tier string, store *tsdb.Store, names MetricNames, objectives []Objective, reg *obs.Registry, journal *events.Journal) *Engine {
	e := &Engine{
		tier: tier, store: store, names: names, objectives: objectives,
		journal: journal, windows: DefaultWindows, breached: map[string]bool{},
	}
	if reg != nil {
		e.burnG = reg.Gauge("sickle_slo_burn_rate",
			"Error-budget burn rate per objective and window (1.0 = exactly on budget).",
			"slo", "window")
		e.breachG = reg.Gauge("sickle_slo_breached",
			"1 when the objective's multi-window burn-rate rules are firing.", "slo")
		e.budgetG = reg.Gauge("sickle_slo_error_budget_remaining",
			"Fraction of the error budget left over the slow window.", "slo")
	}
	return e
}

// SetWindows overrides the burn-rate windows (tests shrink them).
func (e *Engine) SetWindows(w Windows) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.windows = w
	e.mu.Unlock()
}

// Status evaluates and reports the tier's health: "ok" or "degraded".
func (e *Engine) Status() string {
	if e == nil {
		return "ok"
	}
	return e.Evaluate().Status
}

// Evaluate runs every objective over the current history, refreshes the
// gauges, journals breach/recover and degraded/recovered transitions, and
// returns the report.
func (e *Engine) Evaluate() Report {
	if e == nil {
		return Report{Status: "ok"}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	w := e.windows
	rep := Report{Tier: e.tier, Status: "ok", Objectives: []ObjectiveReport{}}
	anyBreach := false
	for _, o := range e.objectives {
		or := e.evaluateObjective(o, w)
		if or.Breached {
			anyBreach = true
		}
		e.noteTransition(or)
		rep.Objectives = append(rep.Objectives, or)
	}
	sort.SliceStable(rep.Objectives, func(a, b int) bool {
		return rep.Objectives[a].Name < rep.Objectives[b].Name
	})
	if anyBreach {
		rep.Status = "degraded"
	}
	if anyBreach != e.degraded {
		e.degraded = anyBreach
		if anyBreach {
			e.journal.Emit(events.TypeDegraded, "tier degraded: SLO burn-rate rules firing", "")
		} else {
			e.journal.Emit(events.TypeRecovered, "tier recovered: all SLO burn rates under threshold", "")
		}
	}
	e.last = rep
	return rep
}

// noteTransition journals breach/recover edges and keeps the per-SLO
// breach gauge current. Caller holds e.mu.
func (e *Engine) noteTransition(or ObjectiveReport) {
	was := e.breached[or.Name]
	if or.Breached && !was {
		kv := []string{"slo", or.Name}
		for _, wb := range or.Windows {
			kv = append(kv, "burn_"+wb.Window, strconv.FormatFloat(wb.BurnRate, 'g', 4, 64))
		}
		e.journal.Emit(events.TypeSLOBreach, "SLO breach: "+or.Name, "", kv...)
	} else if !or.Breached && was {
		e.journal.Emit(events.TypeSLORecover, "SLO recovered: "+or.Name, "", "slo", or.Name)
	}
	e.breached[or.Name] = or.Breached
	if e.breachG != nil {
		v := 0.0
		if or.Breached {
			v = 1
		}
		e.breachG.With(or.Name).Set(v)
		e.budgetG.With(or.Name).Set(or.BudgetRemaining)
		for _, wb := range or.Windows {
			e.burnG.With(or.Name, wb.Window).Set(wb.BurnRate)
		}
	}
}

func (e *Engine) evaluateObjective(o Objective, w Windows) ObjectiveReport {
	budget := 1 - o.Target/100
	eval := func(label string, window time.Duration) WindowBurn {
		frac, n := e.errorFraction(o, window)
		return WindowBurn{
			Window: label, Seconds: window.Seconds(),
			ErrorFraction: frac, BurnRate: frac / budget, Samples: n,
		}
	}
	fast := eval("fast", w.Fast)
	mid := eval("mid", w.Mid)
	slow := eval("slow", w.Slow)

	breached := (fast.BurnRate >= w.FastBurn && mid.BurnRate >= w.FastBurn) ||
		(slow.BurnRate >= w.SlowBurn && mid.BurnRate >= w.SlowBurn)
	remaining := 1 - slow.ErrorFraction/budget
	if remaining < 0 {
		remaining = 0
	} else if remaining > 1 {
		remaining = 1
	}
	return ObjectiveReport{
		Name: o.Name(), Objective: o,
		Windows:  []WindowBurn{fast, mid, slow},
		Breached: breached, BudgetRemaining: remaining,
	}
}

// errorFraction computes an objective's bad fraction (and sample count)
// over one trailing window. No traffic means no errors.
func (e *Engine) errorFraction(o Objective, window time.Duration) (frac, samples float64) {
	routeMatch := map[string]string{}
	if o.Route != "" && o.Route != "*" {
		routeMatch[e.names.RouteLabel] = o.Route
	}
	switch o.Kind {
	case KindAvailability:
		total := e.store.SumCounter(e.names.RequestsTotal, routeMatch, window)
		if total <= 0 {
			return 0, 0
		}
		bad := e.store.SumCounter(e.names.ErrorsTotal, routeMatch, window)
		return bad / total, total
	case KindLatency:
		buckets, counts, count, _ := e.store.HistWindow(e.names.LatencyHist, routeMatch, window)
		if count == 0 {
			return 0, 0
		}
		// "Good" = observations in buckets whose upper bound is at or
		// under the threshold. With no such bucket every request counts
		// bad — conservative, and it makes breaches inducible in tests.
		cut := o.Threshold.Seconds()
		var good uint64
		for i, ub := range buckets {
			if ub <= cut {
				good += counts[i]
			}
		}
		return float64(count-good) / float64(count), float64(count)
	default: // KindQueueDepth
		above, total := e.store.GaugeAbove(e.names.QueueGauge, nil, window, o.Depth)
		if total == 0 {
			return 0, 0
		}
		return float64(above) / float64(total), float64(total)
	}
}
