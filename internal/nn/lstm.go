package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a single-layer LSTM over sequences x[B, T, In] producing hidden
// states h[B, T, Hidden], with full backprop through time. Gates follow the
// standard formulation:
//
//	i = σ(x·Wiᵀ + h·Uiᵀ + bi)    f = σ(x·Wfᵀ + h·Ufᵀ + bf)
//	g = tanh(x·Wgᵀ + h·Ugᵀ + bg) o = σ(x·Woᵀ + h·Uoᵀ + bo)
//	c' = f∘c + i∘g               h' = o∘tanh(c')
type LSTM struct {
	In, Hidden int
	// Gate parameter blocks, order: i, f, g, o.
	Wx [4]*Param // [Hidden, In]
	Wh [4]*Param // [Hidden, Hidden]
	B  [4]*Param // [Hidden]

	// caches for BPTT
	x          *tensor.Tensor      // [B, T, In]
	gates      [4][]*tensor.Tensor // per timestep, [B, Hidden]
	cells      []*tensor.Tensor    // c_t, per timestep
	hiddens    []*tensor.Tensor    // h_t, per timestep
	tanhCells  []*tensor.Tensor    // tanh(c_t)
	batch, seq int
}

// NewLSTM constructs an LSTM layer. The forget-gate bias starts at 1, the
// usual trick to preserve gradient flow early in training.
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	l := &LSTM{In: in, Hidden: hidden}
	names := [4]string{"i", "f", "g", "o"}
	for g := 0; g < 4; g++ {
		l.Wx[g] = NewParam("lstm.wx."+names[g], initLinear(rng, hidden, in))
		l.Wh[g] = NewParam("lstm.wh."+names[g], initLinear(rng, hidden, hidden))
		b := tensor.New(hidden)
		if names[g] == "f" {
			b.Fill(1)
		}
		l.B[g] = NewParam("lstm.b."+names[g], b)
	}
	return l
}

// Params implements Module.
func (l *LSTM) Params() []*Param {
	out := make([]*Param, 0, 12)
	for g := 0; g < 4; g++ {
		out = append(out, l.Wx[g], l.Wh[g], l.B[g])
	}
	return out
}

// timeSlice extracts x_t [B, In] from x [B, T, In].
func timeSlice(x *tensor.Tensor, t int) *tensor.Tensor {
	b, tt, c := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(b, c)
	for i := 0; i < b; i++ {
		copy(out.Data[i*c:(i+1)*c], x.Data[(i*tt+t)*c:(i*tt+t)*c+c])
	}
	return out
}

// setTimeSlice writes v [B, C] into dst [B, T, C] at time t.
func setTimeSlice(dst, v *tensor.Tensor, t int) {
	b, tt, c := dst.Dim(0), dst.Dim(1), dst.Dim(2)
	for i := 0; i < b; i++ {
		copy(dst.Data[(i*tt+t)*c:(i*tt+t)*c+c], v.Data[i*c:(i+1)*c])
	}
}

// Forward runs the sequence and returns h [B, T, Hidden].
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, seq := x.Dim(0), x.Dim(1)
	l.x = x
	l.batch, l.seq = b, seq
	l.cells = make([]*tensor.Tensor, seq)
	l.hiddens = make([]*tensor.Tensor, seq)
	l.tanhCells = make([]*tensor.Tensor, seq)
	for g := 0; g < 4; g++ {
		l.gates[g] = make([]*tensor.Tensor, seq)
	}

	h := tensor.New(b, l.Hidden)
	c := tensor.New(b, l.Hidden)
	out := tensor.New(b, seq, l.Hidden)
	for t := 0; t < seq; t++ {
		xt := timeSlice(x, t)
		var pre [4]*tensor.Tensor
		for g := 0; g < 4; g++ {
			// x·Wᵀ and h·Uᵀ in the weights' stored orientation; the hidden
			// product accumulates straight into p — no transposes, no temp.
			p := tensor.MatMulTransB(xt, l.Wx[g].W)
			tensor.MatMulTransBAccum(p, h, l.Wh[g].W)
			tensor.AddRowVecInto(p, p, l.B[g].W)
			pre[g] = p
		}
		pre[0].Apply(sigmoid) // i
		pre[1].Apply(sigmoid) // f
		pre[2].Apply(tanh)    // g
		pre[3].Apply(sigmoid) // o

		cNew := tensor.New(b, l.Hidden)
		for i := range cNew.Data {
			cNew.Data[i] = pre[1].Data[i]*c.Data[i] + pre[0].Data[i]*pre[2].Data[i]
		}
		tc := cNew.Clone()
		tc.Apply(tanh)
		hNew := tensor.Mul(pre[3], tc)

		for g := 0; g < 4; g++ {
			l.gates[g][t] = pre[g]
		}
		l.cells[t] = cNew
		l.tanhCells[t] = tc
		l.hiddens[t] = hNew
		setTimeSlice(out, hNew, t)
		h, c = hNew, cNew
	}
	return out
}

// Backward takes dL/dh for the full sequence [B, T, Hidden], accumulates
// parameter gradients, and returns dL/dx [B, T, In].
func (l *LSTM) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, seq := l.batch, l.seq
	dx := tensor.New(b, seq, l.In)
	dhNext := tensor.New(b, l.Hidden)
	dcNext := tensor.New(b, l.Hidden)

	for t := seq - 1; t >= 0; t-- {
		dh := timeSlice(dout, t)
		tensor.AddInto(dh, dh, dhNext)

		i, f, g, o := l.gates[0][t], l.gates[1][t], l.gates[2][t], l.gates[3][t]
		tc := l.tanhCells[t]

		// dc = dh ∘ o ∘ (1 - tanh²(c)) + dcNext
		dc := tensor.New(b, l.Hidden)
		for k := range dc.Data {
			dc.Data[k] = dh.Data[k]*o.Data[k]*(1-tc.Data[k]*tc.Data[k]) + dcNext.Data[k]
		}

		var cPrev *tensor.Tensor
		if t > 0 {
			cPrev = l.cells[t-1]
		} else {
			cPrev = tensor.New(b, l.Hidden)
		}

		// Gate pre-activation gradients.
		dPre := [4]*tensor.Tensor{
			tensor.New(b, l.Hidden), tensor.New(b, l.Hidden),
			tensor.New(b, l.Hidden), tensor.New(b, l.Hidden),
		}
		for k := range dc.Data {
			di := dc.Data[k] * g.Data[k]
			df := dc.Data[k] * cPrev.Data[k]
			dg := dc.Data[k] * i.Data[k]
			do := dh.Data[k] * tc.Data[k]
			dPre[0].Data[k] = di * i.Data[k] * (1 - i.Data[k])
			dPre[1].Data[k] = df * f.Data[k] * (1 - f.Data[k])
			dPre[2].Data[k] = dg * (1 - g.Data[k]*g.Data[k])
			dPre[3].Data[k] = do * o.Data[k] * (1 - o.Data[k])
		}

		xt := timeSlice(l.x, t)
		var hPrev *tensor.Tensor
		if t > 0 {
			hPrev = l.hiddens[t-1]
		} else {
			hPrev = tensor.New(b, l.Hidden)
		}

		dxt := tensor.New(b, l.In)
		dhPrev := tensor.New(b, l.Hidden)
		for gi := 0; gi < 4; gi++ {
			// Parameter grads accumulate in place (no transpose temps).
			tensor.MatMulTransAAccum(l.Wx[gi].Grad, dPre[gi], xt)
			tensor.MatMulTransAAccum(l.Wh[gi].Grad, dPre[gi], hPrev)
			tensor.SumRowsInto(l.B[gi].Grad, dPre[gi])
			// Input/previous-hidden grads.
			tensor.MatMulAccum(dxt, dPre[gi], l.Wx[gi].W)
			tensor.MatMulAccum(dhPrev, dPre[gi], l.Wh[gi].W)
		}
		setTimeSlice(dx, dxt, t)

		dhNext = dhPrev
		dcNext = tensor.Mul(dc, f)
	}
	return dx
}
