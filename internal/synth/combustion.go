package synth

import (
	"math"
	"math/rand"

	"repro/internal/grid"
)

// CombustionConfig controls the TC2D-like turbulent-combustion analogue.
// The defining statistical feature of the NREL TC2D dataset is an extremely
// non-uniform phase-space density: most points sit in burnt/unburnt plateaus
// (C ≈ 0 or 1, variance ≈ 0) while the information-rich flame front is a
// thin wrinkled band — exactly the regime where UIPS shines in 2-D (Fig 4
// left) and where random sampling under-covers the tails (Fig 5).
type CombustionConfig struct {
	Nx, Ny    int
	Thickness float64 // flame-front thickness in grid fractions, default 0.02
	Wrinkle   float64 // front wrinkling amplitude, default 0.15
	Modes     int     // wrinkling modes, default 6
	Seed      int64
}

func (c *CombustionConfig) defaults() {
	if c.Nx == 0 {
		c.Nx = 512
	}
	if c.Ny == 0 {
		c.Ny = 512
	}
	if c.Thickness == 0 {
		c.Thickness = 0.02
	}
	if c.Wrinkle == 0 {
		c.Wrinkle = 0.15
	}
	if c.Modes == 0 {
		c.Modes = 6
	}
}

// Combustion synthesizes a progress-variable field C ∈ [0,1] with a thin
// wrinkled reaction front, and its filtered variance Cvar (peaking inside
// the front). Variables: "C" and "Cvar" (Table 1's 𝐶 and 𝐶″²).
func Combustion(cfg CombustionConfig) *grid.Field {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := grid.NewField(cfg.Nx, cfg.Ny, 1)

	// Wrinkled front position: x_front(y) = 0.5 + Σ a_m sin(2π m y + φ_m).
	amps := make([]float64, cfg.Modes)
	phases := make([]float64, cfg.Modes)
	for m := range amps {
		amps[m] = cfg.Wrinkle * rng.NormFloat64() / float64(m+1)
		phases[m] = rng.Float64() * 2 * math.Pi
	}

	c := f.AddVar("C", nil)
	cv := f.AddVar("Cvar", nil)
	for j := 0; j < cfg.Ny; j++ {
		y := float64(j) / float64(cfg.Ny)
		front := 0.5
		for m := range amps {
			front += amps[m] * math.Sin(2*math.Pi*float64(m+1)*y+phases[m])
		}
		for i := 0; i < cfg.Nx; i++ {
			x := float64(i) / float64(cfg.Nx)
			// Progress variable: tanh profile across the front.
			z := (x - front) / cfg.Thickness
			cval := 0.5 * (1 + math.Tanh(z))
			// Filtered variance peaks where the gradient is steepest:
			// sech⁴ profile, maximal at the front center.
			sech := 1 / math.Cosh(z)
			cvar := 0.25 * sech * sech * sech * sech
			idx := f.Idx(i, j, 0)
			c[idx] = cval + 0.01*rng.NormFloat64()*sech
			cv[idx] = cvar * (1 + 0.05*rng.NormFloat64())
			if cv[idx] < 0 {
				cv[idx] = 0
			}
		}
	}
	return f
}

// TC2DDataset builds the single-snapshot TC2D-like dataset (Table 1: KCV
// none, inputs C and Cvar, no output — it is used for sampling studies
// only).
func TC2DDataset(cfg CombustionConfig) *grid.Dataset {
	f := Combustion(cfg)
	return &grid.Dataset{
		Label:       "TC2D",
		Description: "2D turbulent combustion (synthetic analogue)",
		Snapshots:   []*grid.Field{f},
		InputVars:   []string{"C", "Cvar"},
		ClusterVar:  "C",
	}
}
