package shard

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/pkg/api"
	"repro/pkg/client"
)

// startDurableReplica boots an in-process serve backend persisting job
// state to dataDir, with model "m" loaded from ckpt.
func startDurableReplica(t *testing.T, addr, ckpt, dataDir string) *serve.InProc {
	t.Helper()
	p, err := serve.StartInProc(serve.Config{
		Addr: addr, MaxBatch: 4, Window: 2 * time.Millisecond, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Server.Registry().Register("m", testSpec, ckpt, testShape, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardDurableRecoveryKeyedRetry is the fleet-level acceptance test
// for the durability tier: the replica owning a keyed subsample job
// crashes with the job unfinished on disk (WAL crash point before the
// terminal record, then Kill), is respawned on the same address and data
// directory, recovers and re-runs the job — and a keyed retry through
// the router lands on the original job, so the client observes exactly
// one job across the fleet. The recovery event is visible in the
// router's scatter-gathered journal.
func TestShardDurableRecoveryKeyedRetry(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()
	base := t.TempDir()

	dirs := []string{filepath.Join(base, "r0"), filepath.Join(base, "r1")}
	reps := make([]*serve.InProc, 2)
	urls := make([]string, 2)
	for i := range reps {
		reps[i] = startDurableReplica(t, "", ckpt, dirs[i])
		urls[i] = reps[i].URL
	}
	rt := newTestRouter(t, urls)
	rt.Start()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		rt.Shutdown(ctx)
		for _, p := range reps {
			if p != nil {
				p.Close(ctx)
			}
		}
	}()
	c := client.New(ts.URL, client.WithRetry(3, 10*time.Millisecond))

	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	owner, ok := rt.ReplicaSet().Owner(subsampleKey(&sub))
	if !ok {
		t.Fatal("no owner for the subsample key")
	}
	ownerIdx := -1
	for i, p := range reps {
		if p.URL == owner.URL {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s matches no replica", owner.URL)
	}

	// Freeze the owner's WAL just before the terminal record: on disk the
	// job will be mid-run forever, however far the in-memory runner got.
	reps[ownerIdx].Server.Durable().WAL.SetCrashPoint("before:terminal", nil)

	key := api.NewIdempotencyKey()
	req := api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &sub, IdempotencyKey: key}
	job, err := c.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("submit through router: %v", err)
	}
	if raw, rid := splitJobID(job.ID); raw == "" || rid != owner.ID {
		t.Fatalf("job %q not admitted by the key's owner %s", job.ID, owner.ID)
	}
	if done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil || done.State != api.JobSucceeded {
		t.Fatalf("pre-crash job = %+v, %v", done, err)
	}

	// Crash the owner and wait for its ejection.
	deadAddr := reps[ownerIdx].Addr()
	reps[ownerIdx].Kill()
	waitFor(t, "ejection of the crashed owner", 5*time.Second, func() bool {
		r, _ := rt.ReplicaSet().Get(owner.ID)
		return !r.Up()
	})

	// Respawn on the same address AND the same data dir: the WAL replay
	// re-enqueues the interrupted job under its original identity.
	reps[ownerIdx] = startDurableReplica(t, deadAddr, ckpt, dirs[ownerIdx])
	waitFor(t, "re-admission of the respawned owner", 5*time.Second, func() bool {
		r, _ := rt.ReplicaSet().Get(owner.ID)
		return r.Up()
	})

	// The recovered job finishes again, reachable through the router's
	// sticky job mapping under its pre-crash ID.
	done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil || done.State != api.JobSucceeded {
		t.Fatalf("recovered job through router = %+v, %v", done, err)
	}
	if res, err := c.JobResult(ctx, job.ID); err != nil || res.Subsample == nil {
		t.Fatalf("recovered result through router = %+v, %v", res, err)
	}

	// A keyed retry of the original submission hashes back to the
	// recovered owner and deduplicates onto the original job...
	again, err := c.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("keyed retry after recovery: %v", err)
	}
	if again.ID != job.ID {
		t.Fatalf("keyed retry created %q, want original %q", again.ID, job.ID)
	}
	// ...so the fleet holds exactly one job.
	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("fleet jobs = %+v, %v; want exactly the recovered job", jobs, err)
	}

	// The recovery shows up in the scatter-gathered fleet journal.
	resp, err := http.Get(ts.URL + "/debug/events?type=recovery")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"type":"recovery"`) {
		t.Fatalf("no recovery event in the fleet journal:\n%s", body)
	}
}

// TestShardKeyedSubmitFailsOver complements TestShardSubmitDoesNotFailOver:
// with an idempotency key attached, a submission aimed at a dead primary
// may safely retry on the next ring candidate instead of surfacing
// unavailable — the key lets the backend deduplicate, so the failover
// cannot double-run the job.
func TestShardKeyedSubmitFailsOver(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()

	a := startReplica(t, "", ckpt)
	b := startReplica(t, "", ckpt)
	// No prober: the router's first contact with the dead replica is the
	// submission itself.
	rt := newTestRouter(t, []string{a.URL, b.URL})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetry(0, 0))

	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	owner, ok := rt.ReplicaSet().Owner(subsampleKey(&sub))
	if !ok {
		t.Fatal("no owner for the subsample key")
	}
	victim, survivor := a, b
	if owner.URL == b.URL {
		victim, survivor = b, a
	}
	victim.Kill()
	defer survivor.Close(ctx)

	job, err := c.SubmitJob(ctx, &api.SubmitJobRequest{
		Type: api.JobSubsample, Subsample: &sub, IdempotencyKey: api.NewIdempotencyKey()})
	if err != nil {
		t.Fatalf("keyed submit with dead owner = %v, want failover success", err)
	}
	if _, rid := splitJobID(job.ID); rid == owner.ID {
		t.Fatalf("job %q claims the dead owner admitted it", job.ID)
	}
	if rt.Metrics().FailoversTotal() == 0 {
		t.Fatal("failover counter never moved for the keyed submission")
	}
	if jobs := survivor.Server.Jobs().List(); len(jobs) != 1 {
		t.Fatalf("survivor holds %d jobs, want exactly the failed-over one", len(jobs))
	}
}
