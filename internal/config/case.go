package config

import (
	"fmt"
	"os"
)

// Case is the typed view of a SICKLE case file, mirroring the paper's YAML
// schema (shared / subsample / train sections; see the SST-P1F4 example in
// Appendix B).
type Case struct {
	// shared
	Dims       int
	Dtype      string
	InputVars  []string
	OutputVars []string
	ClusterVar string
	Nx, Ny, Nz int
	Gravity    string
	FilePrefix string
	// subsample
	Hypercubes       string
	NumHypercubes    int
	Method           string
	Path             string
	NumSamples       int
	NumClusters      int
	NxSL, NySL, NzSL int // hypercube edge sizes (nxsl/nysl/nzsl)
	// train
	Epochs   int
	Batch    int
	Target   string
	Window   int
	Arch     string
	Sequence bool
	Seed     int64
	// serve
	Serve ServeCase
	// stream
	Stream StreamCase
	// shard
	Shard ShardCase
	// obs
	Obs ObsCase
}

// ObsCase is the optional `obs:` section of a case file, sizing the
// flight-recorder stack (metrics history, event journal, SLO engine)
// shared by serve and shard. Unset keys stay zero so the obs subpackages
// own the defaults. SLOs are compact colon-joined specs (the YAML subset
// parser keeps block-list items scalar), e.g.
//
//	obs:
//	  history_interval_ms: 1000
//	  slos:
//	    - latency:/v2/infer:250ms:99.9
//	    - availability:/v2/infer:99.9
//	    - queue_depth:64:99
//
// See internal/obs/slo.ParseObjective for the spec grammar.
type ObsCase struct {
	HistoryIntervalMS int      // tsdb sampling period (0 = 1000)
	HistoryCapacity   int      // points kept per series (0 = 600)
	EventCapacity     int      // event-journal ring size (0 = 1024)
	SLOs              []string // objective specs
}

// ServeCase is the optional `serve:` section of a case file, sizing the
// sickle-serve service (see internal/serve.Config for the semantics).
type ServeCase struct {
	Addr         string
	MaxBatch     int
	WindowMS     int
	Workers      int
	QueueCap     int
	CacheEntries int
	Replicas     int
	JobWorkers   int
	JobTTLMin    int
	DataDir      string // durability dir: WAL + results + dedup cache ("" = in-memory)
	DebugAddr    string // pprof + debug endpoints listener ("" = off)
}

// ShardCase is the optional `shard:` section of a case file, sizing the
// sickle-shard router (see internal/shard.Config for the semantics).
// Unset keys stay zero so shard.Config owns the defaults.
type ShardCase struct {
	Addr        string
	Replicas    []string // backend base URLs
	ProbeMS     int
	FailAfter   int
	MaxFailover int
	Replication int // owner-set size K for keyed job submissions
	VNodes      int
	DebugAddr   string // pprof + debug endpoints listener ("" = off)
}

// StreamCase is the optional `stream:` section of a case file, sizing the
// sickle-stream in-situ pipeline (see internal/stream.Config for the
// semantics). Unset keys stay zero so stream.Config owns the defaults.
type StreamCase struct {
	Ranks       int
	Window      int
	MergeEvery  int
	SketchBins  int
	Reservoir   int
	ShardPrefix string
}

// LoadCase reads and parses a case file from disk.
func LoadCase(path string) (*Case, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseCase(string(raw))
}

// ParseCase parses case-file text.
func ParseCase(src string) (*Case, error) {
	m, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	shared := m.GetMap("shared")
	sub := m.GetMap("subsample")
	tr := m.GetMap("train")
	sv := m.GetMap("serve")
	st := m.GetMap("stream")
	sh := m.GetMap("shard")
	ob := m.GetMap("obs")

	c := &Case{
		Dims:       shared.GetInt("dims", 3),
		Dtype:      shared.GetString("dtype", ""),
		InputVars:  getVarList(shared, "input_vars"),
		OutputVars: getVarList(shared, "output_vars"),
		ClusterVar: shared.GetString("cluster_var", ""),
		Nx:         shared.GetInt("nx", 0),
		Ny:         shared.GetInt("ny", 0),
		Nz:         shared.GetInt("nz", 0),
		Gravity:    shared.GetString("gravity", "z"),
		FilePrefix: shared.GetString("fileprefix", ""),

		Hypercubes:    sub.GetString("hypercubes", "random"),
		NumHypercubes: sub.GetInt("num_hypercubes", 12),
		Method:        sub.GetString("method", "random"),
		Path:          sub.GetString("path", ""),
		NumSamples:    sub.GetInt("num_samples", 3277),
		NumClusters:   sub.GetInt("num_clusters", 20),
		NxSL:          sub.GetInt("nxsl", 32),
		NySL:          sub.GetInt("nysl", 32),
		NzSL:          sub.GetInt("nzsl", 32),

		Epochs:   tr.GetInt("epochs", 1000),
		Batch:    tr.GetInt("batch", 16),
		Target:   tr.GetString("target", ""),
		Window:   tr.GetInt("window", 1),
		Arch:     tr.GetString("arch", "MLP_transformer"),
		Sequence: tr.GetBool("sequence", false),
		Seed:     int64(tr.GetInt("seed", 0)),

		// Unset serve keys stay zero: internal/serve.Config owns the
		// defaults, so they live in exactly one place.
		Serve: ServeCase{
			Addr:         sv.GetString("addr", ""),
			MaxBatch:     sv.GetInt("max_batch", 0),
			WindowMS:     sv.GetInt("window_ms", 0),
			Workers:      sv.GetInt("workers", 0),
			QueueCap:     sv.GetInt("queue_cap", 0),
			CacheEntries: sv.GetInt("cache_entries", 0),
			Replicas:     sv.GetInt("replicas", 0),
			JobWorkers:   sv.GetInt("job_workers", 0),
			JobTTLMin:    sv.GetInt("job_ttl_min", 0),
			DataDir:      sv.GetString("data_dir", ""),
			DebugAddr:    sv.GetString("debug_addr", ""),
		},

		// Unset shard keys stay zero: internal/shard.Config owns the
		// defaults (same discipline as serve).
		Shard: ShardCase{
			Addr:        sh.GetString("addr", ""),
			Replicas:    sh.GetStringList("replicas"),
			ProbeMS:     sh.GetInt("probe_ms", 0),
			FailAfter:   sh.GetInt("fail_after", 0),
			MaxFailover: sh.GetInt("max_failover", 0),
			Replication: sh.GetInt("replication", 0),
			VNodes:      sh.GetInt("vnodes", 0),
			DebugAddr:   sh.GetString("debug_addr", ""),
		},

		// Unset stream keys stay zero: internal/stream.Config owns the
		// defaults (same discipline as serve).
		Stream: StreamCase{
			Ranks:       st.GetInt("ranks", 0),
			Window:      st.GetInt("window", 0),
			MergeEvery:  st.GetInt("merge_every", 0),
			SketchBins:  st.GetInt("sketch_bins", 0),
			Reservoir:   st.GetInt("reservoir", 0),
			ShardPrefix: st.GetString("shard_prefix", ""),
		},

		// Unset obs keys stay zero: the obs subpackages own the defaults.
		Obs: ObsCase{
			HistoryIntervalMS: ob.GetInt("history_interval_ms", 0),
			HistoryCapacity:   ob.GetInt("history_capacity", 0),
			EventCapacity:     ob.GetInt("event_capacity", 0),
			SLOs:              ob.GetStringList("slos"),
		},
	}
	if len(c.InputVars) == 0 {
		return nil, fmt.Errorf("config: case has no input_vars")
	}
	return c, nil
}

// getVarList accepts both YAML forms the artifact uses: a list
// ("input_vars: [u, v, w, r]") and a bare scalar ("output_vars: p").
func getVarList(m Map, key string) []string {
	if l := m.GetStringList(key); l != nil {
		return l
	}
	if s := m.GetString(key, ""); s != "" {
		return []string{s}
	}
	return nil
}
