package nn

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(rng, 3, 5)
	path := filepath.Join(t.TempDir(), "ck.sknn")
	if err := SaveCheckpoint(path, l); err != nil {
		t.Fatal(err)
	}
	l2 := NewLSTM(rand.New(rand.NewSource(2)), 3, 5) // different init
	if err := LoadCheckpoint(path, l2); err != nil {
		t.Fatal(err)
	}
	pa, pb := l.Params(), l2.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("param %s differs after round trip", pa[i].Name)
			}
		}
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(rng, 4, 3)
	path := filepath.Join(t.TempDir(), "ck.sknn")
	if err := SaveCheckpoint(path, l); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(path, NewLinear(rng, 5, 3)); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	if err := LoadCheckpoint(path, NewLSTM(rng, 4, 3)); err == nil {
		t.Fatal("expected param-count mismatch error")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(rng, 2, 2)
	if err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope"), l); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestFP16RoundKnownValues(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{-2, -2},
		{0.5, 0.5},
		{65504, 65504},        // max half
		{100000, math.Inf(1)}, // overflow saturates
		{-100000, math.Inf(-1)},
		{1e-10, 0}, // below subnormal range flushes
	}
	for _, c := range cases {
		if got := fp16Round(c.in); got != c.want {
			t.Fatalf("fp16(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// 1/3 is not representable: error bounded by half-precision ulp.
	got := fp16Round(1.0 / 3)
	if math.Abs(got-1.0/3) > 1.0/3*1e-3 || got == 1.0/3 {
		t.Fatalf("fp16(1/3) = %v", got)
	}
}

func TestQuantizeFP16SmallError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(rng, 8, 8)
	before := append([]float64(nil), l.W.W.Data...)
	worst := QuantizeFP16(l)
	if worst <= 0 {
		t.Fatal("quantization introduced no rounding at all (implausible)")
	}
	// Relative error stays within half-precision epsilon (2^-11 ≈ 4.9e-4).
	for i, v := range l.W.W.Data {
		if before[i] == 0 {
			continue
		}
		if math.Abs(v-before[i])/math.Abs(before[i]) > 6e-4 {
			t.Fatalf("relative rounding error too large at %d: %v -> %v", i, before[i], v)
		}
	}
}

// TestQuantizedModelStillWorks: a trained model keeps (almost) its loss
// after fp16 quantization — the premise behind the paper's mixed-precision
// option.
func TestQuantizedModelStillWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLinear(rng, 1, 1)
	opt := NewAdam(0.05)
	x := tensor.FromSlice([]float64{-1, 0, 1, 2}, 4, 1)
	y := tensor.FromSlice([]float64{-4, -1, 2, 5}, 4, 1)
	for it := 0; it < 300; it++ {
		ZeroGrads(l)
		pred := l.Forward(x)
		_, g := MSELoss(pred, y)
		l.Backward(g)
		opt.Step(l)
	}
	lossBefore, _ := MSELoss(l.Forward(x), y)
	QuantizeFP16(l)
	lossAfter, _ := MSELoss(l.Forward(x), y)
	if lossAfter > lossBefore+1e-3 {
		t.Fatalf("fp16 destroyed the model: %v -> %v", lossBefore, lossAfter)
	}
}
