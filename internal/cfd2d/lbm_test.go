package cfd2d

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestEquilibriumConservesMoments(t *testing.T) {
	rho, ux, uy := 1.1, 0.07, -0.03
	var srho, sux, suy float64
	for i := 0; i < 9; i++ {
		fi := equilibrium(i, rho, ux, uy)
		srho += fi
		sux += fi * float64(ex[i])
		suy += fi * float64(ey[i])
	}
	if math.Abs(srho-rho) > 1e-12 {
		t.Fatalf("Σfeq = %v, want %v", srho, rho)
	}
	if math.Abs(sux-rho*ux) > 1e-12 || math.Abs(suy-rho*uy) > 1e-12 {
		t.Fatalf("momentum (%v,%v), want (%v,%v)", sux, suy, rho*ux, rho*uy)
	}
}

func TestOppositeDirections(t *testing.T) {
	for i := 0; i < 9; i++ {
		o := opp[i]
		if ex[o] != -ex[i] || ey[o] != -ey[i] {
			t.Fatalf("opp[%d]=%d is not the reverse direction", i, o)
		}
	}
}

func TestUniformFlowStaysUniform(t *testing.T) {
	// Without a cylinder (D tiny, placed out of domain effectively) a
	// uniform flow is an exact LBM fixed point away from boundaries.
	cfg := Config{Nx: 40, Ny: 16, U0: 0.08, Reynolds: 50, D: 2, Cx: -100, Cy: -100}
	s := New(cfg)
	for i := range s.Solid {
		s.Solid[i] = false
	}
	// Overwrite the shedding-trigger perturbation with exact uniform flow.
	for y := 0; y < s.Ny; y++ {
		for x := 0; x < s.Nx; x++ {
			s.setEquilibrium(x, y, 1.0, cfg.U0, 0)
		}
	}
	for i := 0; i < 20; i++ {
		s.Step()
	}
	for y := 0; y < s.Ny; y++ {
		for x := 1; x < s.Nx-1; x++ {
			_, ux, uy := s.Macro(x, y)
			if math.Abs(ux-0.08) > 1e-3 || math.Abs(uy) > 1e-3 {
				t.Fatalf("uniform flow drifted at (%d,%d): u=(%v,%v)", x, y, ux, uy)
			}
		}
	}
}

func TestCylinderBlocksFlowAndProducesDrag(t *testing.T) {
	s := New(Config{Nx: 120, Ny: 48, U0: 0.1, Reynolds: 60, D: 10, Cx: 24, Cy: 24})
	for i := 0; i < 400; i++ {
		s.Step()
	}
	if s.Fx <= 0 {
		t.Fatalf("drag force should be positive (downstream), got %v", s.Fx)
	}
	cd := s.DragCoefficient()
	// Cylinder drag coefficient at Re~60 is O(1); accept a broad band, the
	// shape of the signal matters more than the absolute value.
	if cd < 0.3 || cd > 6 {
		t.Fatalf("Cd = %v, outside plausible range", cd)
	}
	// Wake deficit: velocity right behind the cylinder must be below inflow.
	_, uxWake, _ := s.Macro(36, 24)
	if uxWake > 0.8*s.Cfg.U0 {
		t.Fatalf("no wake deficit: u behind cylinder = %v", uxWake)
	}
}

func TestVortexSheddingOscillatesLift(t *testing.T) {
	if testing.Short() {
		t.Skip("shedding test is long")
	}
	s := New(Config{Nx: 200, Ny: 80, U0: 0.12, Reynolds: 120, D: 16, Cx: 40, Cy: 40})
	// Warm up past the symmetric transient.
	for i := 0; i < 4000; i++ {
		s.Step()
	}
	minCl, maxCl := math.Inf(1), math.Inf(-1)
	for i := 0; i < 3000; i++ {
		s.Step()
		cl := s.LiftCoefficient()
		if cl < minCl {
			minCl = cl
		}
		if cl > maxCl {
			maxCl = cl
		}
	}
	// Shedding produces an oscillating lift with amplitude well above noise.
	if maxCl-minCl < 0.05 {
		t.Fatalf("no vortex shedding detected: lift range [%v, %v]", minCl, maxCl)
	}
}

func TestSnapshotFields(t *testing.T) {
	s := New(Config{Nx: 60, Ny: 24, U0: 0.1, Reynolds: 40, D: 6, Cx: 12, Cy: 12})
	for i := 0; i < 50; i++ {
		s.Step()
	}
	f := s.Snapshot()
	for _, v := range []string{"u", "v", "p", "wz"} {
		if !f.HasVar(v) {
			t.Fatalf("snapshot missing %q", v)
		}
	}
	// Solid cells carry zero velocity.
	if f.Var("u")[f.Idx(12, 12, 0)] != 0 {
		t.Fatal("velocity inside cylinder should be zero")
	}
	// Inflow region carries roughly U0.
	if math.Abs(f.Var("u")[f.Idx(1, 20, 0)]-0.1) > 0.05 {
		t.Fatalf("inflow u = %v", f.Var("u")[f.Idx(1, 20, 0)])
	}
}

func TestOF2DDataset(t *testing.T) {
	d := OF2DDataset(Config{Nx: 80, Ny: 32, U0: 0.1, Reynolds: 50, D: 8, Cx: 16, Cy: 16}, 100, 4, 20)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.GlobalTargets) != 4 {
		t.Fatalf("want 4 drag targets, got %d", len(d.GlobalTargets))
	}
	for i, cd := range d.GlobalTargets {
		if cd <= 0 {
			t.Fatalf("drag target %d = %v, want positive", i, cd)
		}
	}
}

func TestMassConservationInterior(t *testing.T) {
	// Total mass in a fully periodic, solid-free system is conserved.
	cfg := Config{Nx: 32, Ny: 16, U0: 0.05, Reynolds: 50, D: 2, Cx: -50, Cy: -50}
	s := New(cfg)
	for i := range s.Solid {
		s.Solid[i] = false
	}
	mass := func() float64 {
		m := 0.0
		for y := 0; y < s.Ny; y++ {
			for x := 0; x < s.Nx; x++ {
				rho, _, _ := s.Macro(x, y)
				m += rho
			}
		}
		return m
	}
	m0 := mass()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	m1 := mass()
	// Inflow/outflow columns exchange a little mass; interior drift must be
	// tiny.
	if math.Abs(m1-m0)/m0 > 0.01 {
		t.Fatalf("mass drifted %v -> %v", m0, m1)
	}
}

func BenchmarkLBMStep(b *testing.B) {
	s := New(Config{Nx: 200, Ny: 80})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// TestStepBitIdenticalToSerialRef runs two identically configured solvers,
// one through the pooled Step and one through the serial reference, and
// asserts the full distribution state and forces agree bit for bit.
func TestStepBitIdenticalToSerialRef(t *testing.T) {
	tensor.SetWorkers(4) // force a real pool even on single-core machines
	defer tensor.SetWorkers(0)
	a := New(Config{Nx: 96, Ny: 48})
	b := New(Config{Nx: 96, Ny: 48})
	for step := 0; step < 25; step++ {
		a.Step()
		b.stepRef()
	}
	for i := range a.f {
		if math.Float64bits(a.f[i]) != math.Float64bits(b.f[i]) {
			t.Fatalf("step 25: f[%d] differs: %v vs %v", i, a.f[i], b.f[i])
		}
	}
	if math.Float64bits(a.Fx) != math.Float64bits(b.Fx) ||
		math.Float64bits(a.Fy) != math.Float64bits(b.Fy) {
		t.Fatalf("forces differ: (%v,%v) vs (%v,%v)", a.Fx, a.Fy, b.Fx, b.Fy)
	}
}

// BenchmarkLBMStepAllocs asserts the solver step allocates nothing at
// steady state (scratch lives on the Solver).
func BenchmarkLBMStepAllocs(b *testing.B) {
	s := New(Config{Nx: 150, Ny: 60})
	s.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
