// Package load turns `go list` output into type-checked packages for the
// sicklevet drivers, using only the standard library. It shells out to
// the go command once per Load call:
//
//	go list -export -json -deps <patterns>
//
// which compiles (or reuses from the build cache) export data for every
// dependency, then type-checks the target packages from source with the
// stdlib gc importer reading that export data. This is the same division
// of labor as x/tools go/packages in LoadAllSyntax-for-targets mode,
// minus the dependency.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	IsStandard bool
	Fset       *token.FileSet
	// Files are the parsed non-test GoFiles, in go list order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Err is the first parse or type error, if any; Files/Types may be
	// partial when set.
	Err error
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir and type-checks every matched (non-DepOnly)
// package. CGO is disabled so the file sets are pure Go.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := map[string]*listPackage{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		p := lp
		byPath[p.ImportPath] = &p
		if !p.DepOnly {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	exports := func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	imp := importer.ForCompiler(fset, "gc", exports)

	var pkgs []*Package
	for _, t := range targets {
		pkgs = append(pkgs, check(fset, imp, t))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp *listPackage) *Package {
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, IsStandard: lp.Standard, Fset: fset}
	if lp.Error != nil {
		pkg.Err = fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		return pkg
	}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			if pkg.Err == nil {
				pkg.Err = err
			}
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && pkg.Err == nil {
		pkg.Err = err
	}
	return pkg
}

// ExportInfo names the compiled export data of one listed package.
type ExportInfo struct {
	ImportPath string
	Export     string
}

// List resolves the given import paths (plus their transitive
// dependencies — gc export data is read recursively) to export data
// files, compiling as needed. Used by analysistest to type-check testdata
// packages against the real module.
func List(dir string, paths []string) ([]ExportInfo, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	var infos []ExportInfo
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		infos = append(infos, ExportInfo{ImportPath: lp.ImportPath, Export: lp.Export})
	}
	return infos, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
