package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode is a stable, machine-readable failure class. Clients branch on
// codes, never on message text.
type ErrorCode string

const (
	// CodeInvalidArgument: the request was malformed (bad JSON, bad shape,
	// missing fields). Retrying unchanged cannot succeed.
	CodeInvalidArgument ErrorCode = "invalid_argument"
	// CodeNotFound: the referenced resource (dataset, shard, route) does
	// not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeModelNotFound: the named model is not registered on the server.
	CodeModelNotFound ErrorCode = "model_not_found"
	// CodeJobNotFound: no job with that id (it may have expired after its
	// retention TTL).
	CodeJobNotFound ErrorCode = "job_not_found"
	// CodeJobNotReady: the job exists but has not reached a terminal state,
	// so its result is not available yet.
	CodeJobNotReady ErrorCode = "job_not_ready"
	// CodeJobCanceled: the job was canceled before it could produce a
	// result.
	CodeJobCanceled ErrorCode = "job_canceled"
	// CodeOverloaded: a bounded queue (per-model inference queue, job
	// admission) is full. Retry after RetryAfterSeconds.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeUnavailable: the server (or, through a shard router, every
	// candidate replica) could not be reached at the transport level —
	// connection refused, reset, or DNS failure. Retrying against a
	// recovered or different backend can succeed.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeShuttingDown: the server is draining; the request was refused or
	// aborted.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeCanceled: the caller's context was canceled mid-request.
	CodeCanceled ErrorCode = "canceled"
	// CodeDeadlineExceeded: the caller's deadline elapsed mid-request.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeMethodNotAllowed: the route exists but not for that HTTP method.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeUnsupportedVersion: the server speaks no API version the client
	// accepts.
	CodeUnsupportedVersion ErrorCode = "unsupported_version"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// StatusClientClosedRequest is the (nginx-conventional) status for a
// request aborted by the client's own context; no standard code exists.
const StatusClientClosedRequest = 499

// HTTPStatus maps the code to its HTTP status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidArgument, CodeUnsupportedVersion:
		return http.StatusBadRequest
	case CodeNotFound, CodeModelNotFound, CodeJobNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeJobNotReady, CodeJobCanceled:
		return http.StatusConflict
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeUnavailable:
		return http.StatusBadGateway
	case CodeCanceled:
		return StatusClientClosedRequest
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// CodeFromStatus recovers the best-fitting code from a bare HTTP status —
// the fallback when a response carries no typed envelope (a v1 server, a
// proxy-generated error page).
func CodeFromStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusConflict:
		return CodeJobNotReady
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusBadGateway:
		return CodeUnavailable
	case StatusClientClosedRequest:
		return CodeCanceled
	case http.StatusServiceUnavailable:
		return CodeShuttingDown
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	}
	return CodeInternal
}

// Error is the typed wire error. It implements the error interface, so it
// flows unchanged from the server's internals through the envelope to the
// SDK caller's errors.As.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// RetryAfterSeconds, when non-zero, tells the client how long to back
	// off before retrying (also sent as the Retry-After header).
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

func (e *Error) Error() string {
	return string(e.Code) + ": " + e.Message
}

// Errorf builds a typed error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithRetryAfter returns a copy carrying a retry hint in seconds.
func (e *Error) WithRetryAfter(seconds int) *Error {
	cp := *e
	cp.RetryAfterSeconds = seconds
	return &cp
}

// AsError coerces any error into a typed *Error: an existing *Error (even
// wrapped) passes through, context cancellation/deadline map to their
// codes, and everything else becomes CodeInternal.
func AsError(err error) *Error {
	if err == nil {
		return nil
	}
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Message: err.Error()}
	}
	return &Error{Code: CodeInternal, Message: err.Error()}
}

// ErrorEnvelope is the v2 error body: {"error":{"code":...,"message":...}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}
