package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/grid"
)

func gradientField() *grid.Field {
	f := grid.NewField(16, 8, 1)
	u := f.AddVar("u", nil)
	for j := 0; j < 8; j++ {
		for i := 0; i < 16; i++ {
			u[f.Idx(i, j, 0)] = float64(i)
		}
	}
	return f
}

func TestFieldToPGMHeaderAndRange(t *testing.T) {
	f := gradientField()
	img := FieldToPGM(f, "u", 0)
	if !bytes.HasPrefix(img, []byte("P5\n16 8\n255\n")) {
		t.Fatalf("bad header: %q", img[:12])
	}
	body := img[len("P5\n16 8\n255\n"):]
	if len(body) != 16*8 {
		t.Fatalf("body size %d", len(body))
	}
	// Left column darkest, right column brightest.
	if body[0] != 0 || body[15] != 255 {
		t.Fatalf("gradient mapping wrong: %d..%d", body[0], body[15])
	}
}

func TestSamplesToPGMMarksPoints(t *testing.T) {
	f := gradientField()
	idx := []int{f.Idx(3, 7, 0)}
	img := SamplesToPGM(f, "u", 0, idx)
	body := img[len("P5\n16 8\n255\n"):]
	// (3,7) is the top row (flipped), column 3.
	if body[3] != 255 {
		t.Fatalf("sample not marked: %d", body[3])
	}
	// Background is dimmed below 128.
	if body[15] > 128 {
		t.Fatalf("background not dimmed: %d", body[15])
	}
}

func TestFieldToASCII(t *testing.T) {
	f := gradientField()
	s := FieldToASCII(f, "u", 0, 80)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 || len(lines[0]) != 16 {
		t.Fatalf("ascii shape: %d lines, first %q", len(lines), lines[0])
	}
	if lines[0][0] != ' ' || lines[0][15] != '@' {
		t.Fatalf("shades wrong: %q", lines[0])
	}
}

func TestSamplesToASCII(t *testing.T) {
	f := gradientField()
	s := SamplesToASCII(f, 0, 80, []int{f.Idx(0, 7, 0)})
	if !strings.Contains(s, "o") {
		t.Fatal("no sample marker rendered")
	}
}
