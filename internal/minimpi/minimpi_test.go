package minimpi

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRankAndSize(t *testing.T) {
	seen := make([]int32, 8)
	Run(8, CostModel{}, func(c *Comm) {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
	})
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d ran %d times", r, n)
		}
	}
}

func TestBarrierOrdering(t *testing.T) {
	var before, after int32
	Run(6, CostModel{}, func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		// After the barrier every rank must observe all 6 increments.
		if atomic.LoadInt32(&before) != 6 {
			t.Errorf("rank %d passed barrier before all arrived", c.Rank())
		}
		atomic.AddInt32(&after, 1)
	})
	if after != 6 {
		t.Fatalf("after = %d", after)
	}
}

func TestSendRecv(t *testing.T) {
	Run(2, CostModel{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []float64{3.14, 2.71})
		} else {
			got := c.Recv(0)
			if got[0] != 3.14 || got[1] != 2.71 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
}

func TestRingExchange(t *testing.T) {
	n := 5
	Run(n, CostModel{}, func(c *Comm) {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, []float64{float64(c.Rank())})
		got := c.Recv(prev)
		if int(got[0]) != prev {
			t.Errorf("rank %d got %v from %d", c.Rank(), got, prev)
		}
	})
}

func TestBcast(t *testing.T) {
	Run(4, CostModel{}, func(c *Comm) {
		buf := make([]float64, 3)
		if c.Rank() == 2 {
			buf[0], buf[1], buf[2] = 7, 8, 9
		}
		c.Bcast(2, buf)
		if buf[0] != 7 || buf[2] != 9 {
			t.Errorf("rank %d Bcast = %v", c.Rank(), buf)
		}
	})
}

func TestGather(t *testing.T) {
	Run(4, CostModel{}, func(c *Comm) {
		out := c.Gather(0, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if out[r][0] != float64(r*10) {
					t.Errorf("Gather[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
}

func TestAllreduceSumMaxMin(t *testing.T) {
	Run(5, CostModel{}, func(c *Comm) {
		buf := []float64{float64(c.Rank()), float64(-c.Rank())}
		c.Allreduce(buf, Sum)
		if buf[0] != 10 || buf[1] != -10 {
			t.Errorf("Sum = %v", buf)
		}
		buf2 := []float64{float64(c.Rank())}
		c.Allreduce(buf2, Max)
		if buf2[0] != 4 {
			t.Errorf("Max = %v", buf2)
		}
		buf3 := []float64{float64(c.Rank())}
		c.Allreduce(buf3, Min)
		if buf3[0] != 0 {
			t.Errorf("Min = %v", buf3)
		}
	})
}

func TestAllreduceRepeatable(t *testing.T) {
	// Two back-to-back collectives must not interfere.
	Run(3, CostModel{}, func(c *Comm) {
		for iter := 0; iter < 10; iter++ {
			buf := []float64{1}
			c.Allreduce(buf, Sum)
			if buf[0] != 3 {
				t.Errorf("iter %d: sum = %v", iter, buf[0])
			}
		}
	})
}

// TestFanInContention drives the point-to-point mailboxes under load: every
// non-root rank streams a burst of messages at rank 0 concurrently, and rank
// 0 must observe each source's messages in send order. Run with -race; this
// is the communication pattern the streaming pipeline's result gather uses.
func TestFanInContention(t *testing.T) {
	const ranks, burst = 8, 64
	Run(ranks, CostModel{}, func(c *Comm) {
		if c.Rank() == 0 {
			for src := 1; src < ranks; src++ {
				for m := 0; m < burst; m++ {
					got := c.Recv(src)
					if len(got) != 2 || int(got[0]) != src || int(got[1]) != m {
						t.Errorf("from %d msg %d: got %v", src, m, got)
						return
					}
				}
			}
		} else {
			for m := 0; m < burst; m++ {
				c.Send(0, []float64{float64(c.Rank()), float64(m)})
			}
		}
	})
}

// TestAllPairsExchange has every rank send to and receive from every other
// rank concurrently — the densest point-to-point pattern the (src,dst)
// mailbox slack of one message must sustain without deadlock.
func TestAllPairsExchange(t *testing.T) {
	const ranks = 6
	Run(ranks, CostModel{}, func(c *Comm) {
		me := c.Rank()
		for dst := 0; dst < ranks; dst++ {
			if dst != me {
				c.Send(dst, []float64{float64(me*100 + dst)})
			}
		}
		for src := 0; src < ranks; src++ {
			if src == me {
				continue
			}
			got := c.Recv(src)
			if int(got[0]) != src*100+me {
				t.Errorf("rank %d from %d: got %v", me, src, got)
			}
		}
	})
}

// TestBarrierStressOrdering reuses the cyclic barrier across many
// generations under contention: within each iteration every rank's
// pre-barrier increment must be visible to every rank after the barrier,
// and no rank may run ahead a generation.
func TestBarrierStressOrdering(t *testing.T) {
	const ranks, iters = 8, 200
	var phase [iters]int32
	Run(ranks, CostModel{}, func(c *Comm) {
		for it := 0; it < iters; it++ {
			atomic.AddInt32(&phase[it], 1)
			c.Barrier()
			if got := atomic.LoadInt32(&phase[it]); got != ranks {
				t.Errorf("iter %d: rank %d saw %d/%d arrivals after barrier",
					it, c.Rank(), got, ranks)
				return
			}
			if it+1 < iters {
				if got := atomic.LoadInt32(&phase[it+1]); got != 0 {
					t.Errorf("iter %d: rank %d saw next generation started early", it, c.Rank())
					return
				}
			}
			c.Barrier()
		}
	})
}

// TestMixedCollectivesUnderContention interleaves sends, barriers, and
// allreduces the way the streaming sketch-merge protocol does, checking
// the collectives stay aligned when mailbox traffic is in flight.
func TestMixedCollectivesUnderContention(t *testing.T) {
	const ranks, rounds = 4, 25
	Run(ranks, CostModel{}, func(c *Comm) {
		next := (c.Rank() + 1) % ranks
		prev := (c.Rank() + ranks - 1) % ranks
		for r := 0; r < rounds; r++ {
			c.Send(next, []float64{float64(c.Rank() + r)})
			got := c.Recv(prev)
			if int(got[0]) != prev+r {
				t.Errorf("round %d: rank %d got %v from %d", r, c.Rank(), got, prev)
				return
			}
			buf := []float64{1}
			c.Allreduce(buf, Sum)
			if buf[0] != ranks {
				t.Errorf("round %d: allreduce = %v", r, buf[0])
				return
			}
		}
	})
}

func TestPartitionRange(t *testing.T) {
	// 10 items over 4 ranks: 3,3,2,2.
	wants := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for r, w := range wants {
		lo, hi := PartitionRange(10, r, 4)
		if lo != w[0] || hi != w[1] {
			t.Fatalf("rank %d: [%d,%d), want %v", r, lo, hi, w)
		}
	}
}

// Property: partition covers [0,n) exactly, in order, with imbalance <= 1.
func TestPartitionPropertyQuick(t *testing.T) {
	f := func(n uint16, size uint8) bool {
		nn := int(n%1000) + 1
		ss := int(size%64) + 1
		prev := 0
		minC, maxC := 1<<30, 0
		for r := 0; r < ss; r++ {
			lo, hi := PartitionRange(nn, r, ss)
			if lo != prev || hi < lo {
				return false
			}
			c := hi - lo
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
			prev = hi
		}
		return prev == nn && maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelCharging(t *testing.T) {
	cm := CostModel{Latency: 1e-5, Bandwidth: 1e9}
	w := Run(8, cm, func(c *Comm) {
		buf := make([]float64, 1000)
		c.Allreduce(buf, Sum)
	})
	got := w.MaxSimCommSeconds()
	// Internal syncs are uncharged; one allreduce of 8000 bytes over
	// log2(8)=3 hops.
	want := (1e-5 + 8000.0/1e9) * 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sim comm = %v, want %v", got, want)
	}
}

func TestCostModelSingleRankFree(t *testing.T) {
	cm := CostModel{Latency: 1, Bandwidth: 1}
	w := Run(1, cm, func(c *Comm) {
		buf := []float64{1}
		c.Allreduce(buf, Sum)
		c.Barrier()
	})
	if w.MaxSimCommSeconds() != 0 {
		t.Fatal("single rank should incur no comm cost")
	}
}

func TestParallelSumMatchesSerial(t *testing.T) {
	// Integration check: partition a vector sum across ranks and allreduce.
	n := 10007
	data := make([]float64, n)
	want := 0.0
	for i := range data {
		data[i] = float64(i%13) * 0.5
		want += data[i]
	}
	for _, ranks := range []int{1, 2, 4, 7} {
		var got float64
		Run(ranks, CostModel{}, func(c *Comm) {
			lo, hi := c.PartitionRange(n)
			s := 0.0
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			buf := []float64{s}
			c.Allreduce(buf, Sum)
			if c.Rank() == 0 {
				got = buf[0]
			}
		})
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ranks=%d: sum = %v, want %v", ranks, got, want)
		}
	}
}

func BenchmarkAllreduce8x1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(8, CostModel{}, func(c *Comm) {
			buf := make([]float64, 1024)
			c.Allreduce(buf, Sum)
		})
	}
}
