package stream

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestPipelineInstrumentation runs the pipeline with a registry and tracer
// attached and checks the sickle_stream_* series and the run trace: every
// snapshot counted, per-snapshot phase2 spans plus the phase1 and merge
// spans all under the single run trace ID, and a lint-clean exposition.
func TestPipelineInstrumentation(t *testing.T) {
	d := testDataset()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer("stream", 256)

	res, err := Run(t.Context(), NewReplaySource(d), Config{
		Pipeline: testPipelineConfig(), Ranks: 2, Window: 2, MergeEvery: 2,
		Metrics: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("Result.TraceID empty with tracer attached")
	}

	text := reg.Render()
	if errs := obs.LintExposition(text); len(errs) != 0 {
		t.Errorf("stream registry fails lint: %v", errs)
	}
	for _, want := range []string{
		"sickle_stream_snapshots_total 6",
		"sickle_stream_merge_rounds_total",
		"sickle_stream_points_total",
		"sickle_stream_backpressure_stalls_total",
		`sickle_stream_snapshot_seconds_bucket{le="`,
		"sickle_stream_snapshot_seconds_count 6",
		"sickle_stream_buffered_snapshots 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	spans := tracer.Spans(res.TraceID)
	counts := map[string]int{}
	var rootID string
	for _, s := range spans {
		if s.Tier != "stream" {
			t.Errorf("span %s tier = %q, want stream", s.Name, s.Tier)
		}
		counts[s.Name]++
		if s.Name == "pipeline:run" {
			rootID = s.SpanID
		}
	}
	if counts["pipeline:run"] != 1 || counts["phase1:select"] != 1 {
		t.Fatalf("span counts = %v", counts)
	}
	if counts["phase2:snapshot"] != res.Snapshots {
		t.Errorf("got %d phase2 spans, want %d", counts["phase2:snapshot"], res.Snapshots)
	}
	if counts["merge:sketch"] != res.MergeRounds {
		t.Errorf("got %d merge spans, want %d", counts["merge:sketch"], res.MergeRounds)
	}
	for _, s := range spans {
		if s.Name != "pipeline:run" && s.ParentID != rootID {
			t.Errorf("span %s parent = %q, want root %q", s.Name, s.ParentID, rootID)
		}
	}
}
