package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/pkg/api"
)

// JobRunner executes one job's work. It must honor ctx (the job manager
// cancels it on DELETE /v2/jobs/{id} and on server shutdown) and may call
// progress at any cadence; progress is cheap and safe from any goroutine.
type JobRunner func(ctx context.Context, progress func(stage string, done, total int)) (*api.JobResult, error)

// JobManager owns the server's asynchronous work: submissions enter a
// bounded admission set, at most `workers` jobs run concurrently (each
// under its own cancellable context), and terminal jobs linger for `ttl`
// so clients can fetch status/results before the record expires.
type JobManager struct {
	mu    sync.Mutex
	jobs  map[string]*jobEntry
	byKey map[string]string // idempotency key -> job ID, for dedup on retry
	seq   int

	// wal/results persist job state across restarts; nil runs in-memory
	// (the pre-durability behavior). walErr observes non-fatal append
	// failures on lifecycle records — the submit record is the one that
	// fails the submission itself.
	wal     *durable.Log
	results *durable.BlobStore
	walErr  func(err error)

	sem     chan struct{}
	ttl     time.Duration
	maxJobs int

	root   context.Context
	cancel context.CancelFunc
	closed bool
	wg     sync.WaitGroup

	// tracer records one job:<type> span per finished job; nil disables.
	tracer *obs.Tracer

	// panicHook observes recovered runner panics (the server journals them
	// as job_panic events); nil disables.
	panicHook func(id string, typ api.JobType, traceID, msg string)

	now func() time.Time // injectable clock (tests)
}

type jobEntry struct {
	status api.Job
	cancel context.CancelFunc
	result *api.JobResult
	run    JobRunner
	done   chan struct{} // closed when the job reaches a terminal state
	tc     api.TraceContext
	key    string // idempotency key, for byKey cleanup on purge
}

// Job-manager defaults (overridable through Config).
const (
	defaultJobWorkers = 2
	defaultJobTTL     = 15 * time.Minute
	defaultMaxJobs    = 64
)

// NewJobManager builds a manager running at most workers jobs at once,
// admitting at most maxJobs live (non-expired) jobs, and retaining
// terminal jobs for ttl.
func NewJobManager(workers, maxJobs int, ttl time.Duration) *JobManager {
	if workers <= 0 {
		workers = defaultJobWorkers
	}
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	if ttl <= 0 {
		ttl = defaultJobTTL
	}
	// The manager is a lifecycle root: jobs outlive the submitting
	// request and are canceled by Close, not by any caller context.
	//sicklevet:ignore ctxfirst lifecycle root, canceled by Close
	ctx, cancel := context.WithCancel(context.Background())
	return &JobManager{
		jobs:    map[string]*jobEntry{},
		byKey:   map[string]string{},
		sem:     make(chan struct{}, workers),
		ttl:     ttl,
		maxJobs: maxJobs,
		root:    ctx,
		cancel:  cancel,
		now:     time.Now,
	}
}

// SetTracer installs the span recorder for job lifecycles. Call before
// serving traffic (not synchronized with in-flight jobs).
func (jm *JobManager) SetTracer(t *obs.Tracer) { jm.tracer = t }

// SetPanicHook installs an observer for recovered job panics. Call before
// serving traffic (not synchronized with in-flight jobs).
func (jm *JobManager) SetPanicHook(h func(id string, typ api.JobType, traceID, msg string)) {
	jm.panicHook = h
}

// SetDurable attaches the write-ahead log and result store. onErr (may
// be nil) observes append failures on start/terminal records — those
// jobs still finish in memory; the WAL latches failed so the *next*
// submission is refused with a typed unavailable error. Call before
// serving traffic.
func (jm *JobManager) SetDurable(st *durable.Store, onErr func(error)) {
	if st == nil {
		return
	}
	jm.wal = st.WAL
	jm.results = st.Results
	jm.walErr = onErr
}

// reportWALErr forwards a non-fatal durability error to the hook.
func (jm *JobManager) reportWALErr(err error) {
	if jm.walErr != nil && err != nil {
		jm.walErr(err)
	}
}

// Submit admits a job and returns its initial (pending) snapshot. A full
// admission set rejects with api.CodeOverloaded; a closed manager with
// api.CodeShuttingDown.
func (jm *JobManager) Submit(typ api.JobType, run JobRunner) (api.Job, error) {
	//sicklevet:ignore ctxfirst untraced compatibility entry point, the job's lifetime is the manager root
	return jm.SubmitTraced(context.Background(), typ, run)
}

// SubmitTraced is Submit carrying the submitting request's trace: the
// job's lifecycle span joins that trace (and the job context carries it,
// so work the runner does downstream is parented correctly). The job's
// cancellation lifetime is still the manager's root — a submitting HTTP
// request ending must not cancel its job.
func (jm *JobManager) SubmitTraced(ctx context.Context, typ api.JobType, run JobRunner) (api.Job, error) {
	job, _, err := jm.SubmitWith(ctx, typ, run, SubmitOptions{})
	return job, err
}

// SubmitOptions carries the durability-facing parts of a submission.
type SubmitOptions struct {
	// Key is the client's idempotency key; a resubmission with the same
	// key returns the original job instead of admitting a duplicate.
	Key string
	// Payload is the serialized SubmitJobRequest, written to the WAL so
	// recovery can rebuild the runner after a restart.
	Payload json.RawMessage
}

// SubmitWith is SubmitTraced with idempotency and durability: the
// returned bool reports a dedup hit (the job is a prior submission with
// the same key). When a WAL is attached the submit record is appended —
// and fsync'd — before the job is admitted; an append failure (disk
// gone, fsync refused) rejects the submission with a typed
// api.CodeUnavailable error rather than accepting work that would
// silently vanish in a crash.
func (jm *JobManager) SubmitWith(ctx context.Context, typ api.JobType, run JobRunner, opts SubmitOptions) (api.Job, bool, error) {
	tc, _ := api.TraceFrom(ctx)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return api.Job{}, false, errShuttingDown()
	}
	jm.purgeLocked()
	if opts.Key != "" {
		if id, ok := jm.byKey[opts.Key]; ok {
			if j, ok := jm.jobs[id]; ok {
				return j.status, true, nil
			}
			delete(jm.byKey, opts.Key) // job expired; key is free again
		}
	}
	// Only live (non-terminal) jobs count against admission: retained
	// finished jobs are history, not load, and counting them would turn
	// maxJobs into a hard rate limit of maxJobs-per-TTL on an idle server.
	active := 0
	for _, j := range jm.jobs {
		if !j.status.State.Terminal() {
			active++
		}
	}
	if active >= jm.maxJobs {
		return api.Job{}, false, api.Errorf(api.CodeOverloaded,
			"serve: job queue full (%d active jobs)", active).WithRetryAfter(5)
	}
	jm.seq++
	id := fmt.Sprintf("job-%d", jm.seq)
	created := jm.now()
	if jm.wal != nil {
		if err := jm.wal.Append(durable.Record{
			Kind: durable.KindSubmit, ID: id, Type: string(typ),
			Key: opts.Key, Payload: opts.Payload, Time: created,
		}); err != nil {
			return api.Job{}, false, err
		}
	}
	jobCtx, cancel := context.WithCancel(jm.root)
	if tc.TraceID != "" {
		jobCtx = api.WithTrace(jobCtx, tc)
	}
	j := &jobEntry{
		status: api.Job{
			ID: id, Type: typ, State: api.JobPending, CreatedAt: created,
			IdempotencyKey: opts.Key,
		},
		cancel: cancel,
		run:    run,
		done:   make(chan struct{}),
		tc:     tc,
		key:    opts.Key,
	}
	jm.jobs[id] = j
	if opts.Key != "" {
		jm.byKey[opts.Key] = id
	}
	jm.wg.Add(1)
	go jm.execute(jobCtx, j)
	return j.status, false, nil
}

// Restore re-admits one job recovered from the WAL; call before serving
// traffic. Terminal jobs come back queryable with their (possibly nil)
// result; non-terminal ones are re-enqueued from scratch — the job ran
// zero or a partial number of times before the crash, and runners are
// deterministic pipelines, so running again is the correct resume. The
// ID sequence is bumped past recovered IDs so new jobs never collide.
func (jm *JobManager) Restore(job api.Job, run JobRunner, result *api.JobResult) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if s, ok := strings.CutPrefix(job.ID, "job-"); ok {
		if n, err := strconv.Atoi(s); err == nil && n > jm.seq {
			jm.seq = n
		}
	}
	jobCtx, cancel := context.WithCancel(jm.root)
	j := &jobEntry{
		status: job,
		cancel: cancel,
		run:    run,
		done:   make(chan struct{}),
		key:    job.IdempotencyKey,
	}
	jm.jobs[job.ID] = j
	if job.IdempotencyKey != "" {
		jm.byKey[job.IdempotencyKey] = job.ID
	}
	if job.State.Terminal() {
		j.result = result
		close(j.done)
		cancel()
		return
	}
	j.status.State = api.JobPending
	j.status.Progress = api.JobProgress{}
	j.status.StartedAt = time.Time{}
	jm.wg.Add(1)
	go jm.execute(jobCtx, j)
}

// execute is the per-job goroutine: wait for a worker slot, run, finish.
func (jm *JobManager) execute(ctx context.Context, j *jobEntry) {
	defer jm.wg.Done()
	select {
	case jm.sem <- struct{}{}:
		defer func() { <-jm.sem }()
	case <-ctx.Done():
		// Canceled while still pending: never ran.
		jm.finish(j, nil, ctx.Err())
		return
	}
	if err := ctx.Err(); err != nil {
		jm.finish(j, nil, err)
		return
	}
	jm.mu.Lock()
	j.status.State = api.JobRunning
	j.status.StartedAt = jm.now()
	if jm.wal != nil {
		// Advisory: losing the start record only means recovery sees the
		// job as never-started and re-enqueues it, which is what it would
		// do for a running job anyway. The append is made under jm.mu so
		// lifecycle records land in transition order.
		if err := jm.wal.Append(durable.Record{
			Kind: durable.KindStart, ID: j.status.ID, Time: j.status.StartedAt,
		}); err != nil {
			jm.reportWALErr(err)
		}
	}
	jm.mu.Unlock()
	progress := func(stage string, done, total int) {
		jm.mu.Lock()
		j.status.Progress = api.JobProgress{Stage: stage, Done: done, Total: total}
		jm.mu.Unlock()
	}
	res, err := runProtected(ctx, j.run, progress, func(msg string) {
		if jm.panicHook != nil {
			jm.panicHook(j.status.ID, j.status.Type, j.tc.TraceID, msg)
		}
	})
	jm.finish(j, res, err)
}

// runProtected converts runner panics (shape mismatches deep in the nn
// stack) into typed internal errors so a malformed job cannot crash the
// service. onPanic (may be nil) observes the recovered value.
func runProtected(ctx context.Context, run JobRunner, progress func(string, int, int), onPanic func(string)) (res *api.JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if onPanic != nil {
				onPanic(fmt.Sprint(r))
			}
			res, err = nil, api.Errorf(api.CodeInternal, "serve: job panicked: %v", r)
		}
	}()
	return run(ctx, progress)
}

// finish records the terminal state. Cancellation maps to JobCanceled
// (shutting_down when the whole manager is closing, job_canceled when the
// client asked); other errors to JobFailed with their typed envelope.
func (jm *JobManager) finish(j *jobEntry, res *api.JobResult, err error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j.status.FinishedAt = jm.now()
	switch {
	case err == nil:
		j.status.State = api.JobSucceeded
		j.result = res
	// The runner may hand cancellation back raw (ctx.Err()) or already
	// wrapped into the typed envelope; both mean the same thing here.
	case errors.Is(err, context.Canceled),
		api.AsError(err).Code == api.CodeCanceled:
		j.status.State = api.JobCanceled
		if jm.closed {
			j.status.Error = errShuttingDown()
		} else {
			j.status.Error = api.Errorf(api.CodeJobCanceled, "serve: job %s canceled", j.status.ID)
		}
	default:
		j.status.State = api.JobFailed
		j.status.Error = api.AsError(err)
	}
	// Persist the outcome — result blob first, then the terminal record,
	// so a terminal WAL entry never promises a result that isn't on disk.
	// Jobs interrupted by shutdown keep their non-terminal WAL state on
	// purpose: a drained replica's in-flight jobs resume on restart.
	if jm.wal != nil && !(jm.closed && j.status.State == api.JobCanceled) {
		if j.status.State == api.JobSucceeded && j.result != nil {
			if b, merr := json.Marshal(j.result); merr == nil {
				if perr := jm.results.Put(j.status.ID, b); perr != nil {
					jm.reportWALErr(perr)
				}
			}
		}
		if werr := jm.wal.Append(durable.Record{
			Kind: durable.KindTerminal, ID: j.status.ID,
			State: string(j.status.State), Error: j.status.Error,
			Time: j.status.FinishedAt,
		}); werr != nil {
			jm.reportWALErr(werr)
		}
	}
	close(j.done)
	if j.tc.TraceID != "" {
		jm.tracer.Record(obs.Span{
			TraceID: j.tc.TraceID, SpanID: api.NewSpanID(), ParentID: j.tc.SpanID,
			Name: "job:" + string(j.status.Type), Start: j.status.CreatedAt,
			Seconds: j.status.FinishedAt.Sub(j.status.CreatedAt).Seconds(),
			Attrs: map[string]string{
				"id":    j.status.ID,
				"state": string(j.status.State),
			},
		})
	}
}

// purgeLocked drops terminal jobs older than the retention TTL and, if
// history still outnumbers 4×maxJobs, the oldest terminal jobs beyond that
// cap — memory stays bounded even under a submit storm faster than the
// TTL. Callers hold jm.mu.
func (jm *JobManager) purgeLocked() {
	cutoff := jm.now().Add(-jm.ttl)
	var terminal []*jobEntry
	for id, j := range jm.jobs {
		if !j.status.State.Terminal() {
			continue
		}
		if j.status.FinishedAt.Before(cutoff) {
			jm.dropLocked(id, j)
			continue
		}
		terminal = append(terminal, j)
	}
	if excess := len(terminal) - 4*jm.maxJobs; excess > 0 {
		sort.Slice(terminal, func(a, b int) bool {
			return terminal[a].status.FinishedAt.Before(terminal[b].status.FinishedAt)
		})
		for _, j := range terminal[:excess] {
			jm.dropLocked(j.status.ID, j)
		}
	}
}

// dropLocked removes one expired job and everything keyed to it: its
// idempotency-key reservation and its on-disk result blob. The WAL needs
// no delete record — expired jobs are simply not re-appended at the next
// compaction. Callers hold jm.mu.
func (jm *JobManager) dropLocked(id string, j *jobEntry) {
	delete(jm.jobs, id)
	if j.key != "" && jm.byKey[j.key] == id {
		delete(jm.byKey, j.key)
	}
	if jm.results != nil {
		jm.results.Delete(id)
	}
}

// Get returns a job's status snapshot.
func (jm *JobManager) Get(id string) (api.Job, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	j, ok := jm.jobs[id]
	if !ok {
		return api.Job{}, api.Errorf(api.CodeJobNotFound, "serve: no job %q", id)
	}
	return j.status, nil
}

// GetByKey returns the job holding an idempotency key — the lookup a
// shard router uses to ask each member of a key's owner set "do you hold
// key X?" before admitting a resubmission. An unclaimed (or expired) key
// answers a typed job_not_found.
func (jm *JobManager) GetByKey(key string) (api.Job, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	if key != "" {
		if id, ok := jm.byKey[key]; ok {
			if j, ok := jm.jobs[id]; ok {
				return j.status, nil
			}
		}
	}
	return api.Job{}, api.Errorf(api.CodeJobNotFound, "serve: no job under idempotency key %q", key)
}

// List returns every live job, oldest first.
func (jm *JobManager) List() []api.Job {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	out := make([]api.Job, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		out = append(out, j.status)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].CreatedAt.Before(out[b].CreatedAt) })
	return out
}

// Result returns a succeeded job's output; non-terminal jobs answer
// job_not_ready, canceled ones job_canceled, failed ones their own error.
func (jm *JobManager) Result(id string) (*api.JobResult, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	j, ok := jm.jobs[id]
	if !ok {
		return nil, api.Errorf(api.CodeJobNotFound, "serve: no job %q", id)
	}
	switch j.status.State {
	case api.JobSucceeded:
		return j.result, nil
	case api.JobCanceled:
		return nil, api.Errorf(api.CodeJobCanceled, "serve: job %q was canceled", id)
	case api.JobFailed:
		return nil, j.status.Error
	default:
		return nil, api.Errorf(api.CodeJobNotReady, "serve: job %q is %s", id, j.status.State)
	}
}

// Cancel requests cancellation and returns the current snapshot. Terminal
// jobs are untouched (cancel is idempotent); a pending or running job's
// context is canceled and its state becomes canceled once the runner
// observes the signal — poll GET /v2/jobs/{id} or use Done.
func (jm *JobManager) Cancel(id string) (api.Job, error) {
	jm.mu.Lock()
	j, ok := jm.jobs[id]
	if !ok {
		jm.mu.Unlock()
		return api.Job{}, api.Errorf(api.CodeJobNotFound, "serve: no job %q", id)
	}
	snapshot := j.status
	jm.mu.Unlock()
	if !snapshot.State.Terminal() {
		j.cancel()
	}
	return snapshot, nil
}

// Done exposes the job's terminal-state signal (tests and waiters).
func (jm *JobManager) Done(id string) (<-chan struct{}, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Stats counts live jobs by state (rendered into /metrics and /healthz).
// It purges first so the gauges agree with what Get/List would answer.
func (jm *JobManager) Stats() map[string]int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.purgeLocked()
	out := map[string]int{}
	for _, j := range jm.jobs {
		out[string(j.status.State)]++
	}
	return out
}

// Close cancels every non-terminal job and waits for their runners to
// return. Safe to call more than once.
func (jm *JobManager) Close() {
	jm.mu.Lock()
	jm.closed = true
	jm.mu.Unlock()
	jm.cancel()
	jm.wg.Wait()
}
