package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(3)
	load := func(v string) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, hit, err := c.GetOrLoad(context.Background(), k, load(k)); hit || err != nil {
			t.Fatalf("cold load of %q: hit=%v err=%v", k, hit, err)
		}
	}
	// Touch "a" so "b" becomes least recently used.
	if _, hit, _ := c.GetOrLoad(context.Background(), "a", load("a")); !hit {
		t.Fatal("expected hit on a")
	}
	// Inserting "d" must evict "b".
	c.GetOrLoad(context.Background(), "d", load("d"))
	keys := c.Keys()
	want := []string{"d", "a", "c"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("MRU order = %v, want %v", keys, want)
	}
	if _, hit, _ := c.GetOrLoad(context.Background(), "b", load("b")); hit {
		t.Fatal("b should have been evicted")
	}
	hits, misses, evictions := c.Stats()
	// a,b,c,d cold + b re-load = 5 misses; a + the final b... b was a miss.
	if hits != 1 || misses != 5 || evictions < 2 {
		t.Fatalf("stats = %d hits %d misses %d evictions, want 1/5/>=2", hits, misses, evictions)
	}
}

func TestLRUConcurrentLoadDedup(t *testing.T) {
	c := NewLRU(4)
	var loads int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrLoad(context.Background(), "k", func() (any, error) {
				atomic.AddInt64(&loads, 1)
				return 99, nil
			})
			if err != nil || v.(int) != 99 {
				t.Errorf("GetOrLoad = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Fatalf("loader ran %d times for one key, want 1", loads)
	}
}

func TestLRUFailedLoadRetries(t *testing.T) {
	c := NewLRU(2)
	calls := 0
	fail := func() (any, error) { calls++; return nil, fmt.Errorf("boom") }
	if _, _, err := c.GetOrLoad(context.Background(), "k", fail); err == nil {
		t.Fatal("expected error")
	}
	if _, hit, err := c.GetOrLoad(context.Background(), "k", fail); err == nil || hit {
		t.Fatalf("failed entry must not be cached (hit=%v err=%v)", hit, err)
	}
	if calls != 2 {
		t.Fatalf("loader calls = %d, want 2", calls)
	}
}
