package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// runMetricsLint fetches a live /metrics endpoint and checks the exposition
// against the Prometheus text-format rules (obs.LintExposition): HELP/TYPE
// present, counters suffixed _total, histograms with cumulative le buckets
// plus _sum/_count. It also requires at least one le-bucketed series, so a
// server that silently dropped its latency histograms fails the gate.
func runMetricsLint(url string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("lintmetrics: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("lintmetrics: %s answered HTTP %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("lintmetrics: read body: %w", err)
	}
	text := string(raw)

	errs := obs.LintExposition(text)
	if !strings.Contains(text, `le="`) {
		errs = append(errs, fmt.Errorf("no le-bucketed histogram series in exposition"))
	}
	families := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families++
		}
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Printf("LINT %s: %v\n", url, e)
		}
		return fmt.Errorf("lintmetrics: %d violation(s) in %d families", len(errs), families)
	}
	fmt.Printf("lintmetrics: %s clean (%d families, %d bytes)\n", url, families, len(raw))
	return nil
}
