package synth

import (
	"math"
	"testing"

	"repro/internal/spectral"
	"repro/internal/stats"
)

func TestIsotropicDivergenceFree(t *testing.T) {
	f := Isotropic(IsotropicConfig{N: 16, Seed: 1})
	n := f.Nx
	u, v, w := f.Var("u"), f.Var("v"), f.Var("w")
	dudx := spectral.Derivative(u, n, n, n, 0)
	dvdy := spectral.Derivative(v, n, n, n, 1)
	dwdz := spectral.Derivative(w, n, n, n, 2)
	maxDiv, maxU := 0.0, 0.0
	for i := range dudx {
		d := math.Abs(dudx[i] + dvdy[i] + dwdz[i])
		if d > maxDiv {
			maxDiv = d
		}
		if a := math.Abs(u[i]); a > maxU {
			maxU = a
		}
	}
	if maxDiv > 1e-9*maxU {
		t.Fatalf("divergence %v too large relative to |u| %v", maxDiv, maxU)
	}
}

func TestIsotropicRMSAndIsotropy(t *testing.T) {
	f := Isotropic(IsotropicConfig{N: 32, Seed: 2, URMS: 1.5})
	// Components are rescaled by a common factor (to keep the field
	// solenoidal), so each component RMS is statistically, not exactly, 1.5.
	for _, name := range []string{"u", "v", "w"} {
		rms := f.RMS(name)
		if math.Abs(rms-1.5) > 0.25 {
			t.Fatalf("RMS(%s) = %v, want ~1.5", name, rms)
		}
	}
	// The mean-square over all components is exact by construction.
	tot := f.RMS("u")*f.RMS("u") + f.RMS("v")*f.RMS("v") + f.RMS("w")*f.RMS("w")
	if math.Abs(tot-3*1.5*1.5) > 1e-9 {
		t.Fatalf("total KE = %v, want %v", tot, 3*1.5*1.5)
	}
}

func TestIsotropicSpectrumShape(t *testing.T) {
	f := Isotropic(IsotropicConfig{N: 32, Seed: 3, KPeak: 4})
	e := spectral.EnergySpectrum(f.Var("u"), f.Var("v"), f.Var("w"), 32, 32, 32)
	// Energy must peak near KPeak and decay beyond it.
	peak := 0
	for k := 1; k < 12; k++ {
		if e[k] > e[peak] {
			peak = k
		}
	}
	if peak < 2 || peak > 6 {
		t.Fatalf("spectrum peak at k=%d, want near 4 (E=%v)", peak, e[:12])
	}
	if e[10] >= e[4] {
		t.Fatalf("spectrum should decay beyond peak: E(10)=%v >= E(4)=%v", e[10], e[4])
	}
}

func TestIsotropicHasDerivedVars(t *testing.T) {
	f := Isotropic(IsotropicConfig{N: 16, Seed: 4})
	for _, v := range []string{"u", "v", "w", "p", "dissipation", "enstrophy"} {
		if !f.HasVar(v) {
			t.Fatalf("missing variable %q", v)
		}
	}
	// Dissipation and enstrophy are non-negative.
	for _, name := range []string{"dissipation", "enstrophy"} {
		for i, x := range f.Var(name) {
			if x < 0 {
				t.Fatalf("%s[%d] = %v < 0", name, i, x)
			}
		}
	}
}

func TestIsotropicDeterministicUnderSeed(t *testing.T) {
	a := Isotropic(IsotropicConfig{N: 16, Seed: 7})
	b := Isotropic(IsotropicConfig{N: 16, Seed: 7})
	ua, ub := a.Var("u"), b.Var("u")
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatal("same seed must reproduce the field")
		}
	}
	c := Isotropic(IsotropicConfig{N: 16, Seed: 8})
	same := true
	for i := range ua {
		if ua[i] != c.Var("u")[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestStratifiedAnisotropy(t *testing.T) {
	f := Stratified(StratifiedConfig{Nx: 32, Ny: 32, Nz: 16, Seed: 5})
	// Vertical velocity must be strongly suppressed vs horizontal.
	uRMS, wRMS := f.RMS("u"), f.RMS("w")
	if wRMS > 0.5*uRMS {
		t.Fatalf("stratified field not anisotropic: w_rms=%v, u_rms=%v", wRMS, uRMS)
	}
}

func TestStratifiedDensityStableGradient(t *testing.T) {
	f := Stratified(StratifiedConfig{Nx: 16, Ny: 16, Nz: 16, Seed: 6})
	r := f.Var("r")
	// Horizontally averaged density must decrease with z (stable).
	meanAt := func(k int) float64 {
		s := 0.0
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				s += r[f.Idx(i, j, k)]
			}
		}
		return s / float64(f.Nx*f.Ny)
	}
	if !(meanAt(12) < meanAt(2)) {
		t.Fatalf("density profile not stable: rho(z=12)=%v, rho(z=2)=%v", meanAt(12), meanAt(2))
	}
}

func TestStratifiedGravityAxisY(t *testing.T) {
	f := Stratified(StratifiedConfig{Nx: 16, Ny: 16, Nz: 16, Seed: 7, GravityAxis: 1})
	// With gravity along y, v is the suppressed component.
	if f.RMS("v") > 0.5*f.RMS("u") {
		t.Fatalf("gravity-y field should suppress v: v_rms=%v u_rms=%v", f.RMS("v"), f.RMS("u"))
	}
	if !f.HasVar("rhoy") || !f.HasVar("ee") {
		t.Fatal("P1F100 aliases rhoy/ee missing")
	}
}

func TestStratifiedVariables(t *testing.T) {
	f := Stratified(StratifiedConfig{Nx: 16, Ny: 16, Nz: 8, Seed: 8})
	for _, v := range []string{"u", "v", "w", "r", "p", "dissipation", "pv"} {
		if !f.HasVar(v) {
			t.Fatalf("missing %q", v)
		}
	}
}

func TestSSTDatasetDecays(t *testing.T) {
	d := SSTDataset("SST-TEST", 5, StratifiedConfig{Nx: 16, Ny: 16, Nz: 8, Seed: 9})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NTime() != 5 {
		t.Fatalf("NTime = %d", d.NTime())
	}
	e0 := d.Snapshots[0].RMS("u")
	e4 := d.Snapshots[4].RMS("u")
	if !(e4 < e0) {
		t.Fatalf("trajectory should decay: rms(t0)=%v rms(t4)=%v", e0, e4)
	}
}

func TestCombustionFrontStructure(t *testing.T) {
	f := Combustion(CombustionConfig{Nx: 128, Ny: 128, Seed: 10})
	c := f.Var("C")
	cv := f.Var("Cvar")
	// Left edge unburnt (~0), right edge burnt (~1).
	if c[f.Idx(2, 64, 0)] > 0.1 {
		t.Fatalf("left edge C = %v, want ~0", c[f.Idx(2, 64, 0)])
	}
	if c[f.Idx(125, 64, 0)] < 0.9 {
		t.Fatalf("right edge C = %v, want ~1", c[f.Idx(125, 64, 0)])
	}
	// Variance peaks somewhere in the middle band and is ~0 at edges.
	maxCv := 0.0
	for i := range cv {
		if cv[i] > maxCv {
			maxCv = cv[i]
		}
	}
	if maxCv < 0.1 {
		t.Fatalf("front variance never develops: max Cvar = %v", maxCv)
	}
	if cv[f.Idx(2, 64, 0)] > 0.05*maxCv {
		t.Fatal("variance should vanish away from the front")
	}
}

func TestCombustionPhaseSpaceIsClumped(t *testing.T) {
	// The defining property: the (C, Cvar) phase-space density is extremely
	// non-uniform — most mass at the (0,0)/(1,0) plateaus.
	f := Combustion(CombustionConfig{Nx: 256, Ny: 256, Seed: 11})
	pts := f.Points([]string{"C", "Cvar"}, nil)
	stats.NormalizeColumns(pts)
	h := stats.NDHistogramFromPoints(pts, 16)
	if ui := h.UniformityIndex(); ui > 0.6 {
		t.Fatalf("combustion phase space should be clumped, uniformity=%v", ui)
	}
}

func TestTC2DDatasetValid(t *testing.T) {
	d := TC2DDataset(CombustionConfig{Nx: 64, Ny: 64, Seed: 12})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIsotropic32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Isotropic(IsotropicConfig{N: 32, Seed: int64(i)})
	}
}

func BenchmarkStratified32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Stratified(StratifiedConfig{Nx: 32, Ny: 32, Nz: 16, Seed: int64(i)})
	}
}
