package olog

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError, "": LevelInfo,
	} {
		got, ok := ParseLevel(s)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestTextOutputAndFiltering(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelInfo, false)
	l.Debug("hidden")
	l.Info("served", "route", "/v1/infer", "code", 200)
	l.Warn("odd value", "msg with space", "a b")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug leaked through info level")
	}
	if !strings.Contains(out, "info served route=/v1/infer code=200") {
		t.Errorf("text format wrong: %q", out)
	}
	if !strings.Contains(out, `"a b"`) {
		t.Errorf("value with space not quoted: %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelDebug, true).With("tier", "serve")
	l.Info("request", "route", "/healthz", "trace", "abc")
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	for k, want := range map[string]string{
		"level": "info", "msg": "request", "tier": "serve",
		"route": "/healthz", "trace": "abc",
	} {
		if rec[k] != want {
			t.Errorf("%s = %v, want %s", k, rec[k], want)
		}
	}
	if rec["ts"] == nil {
		t.Error("missing ts")
	}
}

func TestNilLoggerNoops(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With("a", "b") != nil {
		t.Error("nil With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger should report disabled")
	}
}

func TestConcurrentUse(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelDebug, false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With("worker", w)
			for i := 0; i < 100; i++ {
				child.Info("tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Count(buf.String(), "\n")
	if lines != 800 {
		t.Errorf("got %d lines, want 800", lines)
	}
}
