// Golden input for metricname: namespace/shape, unit suffixes,
// constant names, duplicate registration sites.
package a

import "repro/internal/obs"

func register(reg *obs.Registry, dynamic string) {
	reg.Counter("sickle_requests_total", "handled requests")
	reg.Counter("sickle_requests", "missing suffix")  // want `counter "sickle_requests" must end in _total`
	reg.Counter("Sickle-Errors_total", "bad shape")   // want `must match sickle\(_\[a-z0-9\]\+\)\+`
	reg.Gauge("sickle_queue_depth", "queue depth")
	reg.Gauge("sickle_queue_total", "misnamed gauge") // want `gauge "sickle_queue_total" must not end in _total`
	reg.Histogram("sickle_latency_seconds", "latency", nil)
	reg.Histogram("sickle_latency", "no unit", nil)   // want `must end in a unit suffix`
	reg.GaugeFunc("sickle_up", "liveness", func() float64 { return 1 })
	reg.Counter(dynamic, "unlintable")                // want `must be a compile-time string constant`
	reg.Counter("sickle_dup_total", "first site")
	reg.Counter("sickle_dup_total", "second site")    // want `"sickle_dup_total" already registered`
	//sicklevet:ignore metricname legacy dashboard series, renaming breaks alerts
	reg.Counter("legacy_requests", "suppressed")
}
