package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestOwnerCacheBoundsAndEviction(t *testing.T) {
	oc := newOwnerCache(4)
	for i := 0; i < 10; i++ {
		oc.Remember(fmt.Sprintf("job-%d", i), "r0", "")
	}
	if oc.Len() != 4 {
		t.Fatalf("cache holds %d entries, want cap 4", oc.Len())
	}
	// Oldest fell off, newest survive.
	if _, ok := oc.Resolve("job-0"); ok {
		t.Fatal("job-0 should have been LRU-evicted")
	}
	if rid, ok := oc.Resolve("job-9"); !ok || rid != "r0" {
		t.Fatalf("Resolve(job-9) = %q, %v", rid, ok)
	}

	// Resolve promotes: touching job-6 keeps it alive through two inserts.
	oc.Resolve("job-6")
	oc.Remember("job-10", "r1", "k10")
	oc.Remember("job-11", "r1", "k11")
	if _, ok := oc.Resolve("job-6"); !ok {
		t.Fatal("promoted job-6 should have survived the inserts")
	}

	// Key answers only while the entry still names the same replica.
	if k := oc.Key("job-10", "r1"); k != "k10" {
		t.Fatalf("Key(job-10, r1) = %q, want k10", k)
	}
	if k := oc.Key("job-10", "r0"); k != "" {
		t.Fatalf("Key(job-10, r0) = %q, want empty (replica mismatch)", k)
	}

	// A replicated copy (same raw ID, same key, different replica) does not
	// clobber the first-remembered owner; a different logical job (different
	// key) does.
	oc.Remember("job-10", "r2", "k10")
	if k := oc.Key("job-10", "r1"); k != "k10" {
		t.Fatalf("same-key re-Remember clobbered the owner: Key(job-10, r1) = %q", k)
	}
	oc.Remember("job-10", "r2", "other")
	if k := oc.Key("job-10", "r2"); k != "other" {
		t.Fatalf("different-key re-Remember did not overwrite: Key(job-10, r2) = %q", k)
	}
	oc.Remember("job-10", "r1", "k10")

	// ForgetReplica drops exactly that replica's entries.
	dropped := oc.ForgetReplica("r1")
	if dropped != 2 {
		t.Fatalf("ForgetReplica(r1) dropped %d, want 2", dropped)
	}
	if _, ok := oc.Resolve("job-10"); ok {
		t.Fatal("job-10 should be gone after its replica was forgotten")
	}
	if _, ok := oc.Resolve("job-6"); !ok {
		t.Fatal("job-6 (r0) should have survived ForgetReplica(r1)")
	}
}

// TestOwnerCacheChurnRace hammers one cache from many goroutines doing
// the full operation mix — the -race run is the assertion that matters,
// plus the invariant that the cache never exceeds its cap and that a
// forgotten replica's entries never resurface.
func TestOwnerCacheChurnRace(t *testing.T) {
	const capEntries = 64
	oc := newOwnerCache(capEntries)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				raw := fmt.Sprintf("job-%d", i%200)
				rep := fmt.Sprintf("r%d", i%4)
				switch i % 5 {
				case 0, 1:
					oc.Remember(raw, rep, "key-"+raw)
				case 2:
					oc.Resolve(raw)
				case 3:
					oc.Key(raw, rep)
				case 4:
					oc.ForgetReplica(rep)
				}
				if n := oc.Len(); n > capEntries {
					t.Errorf("cache grew to %d entries, cap %d", n, capEntries)
					return
				}
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced: forgetting a replica leaves nothing of it behind.
	oc.ForgetReplica("r2")
	for i := 0; i < 200; i++ {
		raw := fmt.Sprintf("job-%d", i)
		if rid, ok := oc.Resolve(raw); ok && rid == "r2" {
			t.Fatalf("%s still resolves to forgotten replica r2", raw)
		}
	}
	if n := oc.Len(); n > capEntries {
		t.Fatalf("cache holds %d entries after churn, cap %d", n, capEntries)
	}
}

// TestEjectionEvictsOwnerCache wires the ReplicaSet ejection hook the way
// the router does and verifies an ejected replica's sticky entries go with
// it — the old unbounded map kept them forever.
func TestEjectionEvictsOwnerCache(t *testing.T) {
	oc := newOwnerCache(16)
	rs, err := NewReplicaSet(SetConfig{
		URLs:      []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		FailAfter: 2,
	}, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	rs.OnEject(func(id string) { oc.ForgetReplica(id) })

	oc.Remember("job-1", "r0", "k1")
	oc.Remember("job-2", "r1", "k2")
	r0, _ := rs.Get("r0")
	rs.NoteFailure(r0, fmt.Errorf("boom"))
	rs.NoteFailure(r0, fmt.Errorf("boom"))
	if r0.Up() {
		t.Fatal("r0 should be ejected after FailAfter failures")
	}
	if _, ok := oc.Resolve("job-1"); ok {
		t.Fatal("ejected replica's cache entry survived")
	}
	if _, ok := oc.Resolve("job-2"); !ok {
		t.Fatal("healthy replica's cache entry was evicted too")
	}
}
