// Golden input for detparallel: nondeterminism inside ParallelFor
// kernel bodies.
package a

import (
	"math/rand"
	"time"

	"repro/internal/tensor"
)

func deterministic(p *tensor.Pool, xs []float64) {
	p.ParallelFor(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}

func nondeterministic(p *tensor.Pool, xs []float64, m map[string]float64) {
	p.ParallelFor(len(xs), 64, func(lo, hi int) {
		start := time.Now()  // want `time.Now inside a ParallelFor body`
		_ = rand.Float64()   // want `rand.Float64 inside a ParallelFor body`
		for k := range m {   // want `map iteration order inside a ParallelFor body`
			_ = k
		}
		nested := func() {
			_ = time.Since(start) // want `time.Since inside a ParallelFor body`
		}
		nested()
	})
}

func outsideKernel(m map[string]float64) {
	_ = time.Now()
	_ = rand.Float64()
	for k := range m {
		_ = k
	}
}

func annotated(p *tensor.Pool, xs []float64) {
	p.ParallelFor(len(xs), 64, func(lo, hi int) {
		//sicklevet:ignore detparallel benchmark harness timing, not numerics
		_ = time.Now()
	})
}
