package shard

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// Metrics is the router's instrumentation, backed by the shared
// obs.Registry: per-replica liveness and routing counters,
// failover/ejection/re-admission counters, and per-route request
// accounting with latency histograms. Rendered as Prometheus text
// exposition (with # HELP/# TYPE) on GET /metrics. All pre-registry
// series names are preserved; sickle_shard_request_seconds_sum{route} is
// now the _sum series of the sickle_shard_request_seconds histogram.
type Metrics struct {
	reg *obs.Registry

	up           *obs.GaugeVec
	routed       *obs.CounterVec
	failed       *obs.CounterVec
	failovers    *obs.Counter
	ejections    *obs.Counter
	readmissions *obs.Counter
	requests     *obs.CounterVec
	errors       *obs.CounterVec
	seconds      *obs.HistogramVec

	ownerDedupHits      *obs.Counter
	ownerReplications   *obs.CounterVec
	ownerReplFailures   *obs.Counter
	rebalances          *obs.Counter
	rebalanceMovedShare *obs.Gauge
}

// NewMetrics returns a collector over a fresh registry, with the process
// runtime gauges (goroutines, heap, GC, build info) attached.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg: reg,
		up: reg.Gauge("sickle_shard_replica_up",
			"Replica liveness (1 up, 0 ejected).", "replica"),
		routed: reg.Counter("sickle_shard_routed_requests_total",
			"Requests successfully served, by replica.", "replica"),
		failed: reg.Counter("sickle_shard_failed_requests_total",
			"Downstream calls that failed, by replica.", "replica"),
		failovers: reg.Counter("sickle_shard_failovers_total",
			"Requests retried on a non-primary ring node.").With(),
		ejections: reg.Counter("sickle_shard_ejections_total",
			"Replicas ejected from the ring.").With(),
		readmissions: reg.Counter("sickle_shard_readmissions_total",
			"Replicas re-admitted to the ring.").With(),
		requests: reg.Counter("sickle_shard_requests_total",
			"Router requests, by route.", "route"),
		errors: reg.Counter("sickle_shard_request_errors_total",
			"Router requests that returned an error, by route.", "route"),
		seconds: reg.Histogram("sickle_shard_request_seconds",
			"Router request latency in seconds, by route.", nil, "route"),
		ownerDedupHits: reg.Counter("sickle_shard_owner_dedup_hits_total",
			"Keyed resubmissions answered from a job already held by an owner-set member.").With(),
		ownerReplications: reg.Counter("sickle_shard_owner_replications_total",
			"Keyed submissions replicated to a non-primary owner, by replica.", "replica"),
		ownerReplFailures: reg.Counter("sickle_shard_owner_replication_failures_total",
			"Replication fan-out attempts that failed (the primary copy still exists).").With(),
		rebalances: reg.Counter("sickle_shard_rebalances_total",
			"Ring membership changes that moved keyspace ownership (joins and leaves).").With(),
		rebalanceMovedShare: reg.Gauge("sickle_shard_rebalance_moved_share",
			"Estimated share of the keyspace whose primary owner moved in the last rebalance.").With(),
	}
	obs.RegisterRuntime(reg)
	return m
}

// Registry exposes the underlying registry so the router can mount extra
// probes (and the debug mux can share /metrics).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// SetUp records a replica's liveness gauge.
func (m *Metrics) SetUp(replica string, up bool) {
	v := 0.0
	if up {
		v = 1
	}
	m.up.With(replica).Set(v)
}

// ObserveRouted counts one request successfully served by replica.
func (m *Metrics) ObserveRouted(replica string) {
	m.routed.With(replica).Inc()
}

// ObserveFailed counts one downstream call that failed on replica (and was
// failed over or surfaced to the client).
func (m *Metrics) ObserveFailed(replica string) {
	m.failed.With(replica).Inc()
}

// ObserveFailover counts one attempt on a non-primary ring node.
func (m *Metrics) ObserveFailover() {
	m.failovers.Inc()
}

// ObserveEjection counts one replica leaving the ring.
func (m *Metrics) ObserveEjection() {
	m.ejections.Inc()
}

// ObserveReadmission counts one replica rejoining the ring.
func (m *Metrics) ObserveReadmission() {
	m.readmissions.Inc()
}

// ObserveOwnerDedupHit counts one keyed resubmission answered from a job
// already held somewhere in the key's owner set.
func (m *Metrics) ObserveOwnerDedupHit() {
	m.ownerDedupHits.Inc()
}

// ObserveOwnerReplication counts one keyed submission copied to a
// non-primary owner.
func (m *Metrics) ObserveOwnerReplication(replica string) {
	m.ownerReplications.With(replica).Inc()
}

// ObserveOwnerReplicationFailure counts one replication fan-out attempt
// that failed (best-effort: the primary copy still exists).
func (m *Metrics) ObserveOwnerReplicationFailure() {
	m.ownerReplFailures.Inc()
}

// ObserveRebalance records one membership change together with the
// estimated share of the keyspace whose primary owner it moved.
func (m *Metrics) ObserveRebalance(movedShare float64) {
	m.rebalances.Inc()
	m.rebalanceMovedShare.Set(movedShare)
}

// OwnerDedupHitsTotal returns the owner-set dedup counter (tests).
func (m *Metrics) OwnerDedupHitsTotal() int64 {
	return int64(m.ownerDedupHits.Value())
}

// OwnerReplicationsTotal returns the replication counter for one replica
// (tests).
func (m *Metrics) OwnerReplicationsTotal(replica string) int64 {
	return int64(m.ownerReplications.With(replica).Value())
}

// RebalancesTotal returns the cumulative rebalance count (tests).
func (m *Metrics) RebalancesTotal() int64 {
	return int64(m.rebalances.Value())
}

// ObserveRequest records one router request on a route.
func (m *Metrics) ObserveRequest(route string, d time.Duration, failed bool) {
	m.ObserveRequestEx(route, d, failed, "")
}

// ObserveRequestEx is ObserveRequest carrying the request's trace ID as a
// latency-histogram exemplar (surfaced in /debug/history, not /metrics).
func (m *Metrics) ObserveRequestEx(route string, d time.Duration, failed bool, traceID string) {
	m.requests.With(route).Inc()
	m.seconds.With(route).ObserveEx(d.Seconds(), traceID)
	if failed {
		m.errors.With(route).Inc()
	}
}

// RoutedTotal returns the routed counter for one replica (tests).
func (m *Metrics) RoutedTotal(replica string) int64 {
	return int64(m.routed.With(replica).Value())
}

// FailoversTotal returns the cumulative failover count (tests).
func (m *Metrics) FailoversTotal() int64 {
	return int64(m.failovers.Value())
}

// Render writes the Prometheus text exposition.
func (m *Metrics) Render() string {
	return m.reg.Render()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
