package obs

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/tensor"
)

// memStatsCache throttles runtime.ReadMemStats, which stops the world:
// all runtime gauges registered by RegisterRuntime share one snapshot
// refreshed at most once per second, so a tight scrape loop cannot turn
// introspection into a GC hazard.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return c.stat
}

// RegisterRuntime adds process-level introspection gauges to reg:
//
//	sickle_build_info{go_version}         always 1; carries the toolchain
//	sickle_process_start_time_seconds     unix time this call ran
//	sickle_go_goroutines                  live goroutine count
//	sickle_go_heap_alloc_bytes            heap in use
//	sickle_go_gc_pause_seconds_total      cumulative stop-the-world pause
//	sickle_tensor_pool_workers            kernel pool size
//	sickle_tensor_pool_busy_workers       workers executing a task now
//	sickle_tensor_pool_tasks_total        tasks completed by pool workers
//
// Both serve and shard call this on their registries so every tier's
// /metrics carries the same runtime vocabulary.
func RegisterRuntime(reg *Registry) {
	start := float64(time.Now().UnixNano()) / 1e9
	cache := &memStatsCache{}

	reg.Gauge("sickle_build_info",
		"Build metadata; value is always 1.", "go_version").
		With(runtime.Version()).Set(1)
	reg.GaugeFunc("sickle_process_start_time_seconds",
		"Unix time the process started, in seconds.",
		func() float64 { return start })
	reg.GaugeFunc("sickle_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("sickle_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(cache.get().HeapAlloc) })
	reg.CounterFunc("sickle_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds.",
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
	reg.GaugeFunc("sickle_tensor_pool_workers",
		"Workers in the process-wide tensor kernel pool (0 when serial).",
		func() float64 { w, _, _ := tensor.PoolStats(); return float64(w) })
	reg.GaugeFunc("sickle_tensor_pool_busy_workers",
		"Tensor pool workers currently executing a task.",
		func() float64 { _, b, _ := tensor.PoolStats(); return float64(b) })
	reg.CounterFunc("sickle_tensor_pool_tasks_total",
		"Tasks completed by tensor pool workers since process start.",
		func() float64 { _, _, n := tensor.PoolStats(); return float64(n) })
}
