package sampling

import (
	"math/rand"
	"sort"

	"repro/internal/energy"
	"repro/internal/stats"
)

// Stratified bins the cluster variable into NumStrata equal-width strata
// and draws an equal share of samples from each occupied stratum, topping
// up from the global pool when strata run dry. Equal allocation (rather
// than proportional) is what makes it a variance-reduction method: rare
// strata are sampled at the same budget as dense ones.
type Stratified struct {
	NumStrata int // default 10
	Meter     *energy.Meter
}

// Name implements PointSampler.
func (Stratified) Name() string { return "stratified" }

// SelectPoints implements PointSampler.
func (s Stratified) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	validateRequest(d, n)
	total := d.N()
	if n >= total {
		return allIndices(total)
	}
	k := s.NumStrata
	if k <= 0 {
		k = 10
	}
	kcv := d.KCV()
	h := stats.HistogramFromData(kcv, k)
	members := make([][]int, k)
	for i, x := range kcv {
		b := h.BinIndex(x)
		members[b] = append(members[b], i)
	}
	occupied := 0
	for _, m := range members {
		if len(m) > 0 {
			occupied++
		}
	}
	if occupied == 0 {
		return nil
	}
	quota := n / occupied
	picked := make(map[int]bool, n)
	var out []int
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		take := quota
		if take > len(m) {
			take = len(m)
		}
		for _, j := range rng.Perm(len(m))[:take] {
			out = append(out, m[j])
			picked[m[j]] = true
		}
	}
	// Top up any shortfall uniformly from unpicked points.
	for len(out) < n {
		i := rng.Intn(total)
		if !picked[i] {
			picked[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	chargeSampling(s.Meter, total, dims(d), 2)
	return out
}
