package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// TracePayload is the /debug/traces/{id} response body: one trace's spans,
// ordered by start time. The shard router returns the same shape with
// downstream tiers' spans merged in.
type TracePayload struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// TraceListPayload is the /debug/traces listing body.
type TraceListPayload struct {
	Tier   string      `json:"tier"`
	Traces []TraceInfo `json:"traces"`
}

// HandleTraceList serves the trace listing (GET /debug/traces).
func (t *Tracer) HandleTraceList(w http.ResponseWriter, _ *http.Request) {
	tier := ""
	if t != nil {
		tier = t.tier
	}
	writeDebugJSON(w, TraceListPayload{Tier: tier, Traces: t.Traces(100)})
}

// HandleTraceByID serves one trace's spans (GET /debug/traces/{id}).
func (t *Tracer) HandleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := t.Spans(id)
	if len(spans) == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no trace " + id})
		return
	}
	writeDebugJSON(w, TracePayload{TraceID: id, Spans: spans})
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Mount registers the /debug/traces endpoints on a mux (both serve and
// shard expose them on their main listener).
func (t *Tracer) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/traces", t.HandleTraceList)
	mux.HandleFunc("GET /debug/traces/{id}", t.HandleTraceByID)
}

// Mounter is anything that can register its debug endpoints on a mux —
// the tsdb history store, the event journal, and the SLO engine all
// implement it, so binaries can hang extra surfaces off the -debug-addr
// sidecar without obs importing its own subpackages.
type Mounter interface {
	Mount(mux *http.ServeMux)
}

// NewDebugMux builds the opt-in -debug-addr surface: net/http/pprof under
// /debug/pprof/, the registry's /metrics, the tracer's /debug/traces
// endpoints, and any extra Mounters (history, events, SLO). reg and t may
// be nil (their endpoints are then omitted), as may extra entries.
func NewDebugMux(reg *Registry, t *Tracer, extra ...Mounter) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write([]byte(reg.Render()))
		})
	}
	if t != nil {
		t.Mount(mux)
	}
	for _, m := range extra {
		if m != nil {
			m.Mount(mux)
		}
	}
	return mux
}

// ServeDebug listens on addr with NewDebugMux in a background goroutine and
// returns the server so callers can Close it. Listen failures surface
// through onErr (may be nil); http.ErrServerClosed is filtered out.
func ServeDebug(addr string, reg *Registry, t *Tracer, onErr func(error), extra ...Mounter) *http.Server {
	srv := &http.Server{Addr: addr, Handler: NewDebugMux(reg, t, extra...)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && onErr != nil {
			onErr(err)
		}
	}()
	return srv
}
