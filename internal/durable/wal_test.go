package durable

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/pkg/api"
)

func openSealed(t *testing.T, dir string) (*Store, []JobRecord) {
	t.Helper()
	st, recs, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Re-append everything the previous incarnation had, like the server
	// does, so multi-reopen tests don't lose records to compaction.
	for _, r := range recs {
		st.WAL.Append(Record{Kind: KindSubmit, ID: r.ID, Type: string(r.Type),
			Key: r.Key, Payload: r.Payload, Time: r.Created})
		if r.State == api.JobRunning {
			st.WAL.Append(Record{Kind: KindStart, ID: r.ID, Time: r.Started})
		}
		if r.State.Terminal() {
			st.WAL.Append(Record{Kind: KindTerminal, ID: r.ID, State: string(r.State),
				Error: r.Err, Time: r.Finished})
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return st, recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, recs := openSealed(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	now := time.Now().Truncate(time.Millisecond)
	steps := []Record{
		{Kind: KindSubmit, ID: "job-1", Type: "subsample", Key: "k1",
			Payload: []byte(`{"type":"subsample"}`), Time: now},
		{Kind: KindStart, ID: "job-1", Time: now.Add(time.Millisecond)},
		{Kind: KindTerminal, ID: "job-1", State: "succeeded", Time: now.Add(2 * time.Millisecond)},
		{Kind: KindSubmit, ID: "job-2", Type: "train", Time: now.Add(3 * time.Millisecond)},
		{Kind: KindStart, ID: "job-2", Time: now.Add(4 * time.Millisecond)},
	}
	for _, r := range steps {
		if err := st.WAL.Append(r); err != nil {
			t.Fatalf("Append(%s %s): %v", r.Kind, r.ID, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, recs2 := openSealed(t, dir)
	defer st2.Close()
	if len(recs2) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(recs2))
	}
	j1, j2 := recs2[0], recs2[1]
	if j1.ID != "job-1" || j1.State != api.JobSucceeded || j1.Key != "k1" ||
		string(j1.Payload) != `{"type":"subsample"}` || j1.Type != api.JobSubsample {
		t.Fatalf("job-1 folded wrong: %+v", j1)
	}
	if !j1.Created.Equal(now) {
		t.Fatalf("job-1 created %v, want %v", j1.Created, now)
	}
	if j2.ID != "job-2" || j2.State != api.JobRunning {
		t.Fatalf("job-2 folded wrong: %+v", j2)
	}
}

func TestWALTerminalError(t *testing.T) {
	dir := t.TempDir()
	st, _ := openSealed(t, dir)
	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-1", Type: "train", Time: time.Now()})
	st.WAL.Append(Record{Kind: KindTerminal, ID: "job-1", State: "failed",
		Error: api.Errorf(api.CodeInvalidArgument, "bad spec"), Time: time.Now()})
	st.Close()

	st2, recs := openSealed(t, dir)
	defer st2.Close()
	if len(recs) != 1 || recs[0].State != api.JobFailed {
		t.Fatalf("folded %+v", recs)
	}
	if recs[0].Err == nil || recs[0].Err.Code != api.CodeInvalidArgument {
		t.Fatalf("error not preserved: %+v", recs[0].Err)
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openSealed(t, dir)
	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-1", Type: "subsample", Time: time.Now()})
	st.Close()

	// A crash mid-append leaves a torn frame; replay must stop at the
	// last good record instead of erroring.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}) // length says 32, frame truncated
	f.Close()

	st2, recs := openSealed(t, dir)
	defer st2.Close()
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("torn tail: replayed %+v", recs)
	}
}

func TestWALCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := openSealed(t, dir)
	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-1", Type: "subsample", Time: time.Now()})
	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-2", Type: "subsample", Time: time.Now()})
	st.Close()

	// Flip one byte in the last frame's payload: its CRC no longer
	// matches, so replay keeps job-1 and drops the corrupt tail.
	path := filepath.Join(dir, walName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, recs := openSealed(t, dir)
	defer st2.Close()
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("corrupt frame: replayed %+v", recs)
	}
}

func TestWALBadMagicRefuses(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), []byte("NOTAWAL_12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a wal.log with foreign magic")
	}
}

func TestWALAppendAfterCloseTypedUnavailable(t *testing.T) {
	st, _ := openSealed(t, t.TempDir())
	st.Close()
	err := st.WAL.Append(Record{Kind: KindSubmit, ID: "job-1", Time: time.Now()})
	if err == nil {
		t.Fatal("append after close succeeded")
	}
	if api.AsError(err).Code != api.CodeUnavailable {
		t.Fatalf("append after close: code %s, want unavailable", api.AsError(err).Code)
	}
}

func TestWALCrashPointFreezesLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := openSealed(t, dir)
	tripped := false
	st.WAL.SetCrashPoint("before:terminal", func() { tripped = true })

	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-1", Type: "subsample", Time: time.Now()})
	st.WAL.Append(Record{Kind: KindStart, ID: "job-1", Time: time.Now()})
	// The terminal append hits the crash point: dropped, log frozen.
	if err := st.WAL.Append(Record{Kind: KindTerminal, ID: "job-1", State: "succeeded", Time: time.Now()}); err != nil {
		t.Fatalf("frozen append errored: %v", err)
	}
	if !tripped {
		t.Fatal("crash point did not trip")
	}
	// Everything after the trip is silently lost, like a dead process.
	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-2", Type: "subsample", Time: time.Now()})
	st.Close()

	st2, recs := openSealed(t, dir)
	defer st2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d jobs, want 1 (job-2 was post-crash)", len(recs))
	}
	if recs[0].ID != "job-1" || recs[0].State != api.JobRunning {
		t.Fatalf("job-1 should have crashed mid-run: %+v", recs[0])
	}
}

func TestWALCompactionDropsUnreappended(t *testing.T) {
	dir := t.TempDir()
	st, _ := openSealed(t, dir)
	st.WAL.Append(Record{Kind: KindSubmit, ID: "job-1", Type: "subsample", Time: time.Now()})
	st.WAL.Append(Record{Kind: KindTerminal, ID: "job-1", State: "succeeded", Time: time.Now()})
	st.Close()

	// Open and seal WITHOUT re-appending: the expired-job path.
	st2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d, want 1", len(recs))
	}
	if err := st2.Seal(); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	_, recs3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 0 {
		t.Fatalf("compaction kept %d jobs, want 0", len(recs3))
	}
}
