package grid

import "fmt"

// Dataset is a time sequence of snapshots plus the learning-problem
// metadata from the paper's Table 1: which variables feed the model, which
// are targets, and which scalar drives K-means clustering (KCV).
type Dataset struct {
	Label       string
	Description string
	Snapshots   []*Field
	InputVars   []string
	OutputVars  []string
	ClusterVar  string // KCV in Table 1
	// GlobalTargets holds one scalar per snapshot for sample-single
	// problems (e.g. drag in OF2D); nil otherwise.
	GlobalTargets []float64
}

// Validate checks internal consistency: every snapshot has the declared
// variables and matching dimensions.
func (d *Dataset) Validate() error {
	if len(d.Snapshots) == 0 {
		return fmt.Errorf("dataset %q has no snapshots", d.Label)
	}
	ref := d.Snapshots[0]
	need := append(append([]string{}, d.InputVars...), d.OutputVars...)
	if d.ClusterVar != "" {
		need = append(need, d.ClusterVar)
	}
	for t, f := range d.Snapshots {
		if f.Nx != ref.Nx || f.Ny != ref.Ny || f.Nz != ref.Nz {
			return fmt.Errorf("dataset %q: snapshot %d is %dx%dx%d, snapshot 0 is %dx%dx%d",
				d.Label, t, f.Nx, f.Ny, f.Nz, ref.Nx, ref.Ny, ref.Nz)
		}
		for _, v := range need {
			if !f.HasVar(v) {
				return fmt.Errorf("dataset %q: snapshot %d missing variable %q", d.Label, t, v)
			}
		}
	}
	if d.GlobalTargets != nil && len(d.GlobalTargets) != len(d.Snapshots) {
		return fmt.Errorf("dataset %q: %d global targets for %d snapshots",
			d.Label, len(d.GlobalTargets), len(d.Snapshots))
	}
	return nil
}

// NTime returns the number of snapshots.
func (d *Dataset) NTime() int { return len(d.Snapshots) }

// SizeBytes returns the total float64 footprint across snapshots, the
// quantity reported in Table 1's Size column.
func (d *Dataset) SizeBytes() int64 {
	var s int64
	for _, f := range d.Snapshots {
		s += f.SizeBytes()
	}
	return s
}

// GridString formats the spatial dimensions like the paper's Table 1
// ("512×512×256" or "10800" for 2-D).
func (d *Dataset) GridString() string {
	if len(d.Snapshots) == 0 {
		return "-"
	}
	f := d.Snapshots[0]
	if f.Is2D() {
		return fmt.Sprintf("%d×%d", f.Nx, f.Ny)
	}
	return fmt.Sprintf("%d×%d×%d", f.Nx, f.Ny, f.Nz)
}
