package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/grid"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// newKeyRNG seeds the reservoir-key rng per snapshot (mirroring the offline
// per-snapshot seeding), so the kept set does not depend on which rank
// happened to process which snapshot.
func newKeyRNG(seed int64, snap int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(snap)*104729 + 1))
}

// featureBounds returns the per-input-variable (lo, hi) box of the reference
// snapshot, padded like stats.NDHistogramFromPoints so the max value stays
// inside the last cell. All ranks build their sketches over these shared
// bounds, which is what makes the periodic minimpi merges well-defined;
// later snapshots that drift outside the box are clamped to the edge cells
// (NDHistogram.CellIndex clamps).
func featureBounds(f *grid.Field, inVars []string) (lo, hi []float64) {
	lo = make([]float64, len(inVars))
	hi = make([]float64, len(inVars))
	for j, name := range inVars {
		v := f.Var(name)
		// Min/max is exact under any evaluation order, so the scan over a
		// snapshot-sized variable fans out across the kernel pool.
		l, h := v[0], v[0]
		var mu sync.Mutex
		tensor.DefaultPool().ParallelFor(len(v), 8192, func(p0, p1 int) {
			cl, ch := v[p0], v[p0]
			for _, x := range v[p0:p1] {
				if x < cl {
					cl = x
				}
				if x > ch {
					ch = x
				}
			}
			mu.Lock()
			if cl < l {
				l = cl
			}
			if ch > h {
				h = ch
			}
			mu.Unlock()
		})
		if h == l {
			h = l + 1
		} else {
			h += (h - l) * 1e-9
		}
		lo[j], hi[j] = l, h
	}
	return lo, hi
}

// maxDenseCells bounds the dense buffer a sketch merge allreduces: 2^20
// cells = 8 MiB of float64 per rank per merge, well within the pipeline's
// memory story.
const maxDenseCells = 1 << 20

// effectiveBins shrinks the per-dimension bin count until bins^dims fits the
// dense-merge budget, so high-dimensional feature spaces cannot blow up the
// collective. Sources whose dimensionality cannot fit even at 2 bins per
// dimension are rejected outright rather than silently over-allocating.
func effectiveBins(bins, dims int) (int, error) {
	if bins < 2 {
		bins = 2
	}
	fits := func(b int) bool {
		cells := 1
		for i := 0; i < dims; i++ {
			cells *= b
			if cells > maxDenseCells {
				return false
			}
		}
		return true
	}
	for bins > 2 && !fits(bins) {
		bins--
	}
	if !fits(bins) {
		return 0, fmt.Errorf("stream: %d feature dimensions exceed the sketch-merge budget (2^%d cells > %d)",
			dims, dims, maxDenseCells)
	}
	return bins, nil
}

// invDensityWeight is the streaming UIPS weight of point p: total mass over
// the mass of p's cell, estimated from the rank's merged global sketch plus
// its unmerged local delta. Rarely-seen phase-space regions get large
// weights, so the budgeted reservoir keeps them preferentially — the
// incremental analogue of the offline inverse-PDF acceptance.
func invDensityWeight(global, delta *stats.NDHistogram, p []float64) float64 {
	n := global.N + delta.N
	if n == 0 {
		return 1
	}
	cell := global.CellIndex(p)
	c := global.Counts[cell] + delta.Counts[cell]
	if c <= 0 {
		c = 1
	}
	return float64(n) / float64(c)
}

// resItem is one candidate point held by a budgeted reservoir.
type resItem struct {
	key      float64 // Efraimidis-Spirakis key (-Exp(1)/w); larger wins
	snap     int
	localIdx int
	features []float64
	targets  []float64
}

// cubeReservoir maintains at most budget points per hypercube across the
// whole stream, using weighted reservoir sampling (A-Res with the same
// -Exp(1)/w keys as sampling.weightedSampleWithoutReplacement): the kept set
// is the budget-many largest keys seen so far, maintained as a min-heap so
// each offer is O(log budget).
type cubeReservoir struct {
	cube   grid.Hypercube
	budget int
	items  []resItem // min-heap on key
}

func newCubeReservoir(cube grid.Hypercube, budget int) *cubeReservoir {
	return &cubeReservoir{cube: cube, budget: budget}
}

// offer considers one candidate; it is kept iff its key beats the current
// minimum (or the reservoir is not yet full).
func (r *cubeReservoir) offer(it resItem) {
	if len(r.items) < r.budget {
		r.items = append(r.items, it)
		r.siftUp(len(r.items) - 1)
		return
	}
	if r.budget == 0 || it.key <= r.items[0].key {
		return
	}
	r.items[0] = it
	r.siftDown(0)
}

func (r *cubeReservoir) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if r.items[parent].key <= r.items[i].key {
			return
		}
		r.items[parent], r.items[i] = r.items[i], r.items[parent]
		i = parent
	}
}

func (r *cubeReservoir) siftDown(i int) {
	n := len(r.items)
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && r.items[l].key < r.items[small].key {
			small = l
		}
		if rr < n && r.items[rr].key < r.items[small].key {
			small = rr
		}
		if small == i {
			return
		}
		r.items[i], r.items[small] = r.items[small], r.items[i]
		i = small
	}
}

// flushReservoirs converts the surviving reservoir contents back into
// CubeSamples grouped per (snapshot, cube), ordered like the offline
// pipeline output (snapshot-major, then cube ID, then local index).
func flushReservoirs(reservoirs map[int]*cubeReservoir) []sampling.CubeSample {
	type group struct {
		snap  int
		cube  grid.Hypercube
		items []resItem
	}
	groups := map[[2]int]*group{}
	for _, r := range reservoirs {
		for _, it := range r.items {
			key := [2]int{it.snap, r.cube.ID}
			g, ok := groups[key]
			if !ok {
				g = &group{snap: it.snap, cube: r.cube}
				groups[key] = g
			}
			g.items = append(g.items, it)
		}
	}
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].snap != ordered[b].snap {
			return ordered[a].snap < ordered[b].snap
		}
		return ordered[a].cube.ID < ordered[b].cube.ID
	})
	out := make([]sampling.CubeSample, 0, len(ordered))
	for _, g := range ordered {
		sort.Slice(g.items, func(a, b int) bool { return g.items[a].localIdx < g.items[b].localIdx })
		cs := sampling.CubeSample{Snapshot: g.snap, Cube: g.cube}
		for _, it := range g.items {
			cs.LocalIdx = append(cs.LocalIdx, it.localIdx)
			cs.Features = append(cs.Features, it.features)
			cs.Targets = append(cs.Targets, it.targets)
		}
		out = append(out, cs)
	}
	return out
}
