package train

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MATEYModel is the multiscale adaptive foundation-model analogue used for
// the Fig. 9 experiment (Zhang et al., MATEY). It encodes dense cubes
// [B, T, C, G, G, G] through two parallel Conv3D branches at different
// strides — a coarse context branch and a fine detail branch — fuses the
// latents, runs a transformer encoder over time, and decodes to cubes.
// "Adaptive multiscale" here means both spatial resolutions contribute to
// one latent token per timestep.
type MATEYModel struct {
	InVars, ModelDim, OutVars, G int
	coarse                       *nn.Conv3D // stride 4
	fine                         *nn.Conv3D // stride 2
	actC, actF                   *nn.Activation
	fuse                         *nn.Linear
	block                        *nn.TransformerBlock
	dec                          *cubeDecoder
	b, t                         int
	cg, fg, cDim, fDim           int
}

// NewMATEYModel builds the multiscale model for G³ cubes (G a power of two
// ≥ 8).
func NewMATEYModel(rng *rand.Rand, inVars, modelDim, heads, outVars, g int) *MATEYModel {
	coarse := nn.NewConv3D(rng, inVars, 4, 4, 4, 0) // G -> G/4
	fine := nn.NewConv3D(rng, inVars, 2, 2, 2, 0)   // G -> G/2
	cg, fg := g/4, g/2
	cDim := 4 * cg * cg * cg
	fDim := 2 * fg * fg * fg
	return &MATEYModel{
		InVars: inVars, ModelDim: modelDim, OutVars: outVars, G: g,
		coarse: coarse, fine: fine,
		actC: nn.NewActivation("relu"), actF: nn.NewActivation("relu"),
		fuse:  nn.NewLinear(rng, cDim+fDim, modelDim),
		block: nn.NewTransformerBlock(rng, modelDim, heads, 2*modelDim),
		dec:   newCubeDecoder(rng, modelDim, outVars, g),
		cg:    cg, fg: fg, cDim: cDim, fDim: fDim,
	}
}

// Name implements Model.
func (m *MATEYModel) Name() string { return "MATEY" }

// Params implements nn.Module.
func (m *MATEYModel) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.coarse.Params()...)
	out = append(out, m.fine.Params()...)
	out = append(out, m.fuse.Params()...)
	out = append(out, m.block.Params()...)
	out = append(out, m.dec.params()...)
	return out
}

// Forward maps x [B, T, C, G, G, G] to [B, T, C', G, G, G].
func (m *MATEYModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, t := x.Dim(0), x.Dim(1)
	m.b, m.t = b, t
	g := m.G
	flat := x.Reshape(b*t, m.InVars, g, g, g)
	hc := m.actC.Forward(m.coarse.Forward(flat)).Reshape(b*t, m.cDim)
	hf := m.actF.Forward(m.fine.Forward(flat)).Reshape(b*t, m.fDim)
	// Concatenate branch latents.
	cat := tensor.New(b*t, m.cDim+m.fDim)
	for r := 0; r < b*t; r++ {
		copy(cat.Data[r*(m.cDim+m.fDim):], hc.Data[r*m.cDim:(r+1)*m.cDim])
		copy(cat.Data[r*(m.cDim+m.fDim)+m.cDim:], hf.Data[r*m.fDim:(r+1)*m.fDim])
	}
	z := m.fuse.Forward(cat)
	z = m.block.Forward(z.Reshape(b, t, m.ModelDim)).Reshape(b*t, m.ModelDim)
	return m.dec.forward(z).Reshape(b, t, m.OutVars, g, g, g)
}

// Backward implements Model.
func (m *MATEYModel) Backward(dy *tensor.Tensor) {
	b, t, g := m.b, m.t, m.G
	dz := m.dec.backward(dy.Reshape(b*t, m.OutVars, g, g, g))
	dz = m.block.Backward(dz.Reshape(b, t, m.ModelDim)).Reshape(b*t, m.ModelDim)
	dcat := m.fuse.Backward(dz)
	dhc := tensor.New(b*t, m.cDim)
	dhf := tensor.New(b*t, m.fDim)
	for r := 0; r < b*t; r++ {
		copy(dhc.Data[r*m.cDim:(r+1)*m.cDim], dcat.Data[r*(m.cDim+m.fDim):])
		copy(dhf.Data[r*m.fDim:(r+1)*m.fDim], dcat.Data[r*(m.cDim+m.fDim)+m.cDim:])
	}
	dxc := m.coarse.Backward(m.actC.Backward(dhc.Reshape(b*t, 4, m.cg, m.cg, m.cg)))
	dxf := m.fine.Backward(m.actF.Backward(dhf.Reshape(b*t, 2, m.fg, m.fg, m.fg)))
	// Input gradient is the sum of both branches (unused upstream, but the
	// addition keeps the pass complete for composition).
	dxc.AddScaled(1, dxf)
}
