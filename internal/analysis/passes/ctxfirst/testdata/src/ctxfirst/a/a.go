// Golden input for ctxfirst: root contexts in library code, parameter
// order, context-free HTTP requests.
package a

import (
	"context"
	"net/http"
)

func rootInLibrary() context.Context {
	return context.Background() // want `severs the caller's cancellation`
}

func todoInLibrary() context.Context {
	return context.TODO() // want `severs the caller's cancellation`
}

func lifecycleRoot() context.Context {
	//sicklevet:ignore ctxfirst lifecycle root, canceled by Stop
	return context.Background()
}

func ctxNotFirst(n int, ctx context.Context) { // want `context.Context must be the first parameter`
	_ = n
	_ = ctx
}

func ctxFirst(ctx context.Context, n int) {
	_ = n
}

type Runner interface {
	Run(n int, ctx context.Context) error // want `context.Context must be the first parameter`
	RunOK(ctx context.Context, n int) error
}

func request(ctx context.Context) (*http.Request, error) {
	return http.NewRequest("GET", "http://example.invalid/", nil) // want `use http.NewRequestWithContext`
}

func requestOK(ctx context.Context) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", "http://example.invalid/", nil)
}
