package tensor

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	p := NewPool(4)
	for _, n := range []int{0, 1, 7, 100, 4096, 10001} {
		for _, grain := range []int{1, 3, 64, 4096} {
			var hits atomic.Int64
			seen := make([]int32, n)
			p.ParallelFor(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d grain=%d", lo, hi, n, grain)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
					hits.Add(1)
				}
			})
			if hits.Load() != int64(n) {
				t.Fatalf("n=%d grain=%d: %d iterations executed", n, grain, hits.Load())
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d grain=%d: index %d executed %d times", n, grain, i, c)
				}
			}
		}
	}
}

func TestParallelForNilPoolRunsInline(t *testing.T) {
	var p *Pool
	calls := 0
	p.ParallelFor(100, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("nil pool should run one inline range, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool ran %d ranges", calls)
	}
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d", p.Workers())
	}
}

// TestParallelForNested drives nested ParallelFor from inside workers hard
// enough to saturate the task queue; the caller-participates design must
// complete every inner loop without deadlock. Run with -race in CI.
func TestParallelForNested(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.ParallelFor(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParallelFor(128, 8, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if total.Load() != 64*128 {
		t.Fatalf("nested iterations = %d, want %d", total.Load(), 64*128)
	}
}

// TestPoolConcurrentKernels exercises many goroutines issuing pooled
// kernels at once (the serve batcher's situation) under -race in CI.
func TestPoolConcurrentKernels(t *testing.T) {
	done := make(chan *Tensor, 8)
	a := New(70, 40)
	b := New(40, 50)
	for i := range a.Data {
		a.Data[i] = float64(i % 11)
	}
	for i := range b.Data {
		b.Data[i] = float64(i % 7)
	}
	for g := 0; g < 8; g++ {
		go func() { done <- MatMul(a, b) }()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		got := <-done
		for i := range got.Data {
			if got.Data[i] != first.Data[i] {
				t.Fatalf("concurrent MatMul results diverge at %d", i)
			}
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	a := Get(13, 7)
	if a.Dim(0) != 13 || a.Dim(1) != 7 || a.Len() != 91 {
		t.Fatalf("Get shape %v", a.Shape)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Get must return a zeroed tensor")
		}
	}
	a.Fill(3)
	Put(a)
	if a.Data != nil {
		t.Fatal("Put must nil out Data to catch use-after-put")
	}
	// The recycled buffer must come back zeroed.
	b := Get(91)
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("recycled Get must return a zeroed tensor")
		}
	}
	Put(b)
	Put(nil) // no-op
}

func TestGetPutSteadyStateAllocs(t *testing.T) {
	// Warm the free list, then check the loop body is alloc-free apart from
	// the Tensor header + shape slice.
	Put(Get(32, 32))
	allocs := testing.AllocsPerRun(100, func() {
		w := Get(32, 32)
		Put(w)
	})
	// Tensor struct + shape slice ≈ 2 allocations; the 1024-float backing
	// array (the expensive part) must be recycled.
	if allocs > 3 {
		t.Fatalf("Get/Put steady state allocates %.1f objects per run", allocs)
	}
}
