package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs generates n points around three well-separated 2-D centers.
func threeBlobs(n int, seed int64) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[i%3]
		pts[i] = []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}
	}
	return pts, centers
}

func TestKMeansRecoverBlobs(t *testing.T) {
	pts, centers := threeBlobs(300, 1)
	res, err := KMeans(pts, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Each true center must be within 1.0 of some fitted centroid.
	for _, c := range centers {
		best := math.MaxFloat64
		for _, f := range res.Centroids {
			if d := sqDist(c, f); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Fatalf("center %v not recovered (nearest centroid dist² %v)", c, best)
		}
	}
	if len(res.Labels) != len(pts) {
		t.Fatalf("labels len %d", len(res.Labels))
	}
}

func TestMiniBatchKMeansRecoverBlobs(t *testing.T) {
	pts, centers := threeBlobs(3000, 2)
	res, err := KMeans(pts, Config{K: 3, Seed: 7, BatchSize: 100, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range centers {
		best := math.MaxFloat64
		for _, f := range res.Centroids {
			if d := sqDist(c, f); d < best {
				best = d
			}
		}
		if best > 2.0 {
			t.Fatalf("minibatch: center %v not recovered (dist² %v)", c, best)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 2}); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := KMeans([][]float64{{1}}, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, Config{K: 1}); err == nil {
		t.Fatal("expected error for ragged points")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	res, err := KMeans(pts, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("K should clamp to n, got %d centroids", len(res.Centroids))
	}
}

func TestKMeansDeterministicUnderSeed(t *testing.T) {
	pts, _ := threeBlobs(200, 3)
	a, _ := KMeans(pts, Config{K: 3, Seed: 42})
	b, _ := KMeans(pts, Config{K: 3, Seed: 42})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
	}
}

// Property: every label is valid and inertia is non-negative and equals the
// recomputed sum of squared distances.
func TestKMeansInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		k := 1 + rng.Intn(5)
		res, err := KMeans(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		inertia := 0.0
		for i, p := range pts {
			if res.Labels[i] < 0 || res.Labels[i] >= len(res.Centroids) {
				return false
			}
			// Label must be the argmin centroid.
			j, d := nearest(p, res.Centroids)
			if j != res.Labels[i] && math.Abs(d-sqDist(p, res.Centroids[res.Labels[i]])) > 1e-12 {
				return false
			}
			inertia += sqDist(p, res.Centroids[res.Labels[i]])
		}
		return math.Abs(inertia-res.Inertia) < 1e-9 && res.Inertia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignAndSizes(t *testing.T) {
	cents := [][]float64{{0}, {10}}
	pts := [][]float64{{1}, {9}, {11}, {-1}}
	labels := Assign(pts, cents)
	want := []int{0, 1, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
	sizes := ClusterSizes(labels, 2)
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestScalar1D(t *testing.T) {
	xs := []float64{1, 2, 3}
	pts := Scalar1D(xs)
	if len(pts) != 3 || len(pts[0]) != 1 || pts[2][0] != 3 {
		t.Fatalf("Scalar1D = %v", pts)
	}
	pts[0][0] = 99
	if xs[0] != 1 {
		t.Fatal("Scalar1D must copy, not alias")
	}
}

func BenchmarkKMeans1000x3(b *testing.B) {
	pts, _ := threeBlobs(1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(pts, Config{K: 3, Seed: 1, MaxIters: 20})
	}
}

func BenchmarkMiniBatchKMeans10000x5(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([][]float64, 10000)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(pts, Config{K: 5, Seed: 1, BatchSize: 256, MaxIters: 50})
	}
}
