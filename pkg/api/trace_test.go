package api

import (
	"context"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	for _, tc := range []TraceContext{
		{TraceID: "abc123"},
		{TraceID: "abc123", SpanID: "def456"},
	} {
		got, ok := ParseTraceHeader(tc.HeaderValue())
		if !ok || got != tc {
			t.Errorf("round trip %+v -> %+v, ok=%v", tc, got, ok)
		}
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	for _, v := range []string{
		"", "   ", "has space:abc", "abc:bad!span", "ok:" + string(make([]byte, 80)),
		"<script>", "abc:def:extra!",
	} {
		if tc, ok := ParseTraceHeader(v); ok {
			t.Errorf("ParseTraceHeader(%q) accepted -> %+v", v, tc)
		}
	}
}

func TestNewIDs(t *testing.T) {
	id, span := NewTraceID(), NewSpanID()
	if len(id) != 16 || len(span) != 8 {
		t.Fatalf("id lengths: trace %d span %d", len(id), len(span))
	}
	if !validID(id) || !validID(span) {
		t.Fatal("minted IDs fail own validation")
	}
	if NewTraceID() == id {
		t.Error("trace IDs collide")
	}
}

func TestContextPropagation(t *testing.T) {
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("empty ctx claims a trace")
	}
	want := TraceContext{TraceID: "abc", SpanID: "def"}
	ctx := WithTrace(context.Background(), want)
	got, ok := TraceFrom(ctx)
	if !ok || got != want {
		t.Fatalf("TraceFrom = %+v, %v", got, ok)
	}
	if _, ok := TraceFrom(WithTrace(context.Background(), TraceContext{})); ok {
		t.Error("empty trace ID should report not-ok")
	}
}
