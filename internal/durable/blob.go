package durable

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/pkg/api"
)

// Blob framing: magic | u32 length | u32 crc32(payload) | payload.
const blobMagic = "SRES"

// ErrNotFound reports a key with no blob.
var ErrNotFound = errors.New("durable: blob not found")

// ErrCorrupt reports a blob whose frame or CRC check failed; callers
// fall back to recomputing (and should Delete the carcass).
var ErrCorrupt = errors.New("durable: blob corrupt")

// BlobStore is a flat directory of CRC-framed blobs written atomically
// (temp file + fsync + rename). It backs both the per-job result store
// and the content-addressed subsample cache. Handles are nil-safe on
// the metrics side: an unregistered store simply counts nothing.
type BlobStore struct {
	dir string

	hits    *obs.Counter
	misses  *obs.Counter
	corrupt *obs.Counter
	puts    *obs.Counter
}

// newBlobStore creates dir if needed and returns a store over it.
func newBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &BlobStore{dir: dir}, nil
}

// path maps a key to its file, defensively replacing anything that is
// not path-safe (keys here are job IDs and SHA-256 hex, which are).
func (s *BlobStore) path(key string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(s.dir, safe+".blob")
}

// Put atomically writes data under key. Errors are typed
// api.CodeUnavailable: a store that cannot persist is the same fault as
// a WAL that cannot append.
func (s *BlobStore) Put(key string, data []byte) error {
	final := s.path(key)
	tmp := final + ".tmp"
	frame := make([]byte, 12+len(data))
	copy(frame, blobMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(data)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(data))
	copy(frame[12:], data)
	err := func() error {
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(frame); err != nil {
			_ = f.Close() // the write error dominates
			return err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // the sync error dominates
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, final)
	}()
	if err != nil {
		os.Remove(tmp)
		return api.Errorf(api.CodeUnavailable, "blob put %s: %v", key, err)
	}
	syncDir(s.dir)
	s.puts.Inc()
	return nil
}

// Get returns the payload stored under key. ErrNotFound means no blob;
// ErrCorrupt means the frame failed its checks (torn write, bit rot).
func (s *BlobStore) Get(key string) ([]byte, error) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Inc()
			return nil, ErrNotFound
		}
		s.misses.Inc()
		return nil, err
	}
	if len(raw) < 12 || string(raw[:4]) != blobMagic {
		s.corrupt.Inc()
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(raw[4:8])
	sum := binary.LittleEndian.Uint32(raw[8:12])
	payload := raw[12:]
	if uint32(len(payload)) != n || crc32.ChecksumIEEE(payload) != sum {
		s.corrupt.Inc()
		return nil, ErrCorrupt
	}
	s.hits.Inc()
	return payload, nil
}

// Delete removes key's blob, if any; best-effort.
func (s *BlobStore) Delete(key string) { os.Remove(s.path(key)) }

// register mounts the dedup cache's counters. The names are spelled out
// as constants (not built from a prefix) so sicklevet and grep can see
// every registered series; the cache is the only BlobStore that exports
// metrics.
func (s *BlobStore) register(reg *obs.Registry) {
	s.hits = reg.Counter("sickle_dedup_hits_total",
		"Reads of the content-addressed result cache served from disk.").With()
	s.misses = reg.Counter("sickle_dedup_misses_total",
		"Reads of the content-addressed result cache that found no blob.").With()
	s.corrupt = reg.Counter("sickle_dedup_corrupt_total",
		"Reads of the content-addressed result cache rejected by the CRC frame check.").With()
	s.puts = reg.Counter("sickle_dedup_puts_total",
		"Blobs written to the content-addressed result cache.").With()
}

// contentKeySchema versions the canonical form below; bump it whenever
// the subsample pipeline's meaning changes so stale cache entries miss.
const contentKeySchema = 1

// ContentKey derives the content address of a subsample request: a
// SHA-256 over a canonicalized (schema-versioned, scale-normalized)
// projection of every parameter that influences the result bytes.
// Dataset identity + snapshot + shard path stand in for the dataset
// version; two requests differing only in trace identity or transport
// framing collide here on purpose — that collision is the dedup hit.
func ContentKey(req api.SubsampleRequest) string {
	canon := struct {
		Schema     int    `json:"v"`
		Dataset    string `json:"dataset"`
		Scale      string `json:"scale"`
		Shard      string `json:"shard"`
		Snapshot   int    `json:"snapshot"`
		Hypercubes string `json:"hypercubes"`
		Method     string `json:"method"`
		NumCubes   int    `json:"numHypercubes"`
		NumSamples int    `json:"numSamples"`
		Cube       int    `json:"cube"`
		Clusters   int    `json:"numClusters"`
		Seed       int64  `json:"seed"`
	}{
		Schema:     contentKeySchema,
		Dataset:    req.Dataset,
		Scale:      strings.ToLower(strings.TrimSpace(req.Scale)),
		Shard:      req.Shard,
		Snapshot:   req.Snapshot,
		Hypercubes: req.Hypercubes,
		Method:     strings.ToLower(strings.TrimSpace(req.Method)),
		NumCubes:   req.NumHypercubes,
		NumSamples: req.NumSamples,
		Cube:       req.Cube,
		Clusters:   req.NumClusters,
		Seed:       req.Seed,
	}
	b, _ := json.Marshal(canon)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
