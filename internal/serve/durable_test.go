package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/pkg/api"
	"repro/pkg/client"
)

// startDurable boots an in-process replica persisting job state to dir.
func startDurable(t *testing.T, dir string) *InProc {
	t.Helper()
	p, err := StartInProc(Config{DataDir: dir, MaxBatch: 4, Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// httpGet fetches a raw body (journal, metrics, result bytes).
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

var testSub = api.SubsampleRequest{
	Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}

// TestCrashRecoveryMidJob is the tentpole acceptance test: a replica dies
// mid-subsample (WAL frozen at the crash instant, then InProc.Kill), a
// fresh process on the same data dir re-enqueues the interrupted job
// under its original ID and key, runs it to completion, and a keyed
// retry of the submission observes exactly that one job.
func TestCrashRecoveryMidJob(t *testing.T) {
	dir := t.TempDir()
	p := startDurable(t, dir)
	ctx := context.Background()
	c := client.New(p.URL)

	// Park the sampler after its first cube so the kill lands mid-job.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p.Server.testProgressHook = func(done, total int) {
		if done == 1 {
			once.Do(func() { close(started) })
			<-release
		}
	}
	key := api.NewIdempotencyKey()
	req := api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &testSub, IdempotencyKey: key}
	job, err := c.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	// Crash instant: nothing past this point reaches disk. The release
	// only lets the runner goroutine unwind so Kill can reap it.
	p.Server.durable.Freeze()
	close(release)
	p.Kill()

	p2 := startDurable(t, dir)
	defer p2.Close(ctx)
	c2 := client.New(p2.URL)

	// The interrupted job came back under its original identity...
	done, err := c2.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob after restart: %v", err)
	}
	if done.State != api.JobSucceeded {
		t.Fatalf("recovered job finished %s (%v)", done.State, done.Error)
	}
	if done.IdempotencyKey != key {
		t.Fatalf("recovered job lost its key: %+v", done)
	}
	res, err := c2.JobResult(ctx, job.ID)
	if err != nil || res.Subsample == nil || res.Subsample.Cubes != testSub.NumHypercubes {
		t.Fatalf("recovered job result = %+v, %v", res, err)
	}

	// ...a keyed retry of the same submission lands on it (200, not a
	// second job)...
	again, err := c2.SubmitJob(ctx, &req)
	if err != nil {
		t.Fatalf("keyed resubmit after restart: %v", err)
	}
	if again.ID != job.ID {
		t.Fatalf("resubmit created job %s, want original %s", again.ID, job.ID)
	}
	jobs, err := c2.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs after recovery + retry = %+v, %v; want exactly one", jobs, err)
	}

	// ...and the recovery is observable: journal event + counter.
	code, events := httpGet(t, p2.URL+"/debug/events")
	if code != http.StatusOK || !strings.Contains(string(events), `"type":"recovery"`) {
		t.Fatalf("no recovery event in journal (HTTP %d):\n%s", code, events)
	}
	_, metrics := httpGet(t, p2.URL+"/metrics")
	if !strings.Contains(string(metrics), `sickle_wal_recovered_jobs_total{action="reenqueued"} 1`) {
		t.Fatalf("recovered-jobs counter missing:\n%s", metrics)
	}
}

// TestCrashPointRecoveryStages injects a crash at every WAL stage and
// checks the restart lands in the right place: a crash before the submit
// record leaves nothing to recover; one anywhere between the submit
// record and the terminal record re-runs the job; one after the terminal
// record restores it — result included — without re-running.
func TestCrashPointRecoveryStages(t *testing.T) {
	cases := []struct {
		point  string
		action string // expected recovered-jobs action label ("" = none)
	}{
		{"before:submit", ""},
		{"after:submit", "reenqueued"},
		{"after:start", "reenqueued"},
		{"before:terminal", "reenqueued"},
		{"after:terminal", "restored"},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			p := startDurable(t, dir)
			ctx := context.Background()
			c := client.New(p.URL)
			p.Server.durable.WAL.SetCrashPoint(tc.point, nil)

			job, err := c.SubmitJob(ctx, &api.SubmitJobRequest{
				Type: api.JobSubsample, Subsample: &testSub,
				IdempotencyKey: api.NewIdempotencyKey()})
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			// The process is still alive (only its disk is "dead"), so the
			// job finishes in memory before the kill.
			if done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil || done.State != api.JobSucceeded {
				t.Fatalf("pre-crash job = %+v, %v", done, err)
			}
			p.Kill()

			p2 := startDurable(t, dir)
			defer p2.Close(ctx)
			c2 := client.New(p2.URL)
			jobs, err := c2.Jobs(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if tc.action == "" {
				if len(jobs) != 0 {
					t.Fatalf("crash %s: %d jobs survived, want none", tc.point, len(jobs))
				}
				return
			}
			if len(jobs) != 1 || jobs[0].ID != job.ID {
				t.Fatalf("crash %s: recovered jobs = %+v, want just %s", tc.point, jobs, job.ID)
			}
			done, err := c2.WaitJob(ctx, job.ID, 5*time.Millisecond)
			if err != nil || done.State != api.JobSucceeded {
				t.Fatalf("recovered job = %+v, %v", done, err)
			}
			if res, err := c2.JobResult(ctx, job.ID); err != nil || res.Subsample == nil {
				t.Fatalf("recovered result = %+v, %v", res, err)
			}
			_, metrics := httpGet(t, p2.URL+"/metrics")
			want := fmt.Sprintf(`sickle_wal_recovered_jobs_total{action="%s"} 1`, tc.action)
			if !strings.Contains(string(metrics), want) {
				t.Fatalf("crash %s: metrics missing %s:\n%s", tc.point, want, metrics)
			}
		})
	}
}

// TestIdempotentResubmissionHTTP pins the wire contract: the first keyed
// submission answers 202, an identical retry answers 200 with the same
// job, and the dedup is journaled.
func TestIdempotentResubmissionHTTP(t *testing.T) {
	p := startDurable(t, t.TempDir())
	ctx := context.Background()
	defer p.Close(ctx)

	body, _ := json.Marshal(api.SubmitJobRequest{
		Type: api.JobSubsample, Subsample: &testSub, IdempotencyKey: "retry-key-1"})
	post := func() (int, api.Job) {
		resp, err := http.Post(p.URL+"/v2/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var job api.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, job
	}
	code1, job1 := post()
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit HTTP %d, want 202", code1)
	}
	code2, job2 := post()
	if code2 != http.StatusOK {
		t.Fatalf("resubmit HTTP %d, want 200", code2)
	}
	if job2.ID != job1.ID {
		t.Fatalf("resubmit created %s, want original %s", job2.ID, job1.ID)
	}
	c := client.New(p.URL)
	if jobs, err := c.Jobs(ctx); err != nil || len(jobs) != 1 {
		t.Fatalf("jobs = %+v, %v; want exactly one", jobs, err)
	}
	_, events := httpGet(t, p.URL+"/debug/events")
	if !strings.Contains(string(events), `"type":"dedup_hit"`) {
		t.Fatalf("dedup not journaled:\n%s", events)
	}
}

// TestSubsampleDedupCAS: two identical subsample submissions under
// different idempotency keys produce byte-identical results, the second
// served from the content-addressed cache; a corrupted cache blob falls
// back to recomputation instead of serving garbage.
func TestSubsampleDedupCAS(t *testing.T) {
	dir := t.TempDir()
	p := startDurable(t, dir)
	ctx := context.Background()
	defer p.Close(ctx)
	c := client.New(p.URL)

	resultBytes := func(key string) (string, []byte) {
		t.Helper()
		job, err := c.SubmitJob(ctx, &api.SubmitJobRequest{
			Type: api.JobSubsample, Subsample: &testSub, IdempotencyKey: key})
		if err != nil {
			t.Fatalf("submit %s: %v", key, err)
		}
		if done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil || done.State != api.JobSucceeded {
			t.Fatalf("job %s = %+v, %v", key, done, err)
		}
		code, body := httpGet(t, p.URL+"/v2/jobs/"+job.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("result %s: HTTP %d", key, code)
		}
		return job.ID, body
	}

	id1, body1 := resultBytes("cas-a")
	id2, body2 := resultBytes("cas-b")
	if id1 == id2 {
		t.Fatal("distinct keys deduplicated onto one job; CAS path untested")
	}
	// Byte-identical, ElapsedMS and all: the second run is the first run's
	// stored bytes, not a recomputation that happens to agree.
	if !bytes.Equal(body1, body2) {
		t.Fatalf("duplicate subsample results differ:\n%s\nvs\n%s", body1, body2)
	}
	_, metrics := httpGet(t, p.URL+"/metrics")
	if !strings.Contains(string(metrics), "sickle_dedup_hits_total 1") {
		t.Fatalf("dedup hit not counted:\n%s", metrics)
	}
	_, events := httpGet(t, p.URL+"/debug/events?type=dedup_hit")
	if !strings.Contains(string(events), `"kind":"cas"`) {
		t.Fatalf("CAS dedup not journaled:\n%s", events)
	}

	// Corrupt the cache entry: the next duplicate must recompute.
	blob := filepath.Join(dir, "cas", durable.ContentKey(testSub)+".blob")
	raw, err := os.ReadFile(blob)
	if err != nil {
		t.Fatalf("cache blob not on disk: %v", err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(blob, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	id3, body3 := resultBytes("cas-c")
	if id3 == id1 || id3 == id2 {
		t.Fatal("third submission was deduplicated by key, not recomputed")
	}
	var r1, r3 api.JobResult
	if json.Unmarshal(body1, &r1) != nil || json.Unmarshal(body3, &r3) != nil {
		t.Fatal("results do not parse")
	}
	if r3.Subsample == nil || r3.Subsample.Cubes != r1.Subsample.Cubes ||
		r3.Subsample.Points != r1.Subsample.Points {
		t.Fatalf("recomputed result %+v disagrees with original %+v", r3.Subsample, r1.Subsample)
	}
	_, metrics = httpGet(t, p.URL+"/metrics")
	if !strings.Contains(string(metrics), "sickle_dedup_corrupt_total 1") {
		t.Fatalf("corrupt cache read not counted:\n%s", metrics)
	}
}

// TestWALFailureRefusesSubmission: a log that cannot append must reject
// new submissions with the typed unavailable error (HTTP 502) rather
// than accepting work that would silently vanish in a crash.
func TestWALFailureRefusesSubmission(t *testing.T) {
	s, _ := newTestServer(t, Config{DataDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetry(0, 0))
	ctx := context.Background()

	if _, err := c.SubmitSubsampleJob(ctx, &testSub); err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	// Kill the log out from under the server: every further append fails.
	if err := s.durable.WAL.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := c.SubmitSubsampleJob(ctx, &testSub)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnavailable {
		t.Fatalf("submit on dead WAL = %v, want typed unavailable", err)
	}
	body, _ := json.Marshal(api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &testSub})
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("submit on dead WAL HTTP %d, want 502", resp.StatusCode)
	}
}
