package obs

import (
	"strings"
	"testing"
)

func TestLintAcceptsWellFormed(t *testing.T) {
	text := strings.Join([]string{
		`# HELP demo_requests_total Requests.`,
		`# TYPE demo_requests_total counter`,
		`demo_requests_total{route="/x"} 5`,
		`# HELP demo_seconds Latency.`,
		`# TYPE demo_seconds histogram`,
		`demo_seconds_bucket{le="0.1"} 1`,
		`demo_seconds_bucket{le="+Inf"} 2`,
		`demo_seconds_sum 0.3`,
		`demo_seconds_count 2`,
		`# HELP demo_gauge G.`,
		`# TYPE demo_gauge gauge`,
		`demo_gauge -1.5`,
	}, "\n") + "\n"
	if errs := LintExposition(text); len(errs) != 0 {
		t.Fatalf("well-formed text rejected: %v", errs)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no type", "orphan_total 1\n", "no preceding # TYPE"},
		{"no help", "# TYPE x_total counter\nx_total 1\n", "no preceding # HELP"},
		{"bad type", "# HELP x x\n# TYPE x widget\n", "unknown TYPE"},
		{"counter suffix", "# HELP x x\n# TYPE x counter\nx 1\n", "does not end in _total"},
		{"negative counter", "# HELP x_total x\n# TYPE x_total counter\nx_total -1\n", "negative"},
		{"bad value", "# HELP x x\n# TYPE x gauge\nx banana\n", "unparseable value"},
		{"unterminated labels", "# HELP x x\n# TYPE x gauge\nx{a=\"b 1\n", "unterminated"},
		{"missing inf", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			`no le="+Inf" bucket`},
		{"missing count", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
			"no _count"},
		{"inf mismatch", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
			"+Inf bucket 1 != _count 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintExposition(tc.text)
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					return
				}
			}
			t.Errorf("want error containing %q, got %v", tc.want, errs)
		})
	}
}

func TestLintOwnRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.", "r").With("x").Inc()
	reg.Histogram("b_seconds", "B.", nil, "r").With("x").Observe(0.2)
	reg.Gauge("c", "C.").With().Set(3)
	RegisterRuntime(reg)
	if errs := LintExposition(reg.Render()); len(errs) != 0 {
		t.Fatalf("registry render fails its own lint: %v", errs)
	}
}
