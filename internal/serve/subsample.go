package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/obs/events"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/train"
	"repro/pkg/api"
)

// asCallerError maps untyped resolution failures (unknown dataset name,
// missing .skl shard) to not_found: they are the caller's reference that
// didn't resolve, not a server fault. Cancellation and already-typed
// errors pass through untouched.
func asCallerError(err error) *api.Error {
	ae := api.AsError(err)
	if ae.Code == api.CodeInternal {
		return api.Errorf(api.CodeNotFound, "%s", ae.Message)
	}
	return ae
}

// datasetKey namespaces cache entries so a dataset name can never collide
// with a shard path.
func datasetKey(name, scale string) string { return "dataset:" + name + "/" + scale }
func shardKey(path string) string          { return "shard:" + path }

// resolveDataset returns the (possibly cached) dataset for a request. The
// context bounds how long a caller waits on another request's in-flight
// synthesis of the same dataset.
func (s *Server) resolveDataset(ctx context.Context, name, scaleStr string) (*grid.Dataset, bool, error) {
	scale := sickle.Small
	if strings.EqualFold(scaleStr, "large") {
		scale = sickle.Large
		scaleStr = "large"
	} else {
		scaleStr = "small"
	}
	v, hit, err := s.cache.GetOrLoad(ctx, datasetKey(name, scaleStr), func() (any, error) {
		return sickle.BuildDatasetUncached(name, scale)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*grid.Dataset), hit, nil
}

// resolveShard returns the (possibly cached) cube samples of a .skl file.
func (s *Server) resolveShard(ctx context.Context, path string) ([]sampling.CubeSample, bool, error) {
	v, hit, err := s.cache.GetOrLoad(ctx, shardKey(path), func() (any, error) {
		return sickle.LoadCubeSamples(path)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.([]sampling.CubeSample), hit, nil
}

// pipelineConfig translates the wire request into sampling parameters,
// clamping the cube edge to the snapshot's grid.
func pipelineConfig(req *api.SubsampleRequest, f *grid.Field) sampling.PipelineConfig {
	pcfg := sampling.PipelineConfig{
		Hypercubes:    req.Hypercubes,
		Method:        req.Method,
		NumHypercubes: req.NumHypercubes,
		NumSamples:    req.NumSamples,
		NumClusters:   req.NumClusters,
		Seed:          req.Seed,
	}
	edge := req.Cube
	if edge <= 0 {
		edge = 16
	}
	pcfg.CubeSx = clamp(edge, f.Nx)
	pcfg.CubeSy = clamp(edge, f.Ny)
	pcfg.CubeSz = clamp(edge, f.Nz)
	return pcfg
}

// doSubsample runs the two-phase pipeline (or reads a shard) under ctx and
// reports what was selected. Only dataset/shard loading is cached — the
// pipeline itself is cheap relative to synthesis and depends on the full
// request, so it runs per call. progress (may be nil) receives per-cube
// completion updates; job submissions use it to expose cancellable
// progress counters.
func (s *Server) doSubsample(ctx context.Context, req *api.SubsampleRequest, progress func(done, total int)) (*api.SubsampleResponse, error) {
	t0 := time.Now()
	if req.Shard != "" {
		cubes, hit, err := s.resolveShard(ctx, req.Shard)
		if err != nil {
			return nil, asCallerError(err)
		}
		points := 0
		for _, cs := range cubes {
			points += len(cs.LocalIdx)
		}
		return &api.SubsampleResponse{
			Dataset: req.Shard, Cubes: len(cubes), Points: points,
			CacheHit: hit, ElapsedMS: msSince(t0),
		}, nil
	}
	if req.Dataset == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "serve: request needs dataset or shard")
	}
	d, hit, err := s.resolveDataset(ctx, req.Dataset, req.Scale)
	if err != nil {
		return nil, asCallerError(err)
	}
	if req.Snapshot < 0 || req.Snapshot >= len(d.Snapshots) {
		return nil, api.Errorf(api.CodeInvalidArgument,
			"serve: snapshot %d out of range (dataset has %d)", req.Snapshot, len(d.Snapshots))
	}
	f := d.Snapshots[req.Snapshot]
	pcfg := pipelineConfig(req, f)
	pcfg.Progress = func(done, total int) {
		if progress != nil {
			progress(done, total)
		}
		if s.testProgressHook != nil {
			s.testProgressHook(done, total)
		}
	}
	cubes, err := sampling.SubsampleSnapshot(ctx, d, req.Snapshot, pcfg)
	if err != nil {
		ae := api.AsError(err)
		if ae.Code == api.CodeInternal {
			// Pipeline failures here are bad request parameters (unknown
			// sampler/selector names, cubes larger than the grid).
			ae = api.Errorf(api.CodeInvalidArgument, "%s", ae.Message)
		}
		return nil, ae
	}
	points := 0
	for _, cs := range cubes {
		points += len(cs.LocalIdx)
	}
	return &api.SubsampleResponse{
		Dataset: d.Label, Snapshot: req.Snapshot, Cubes: len(cubes),
		Points: points, CacheHit: hit, ElapsedMS: msSince(t0),
	}, nil
}

// subsampleJobRunner adapts a subsample request to the job manager: the
// sampling pipeline's per-cube progress callback feeds the job's progress
// counters, and the job context reaches the cancel checks between cubes.
//
// With a data dir configured, the runner first consults the
// content-addressed cache under durable.ContentKey(req): a hit returns
// the stored result bytes verbatim — byte-identical to the run that
// produced them, ElapsedMS included — a corrupt blob (bad CRC) is
// deleted and recomputed, and a miss stores the fresh result for the
// next identical request.
func (s *Server) subsampleJobRunner(req api.SubsampleRequest) JobRunner {
	return func(ctx context.Context, progress func(stage string, done, total int)) (*api.JobResult, error) {
		var key string
		if s.durable != nil {
			key = durable.ContentKey(req)
			b, err := s.durable.Cache.Get(key)
			if err == nil {
				var res api.JobResult
				if json.Unmarshal(b, &res) == nil && res.Subsample != nil {
					tc, _ := api.TraceFrom(ctx)
					s.journal.Emit(events.TypeDedupHit, "subsample served from content-addressed cache",
						tc.TraceID, "key", key[:12], "kind", "cas")
					return &res, nil
				}
				err = durable.ErrCorrupt
			}
			if errors.Is(err, durable.ErrCorrupt) {
				s.durable.Cache.Delete(key)
			}
		}
		progress("resolve", 0, 0)
		resp, err := s.doSubsample(ctx, &req, func(done, total int) {
			progress("sampling", done, total)
		})
		if err != nil {
			return nil, err
		}
		result := &api.JobResult{Subsample: resp}
		if key != "" {
			// Best-effort memoization: a failed Put costs only the next
			// duplicate a recompute.
			if b, merr := json.Marshal(result); merr == nil {
				s.durable.Cache.Put(key, b)
			}
		}
		return result, nil
	}
}

// trainJobRunner runs the paper's offline pipeline as one cancellable job:
// resolve dataset → two-phase subsample → train a Table 2 surrogate →
// optionally checkpoint and register it for serving. Cancellation lands
// between cubes during sampling and between batches/epochs during
// training.
func (s *Server) trainJobRunner(spec api.TrainJobSpec) JobRunner {
	return func(ctx context.Context, progress func(stage string, done, total int)) (*api.JobResult, error) {
		if spec.Dataset == "" {
			return nil, api.Errorf(api.CodeInvalidArgument, "train job needs a dataset")
		}
		arch := specToArch(spec.Spec)
		if err := arch.Validate(); err != nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "%s", err.Error())
		}
		progress("resolve", 0, 0)
		d, _, err := s.resolveDataset(ctx, spec.Dataset, spec.Scale)
		if err != nil {
			return nil, asCallerError(err)
		}

		sub := api.SubsampleRequest{}
		if spec.Subsample != nil {
			sub = *spec.Subsample
		}
		pcfg := pipelineConfig(&sub, d.Snapshots[0])
		pcfg.Progress = func(done, total int) { progress("subsample", done, total) }
		cubes, err := sampling.SubsampleDataset(ctx, d, pcfg)
		if err != nil {
			return nil, api.AsError(err)
		}

		window := spec.Window
		if window <= 0 {
			window = 1
		}
		examples, err := train.BuildSampleFull(d, cubes, window)
		if err != nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "%s", err.Error())
		}
		epochs := spec.Epochs
		if epochs <= 0 {
			epochs = 5
		}
		batch := spec.Batch
		if batch <= 0 {
			batch = 8
		}
		progress("train", 0, epochs)
		model, hist, err := train.Train(ctx, arch.Factory(), examples, train.Config{
			Epochs: epochs, Batch: batch, LR: spec.LR, Seed: spec.Seed,
			Progress: func(done, total int) { progress("train", done, total) },
		})
		if err != nil {
			return nil, api.AsError(err)
		}

		result := &api.TrainJobResult{
			Examples:  len(examples),
			Params:    hist.Params,
			Epochs:    hist.Epochs,
			FinalLoss: hist.FinalLoss,
		}
		if spec.Register != "" {
			progress("register", 0, 0)
			// A unique temp file, never derived from the client-supplied
			// name: interpolating Register into the path would hand POST
			// /v2/jobs an arbitrary-file-write primitive via "../" names,
			// and per-name paths would collide across concurrent jobs.
			ckpt, err := os.CreateTemp("", "sickle-job-*.sknn")
			if err != nil {
				return nil, api.Errorf(api.CodeInternal, "%s", err.Error())
			}
			path := ckpt.Name()
			_ = ckpt.Close() // created only to reserve the name; SaveCheckpoint rewrites it
			if err := nn.SaveCheckpoint(path, model); err != nil {
				return nil, api.Errorf(api.CodeInternal, "%s", err.Error())
			}
			replicas := spec.Replicas
			if replicas <= 0 {
				replicas = s.cfg.Replicas
			}
			e, err := s.reg.Register(spec.Register, arch, path, examples[0].Input.Shape, replicas)
			if err != nil {
				return nil, api.Errorf(api.CodeInvalidArgument, "%s", err.Error())
			}
			result.Registered = e.Name
			result.Version = e.Version
		}
		return &api.JobResult{Train: result}, nil
	}
}

func clamp(v, hi int) int {
	if v > hi {
		return hi
	}
	return v
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
