package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LayerNorm normalizes the last dimension of [N, D] inputs with learned
// gain and bias.
type LayerNorm struct {
	D     int
	Gain  *Param // [D]
	Bias  *Param // [D]
	Eps   float64
	x     *tensor.Tensor
	xhat  *tensor.Tensor
	invSD []float64 // per row
}

// NewLayerNorm builds a LayerNorm over feature dimension d.
func NewLayerNorm(d int) *LayerNorm {
	g := tensor.New(d)
	g.Fill(1)
	return &LayerNorm{D: d, Gain: NewParam("ln.g", g), Bias: NewParam("ln.b", tensor.New(d)), Eps: 1e-5}
}

// Params implements Module.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gain, l.Bias} }

// Forward normalizes each row of x [N, D]. Rows are independent, so they
// fan out across the kernel pool.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Dim(0), x.Dim(1)
	l.x = x
	l.xhat = tensor.New(n, d)
	l.invSD = make([]float64, n)
	out := tensor.New(n, d)
	tensor.DefaultPool().ParallelFor(n, 16, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			row := x.Data[i*d : (i+1)*d]
			mean := 0.0
			for _, v := range row {
				mean += v
			}
			mean /= float64(d)
			varr := 0.0
			for _, v := range row {
				dv := v - mean
				varr += dv * dv
			}
			varr /= float64(d)
			inv := 1 / math.Sqrt(varr+l.Eps)
			l.invSD[i] = inv
			for j, v := range row {
				xh := (v - mean) * inv
				l.xhat.Data[i*d+j] = xh
				out.Data[i*d+j] = xh*l.Gain.W.Data[j] + l.Bias.W.Data[j]
			}
		}
	})
	return out
}

// Backward propagates dL/dy [N, D] to dL/dx.
func (l *LayerNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, d := dy.Dim(0), dy.Dim(1)
	dx := tensor.New(n, d)
	fd := float64(d)
	for i := 0; i < n; i++ {
		var sumDxhat, sumDxhatXhat float64
		dxhat := make([]float64, d)
		for j := 0; j < d; j++ {
			dyv := dy.Data[i*d+j]
			l.Gain.Grad.Data[j] += dyv * l.xhat.Data[i*d+j]
			l.Bias.Grad.Data[j] += dyv
			dxhat[j] = dyv * l.Gain.W.Data[j]
			sumDxhat += dxhat[j]
			sumDxhatXhat += dxhat[j] * l.xhat.Data[i*d+j]
		}
		inv := l.invSD[i]
		for j := 0; j < d; j++ {
			dx.Data[i*d+j] = inv / fd * (fd*dxhat[j] - sumDxhat - l.xhat.Data[i*d+j]*sumDxhatXhat)
		}
	}
	return dx
}

// MultiHeadAttention is scaled dot-product self-attention over sequences
// x[B, T, D] with H heads (D divisible by H).
type MultiHeadAttention struct {
	D, H  int
	WQ    *Linear
	WK    *Linear
	WV    *Linear
	WO    *Linear
	batch int
	seq   int
	// caches, per (batch, head): attention weights [T,T] and projected
	// q, k, v rows.
	attn    [][]*tensor.Tensor
	q, k, v *tensor.Tensor // [B*T, D]
}

// NewMultiHeadAttention builds self-attention with h heads over model
// dimension d.
func NewMultiHeadAttention(rng *rand.Rand, d, h int) *MultiHeadAttention {
	if d%h != 0 {
		panic("nn: model dim must be divisible by head count")
	}
	return &MultiHeadAttention{
		D: d, H: h,
		WQ: NewLinear(rng, d, d), WK: NewLinear(rng, d, d),
		WV: NewLinear(rng, d, d), WO: NewLinear(rng, d, d),
	}
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*Param {
	out := append([]*Param{}, m.WQ.Params()...)
	out = append(out, m.WK.Params()...)
	out = append(out, m.WV.Params()...)
	out = append(out, m.WO.Params()...)
	return out
}

// Forward computes self-attention for x [B, T, D], returning [B, T, D].
func (m *MultiHeadAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	m.batch, m.seq = b, t
	flat := x.Reshape(b*t, d)
	m.q = m.WQ.Forward(flat)
	m.k = m.WK.Forward(flat)
	m.v = m.WV.Forward(flat)

	hd := d / m.H
	scale := 1 / math.Sqrt(float64(hd))
	ctx := tensor.New(b*t, d)
	m.attn = make([][]*tensor.Tensor, b)
	for bi := 0; bi < b; bi++ {
		m.attn[bi] = make([]*tensor.Tensor, m.H)
	}
	// (batch, head) pairs are independent: each writes its own attn matrix
	// and a disjoint column block of ctx, so the fan-out is bit-identical
	// to the serial loop.
	tensor.DefaultPool().ParallelFor(b*m.H, 1, func(u0, u1 int) {
		for u := u0; u < u1; u++ {
			bi, h := u/m.H, u%m.H
			off := h * hd
			// scores[t1][t2] = q(bi,t1,h)·k(bi,t2,h)·scale
			a := tensor.New(t, t)
			for t1 := 0; t1 < t; t1++ {
				qrow := m.q.Data[(bi*t+t1)*d+off : (bi*t+t1)*d+off+hd]
				maxs := math.Inf(-1)
				for t2 := 0; t2 < t; t2++ {
					krow := m.k.Data[(bi*t+t2)*d+off : (bi*t+t2)*d+off+hd]
					s := 0.0
					for j := 0; j < hd; j++ {
						s += qrow[j] * krow[j]
					}
					s *= scale
					a.Data[t1*t+t2] = s
					if s > maxs {
						maxs = s
					}
				}
				// softmax row
				sum := 0.0
				for t2 := 0; t2 < t; t2++ {
					e := math.Exp(a.Data[t1*t+t2] - maxs)
					a.Data[t1*t+t2] = e
					sum += e
				}
				for t2 := 0; t2 < t; t2++ {
					a.Data[t1*t+t2] /= sum
				}
				// context = Σ attn·v
				crow := ctx.Data[(bi*t+t1)*d+off : (bi*t+t1)*d+off+hd]
				for t2 := 0; t2 < t; t2++ {
					w := a.Data[t1*t+t2]
					vrow := m.v.Data[(bi*t+t2)*d+off : (bi*t+t2)*d+off+hd]
					for j := 0; j < hd; j++ {
						crow[j] += w * vrow[j]
					}
				}
			}
			m.attn[bi][h] = a
		}
	})
	out := m.WO.Forward(ctx)
	return out.Reshape(b, t, d)
}

// Backward propagates dL/dy [B, T, D] through attention, accumulating all
// projection gradients, and returns dL/dx [B, T, D].
func (m *MultiHeadAttention) Backward(dy *tensor.Tensor) *tensor.Tensor {
	b, t, d := m.batch, m.seq, m.D
	hd := d / m.H
	scale := 1 / math.Sqrt(float64(hd))

	dctx := m.WO.Backward(dy.Reshape(b*t, d))

	dq := tensor.New(b*t, d)
	dk := tensor.New(b*t, d)
	dv := tensor.New(b*t, d)

	// Like Forward, (batch, head) pairs touch disjoint column blocks of
	// dq/dk/dv, so they fan out across the pool bit-identically.
	tensor.DefaultPool().ParallelFor(b*m.H, 1, func(u0, u1 int) {
		dattn := make([]float64, t) // scratch, local to this chunk
		for u := u0; u < u1; u++ {
			bi, h := u/m.H, u%m.H
			off := h * hd
			a := m.attn[bi][h]
			for t1 := 0; t1 < t; t1++ {
				dcrow := dctx.Data[(bi*t+t1)*d+off : (bi*t+t1)*d+off+hd]
				// dattn[t2] = dctx·v(t2); dv(t2) += attn[t1][t2]·dctx
				for t2 := 0; t2 < t; t2++ {
					vrow := m.v.Data[(bi*t+t2)*d+off : (bi*t+t2)*d+off+hd]
					dvrow := dv.Data[(bi*t+t2)*d+off : (bi*t+t2)*d+off+hd]
					w := a.Data[t1*t+t2]
					s := 0.0
					for j := 0; j < hd; j++ {
						s += dcrow[j] * vrow[j]
						dvrow[j] += w * dcrow[j]
					}
					dattn[t2] = s
				}
				// Softmax backward: ds = attn ∘ (dattn - Σ attn∘dattn).
				dot := 0.0
				for t2 := 0; t2 < t; t2++ {
					dot += a.Data[t1*t+t2] * dattn[t2]
				}
				for t2 := 0; t2 < t; t2++ {
					ds := a.Data[t1*t+t2] * (dattn[t2] - dot) * scale
					qrow := m.q.Data[(bi*t+t1)*d+off : (bi*t+t1)*d+off+hd]
					krow := m.k.Data[(bi*t+t2)*d+off : (bi*t+t2)*d+off+hd]
					dqrow := dq.Data[(bi*t+t1)*d+off : (bi*t+t1)*d+off+hd]
					dkrow := dk.Data[(bi*t+t2)*d+off : (bi*t+t2)*d+off+hd]
					for j := 0; j < hd; j++ {
						dqrow[j] += ds * krow[j]
						dkrow[j] += ds * qrow[j]
					}
				}
			}
		}
	})

	dx := m.WQ.Backward(dq)
	dx.AddScaled(1, m.WK.Backward(dk))
	dx.AddScaled(1, m.WV.Backward(dv))
	return dx.Reshape(b, t, d)
}

// TransformerBlock is a pre-norm encoder block: x + MHA(LN(x)), then
// x + FFN(LN(x)) with a 2-layer ReLU feed-forward.
type TransformerBlock struct {
	D     int
	LN1   *LayerNorm
	Attn  *MultiHeadAttention
	LN2   *LayerNorm
	FF1   *Linear
	Act   *Activation
	FF2   *Linear
	batch int
	seq   int
}

// NewTransformerBlock builds a pre-norm transformer encoder block with the
// given model dim, head count and feed-forward width (ReLU feed-forward).
func NewTransformerBlock(rng *rand.Rand, d, heads, ffDim int) *TransformerBlock {
	return NewTransformerBlockAct(rng, d, heads, ffDim, "relu")
}

// NewTransformerBlockAct is NewTransformerBlock with a selectable
// feed-forward activation.
func NewTransformerBlockAct(rng *rand.Rand, d, heads, ffDim int, act string) *TransformerBlock {
	return &TransformerBlock{
		D:   d,
		LN1: NewLayerNorm(d), Attn: NewMultiHeadAttention(rng, d, heads),
		LN2: NewLayerNorm(d), FF1: NewLinear(rng, d, ffDim),
		Act: NewActivation(act), FF2: NewLinear(rng, ffDim, d),
	}
}

// Params implements Module.
func (b *TransformerBlock) Params() []*Param {
	out := append([]*Param{}, b.LN1.Params()...)
	out = append(out, b.Attn.Params()...)
	out = append(out, b.LN2.Params()...)
	out = append(out, b.FF1.Params()...)
	out = append(out, b.FF2.Params()...)
	return out
}

// Forward runs the block on x [B, T, D].
func (b *TransformerBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	bb, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	b.batch, b.seq = bb, t
	flat := x.Reshape(bb*t, d)
	h1 := b.LN1.Forward(flat)
	a := b.Attn.Forward(h1.Reshape(bb, t, d)).Reshape(bb*t, d)
	r1 := tensor.Add(flat, a)

	h2 := b.LN2.Forward(r1)
	f := b.FF2.Forward(b.Act.Forward(b.FF1.Forward(h2)))
	r2 := tensor.Add(r1, f)
	return r2.Reshape(bb, t, d)
}

// Backward propagates through both residual branches.
func (b *TransformerBlock) Backward(dy *tensor.Tensor) *tensor.Tensor {
	bb, t, d := b.batch, b.seq, b.D
	dr2 := dy.Reshape(bb*t, d)

	// FFN branch.
	df := b.FF1.Backward(b.Act.Backward(b.FF2.Backward(dr2)))
	dr1 := b.LN2.Backward(df)
	dr1.AddScaled(1, dr2) // residual

	// Attention branch.
	da := b.Attn.Backward(dr1.Reshape(bb, t, d)).Reshape(bb*t, d)
	dx := b.LN1.Backward(da)
	dx.AddScaled(1, dr1) // residual
	return dx.Reshape(bb, t, d)
}
