// Package tune implements SICKLE-Go's hyperparameter search — the analogue
// of the paper's DeepHyper integration (`--tune`). It performs random
// search with successive-halving early stopping over learning rate, hidden
// width, and batch size: cheap low-epoch evaluations prune the field, and
// survivors are re-trained longer. Random search is the standard strong
// baseline DeepHyper's Bayesian strategies are measured against, and it
// parallelizes across minimpi ranks the same way.
package tune

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/minimpi"
	"repro/internal/train"
)

// Space defines the search ranges.
type Space struct {
	LRMin, LRMax  float64 // log-uniform, defaults 1e-4..1e-2
	HiddenChoices []int   // defaults {8, 16, 32}
	BatchChoices  []int   // defaults {4, 8, 16}
}

func (s *Space) defaults() {
	if s.LRMin <= 0 {
		s.LRMin = 1e-4
	}
	if s.LRMax <= 0 {
		s.LRMax = 1e-2
	}
	if len(s.HiddenChoices) == 0 {
		s.HiddenChoices = []int{8, 16, 32}
	}
	if len(s.BatchChoices) == 0 {
		s.BatchChoices = []int{4, 8, 16}
	}
}

// Trial is one hyperparameter configuration with its measured loss.
type Trial struct {
	LR     float64
	Hidden int
	Batch  int
	Loss   float64
	Epochs int
}

// Config controls the search.
type Config struct {
	Trials      int // total configurations sampled, default 8
	RungEpochs  int // epochs for the screening rung, default 5
	FinalEpochs int // epochs for survivors, default 20
	Survivors   int // configurations promoted to the final rung, default 2
	Seed        int64
	Ranks       int // parallel evaluation ranks, default 1
}

func (c *Config) defaults() {
	if c.Trials <= 0 {
		c.Trials = 8
	}
	if c.RungEpochs <= 0 {
		c.RungEpochs = 5
	}
	if c.FinalEpochs <= 0 {
		c.FinalEpochs = 20
	}
	if c.Survivors <= 0 {
		c.Survivors = 2
	}
	if c.Survivors > c.Trials {
		c.Survivors = c.Trials
	}
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
}

// FactoryFor builds a model factory from a hidden-width hyperparameter.
type FactoryFor func(hidden int) train.ModelFactory

// Search runs the two-rung random search and returns all trials sorted by
// final loss (best first).
func Search(ctx context.Context, factoryFor FactoryFor, examples []train.Example, space Space, cfg Config) ([]Trial, error) {
	space.defaults()
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	trials := make([]Trial, cfg.Trials)
	for i := range trials {
		u := rng.Float64()
		lr := math.Exp(math.Log(space.LRMin) + u*(math.Log(space.LRMax)-math.Log(space.LRMin)))
		trials[i] = Trial{
			LR:     lr,
			Hidden: space.HiddenChoices[rng.Intn(len(space.HiddenChoices))],
			Batch:  space.BatchChoices[rng.Intn(len(space.BatchChoices))],
		}
	}

	evaluate := func(ts []Trial, epochs int) error {
		errs := make([]error, cfg.Ranks)
		minimpi.Run(cfg.Ranks, minimpi.CostModel{}, func(c *minimpi.Comm) {
			lo, hi := c.PartitionRange(len(ts))
			for i := lo; i < hi; i++ {
				_, hist, err := train.Train(ctx, factoryFor(ts[i].Hidden), examples, train.Config{
					Epochs: epochs, Batch: ts[i].Batch, LR: ts[i].LR,
					Seed: cfg.Seed + int64(i), Normalize: true,
				})
				if err != nil {
					errs[c.Rank()] = err
					return
				}
				ts[i].Loss = hist.FinalLoss
				ts[i].Epochs = epochs
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Rung 1: screen everything briefly.
	if err := evaluate(trials, cfg.RungEpochs); err != nil {
		return nil, err
	}
	sort.Slice(trials, func(a, b int) bool { return trials[a].Loss < trials[b].Loss })

	// Rung 2: promote the survivors to a full run.
	if err := evaluate(trials[:cfg.Survivors], cfg.FinalEpochs); err != nil {
		return nil, err
	}
	sort.Slice(trials, func(a, b int) bool { return trials[a].Loss < trials[b].Loss })
	return trials, nil
}

// Best formats the winning trial.
func Best(trials []Trial) string {
	if len(trials) == 0 {
		return "no trials"
	}
	t := trials[0]
	return fmt.Sprintf("lr=%.2g hidden=%d batch=%d loss=%.6f (%d epochs)",
		t.LR, t.Hidden, t.Batch, t.Loss, t.Epochs)
}
