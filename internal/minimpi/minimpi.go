// Package minimpi is a goroutine-based message-passing runtime that stands
// in for MPI in SICKLE-Go. It provides ranks, point-to-point sends, and the
// collectives the sampling pipeline uses (barrier, broadcast, gather,
// allreduce, scatter), plus an injectable communication cost model so the
// Fig. 7 scalability experiments can account for interconnect overhead that
// goroutines on one machine do not exhibit.
//
// Semantics follow MPI: Run launches size ranks and blocks until all of
// them return; collectives must be called by every rank.
package minimpi

import (
	"fmt"
	"math"
	"sync"
)

// CostModel charges simulated communication time. Collectives are modeled
// as log2(P)-depth trees: cost = (Latency + bytes/Bandwidth) · ceil(log2 P).
// A zero model charges nothing.
type CostModel struct {
	Latency   float64 // seconds per message hop
	Bandwidth float64 // bytes per second (0 = infinite)
}

func (m CostModel) cost(bytes int, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(ranks)))
	c := m.Latency
	if m.Bandwidth > 0 {
		c += float64(bytes) / m.Bandwidth
	}
	return c * hops
}

// World is the shared state of one Run.
type World struct {
	size    int
	cost    CostModel
	barrier *cyclicBarrier
	// mailboxes[dst][src] is an unbuffered channel for point-to-point.
	mailboxes [][]chan []float64
	// shared scratch for collectives, guarded by the barrier protocol.
	collect [][]float64
	mu      sync.Mutex
	simComm []float64 // per-rank accumulated simulated comm seconds
}

// Comm is one rank's handle on the world.
type Comm struct {
	w    *World
	rank int
}

// Run executes fn on size concurrent ranks and waits for completion.
func Run(size int, cost CostModel, fn func(c *Comm)) *World {
	if size <= 0 {
		panic(fmt.Sprintf("minimpi: size must be positive, got %d", size))
	}
	w := &World{
		size:    size,
		cost:    cost,
		barrier: newCyclicBarrier(size),
		collect: make([][]float64, size),
		simComm: make([]float64, size),
	}
	w.mailboxes = make([][]chan []float64, size)
	for d := range w.mailboxes {
		w.mailboxes[d] = make([]chan []float64, size)
		for s := range w.mailboxes[d] {
			w.mailboxes[d][s] = make(chan []float64, 1)
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	return w
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// SimCommSeconds returns the simulated communication time accumulated by
// this rank so far.
func (c *Comm) SimCommSeconds() float64 { return c.w.simComm[c.rank] }

// MaxSimCommSeconds returns the max simulated comm time across ranks
// (call after Run returns, on the World).
func (w *World) MaxSimCommSeconds() float64 {
	m := 0.0
	for _, v := range w.simComm {
		if v > m {
			m = v
		}
	}
	return m
}

func (c *Comm) charge(bytes int) {
	c.w.simComm[c.rank] += c.w.cost.cost(bytes, c.w.size)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.sync()
	c.charge(0)
}

// sync is an uncharged internal barrier used inside collectives, which
// charge their cost once instead.
func (c *Comm) sync() {
	c.w.barrier.await()
}

// Send delivers data to rank dst (blocking rendezvous with buffered slack
// of one message per (src,dst) pair). The slice is not copied.
func (c *Comm) Send(dst int, data []float64) {
	c.w.mailboxes[dst][c.rank] <- data
	c.charge(8 * len(data))
}

// Recv receives the next message from rank src.
func (c *Comm) Recv(src int) []float64 {
	return <-c.w.mailboxes[c.rank][src]
}

// Bcast distributes root's buffer to every rank; each rank passes its own
// buffer of identical length which is overwritten (root's is the source).
func (c *Comm) Bcast(root int, buf []float64) {
	if c.rank == root {
		c.w.mu.Lock()
		c.w.collect[root] = buf
		c.w.mu.Unlock()
	}
	c.sync()
	if c.rank != root {
		copy(buf, c.w.collect[root])
	}
	c.charge(8 * len(buf))
	c.sync()
}

// Gather collects each rank's contribution on the root, which receives a
// [][]float64 indexed by rank. Non-root ranks receive nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	c.w.mu.Lock()
	c.w.collect[c.rank] = data
	c.w.mu.Unlock()
	c.sync()
	var out [][]float64
	if c.rank == root {
		out = make([][]float64, c.w.size)
		for r := 0; r < c.w.size; r++ {
			out[r] = append([]float64(nil), c.w.collect[r]...)
		}
	}
	c.charge(8 * len(data))
	c.sync()
	return out
}

// Op is a reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

// Allreduce reduces buf element-wise across ranks with op, leaving the
// result in every rank's buf.
func (c *Comm) Allreduce(buf []float64, op Op) {
	c.w.mu.Lock()
	c.w.collect[c.rank] = buf
	c.w.mu.Unlock()
	c.sync()
	// Every rank computes the reduction over the shared pointers; results
	// are written to a private slice first so sources stay stable.
	res := make([]float64, len(buf))
	for i := range res {
		acc := c.w.collect[0][i]
		for r := 1; r < c.w.size; r++ {
			v := c.w.collect[r][i]
			switch op {
			case Sum:
				acc += v
			case Max:
				if v > acc {
					acc = v
				}
			case Min:
				if v < acc {
					acc = v
				}
			}
		}
		res[i] = acc
	}
	c.charge(8 * len(buf))
	c.sync()
	copy(buf, res)
	c.sync()
}

// PartitionRange splits [0, n) into Size contiguous chunks and returns this
// rank's [lo, hi). Remainder items go to the leading ranks, keeping the
// imbalance at most one.
func (c *Comm) PartitionRange(n int) (lo, hi int) {
	return PartitionRange(n, c.rank, c.w.size)
}

// PartitionRange splits [0, n) into size chunks for the given rank.
func PartitionRange(n, rank, size int) (lo, hi int) {
	base := n / size
	rem := n % size
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// cyclicBarrier is a reusable N-party barrier.
type cyclicBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cyclicBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
