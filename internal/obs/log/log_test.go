package olog

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError, "": LevelInfo,
	} {
		got, ok := ParseLevel(s)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestTextOutputAndFiltering(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelInfo, false)
	l.Debug("hidden")
	l.Info("served", "route", "/v1/infer", "code", 200)
	l.Warn("odd value", "msg with space", "a b")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug leaked through info level")
	}
	if !strings.Contains(out, "info served route=/v1/infer code=200") {
		t.Errorf("text format wrong: %q", out)
	}
	if !strings.Contains(out, `"a b"`) {
		t.Errorf("value with space not quoted: %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelDebug, true).With("tier", "serve")
	l.Info("request", "route", "/healthz", "trace", "abc")
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	for k, want := range map[string]string{
		"level": "info", "msg": "request", "tier": "serve",
		"route": "/healthz", "trace": "abc",
	} {
		if rec[k] != want {
			t.Errorf("%s = %v, want %s", k, rec[k], want)
		}
	}
	if rec["ts"] == nil {
		t.Error("missing ts")
	}
}

func TestNilLoggerNoops(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With("a", "b") != nil {
		t.Error("nil With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger should report disabled")
	}
}

func TestConcurrentUse(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelDebug, false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With("worker", w)
			for i := 0; i < 100; i++ {
				child.Info("tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Count(buf.String(), "\n")
	if lines != 800 {
		t.Errorf("got %d lines, want 800", lines)
	}
}

// scripted clock for the rate-limit tests: each test advances it by hand
// so token refills are deterministic.
func withClock(l *Logger) func(d time.Duration) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	return func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
}

func TestWarnFloodIsRateLimited(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelInfo, false)
	advance := withClock(l)

	// Burst 5: the first five identical warns pass, the rest drop.
	for i := 0; i < 20; i++ {
		l.Warn("replica down", "replica", "r1")
	}
	if got := strings.Count(buf.String(), "replica down"); got != 5 {
		t.Fatalf("burst let %d lines through, want 5", got)
	}
	// One second refills one token; the emitted line carries the
	// suppressed count of the 15 dropped repeats.
	advance(time.Second)
	l.Warn("replica down", "replica", "r1")
	out := buf.String()
	if got := strings.Count(out, "replica down"); got != 6 {
		t.Fatalf("after refill got %d lines, want 6", got)
	}
	if !strings.Contains(out, "suppressed=15") {
		t.Errorf("refill line missing suppressed=15 tail: %q", out)
	}
}

func TestRateLimitIsPerMessageAndLevel(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelInfo, false)
	withClock(l)

	for i := 0; i < 10; i++ {
		l.Warn("a")
	}
	// A different message — and the same message at a different level —
	// have their own buckets.
	l.Warn("b")
	l.Error("a")
	out := buf.String()
	if got := strings.Count(out, "warn a"); got != 5 {
		t.Errorf("warn a lines = %d, want 5", got)
	}
	if !strings.Contains(out, "warn b") || !strings.Contains(out, "error a") {
		t.Errorf("distinct sites were limited together: %q", out)
	}
}

func TestInfoIsNeverRateLimited(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelDebug, false)
	withClock(l)
	for i := 0; i < 50; i++ {
		l.Info("tick")
	}
	if got := strings.Count(buf.String(), "tick"); got != 50 {
		t.Errorf("info lines = %d, want all 50 (no limiting below warn)", got)
	}
}

func TestSetRateLimit(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelInfo, false)
	withClock(l)
	l.SetRateLimit(2, time.Minute)
	for i := 0; i < 10; i++ {
		l.Warn("x")
	}
	if got := strings.Count(buf.String(), "warn x"); got != 2 {
		t.Errorf("burst-2 lines = %d, want 2", got)
	}

	// burst <= 0 disables limiting entirely.
	var buf2 syncBuf
	l2 := New(&buf2, LevelInfo, false)
	withClock(l2)
	l2.SetRateLimit(0, 0)
	for i := 0; i < 10; i++ {
		l2.Warn("x")
	}
	if got := strings.Count(buf2.String(), "warn x"); got != 10 {
		t.Errorf("unlimited lines = %d, want 10", got)
	}
}

func TestRateLimitSharedWithChildren(t *testing.T) {
	var buf syncBuf
	l := New(&buf, LevelInfo, false)
	withClock(l)
	child := l.With("tier", "shard")
	for i := 0; i < 4; i++ {
		l.Warn("boom")
	}
	for i := 0; i < 4; i++ {
		child.Warn("boom")
	}
	// Parent and child share one bucket per message: 8 attempts, burst 5.
	if got := strings.Count(buf.String(), "boom"); got != 5 {
		t.Errorf("shared-bucket lines = %d, want 5", got)
	}
}
