package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/cfd2d"
	"repro/internal/cfd3d"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// kernelReport is the BENCH_kernels.json schema: the compute engine's
// throughput on the training and solver hot paths, each measured with the
// worker pool enabled and disabled IN THE SAME RUN. The speedup ratios are
// the regression-gated quantities — unlike absolute GFLOP/s they compare
// meaningfully across machines, so a baseline committed on one host still
// catches "the pool stopped helping" on CI hardware. parity_ok asserts the
// pooled kernels reproduced the serial results bit for bit during the run.
type kernelReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	MatMul     []matmulBench `json:"matmul"`
	TrainStep  stepBench     `json:"train_step"`
	CFD2DStep  stepBench     `json:"cfd2d_step"`
	CFD3DStep  []cfd3dBench  `json:"cfd3d_step"`
	ParityOK   bool          `json:"parity_ok"`
}

type matmulBench struct {
	Size         int     `json:"size"`
	GFLOPS       float64 `json:"gflops"`
	GFLOPSSerial float64 `json:"gflops_serial"`
	Speedup      float64 `json:"speedup"`
}

type stepBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Speedup     float64 `json:"speedup"`
}

type cfd3dBench struct {
	N int `json:"n"`
	stepBench
}

// timeIt runs fn repeatedly until minDur has elapsed (at least minIters
// times) and returns ns/op plus heap allocations per op.
func timeIt(minIters int, minDur time.Duration, fn func()) (nsPerOp, allocsPerOp float64) {
	fn() // warmup
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for iters < minIters || time.Since(start) < minDur {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
}

// withSerial runs fn with the kernel pool disabled.
func withSerial(fn func() (float64, float64)) (float64, float64) {
	tensor.SetParallel(false)
	defer tensor.SetParallel(true)
	return fn()
}

func benchMatMul(size int) matmulBench {
	rng := rand.New(rand.NewSource(1))
	a := tensor.Randn(rng, 1, size, size)
	b := tensor.Randn(rng, 1, size, size)
	dst := tensor.New(size, size)
	flops := 2 * float64(size) * float64(size) * float64(size)
	run := func() (float64, float64) {
		return timeIt(8, 300*time.Millisecond, func() { tensor.MatMulInto(dst, a, b) })
	}
	nsPar, _ := run()
	nsSer, _ := withSerial(run)
	return matmulBench{
		Size:         size,
		GFLOPS:       flops / nsPar,
		GFLOPSSerial: flops / nsSer,
		Speedup:      nsSer / nsPar,
	}
}

func benchTrainStep() stepBench {
	rng := rand.New(rand.NewSource(1))
	m := train.NewMLPTransformer(rng, 3, 16, 2, 1, 8)
	opt := nn.NewAdam(1e-3)
	in := tensor.Randn(rng, 1, 8, 2, 16, 3)
	tgt := tensor.Randn(rng, 1, 8, 2, 1, 8, 8, 8)
	step := func() {
		nn.ZeroGrads(m)
		pred := m.Forward(in)
		g := tensor.Get(pred.Shape...)
		nn.MSELossInto(g, pred, tgt)
		m.Backward(g)
		tensor.Put(g)
		nn.ClipGradNorm(m, 5)
		opt.Step(m)
	}
	run := func() (float64, float64) { return timeIt(5, 500*time.Millisecond, step) }
	nsPar, allocs := run()
	nsSer, _ := withSerial(run)
	return stepBench{
		NsPerOp: nsPar, OpsPerSec: 1e9 / nsPar,
		AllocsPerOp: allocs, Speedup: nsSer / nsPar,
	}
}

func benchCFD2D() stepBench {
	s := cfd2d.New(cfd2d.Config{Nx: 300, Ny: 120})
	run := func() (float64, float64) {
		return timeIt(10, 500*time.Millisecond, s.Step)
	}
	nsPar, allocs := run()
	nsSer, _ := withSerial(run)
	return stepBench{
		NsPerOp: nsPar, OpsPerSec: 1e9 / nsPar,
		AllocsPerOp: allocs, Speedup: nsSer / nsPar,
	}
}

// benchCFD3D measures cfd3d.Step at cube edge n. The solver's spectral
// projection requires power-of-two edges, so the report covers n=32 and
// n=64 (bracketing the n=48 working point, which the radix-2 FFT cannot
// represent).
func benchCFD3D(n int) cfd3dBench {
	s := cfd3d.NewTaylorGreen(cfd3d.Config{N: n, Seed: 1})
	run := func() (float64, float64) {
		return timeIt(3, 500*time.Millisecond, s.Step)
	}
	nsPar, allocs := run()
	nsSer, _ := withSerial(run)
	return cfd3dBench{N: n, stepBench: stepBench{
		NsPerOp: nsPar, OpsPerSec: 1e9 / nsPar,
		AllocsPerOp: allocs, Speedup: nsSer / nsPar,
	}}
}

// checkParity re-verifies pooled == serial bit-identity on a matmul and a
// short cfd3d trajectory inside the bench binary (the in-package tests
// assert the same against the unexported reference kernels).
func checkParity() bool {
	rng := rand.New(rand.NewSource(3))
	a := tensor.Randn(rng, 1, 130, 70)
	b := tensor.Randn(rng, 1, 70, 90)
	got := tensor.MatMul(a, b)
	tensor.SetParallel(false)
	want := tensor.MatMul(a, b)
	tensor.SetParallel(true)
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			return false
		}
	}

	sp := cfd3d.NewTaylorGreen(cfd3d.Config{N: 16, Seed: 5})
	ss := cfd3d.NewTaylorGreen(cfd3d.Config{N: 16, Seed: 5})
	for i := 0; i < 3; i++ {
		sp.Step()
		tensor.SetParallel(false)
		ss.Step()
		tensor.SetParallel(true)
	}
	for i := range sp.U {
		if math.Float64bits(sp.U[i]) != math.Float64bits(ss.U[i]) ||
			math.Float64bits(sp.R[i]) != math.Float64bits(ss.R[i]) {
			return false
		}
	}
	return true
}

// runKernelBench measures the kernel engine, writes the report, and — when
// a baseline is provided — fails if any speedup ratio regressed by more
// than tol (relative) against it.
func runKernelBench(outPath, baselinePath string, tol float64) error {
	rep := kernelReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	fmt.Println("kernel bench: matmul...")
	for _, size := range []int{64, 128, 256} {
		rep.MatMul = append(rep.MatMul, benchMatMul(size))
	}
	fmt.Println("kernel bench: train step...")
	rep.TrainStep = benchTrainStep()
	fmt.Println("kernel bench: cfd2d step...")
	rep.CFD2DStep = benchCFD2D()
	for _, n := range []int{32, 64} {
		fmt.Printf("kernel bench: cfd3d step n=%d...\n", n)
		rep.CFD3DStep = append(rep.CFD3DStep, benchCFD3D(n))
	}
	fmt.Println("kernel bench: parity...")
	rep.ParityOK = checkParity()

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	for _, m := range rep.MatMul {
		fmt.Printf("  matmul %3d: %6.2f GFLOP/s (serial %6.2f, speedup %.2fx)\n",
			m.Size, m.GFLOPS, m.GFLOPSSerial, m.Speedup)
	}
	fmt.Printf("  train step: %8.0f ns/op, %6.1f allocs/op, speedup %.2fx\n",
		rep.TrainStep.NsPerOp, rep.TrainStep.AllocsPerOp, rep.TrainStep.Speedup)
	fmt.Printf("  cfd2d step: %6.1f steps/s, %4.1f allocs/op, speedup %.2fx\n",
		rep.CFD2DStep.OpsPerSec, rep.CFD2DStep.AllocsPerOp, rep.CFD2DStep.Speedup)
	for _, c := range rep.CFD3DStep {
		fmt.Printf("  cfd3d n=%2d: %6.2f steps/s, speedup %.2fx\n", c.N, c.OpsPerSec, c.Speedup)
	}
	fmt.Printf("  parity_ok: %v\nwrote %s\n", rep.ParityOK, outPath)

	if !rep.ParityOK {
		return fmt.Errorf("kernel bench: pooled kernels are NOT bit-identical to serial")
	}
	if err := checkParallelFloor(rep); err != nil {
		return err
	}
	if baselinePath == "" {
		return nil
	}
	return compareKernelBaseline(rep, baselinePath, tol)
}

// minParallelSpeedup is the absolute floor the strongly-parallel benchmarks
// must clear whenever more than one core is available. The committed
// baseline may come from a single-core builder (where pooled == serial and
// every ratio is ~1.0), which would make a relative-only gate vacuous; this
// floor guarantees a multi-core CI runner still fails if the pool stops
// fanning work out at all. 1.3x is deliberately conservative for a 2-core
// runner; typical 4-vCPU runners measure well above it.
const minParallelSpeedup = 1.3

func checkParallelFloor(rep kernelReport) error {
	if rep.GOMAXPROCS <= 1 {
		return nil
	}
	var failures []string
	need := func(name string, speedup float64) {
		if speedup < minParallelSpeedup {
			failures = append(failures,
				fmt.Sprintf("%s speedup %.2fx < %.1fx floor on %d cores", name, speedup, minParallelSpeedup, rep.GOMAXPROCS))
		}
	}
	for _, m := range rep.MatMul {
		if m.Size >= 256 {
			need(fmt.Sprintf("matmul%d", m.Size), m.Speedup)
		}
	}
	need("cfd2d_step", rep.CFD2DStep.Speedup)
	for _, c := range rep.CFD3DStep {
		need(fmt.Sprintf("cfd3d_n%d", c.N), c.Speedup)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "kernel regression:", f)
		}
		return fmt.Errorf("kernel bench: pool is not delivering parallel speedup (%d failure(s))", len(failures))
	}
	return nil
}

// compareKernelBaseline gates on speedup ratios: absolute throughput is
// machine-bound, but "parallel ÷ serial on the same machine" must not decay
// below (1 - tol) of the committed baseline's ratio.
func compareKernelBaseline(cur kernelReport, path string, tol float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kernel bench: reading baseline: %w", err)
	}
	var base kernelReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("kernel bench: parsing baseline: %w", err)
	}
	var failures []string
	check := func(name string, curS, baseS float64) {
		if baseS <= 0 {
			return
		}
		if curS < baseS*(1-tol) {
			failures = append(failures,
				fmt.Sprintf("%s speedup %.2fx < baseline %.2fx × (1-%.2f)", name, curS, baseS, tol))
		}
	}
	for _, bm := range base.MatMul {
		for _, cm := range cur.MatMul {
			if cm.Size == bm.Size {
				check(fmt.Sprintf("matmul%d", bm.Size), cm.Speedup, bm.Speedup)
			}
		}
	}
	check("train_step", cur.TrainStep.Speedup, base.TrainStep.Speedup)
	check("cfd2d_step", cur.CFD2DStep.Speedup, base.CFD2DStep.Speedup)
	for _, bc := range base.CFD3DStep {
		for _, cc := range cur.CFD3DStep {
			if cc.N == bc.N {
				check(fmt.Sprintf("cfd3d_n%d", bc.N), cc.Speedup, bc.Speedup)
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "kernel regression:", f)
		}
		return fmt.Errorf("kernel bench: %d regression(s) vs %s", len(failures), path)
	}
	fmt.Printf("kernel bench: no regressions vs %s (tol %.0f%%)\n", path, tol*100)
	return nil
}
