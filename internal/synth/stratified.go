package synth

import (
	"math"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/spectral"
)

// StratifiedConfig controls the SST-like stably stratified turbulence
// generator. Anisotropy pushes energy into horizontal layers: vertical
// wavenumbers are damped by AnisoFactor and vertical velocity is suppressed
// by the buoyancy ratio, producing the pancake structures characteristic of
// the de Bruyn Kops ensembles.
type StratifiedConfig struct {
	Nx, Ny, Nz  int     // powers of two
	KPeak       float64 // default 3
	URMS        float64 // default 1
	AnisoFactor float64 // vertical-scale suppression, default 4 (higher = more layered)
	Froude      float64 // w-suppression ratio w_rms/u_rms, default 0.2
	BruntN      float64 // background buoyancy frequency (density gradient), default 1
	Nu          float64 // default 1e-3
	Seed        int64
	GravityAxis int // 1 = y (paper's SST-P1F100 config), 2 = z (default)
}

func (c *StratifiedConfig) defaults() {
	if c.Nx == 0 {
		c.Nx = 32
	}
	if c.Ny == 0 {
		c.Ny = 32
	}
	if c.Nz == 0 {
		c.Nz = 16
	}
	if c.KPeak == 0 {
		c.KPeak = 3
	}
	if c.URMS == 0 {
		c.URMS = 1
	}
	if c.AnisoFactor == 0 {
		c.AnisoFactor = 4
	}
	if c.Froude == 0 {
		c.Froude = 0.2
	}
	if c.BruntN == 0 {
		c.BruntN = 1
	}
	if c.Nu == 0 {
		c.Nu = 1e-3
	}
	if c.GravityAxis == 0 {
		c.GravityAxis = 2
	}
}

// Stratified synthesizes one snapshot of stably stratified turbulence:
// a solenoidal velocity field with anisotropically damped vertical modes, a
// layered density field (linear background + fluctuations tied to vertical
// displacement), pressure, dissipation and potential vorticity — the SST
// variable set of Table 1 (inputs u,v,w,r; outputs p/ε; KCV pv or density).
func Stratified(cfg StratifiedConfig) *grid.Field {
	cfg.defaults()
	nx, ny, nz := cfg.Nx, cfg.Ny, cfg.Nz
	rng := rand.New(rand.NewSource(cfg.Seed))

	gu := spectral.NewGrid3(nx, ny, nz)
	gv := spectral.NewGrid3(nx, ny, nz)
	gw := spectral.NewGrid3(nx, ny, nz)

	// Anisotropic spectrum: damp modes with large wavenumber along gravity.
	fillSpectralVelocityAniso(gu, gv, gw, rng, cfg)

	gu.IFFT3()
	gv.IFFT3()
	gw.IFFT3()

	f := grid.NewField(nx, ny, nz)
	f.Dx = 2 * math.Pi / float64(nx)
	f.Dy = 2 * math.Pi / float64(ny)
	f.Dz = 2 * math.Pi / float64(nz)
	u := gu.RealPart(nil)
	v := gv.RealPart(nil)
	w := gw.RealPart(nil)
	rescaleRMSCommon(cfg.URMS, u, v, w)
	gComp := w
	if cfg.GravityAxis == 1 {
		gComp = v
	}

	f.AddVar("u", u)
	f.AddVar("v", v)
	f.AddVar("w", w)

	// Density: linear stable background plus fluctuation proportional to the
	// vertical velocity (internal-wave phase relation) plus fine layering.
	r := f.AddVar("r", nil)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := f.Idx(i, j, k)
				var s float64 // coordinate along gravity
				switch cfg.GravityAxis {
				case 1:
					s = float64(j) / float64(ny)
				default:
					s = float64(k) / float64(nz)
				}
				background := -cfg.BruntN * cfg.BruntN * s
				fluct := -0.3 * gComp[idx] * cfg.BruntN
				layer := 0.05 * math.Sin(16*math.Pi*s+0.7*u[idx])
				r[idx] = background + fluct + layer
			}
		}
	}

	f.AddVar("p", spectral.PressureFromVelocity(u, v, w, nx, ny, nz))
	f.ComputeDissipation(cfg.Nu)
	f.ComputePotentialVorticity()
	// Alias used by the P1F100 config (cluster/input variable "rhoy"),
	// and dissipation alias "ee" per the paper's YAML.
	f.AddVar("rhoy", append([]float64(nil), r...))
	f.AddVar("ee", append([]float64(nil), f.Var("dissipation")...))
	return f
}

func fillSpectralVelocityAniso(gu, gv, gw *spectral.Grid3, rng *rand.Rand, cfg StratifiedConfig) {
	nx, ny, nz := gu.Nx, gu.Ny, gu.Nz
	npts := nx * ny * nz
	for _, g := range []*spectral.Grid3{gu, gv, gw} {
		noise := make([]float64, npts)
		for i := range noise {
			noise[i] = rng.NormFloat64()
		}
		g.FromReal(noise)
		g.FFT3()
	}
	for k := 0; k < nz; k++ {
		kz := spectral.WaveNumber(k, nz)
		for j := 0; j < ny; j++ {
			ky := spectral.WaveNumber(j, ny)
			for i := 0; i < nx; i++ {
				kx := spectral.WaveNumber(i, nx)
				idx := (k*ny+j)*nx + i
				k2 := kx*kx + ky*ky + kz*kz
				// Zero mean and Nyquist planes (see isotropic.go).
				if k2 == 0 || i == nx/2 || j == ny/2 || k == nz/2 {
					gu.Data[idx], gv.Data[idx], gw.Data[idx] = 0, 0, 0
					continue
				}
				kmag := math.Sqrt(k2)
				// Gravity unit vector.
				var gx, gy, gz float64
				var kg float64 // wavenumber component along gravity
				switch cfg.GravityAxis {
				case 1:
					gy, kg = 1, ky
				default:
					gz, kg = 1, kz
				}
				// Craya-Herring basis: e1 = k×ĝ/|k×ĝ| is perpendicular to
				// gravity (purely "horizontal"); e2 = k×e1/|k| carries the
				// vertical motion. Both are ⊥ k, so any combination is
				// exactly divergence-free. Weighting e2 by the Froude
				// number suppresses vertical velocity without breaking
				// solenoidality.
				c1x := ky*gz - kz*gy
				c1y := kz*gx - kx*gz
				c1z := kx*gy - ky*gx
				n1 := math.Sqrt(c1x*c1x + c1y*c1y + c1z*c1z)
				var e1x, e1y, e1z float64
				if n1 < 1e-12 {
					// k parallel to gravity: pick any horizontal direction.
					e1x, e1y, e1z = 1, 0, 0
					if gx == 1 {
						e1x, e1y = 0, 1
					}
				} else {
					e1x, e1y, e1z = c1x/n1, c1y/n1, c1z/n1
				}
				e2x := (ky*e1z - kz*e1y) / kmag
				e2y := (kz*e1x - kx*e1z) / kmag
				e2z := (kx*e1y - ky*e1x) / kmag

				du, dv, dw := gu.Data[idx], gv.Data[idx], gw.Data[idx]
				a1 := complex(e1x, 0)*du + complex(e1y, 0)*dv + complex(e1z, 0)*dw
				a2 := (complex(e2x, 0)*du + complex(e2y, 0)*dv + complex(e2z, 0)*dw) * complex(cfg.Froude, 0)

				aniso := math.Exp(-cfg.AnisoFactor * (kg * kg) / (cfg.KPeak * cfg.KPeak))
				amp := complex(math.Sqrt(modelSpectrum(kmag, cfg.KPeak, -5.0/3.0)/k2)*aniso, 0)
				gu.Data[idx] = (a1*complex(e1x, 0) + a2*complex(e2x, 0)) * amp
				gv.Data[idx] = (a1*complex(e1y, 0) + a2*complex(e2y, 0)) * amp
				gw.Data[idx] = (a1*complex(e1z, 0) + a2*complex(e2z, 0)) * amp
			}
		}
	}
}

// SSTDataset builds a multi-snapshot SST-like dataset. Each snapshot is an
// independent realization with a slowly drifting seed plus a decay factor,
// emulating the time-evolving Taylor-Green ensemble (use cfd3d.Evolve for
// the dynamically consistent version).
func SSTDataset(label string, nSnapshots int, cfg StratifiedConfig) *grid.Dataset {
	cfg.defaults()
	snaps := make([]*grid.Field, nSnapshots)
	for t := 0; t < nSnapshots; t++ {
		c := cfg
		c.Seed = cfg.Seed + int64(t)*1009
		// Slow decay + re-laminarization trend over the trajectory.
		c.URMS = cfg.URMS * math.Exp(-0.02*float64(t))
		f := Stratified(c)
		f.Time = float64(t)
		snaps[t] = f
	}
	return &grid.Dataset{
		Label:       label,
		Description: "3D stably stratified turbulence (synthetic SST analogue)",
		Snapshots:   snaps,
		InputVars:   []string{"u", "v", "w", "r"},
		OutputVars:  []string{"p"},
		ClusterVar:  "pv",
	}
}
