package cfd3d

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestTaylorGreenInitProjected(t *testing.T) {
	s := NewTaylorGreen(Config{N: 16, Seed: 1})
	if d := s.MaxDivergence(); d > 1e-8 {
		t.Fatalf("initial divergence %v too large", d)
	}
	ke := s.KineticEnergy()
	// TG KE = ½⟨u²+v²⟩ = ½(1/8 + 1/8) = 1/8 plus tiny noise.
	if math.Abs(ke-0.125) > 0.01 {
		t.Fatalf("initial KE = %v, want ~0.125", ke)
	}
}

func TestStepKeepsDivergenceFree(t *testing.T) {
	s := NewTaylorGreen(Config{N: 16, Seed: 2})
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if d := s.MaxDivergence(); d > 1e-6 {
		t.Fatalf("divergence after 5 steps = %v", d)
	}
	if s.Steps != 5 || s.Time <= 0 {
		t.Fatalf("step bookkeeping wrong: steps=%d time=%v", s.Steps, s.Time)
	}
}

func TestViscousDecay(t *testing.T) {
	// With large viscosity and no buoyancy input, KE must decay.
	s := NewTaylorGreen(Config{N: 16, Seed: 3, Nu: 0.05, Noise: 1e-6})
	ke0 := s.KineticEnergy()
	for i := 0; i < 20; i++ {
		s.Step()
	}
	ke1 := s.KineticEnergy()
	if !(ke1 < ke0) {
		t.Fatalf("KE should decay: %v -> %v", ke0, ke1)
	}
	// Rough check against the analytic TG decay rate exp(-2·nu·t·k²) with
	// k²=3: order of magnitude only, since the flow is nonlinear.
	if ke1 > ke0*0.999 {
		t.Fatalf("decay too weak: %v -> %v", ke0, ke1)
	}
}

func TestStratificationLimitsVerticalMotion(t *testing.T) {
	// Strong stratification should keep w small relative to the
	// unstratified run after the same number of steps.
	weak := NewTaylorGreen(Config{N: 16, Seed: 4, BruntN: 1e-3, Noise: 0.05})
	strong := NewTaylorGreen(Config{N: 16, Seed: 4, BruntN: 4, Noise: 0.05})
	for i := 0; i < 30; i++ {
		weak.Step()
		strong.Step()
	}
	wrms := func(w []float64) float64 {
		s := 0.0
		for _, x := range w {
			s += x * x
		}
		return math.Sqrt(s / float64(len(w)))
	}
	if wrms(strong.W) > wrms(weak.W)*1.2 {
		t.Fatalf("stratification failed to limit w: strong=%v weak=%v",
			wrms(strong.W), wrms(weak.W))
	}
	// Density perturbations must develop under stratification.
	if wrms(strong.R) == 0 {
		t.Fatal("density field never evolved")
	}
}

func TestSnapshotVariables(t *testing.T) {
	s := NewTaylorGreen(Config{N: 16, Seed: 5})
	s.Step()
	f := s.Snapshot()
	for _, v := range []string{"u", "v", "w", "r", "p", "dissipation", "pv"} {
		if !f.HasVar(v) {
			t.Fatalf("snapshot missing %q", v)
		}
	}
	// Snapshot must be a copy: mutating it must not corrupt the solver.
	f.Var("u")[0] = 1e9
	if s.U[0] == 1e9 {
		t.Fatal("snapshot aliases solver state")
	}
}

func TestEvolveDataset(t *testing.T) {
	d := EvolveDataset("SST-P1F4-TEST", 3, 2, Config{N: 16, Seed: 6})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NTime() != 3 {
		t.Fatalf("NTime = %d", d.NTime())
	}
	if d.Snapshots[2].Time <= d.Snapshots[1].Time {
		t.Fatal("snapshot times must increase")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := NewTaylorGreen(Config{N: 16, Seed: 7})
	b := NewTaylorGreen(Config{N: 16, Seed: 7})
	for i := 0; i < 3; i++ {
		a.Step()
		b.Step()
	}
	for i := range a.U {
		if a.U[i] != b.U[i] {
			t.Fatal("same seed must reproduce trajectory")
		}
	}
}

func BenchmarkStep16(b *testing.B) {
	s := NewTaylorGreen(Config{N: 16, Seed: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// TestStepBitIdenticalToSerialRef evolves two identically seeded solvers,
// one through the pooled Step and one through the serial reference, and
// asserts all four fields agree bit for bit.
func TestStepBitIdenticalToSerialRef(t *testing.T) {
	tensor.SetWorkers(4) // force a real pool even on single-core machines
	defer tensor.SetWorkers(0)
	a := NewTaylorGreen(Config{N: 16, Seed: 3})
	b := NewTaylorGreen(Config{N: 16, Seed: 3})
	for step := 0; step < 8; step++ {
		a.Step()
		b.stepRef()
	}
	fields := [][2][]float64{{a.U, b.U}, {a.V, b.V}, {a.W, b.W}, {a.R, b.R}}
	names := []string{"U", "V", "W", "R"}
	for fi, pair := range fields {
		for i := range pair[0] {
			if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
				t.Fatalf("%s[%d] differs after 8 steps: %v vs %v",
					names[fi], i, pair[0][i], pair[1][i])
			}
		}
	}
}

// BenchmarkBoussinesqStep measures solver throughput; scratch reuse keeps
// the finite-difference part allocation-free (the spectral projection still
// allocates small per-chunk line buffers).
func BenchmarkBoussinesqStep(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			s := NewTaylorGreen(Config{N: n, Seed: 1})
			s.Step()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}
