// Foundation-model: the paper's Fig. 9 experiment in miniature — the
// MATEY-like multiscale spatiotemporal model trained on SST-P1F4 data at a
// 10% sampling rate with uniform, random, and MaxEnt sampling, comparing
// validation loss against metered energy.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/sickle"
)

func main() {
	fmt.Println("training the MATEY-like multiscale model with three sampling strategies...")
	rows, err := sickle.Fig9(context.Background(), sickle.Small, sickle.Fig9Config{Epochs: 8, CubeEdge: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %12s %14s\n", "sampling", "val loss", "energy (J)")
	best := rows[0]
	for _, r := range rows {
		fmt.Printf("%-10s %12.4f %14.4g\n", r.Method, r.Report.EvalLoss, r.Report.TotalJoules())
		if r.Report.EvalLoss < best.Report.EvalLoss {
			best = r
		}
	}
	fmt.Printf("\nbest validation loss: %s (%.4f)\n", best.Method, best.Report.EvalLoss)
	fmt.Println("The paper found random sampling competitive here (§7) — run with")
	fmt.Println("more epochs and seeds to see how the ordering fluctuates.")
}
