package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/pkg/api"
)

func waitTerminal(t *testing.T, jm *JobManager, id string) api.Job {
	t.Helper()
	done, ok := jm.Done(id)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never reached a terminal state", id)
	}
	j, err := jm.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJobLifecycleAndResult(t *testing.T) {
	jm := NewJobManager(1, 4, time.Minute)
	defer jm.Close()

	ran := make(chan struct{})
	job, err := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		progress("work", 1, 2)
		close(ran)
		return &api.JobResult{Subsample: &api.SubsampleResponse{Cubes: 7}}, nil
	})
	if err != nil || job.State != api.JobPending {
		t.Fatalf("submit = %+v, %v", job, err)
	}
	<-ran
	final := waitTerminal(t, jm, job.ID)
	if final.State != api.JobSucceeded || final.Progress.Stage != "work" {
		t.Fatalf("final = %+v", final)
	}
	res, err := jm.Result(job.ID)
	if err != nil || res.Subsample.Cubes != 7 {
		t.Fatalf("result = %+v, %v", res, err)
	}
}

func TestJobResultNotReady(t *testing.T) {
	jm := NewJobManager(1, 4, time.Minute)
	defer jm.Close()

	release := make(chan struct{})
	job, _ := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		<-release
		return &api.JobResult{}, nil
	})
	_, err := jm.Result(job.ID)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeJobNotReady {
		t.Fatalf("result while running = %v, want job_not_ready", err)
	}
	close(release)
	waitTerminal(t, jm, job.ID)
}

// TestJobCancelWhilePending: with one worker slot occupied, a second job
// canceled before it ever starts finishes canceled without running.
func TestJobCancelWhilePending(t *testing.T) {
	jm := NewJobManager(1, 4, time.Minute)
	defer jm.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	blocker, _ := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		close(started)
		<-release
		return &api.JobResult{}, nil
	})
	<-started
	ran := false
	pending, _ := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		ran = true
		return &api.JobResult{}, nil
	})
	if _, err := jm.Cancel(pending.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, jm, pending.ID)
	if final.State != api.JobCanceled || ran {
		t.Fatalf("pending job finished %s (ran=%v), want canceled without running", final.State, ran)
	}
	close(release)
	waitTerminal(t, jm, blocker.ID)
}

// TestJobTTLPurge: terminal jobs expire after the retention TTL (under an
// injected clock) and then answer job_not_found.
func TestJobTTLPurge(t *testing.T) {
	jm := NewJobManager(1, 4, time.Minute)
	defer jm.Close()
	now := time.Unix(1000, 0)
	jm.now = func() time.Time { return now }

	job, _ := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		return &api.JobResult{}, nil
	})
	waitTerminal(t, jm, job.ID)

	now = now.Add(30 * time.Second) // within TTL: still visible
	if _, err := jm.Get(job.ID); err != nil {
		t.Fatalf("job purged before TTL: %v", err)
	}
	now = now.Add(2 * time.Minute) // past TTL: purged lazily on access
	_, err := jm.Get(job.ID)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeJobNotFound {
		t.Fatalf("expired job = %v, want job_not_found", err)
	}
	if n := len(jm.List()); n != 0 {
		t.Fatalf("list still shows %d jobs after TTL", n)
	}
}

// TestJobAdmissionIgnoresTerminal: retained finished jobs do not consume
// admission slots — only active jobs count against maxJobs.
func TestJobAdmissionIgnoresTerminal(t *testing.T) {
	jm := NewJobManager(1, 2, time.Minute)
	defer jm.Close()
	noop := func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		return &api.JobResult{}, nil
	}
	for i := 0; i < 5; i++ { // well past maxJobs=2, sequentially
		job, err := jm.Submit(api.JobSubsample, noop)
		if err != nil {
			t.Fatalf("submit %d rejected: %v", i, err)
		}
		waitTerminal(t, jm, job.ID)
	}
	if got := len(jm.List()); got != 5 {
		t.Fatalf("retained %d terminal jobs, want 5", got)
	}
}

// TestJobManagerCloseCancelsRunning: Close cancels in-flight jobs, which
// land in canceled with the shutting_down code.
func TestJobManagerCloseCancelsRunning(t *testing.T) {
	jm := NewJobManager(1, 4, time.Minute)

	started := make(chan struct{})
	job, _ := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	jm.Close()
	j, err := jm.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobCanceled || j.Error == nil || j.Error.Code != api.CodeShuttingDown {
		t.Fatalf("after Close: %+v", j)
	}
}
