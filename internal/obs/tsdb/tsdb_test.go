package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// clock is a scripted time source: tests advance it explicitly so sample
// timestamps and window cutoffs are deterministic.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestStore(reg *obs.Registry, capacity int) (*Store, *clock) {
	s := NewStore("test", reg, time.Second, capacity)
	ck := newClock()
	s.SetNowFunc(ck.Now)
	return s, ck
}

// findSeries pulls one named series out of a Query result.
func findSeries(t *testing.T, out []Series, name string) Series {
	t.Helper()
	for _, sr := range out {
		if sr.Name == name {
			return sr
		}
	}
	t.Fatalf("series %q not in query result (%d series)", name, len(out))
	return Series{}
}

func TestCounterDeltasAndResetAbsorption(t *testing.T) {
	reg := obs.NewRegistry()
	cur := 0.0
	var mu sync.Mutex
	reg.CounterFunc("test_jobs_total", "h", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return cur
	})
	set := func(v float64) { mu.Lock(); cur = v; mu.Unlock() }

	s, ck := newTestStore(reg, 16)
	// Scripted cumulative values: 10, 25, 25, then a restart back to 3.
	for _, v := range []float64{10, 25, 25, 3} {
		set(v)
		s.SampleNow()
		ck.Advance(time.Second)
	}

	sr := findSeries(t, s.Query(nil, time.Time{}), "test_jobs_total")
	if sr.Kind != "counter" {
		t.Fatalf("kind = %q, want counter", sr.Kind)
	}
	// First sample primes with the full value; the reset (25 -> 3) must
	// record the new value as the increase, not a negative delta.
	want := []float64{10, 15, 0, 3}
	if len(sr.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(sr.Points), len(want))
	}
	for i, p := range sr.Points {
		if p.V != want[i] {
			t.Errorf("point %d delta = %g, want %g", i, p.V, want[i])
		}
	}
}

func TestRingWraparoundKeepsNewestOldestFirst(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("test_depth", "h").With()

	s, ck := newTestStore(reg, 4)
	for i := 1; i <= 10; i++ {
		g.Set(float64(i))
		s.SampleNow()
		ck.Advance(time.Second)
	}

	sr := findSeries(t, s.Query(nil, time.Time{}), "test_depth")
	if len(sr.Points) != 4 {
		t.Fatalf("ring kept %d points, want capacity 4", len(sr.Points))
	}
	for i, p := range sr.Points {
		if want := float64(7 + i); p.V != want {
			t.Errorf("point %d = %g, want %g (oldest first after wrap)", i, p.V, want)
		}
		if i > 0 && sr.Points[i].T <= sr.Points[i-1].T {
			t.Errorf("points not time-ordered: %g after %g", sr.Points[i].T, sr.Points[i-1].T)
		}
	}
}

func TestHistogramBucketDeltasAndExemplars(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test_seconds", "h", []float64{0.1, 0.5}, "route")
	obsv := h.With("/infer")

	s, ck := newTestStore(reg, 16)
	obsv.ObserveEx(0.05, "trace-a")
	obsv.ObserveEx(0.3, "trace-b")
	s.SampleNow()
	ck.Advance(time.Second)
	obsv.ObserveEx(0.05, "trace-c")
	obsv.ObserveEx(2.0, "trace-d")
	s.SampleNow()

	sr := findSeries(t, s.Query([]string{"test_seconds"}, time.Time{}), "test_seconds")
	if sr.Kind != "histogram" || len(sr.Buckets) != 2 {
		t.Fatalf("series = %+v, want histogram with 2 finite buckets", sr)
	}
	if sr.Labels["route"] != "/infer" {
		t.Fatalf("labels = %v, want route=/infer", sr.Labels)
	}
	if len(sr.HistPoints) != 2 {
		t.Fatalf("got %d hist points, want 2", len(sr.HistPoints))
	}
	// Interval 1: one obs <= 0.1, one in (0.1, 0.5]. Interval 2: one
	// <= 0.1, one beyond the last bound (+Inf bucket).
	p0, p1 := sr.HistPoints[0], sr.HistPoints[1]
	if fmt.Sprint(p0.Counts) != "[1 1 0]" || p0.Count != 2 {
		t.Errorf("interval 1 deltas = %v count %d, want [1 1 0] count 2", p0.Counts, p0.Count)
	}
	if fmt.Sprint(p1.Counts) != "[1 0 1]" || p1.Count != 2 {
		t.Errorf("interval 2 deltas = %v count %d, want [1 0 1] count 2", p1.Counts, p1.Count)
	}
	// Exemplars surface the latest trace ID per bucket in the JSON view.
	if sr.Exemplars["0.1"] != "trace-c" || sr.Exemplars["+Inf"] != "trace-d" {
		t.Errorf("exemplars = %v, want 0.1->trace-c and +Inf->trace-d", sr.Exemplars)
	}
}

func TestQueryGlobAndSince(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("app_requests_total", "h").With()
	reg.Gauge("app_depth", "h").With().Set(1)
	reg.Gauge("other_depth", "h").With().Set(2)

	s, ck := newTestStore(reg, 16)
	a.Inc()
	s.SampleNow()
	ck.Advance(10 * time.Second)
	cut := ck.Now()
	a.Inc()
	s.SampleNow()

	if got := s.Query([]string{"app_*"}, time.Time{}); len(got) != 2 {
		t.Fatalf("glob app_* matched %d series, want 2", len(got))
	}
	if got := s.Query([]string{"other_depth"}, time.Time{}); len(got) != 1 {
		t.Fatalf("exact name matched %d series, want 1", len(got))
	}
	sr := findSeries(t, s.Query([]string{"app_requests_total"}, cut), "app_requests_total")
	if len(sr.Points) != 1 {
		t.Fatalf("since cutoff kept %d points, want 1", len(sr.Points))
	}
}

func TestAggregatorsOverWindows(t *testing.T) {
	reg := obs.NewRegistry()
	req := reg.Counter("req_total", "h", "route")
	depth := reg.Gauge("depth", "h").With()

	s, ck := newTestStore(reg, 64)
	// t=0: 10 on /a, 1 on /b, depth 5.
	for i := 0; i < 10; i++ {
		req.With("/a").Inc()
	}
	req.With("/b").Inc()
	depth.Set(5)
	s.SampleNow()
	// t=30s: 4 more on /a, depth 90.
	ck.Advance(30 * time.Second)
	for i := 0; i < 4; i++ {
		req.With("/a").Inc()
	}
	depth.Set(90)
	s.SampleNow()
	ck.Advance(time.Second)

	// Narrow window sees only the second sample; wide window both.
	if got := s.SumCounter("req_total", map[string]string{"route": "/a"}, 5*time.Second); got != 4 {
		t.Errorf("SumCounter narrow = %g, want 4", got)
	}
	if got := s.SumCounter("req_total", map[string]string{"route": "/a"}, time.Hour); got != 14 {
		t.Errorf("SumCounter wide = %g, want 14", got)
	}
	// No label constraint sums across routes.
	if got := s.SumCounter("req_total", nil, time.Hour); got != 15 {
		t.Errorf("SumCounter all routes = %g, want 15", got)
	}
	if above, total := s.GaugeAbove("depth", nil, time.Hour, 64); above != 1 || total != 2 {
		t.Errorf("GaugeAbove = %d/%d, want 1/2", above, total)
	}
}

func TestHandleHistoryJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "h").With().Inc()
	s, _ := newTestStore(reg, 8)
	s.SampleNow()

	rec := httptest.NewRecorder()
	s.HandleHistory(rec, httptest.NewRequest("GET", "/debug/history?series=x_total&since=5m", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var p Payload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Tier != "test" || p.IntervalSeconds != 1 || len(p.Series) != 1 {
		t.Fatalf("payload = %+v, want tier test, 1s interval, 1 series", p)
	}

	rec = httptest.NewRecorder()
	s.HandleHistory(rec, httptest.NewRequest("GET", "/debug/history?since=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: status = %d, want 400", rec.Code)
	}
}

// TestConcurrentSampleAndQuery races writers, the sampler, and readers;
// run under -race this is the store's memory-safety proof.
func TestConcurrentSampleAndQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("stress_total", "h", "worker")
	h := reg.Histogram("stress_seconds", "h", nil, "worker")

	s := NewStore("stress", reg, time.Millisecond, 32)
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.With(id).Inc()
				h.With(id).ObserveEx(float64(i%10)/100, "t-"+id)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Query([]string{"stress_*"}, time.Time{})
				s.SumCounter("stress_total", nil, time.Second)
				s.HistWindow("stress_seconds", nil, time.Second)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if got := s.Query(nil, time.Time{}); len(got) == 0 {
		t.Fatal("stress run recorded no series")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.Start()
	s.Stop()
	s.SampleNow()
	if s.Query(nil, time.Time{}) != nil {
		t.Error("nil store Query should return nil")
	}
	if v := s.SumCounter("x", nil, time.Hour); v != 0 {
		t.Error("nil store SumCounter should return 0")
	}
}
