package tune

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
	"repro/internal/train"
)

func regressionExamples(n int, seed int64) []train.Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]train.Example, n)
	for i := range out {
		in := tensor.Randn(rng, 1, 2, 2).Reshape(2, 2)
		s := 0.0
		for _, v := range in.Data {
			s += v
		}
		out[i] = train.Example{Input: in, Target: tensor.FromSlice([]float64{s / 4}, 1)}
	}
	return out
}

func factoryFor(hidden int) train.ModelFactory {
	return func(rng *rand.Rand) train.Model {
		return train.NewLSTMModel(rng, 2, hidden, 1)
	}
}

func TestSearchReturnsSortedTrials(t *testing.T) {
	ex := regressionExamples(40, 1)
	trials, err := Search(t.Context(), factoryFor, ex, Space{}, Config{
		Trials: 4, RungEpochs: 3, FinalEpochs: 8, Survivors: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 4 {
		t.Fatalf("%d trials", len(trials))
	}
	for i := 1; i < len(trials); i++ {
		if trials[i].Loss < trials[i-1].Loss {
			t.Fatal("trials not sorted by loss")
		}
	}
	// Survivors got the longer budget.
	if trials[0].Epochs != 8 {
		t.Fatalf("winner trained %d epochs, want 8", trials[0].Epochs)
	}
	// Hyperparameters drawn from the space.
	for _, tr := range trials {
		if tr.LR < 1e-4 || tr.LR > 1e-2 {
			t.Fatalf("LR %v out of range", tr.LR)
		}
		if tr.Hidden != 8 && tr.Hidden != 16 && tr.Hidden != 32 {
			t.Fatalf("hidden %d not in choices", tr.Hidden)
		}
	}
}

func TestSearchParallelRanks(t *testing.T) {
	ex := regressionExamples(30, 3)
	trials, err := Search(t.Context(), factoryFor, ex, Space{}, Config{
		Trials: 4, RungEpochs: 2, FinalEpochs: 4, Survivors: 1, Seed: 4, Ranks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if tr.Loss <= 0 && tr.Epochs == 0 {
			t.Fatal("a trial was never evaluated")
		}
	}
}

func TestSearchDeterministicUnderSeed(t *testing.T) {
	ex := regressionExamples(30, 5)
	a, err := Search(t.Context(), factoryFor, ex, Space{}, Config{Trials: 3, RungEpochs: 2, FinalEpochs: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(t.Context(), factoryFor, ex, Space{}, Config{Trials: 3, RungEpochs: 2, FinalEpochs: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].LR != b[i].LR || a[i].Loss != b[i].Loss {
			t.Fatal("search not deterministic under seed")
		}
	}
}

func TestBestString(t *testing.T) {
	if Best(nil) != "no trials" {
		t.Fatal("empty Best")
	}
	s := Best([]Trial{{LR: 0.001, Hidden: 16, Batch: 8, Loss: 0.5, Epochs: 10}})
	if !strings.Contains(s, "hidden=16") {
		t.Fatalf("Best = %q", s)
	}
}
