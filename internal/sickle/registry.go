// Package sickle is the top-level framework tying SICKLE-Go together: a
// dataset registry covering the paper's Table 1 cases (scaled-down
// synthetic analogues), the T1→T2→T3 experiment pipeline (sample → train →
// evaluate, Fig. 2), and one experiment driver per paper table/figure.
package sickle

import (
	"fmt"
	"sync"

	"repro/internal/cfd2d"
	"repro/internal/cfd3d"
	"repro/internal/grid"
	"repro/internal/synth"
)

// Scale selects dataset sizes. Small keeps unit tests and benches fast;
// Large is closer to (though still far below) the paper's grids and is
// meant for the cmd/sickle-bench CLI.
type Scale int

// Scales.
const (
	Small Scale = iota
	Large
)

// DatasetNames lists the Table 1 cases in paper order.
func DatasetNames() []string {
	return []string{"TC2D", "OF2D", "SST-P1F4", "SST-P1F100", "GESTS-2048", "GESTS-8192"}
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*grid.Dataset{}
)

// BuildDataset constructs (and memoizes) a Table 1 dataset analogue.
func BuildDataset(name string, scale Scale) (*grid.Dataset, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := fmt.Sprintf("%s/%d", name, scale)
	if d, ok := cache[key]; ok {
		return d, nil
	}
	d, err := BuildDatasetUncached(name, scale)
	if err != nil {
		return nil, err
	}
	cache[key] = d
	return d, nil
}

// BuildDatasetUncached constructs a fresh dataset without consulting or
// populating the package-level memo. Serving layers that manage their own
// bounded LRU (internal/serve) use this so eviction there actually frees
// the memory instead of leaving a second unbounded copy here.
func BuildDatasetUncached(name string, scale Scale) (*grid.Dataset, error) {
	d, err := buildDataset(name, scale)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("sickle: generated dataset %s invalid: %w", name, err)
	}
	return d, nil
}

func buildDataset(name string, scale Scale) (*grid.Dataset, error) {
	big := scale == Large
	pick := func(small, large int) int {
		if big {
			return large
		}
		return small
	}
	switch name {
	case "TC2D":
		return synth.TC2DDataset(synth.CombustionConfig{
			Nx: pick(256, 640), Ny: pick(256, 640), Seed: 7,
		}), nil
	case "OF2D":
		// 100 snapshots in the paper; enough shedding periods to regress
		// drag. The lattice is sized so u,v,p snapshots stay light.
		warm, snaps, per := 2500, pick(80, 160), 120
		return cfd2d.OF2DDataset(cfd2d.Config{
			Nx: pick(180, 300), Ny: pick(60, 120), U0: 0.1,
			Reynolds: 150, D: float64(pick(12, 20)), Cx: 30, Cy: float64(pick(30, 60)),
		}, warm, snaps, per), nil
	case "SST-P1F4":
		// Time-evolving Taylor-Green trajectory (125 snapshots in the
		// paper).
		return cfd3d.EvolveDataset("SST-P1F4", pick(10, 24), pick(2, 4), cfd3d.Config{
			N: pick(32, 64), Seed: 11, BruntN: 2,
		}), nil
	case "SST-P1F100":
		// Forced stratified turbulence, few snapshots, strongly
		// anisotropic, gravity along y (the paper's P1F100 config).
		d := synth.SSTDataset("SST-P1F100", pick(4, 8), synth.StratifiedConfig{
			Nx: pick(64, 128), Ny: pick(32, 64), Nz: pick(64, 128),
			Seed: 13, AnisoFactor: 6, Froude: 0.15, GravityAxis: 1,
		})
		d.InputVars = []string{"rhoy"}
		d.OutputVars = []string{"ee"}
		d.ClusterVar = "rhoy"
		return d, nil
	case "GESTS-2048":
		return synth.GESTSDataset("GESTS-2048", synth.IsotropicConfig{
			N: pick(32, 64), Seed: 17, KPeak: 4,
		}), nil
	case "GESTS-8192":
		return synth.GESTSDataset("GESTS-8192", synth.IsotropicConfig{
			N: pick(64, 128), Seed: 19, KPeak: 6,
		}), nil
	}
	return nil, fmt.Errorf("sickle: unknown dataset %q (have %v)", name, DatasetNames())
}

// ClearCache drops memoized datasets (for memory-sensitive callers).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]*grid.Dataset{}
}
