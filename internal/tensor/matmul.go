package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of output rows before MatMul
// fans work out across goroutines; below it the scheduling overhead
// outweighs the speedup.
const parallelThreshold = 64

// MatMul returns a @ b for 2-D tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes dst = a @ b, reusing dst's storage.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if dst.NDim() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	matmulInto(dst.Data, a.Data, b.Data, m, k, n)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D tensors, got %v and %v", a.Shape, b.Shape))
	}
	if a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v vs %v", a.Shape, b.Shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

// matmulInto is an ikj-order kernel: the inner loop runs over contiguous
// rows of b and dst, which keeps memory access sequential.
func matmulInto(dst, a, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	rows := func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ar := a[i*k : (i+1)*k]
			dr := dst[i*n : (i+1)*n]
			for l, av := range ar {
				if av == 0 {
					continue
				}
				br := b[l*n : (l+1)*n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	}
	if m < parallelThreshold {
		rows(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		i0 := w * chunk
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			rows(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D tensor, got %v", a.Shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j*m+i] = v
		}
	}
	return out
}

// MatVec returns a @ x for a (m×k) and x (k).
func MatVec(a, x *Tensor) *Tensor {
	if a.NDim() != 2 || x.NDim() != 1 || a.Dim(1) != x.Dim(0) {
		panic(fmt.Sprintf("tensor: MatVec shapes %v, %v incompatible", a.Shape, x.Shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// AddRowVecInto computes dst[i,j] = a[i,j] + v[j] for a 2-D a and 1-D v
// (broadcast bias addition).
func AddRowVecInto(dst, a, v *Tensor) {
	if a.NDim() != 2 || v.NDim() != 1 || a.Dim(1) != v.Dim(0) || !SameShape(dst, a) {
		panic(fmt.Sprintf("tensor: AddRowVec shapes %v, %v, %v incompatible", dst.Shape, a.Shape, v.Shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	for i := 0; i < m; i++ {
		ar := a.Data[i*n : (i+1)*n]
		dr := dst.Data[i*n : (i+1)*n]
		for j := range dr {
			dr[j] = ar[j] + v.Data[j]
		}
	}
}

// SumRowsInto accumulates the column sums of 2-D a into 1-D dst:
// dst[j] += sum_i a[i,j]. Used for bias gradients.
func SumRowsInto(dst, a *Tensor) {
	if a.NDim() != 2 || dst.NDim() != 1 || a.Dim(1) != dst.Dim(0) {
		panic(fmt.Sprintf("tensor: SumRows shapes %v, %v incompatible", dst.Shape, a.Shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j] += v
		}
	}
}
