package tensor

import "sync"

// The workspace is a size-classed free list of tensor backing arrays. Hot
// loops that allocate same-shaped temporaries every iteration (the trainer's
// batch stacking, the serve batcher's input stacking, solver scratch) call
// Get/Put instead of New, which makes their steady state allocation-free:
// after warmup every Get is satisfied from the free list.
//
// Semantics: Get returns a ZEROED tensor — identical to New — so swapping
// New for Get never changes results. Put recycles a tensor's storage; the
// caller must not touch the tensor afterwards (the canonical use is
// Get → fill → consume → Put within one loop iteration). Put on a tensor
// whose Data is shared with a live view would corrupt the view; only Put
// storage you own outright.

// maxFreePerClass bounds how many buffers each size class retains, so a
// burst of huge temporaries cannot pin memory forever.
const maxFreePerClass = 64

type sizeClass struct {
	mu   sync.Mutex
	bufs [][]float64
}

var (
	arenaMu sync.RWMutex
	arena   = map[int]*sizeClass{}
)

func classFor(n int) *sizeClass {
	arenaMu.RLock()
	sc := arena[n]
	arenaMu.RUnlock()
	if sc != nil {
		return sc
	}
	arenaMu.Lock()
	defer arenaMu.Unlock()
	if sc = arena[n]; sc == nil {
		sc = &sizeClass{}
		arena[n] = sc
	}
	return sc
}

// Get returns a zeroed tensor with the given shape, reusing recycled
// storage when available. It is safe for concurrent use.
func Get(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: negative dimension in Get")
		}
		n *= s
	}
	sc := classFor(n)
	sc.mu.Lock()
	var data []float64
	if len(sc.bufs) > 0 {
		data = sc.bufs[len(sc.bufs)-1]
		sc.bufs = sc.bufs[:len(sc.bufs)-1]
	}
	sc.mu.Unlock()
	if data == nil {
		data = make([]float64, n)
	} else {
		clear(data)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Put recycles t's storage into the workspace free list. t must not be used
// after Put. Putting nil is a no-op.
func Put(t *Tensor) {
	if t == nil || t.Data == nil {
		return
	}
	data := t.Data
	t.Data = nil
	sc := classFor(len(data))
	sc.mu.Lock()
	if len(sc.bufs) < maxFreePerClass {
		sc.bufs = append(sc.bufs, data)
	}
	sc.mu.Unlock()
}
