package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/pkg/api"
	"repro/pkg/client"
)

// TestClientEndToEnd drives the full v2 surface through the pkg/client
// SDK: version negotiation, model listing, inference (bit-checked against
// the reference replica), synchronous subsample, and an async job
// submit → poll → result round trip.
func TestClientEndToEnd(t *testing.T) {
	s, ref := newTestServer(t, Config{MaxBatch: 4, Window: 2 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if v, err := c.Negotiate(ctx); err != nil || v != api.V2 {
		t.Fatalf("Negotiate = %q, %v; want v2", v, err)
	}
	models, err := c.Models(ctx)
	if err != nil || len(models) != 1 || models[0].Name != "m" {
		t.Fatalf("Models = %+v, %v", models, err)
	}
	if models[0].Spec.Arch != testSpec.Arch || models[0].Spec.InDim != testSpec.InDim {
		t.Fatalf("spec did not round-trip: %+v", models[0].Spec)
	}

	rng := rand.New(rand.NewSource(21))
	item := randomItem(rng)
	out, err := c.Infer(ctx, &api.InferRequest{Model: "m", Items: []api.InferItem{item}})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if err := checkOutput(out.Outputs[0], expect(ref, item)); err != nil {
		t.Fatalf("Infer output: %v", err)
	}

	// Typed error: unknown model surfaces as api.CodeModelNotFound.
	_, err = c.Infer(ctx, &api.InferRequest{Model: "nope", Items: []api.InferItem{item}})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeModelNotFound {
		t.Fatalf("unknown model error = %v, want code model_not_found", err)
	}

	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	sr, err := c.Subsample(ctx, &sub)
	if err != nil || sr.Cubes != 2 {
		t.Fatalf("Subsample = %+v, %v", sr, err)
	}

	job, err := c.SubmitSubsampleJob(ctx, &sub)
	if err != nil {
		t.Fatalf("SubmitSubsampleJob: %v", err)
	}
	// Result before the job finishes may be job_not_ready; after WaitJob it
	// must be available.
	done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if done.State != api.JobSucceeded {
		t.Fatalf("job finished %s (%v)", done.State, done.Error)
	}
	if done.Progress.Done != done.Progress.Total || done.Progress.Total != 2 {
		t.Fatalf("job progress = %+v, want 2/2", done.Progress)
	}
	res, err := c.JobResult(ctx, job.ID)
	if err != nil || res.Subsample == nil {
		t.Fatalf("JobResult = %+v, %v", res, err)
	}
	if res.Subsample.Cubes != sr.Cubes || res.Subsample.Points != sr.Points {
		t.Fatalf("job result %+v disagrees with sync run %+v", res.Subsample, sr)
	}

	// The job shows up in metrics.
	raw, err := c.MetricsText(ctx)
	if err != nil || !strings.Contains(raw, `sickle_jobs{state="succeeded"}`) {
		t.Fatalf("metrics missing job gauge (err %v):\n%s", err, raw)
	}
}

// TestTrainJobEndToEnd submits an async train job that registers its
// trained surrogate, then serves inference from it.
func TestTrainJobEndToEnd(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	job, err := c.SubmitTrainJob(ctx, &api.TrainJobSpec{
		Dataset:   "GESTS-2048",
		Subsample: &api.SubsampleRequest{Cube: 8, NumHypercubes: 2, NumSamples: 32, Seed: 1},
		Spec:      api.ModelSpec{Arch: "mlp_transformer", InDim: 4, Hidden: 8, Heads: 2, OutDim: 1, Edge: 8},
		Register:  "trained",
		Epochs:    2, Batch: 8, Seed: 1,
	})
	if err != nil {
		t.Fatalf("SubmitTrainJob: %v", err)
	}
	done, err := c.WaitJob(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if done.State != api.JobSucceeded {
		t.Fatalf("train job finished %s (%v)", done.State, done.Error)
	}
	res, err := c.JobResult(ctx, job.ID)
	if err != nil || res.Train == nil {
		t.Fatalf("JobResult = %+v, %v", res, err)
	}
	if res.Train.Registered != "trained" || res.Train.Epochs != 2 || res.Train.Params <= 0 {
		t.Fatalf("train result = %+v", res.Train)
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var info *api.ModelInfo
	for i := range models {
		if models[i].Name == "trained" {
			info = &models[i]
		}
	}
	if info == nil {
		t.Fatalf("trained model not registered; have %+v", models)
	}
	n := 1
	for _, d := range info.InputShape {
		n *= d
	}
	out, err := c.Infer(ctx, &api.InferRequest{Model: "trained",
		Items: []api.InferItem{{Shape: info.InputShape, Data: make([]float64, n)}}})
	if err != nil || len(out.Outputs) != 1 {
		t.Fatalf("infer on trained model: %+v, %v", out, err)
	}
}

// TestJobCancelMidSubsample is the acceptance check for cancellation:
// DELETE /v2/jobs/{id} during an in-flight subsample job must stop the
// sampling pipeline between cube batches, observable through the job's
// progress counters (done < total) and the terminal canceled state.
func TestJobCancelMidSubsample(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// The hook parks the sampler after its first cube until the test has
	// issued the cancel, making the interleaving deterministic.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testProgressHook = func(done, total int) {
		if done == 1 {
			once.Do(func() { close(started) })
			<-release
		}
	}

	const totalCubes = 4
	job, err := c.SubmitSubsampleJob(ctx, &api.SubsampleRequest{
		Dataset: "GESTS-2048", Cube: 8, NumHypercubes: totalCubes, NumSamples: 16, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if _, err := c.CancelJob(ctx, job.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	close(release)

	done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if done.State != api.JobCanceled {
		t.Fatalf("state = %s, want canceled", done.State)
	}
	if done.Error == nil || done.Error.Code != api.CodeJobCanceled {
		t.Fatalf("job error = %+v, want code job_canceled", done.Error)
	}
	// The sampler stopped between cubes: at least one done, but not all.
	if done.Progress.Done < 1 || done.Progress.Done >= totalCubes {
		t.Fatalf("progress = %+v; cancel did not land between cube batches", done.Progress)
	}
	// The result endpoint reports the cancellation with its typed code.
	_, err = c.JobResult(ctx, job.ID)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeJobCanceled {
		t.Fatalf("result error = %v, want job_canceled", err)
	}
}

// TestBackpressureOverloaded fills a capacity-1 queue and checks rejected
// requests fail fast with the typed overloaded error (HTTP 429) instead of
// blocking, and that the rejection counter reaches /metrics.
func TestBackpressureOverloaded(t *testing.T) {
	s, _ := newTestServer(t, Config{
		MaxBatch: 1, Window: 20 * time.Millisecond, Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetry(0, 0)) // surface 429s, don't retry
	ctx := context.Background()

	// Jam the pipeline by holding every replica: the worker, the jobs
	// buffer, the dispatcher and the capacity-1 queue fill up behind
	// Acquire, so further admissions must reject rather than block.
	entry, _ := s.reg.Lookup("m")
	held, err := entry.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	held2, err := entry.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	item := randomItem(rng)
	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount, overloaded := 0, 0
	fire := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Infer(ctx, &api.InferRequest{Model: "m", Items: []api.InferItem{item}})
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				okCount++
				return
			}
			var ae *api.Error
			if errors.As(err, &ae) && ae.Code == api.CodeOverloaded {
				if ae.RetryAfterSeconds <= 0 {
					t.Errorf("overloaded error without retry hint: %+v", ae)
				}
				overloaded++
				return
			}
			t.Errorf("unexpected error: %v", err)
		}()
	}
	// Keep firing until a rejection is observed (the first few occupy the
	// jammed pipeline stages and block).
	deadline := time.Now().Add(10 * time.Second)
	for {
		fire()
		mu.Lock()
		got := overloaded
		mu.Unlock()
		if got > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never rejected despite jammed pipeline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	entry.Release(held)
	entry.Release(held2)
	wg.Wait()
	if okCount == 0 || overloaded == 0 {
		t.Fatalf("ok=%d overloaded=%d; want both paths exercised", okCount, overloaded)
	}
	if got := s.Metrics().RejectedTotal(); got < int64(overloaded) {
		t.Fatalf("rejected counter %d < observed 429s %d", got, overloaded)
	}
	raw, err := c.MetricsText(ctx)
	if err != nil || !strings.Contains(raw, "sickle_rejected_requests_total") {
		t.Fatalf("metrics missing rejected counter (err %v)", err)
	}
}

// TestJobAdmissionOverloadedRetryAfter checks the job queue's bounded
// admission: with MaxJobs=1 and the only slot parked, a second submission
// gets HTTP 429 with a Retry-After header and the typed overloaded code.
func TestJobAdmissionOverloadedRetryAfter(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testProgressHook = func(done, total int) {
		if done == 1 {
			once.Do(func() { close(started) })
			<-release
		}
	}
	defer close(release)

	c := client.New(ts.URL, client.WithRetry(0, 0))
	ctx := context.Background()
	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	if _, err := c.SubmitSubsampleJob(ctx, &sub); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started

	body, _ := json.Marshal(api.SubmitJobRequest{Type: api.JobSubsample, Subsample: &sub})
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code != api.CodeOverloaded {
		t.Fatalf("envelope = %+v, %v; want overloaded", env.Error, err)
	}
}

// TestBatcherDrainTyped pins the shutdown-drain contract at the batcher
// level: requests admitted (queued) before Stop either complete with real
// results or fail fast with the typed shutting_down error — nothing hangs.
func TestBatcherDrainTyped(t *testing.T) {
	s, ref := newTestServer(t, Config{MaxBatch: 1, Window: time.Millisecond, Workers: 1})
	entry, _ := s.reg.Lookup("m")
	// Replace the model's pool contents: hold every replica so batches jam
	// behind Acquire and later requests stay queued.
	held, err := entry.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	held2, err := entry.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	const n = 6
	type result struct {
		out *[]float64
		err error
	}
	items := make([]api.InferItem, n)
	wants := make([][]float64, n)
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		items[i] = randomItem(rng)
		wants[i] = expect(ref, items[i])
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := tensorFromItem(items[i])
			out, _, _, err := s.batcher.Infer(context.Background(), "m", in)
			if err != nil {
				results[i] = result{err: err}
				return
			}
			data := append([]float64(nil), out.Data...)
			results[i] = result{out: &data}
		}(i)
	}
	// Wait until the pipeline is jammed: worker busy + jobs buffer full +
	// dispatcher blocked leaves the rest in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.batcher.QueueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (depth %d)", s.batcher.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	stopDone := make(chan struct{})
	go func() { s.batcher.Stop(); close(stopDone) }()
	// Give Stop a moment to close the stop channel, then unjam.
	time.Sleep(10 * time.Millisecond)
	entry.Release(held)
	entry.Release(held2)
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("batcher.Stop hung during drain")
	}
	wg.Wait()

	completed, failed := 0, 0
	for i, r := range results {
		switch {
		case r.err != nil:
			var ae *api.Error
			if !errors.As(r.err, &ae) || ae.Code != api.CodeShuttingDown {
				t.Fatalf("request %d failed with %v, want typed shutting_down", i, r.err)
			}
			failed++
		default:
			got := *r.out
			for j := range wants[i] {
				if got[j] != wants[i][j] {
					t.Fatalf("request %d: drained output differs at %d", i, j)
				}
			}
			completed++
		}
	}
	if failed == 0 {
		t.Fatalf("no request saw the typed shutting_down drain (completed=%d)", completed)
	}
	if completed == 0 {
		t.Fatalf("no admitted request completed through the drain (failed=%d)", failed)
	}
}

// TestV1CompatShim freezes the v1 surface: success payloads byte-identical
// to v2 (same wire types), error envelopes in the legacy
// {"error":"message"} shape with the original statuses.
func TestV1CompatShim(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_ = s

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}
	post := func(path string, body any) (int, string) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	// Model listings agree byte for byte across versions.
	c1, v1Models := get("/v1/models")
	c2, v2Models := get("/v2/models")
	if c1 != 200 || c2 != 200 || v1Models != v2Models {
		t.Fatalf("model listings diverge:\nv1(%d) %s\nv2(%d) %s", c1, v1Models, c2, v2Models)
	}

	// Inference success bodies agree byte for byte (serial requests ride
	// batch size 1 deterministically).
	rng := rand.New(rand.NewSource(51))
	req := api.InferRequest{Model: "m", Items: []api.InferItem{randomItem(rng)}}
	c1, v1Out := post("/v1/infer", req)
	c2, v2Out := post("/v2/infer", req)
	if c1 != 200 || c2 != 200 || v1Out != v2Out {
		t.Fatalf("infer bodies diverge:\nv1(%d) %s\nv2(%d) %s", c1, v1Out, c2, v2Out)
	}

	// v1 errors keep the legacy envelope and statuses.
	code, body := post("/v1/infer", api.InferRequest{Model: "nope", Items: req.Items})
	if code != http.StatusNotFound || body != "{\"error\":\"unknown model \\\"nope\\\"\"}\n" {
		t.Fatalf("v1 unknown-model = %d %q", code, body)
	}
	code, body = get("/v1/infer")
	if code != http.StatusMethodNotAllowed || body != "{\"error\":\"POST only\"}\n" {
		t.Fatalf("v1 bad-method = %d %q", code, body)
	}
	code, body = post("/v1/subsample", api.SubsampleRequest{Dataset: "no-such-dataset"})
	if code != http.StatusBadRequest || !strings.HasPrefix(body, "{\"error\":\"") {
		t.Fatalf("v1 subsample error = %d %q, want legacy 400 envelope", code, body)
	}

	// The same failures on v2 carry the typed envelope.
	code, body = post("/v2/infer", api.InferRequest{Model: "nope", Items: req.Items})
	var env api.ErrorEnvelope
	if code != http.StatusNotFound || json.Unmarshal([]byte(body), &env) != nil ||
		env.Error == nil || env.Error.Code != api.CodeModelNotFound {
		t.Fatalf("v2 unknown-model = %d %q", code, body)
	}
	code, body = post("/v2/subsample", api.SubsampleRequest{Dataset: "no-such-dataset"})
	env = api.ErrorEnvelope{}
	if code != http.StatusNotFound || json.Unmarshal([]byte(body), &env) != nil ||
		env.Error == nil || env.Error.Code != api.CodeNotFound {
		t.Fatalf("v2 unknown-dataset = %d %q", code, body)
	}

	// Wrong method and unknown path on v2 stay inside the typed envelope
	// (the mux's plain-text 405/404 pages would break strict clients).
	code, body = get("/v2/infer")
	env = api.ErrorEnvelope{}
	if code != http.StatusMethodNotAllowed || json.Unmarshal([]byte(body), &env) != nil ||
		env.Error == nil || env.Error.Code != api.CodeMethodNotAllowed {
		t.Fatalf("v2 bad-method = %d %q", code, body)
	}
	code, body = get("/v2/no-such-route")
	env = api.ErrorEnvelope{}
	if code != http.StatusNotFound || json.Unmarshal([]byte(body), &env) != nil ||
		env.Error == nil || env.Error.Code != api.CodeNotFound {
		t.Fatalf("v2 unknown-path = %d %q", code, body)
	}
	// A missing .skl shard is the caller's bad reference, not a 500.
	code, body = post("/v2/subsample", api.SubsampleRequest{Shard: "/no/such/shard.skl"})
	env = api.ErrorEnvelope{}
	if code != http.StatusNotFound || json.Unmarshal([]byte(body), &env) != nil ||
		env.Error == nil || env.Error.Code != api.CodeNotFound {
		t.Fatalf("v2 missing-shard = %d %q", code, body)
	}

	// Version negotiation advertises both surfaces.
	code, body = get("/api/version")
	var vi api.VersionInfo
	if code != 200 || json.Unmarshal([]byte(body), &vi) != nil || vi.Latest != api.V2 {
		t.Fatalf("/api/version = %d %q", code, body)
	}
}

// TestRegisterNameValidation: registry names that could smuggle path
// separators (the train job writes a checkpoint before registering) are
// rejected up front.
func TestRegisterNameValidation(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "../evil", "a/b", "a\\b", "a b", strings.Repeat("x", 129)} {
		if _, err := reg.Register(bad, testSpec, "", nil, 1); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	if _, err := reg.Register("ok-name_1.2", testSpec, "", nil, 1); err != nil {
		t.Errorf("benign name rejected: %v", err)
	}
}

// tensorFromItem mirrors the handler's conversion for direct batcher use.
func tensorFromItem(it api.InferItem) *tensor.Tensor {
	return tensor.FromSlice(append([]float64(nil), it.Data...), it.Shape...)
}
