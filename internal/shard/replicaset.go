package shard

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/events"
	"repro/pkg/api"
	"repro/pkg/client"
)

// Replica is one serve backend fronted by the router: a stable ID (its
// ring identity), the base URL, and a pkg/client transport with SDK-side
// retry disabled — the router's failover loop is the retry policy.
type Replica struct {
	ID  string
	URL string
	C   *client.Client

	mu          sync.Mutex
	up          bool
	consecFails int
	lastHealth  api.Health
	lastErr     error
}

// Up reports the replica's current ring membership.
func (r *Replica) Up() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up
}

// Degraded reports whether the replica's last health answer declared it
// degraded (SLO burn-rate rules firing). Degraded replicas stay on the
// ring but are deprioritized in failover order — breaching an SLO means
// "slow or erroring", not "dead", and ejecting it would shift its whole
// load onto the remaining replicas mid-incident.
func (r *Replica) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up && r.lastHealth.Status == "degraded"
}

// ReplicaStatus is one replica's state snapshot (healthz, tests).
type ReplicaStatus struct {
	ID          string
	URL         string
	Up          bool
	ConsecFails int
	LastErr     error
	Health      api.Health // last successful /healthz body
}

// SetConfig sizes a ReplicaSet. Zero values select the documented
// defaults.
type SetConfig struct {
	URLs       []string      // backend base URLs (required, fixed for the set's lifetime)
	VNodes     int           // virtual nodes per replica (default DefaultVNodes)
	ProbeEvery time.Duration // health-probe period (default 1s)
	FailAfter  int           // consecutive failures before ejection (default 2)
	HTTPClient *http.Client  // optional transport override (tests)

	// Journal receives ejection/re-admission events; nil discards them.
	Journal *events.Journal
}

// ReplicaSet owns the router's replica list, the consistent-hash ring over
// the live subset, and the health prober that ejects unreachable backends
// and re-admits them when /healthz answers again.
type ReplicaSet struct {
	replicas []*Replica
	byID     map[string]*Replica

	mu       sync.RWMutex // guards ring (and orders liveness transitions)
	ring     *Ring
	fullRing *Ring // all replicas, immutable — the last-resort order when everything is ejected

	probeEvery   time.Duration
	probeTimeout time.Duration
	failAfter    int
	met          *Metrics
	journal      *events.Journal

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewReplicaSet builds the set with every replica initially admitted; the
// first probe round corrects optimism about backends that are already
// down. Replica IDs are r0, r1, ... in URL order.
func NewReplicaSet(cfg SetConfig, met *Metrics) (*ReplicaSet, error) {
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("shard: replica set needs at least one backend URL")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	probeTimeout := cfg.ProbeEvery
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	rs := &ReplicaSet{
		byID:         map[string]*Replica{},
		ring:         NewRing(cfg.VNodes),
		fullRing:     NewRing(cfg.VNodes),
		probeEvery:   cfg.ProbeEvery,
		probeTimeout: probeTimeout,
		failAfter:    cfg.FailAfter,
		met:          met,
		journal:      cfg.Journal,
		stop:         make(chan struct{}),
	}
	for i, url := range cfg.URLs {
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		if url == "" {
			return nil, fmt.Errorf("shard: empty replica URL at position %d", i)
		}
		// Each replica gets its own transport (unless the caller injects
		// one): sharing http.DefaultTransport's global keep-alive pool
		// would let a stale pooled connection to a died-and-respawned
		// backend — or another process that reused its port — poison calls,
		// and per-backend pools keep one slow replica from starving the
		// others' idle-connection budget.
		hc := cfg.HTTPClient
		if hc == nil {
			hc = &http.Client{Transport: &http.Transport{
				Proxy:               http.ProxyFromEnvironment,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			}}
		}
		opts := []client.Option{client.WithRetry(0, 0), client.WithHTTPClient(hc)}
		r := &Replica{
			ID:  fmt.Sprintf("r%d", i),
			URL: url,
			C:   client.New(url, opts...),
			up:  true,
		}
		rs.replicas = append(rs.replicas, r)
		rs.byID[r.ID] = r
		rs.ring.Add(r.ID)
		rs.fullRing.Add(r.ID)
		met.SetUp(r.ID, true)
	}
	return rs, nil
}

// Start launches the background health prober (probe immediately, then
// every ProbeEvery).
func (rs *ReplicaSet) Start() {
	rs.wg.Add(1)
	go func() {
		defer rs.wg.Done()
		rs.ProbeAll()
		t := time.NewTicker(rs.probeEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rs.ProbeAll()
			case <-rs.stop:
				return
			}
		}
	}()
}

// Stop halts the prober. Safe to call more than once.
func (rs *ReplicaSet) Stop() {
	rs.stopOnce.Do(func() { close(rs.stop) })
	rs.wg.Wait()
}

// ProbeAll probes every replica's /healthz concurrently and applies the
// ejection/re-admission rules. Called by the prober loop; exported so
// tests can force a deterministic round.
func (rs *ReplicaSet) ProbeAll() {
	var wg sync.WaitGroup
	for _, r := range rs.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			// Probes are owned by the prober loop, not a request; the
			// timeout is their only deadline.
			//sicklevet:ignore ctxfirst background health probe, bounded by probeTimeout
			ctx, cancel := context.WithTimeout(context.Background(), rs.probeTimeout)
			defer cancel()
			h, err := r.C.Health(ctx)
			if err != nil {
				rs.NoteFailure(r, err)
				return
			}
			rs.noteUp(r, h)
		}(r)
	}
	wg.Wait()
}

// NoteOK records a successful routed call: the replica is demonstrably
// alive, so its failure streak resets and, if it had been ejected, it
// rejoins the ring without waiting for the next probe.
func (rs *ReplicaSet) NoteOK(r *Replica) { rs.noteUp(r, nil) }

// noteUp and NoteFailure hold rs.mu around both the up-flag decision and
// the ring mutation (with r.mu nested for the replica fields): deciding
// under one lock and mutating the ring under another would let a racing
// success/failure pair strand a healthy replica off the ring (or a dead
// one on it) permanently. Lock order is always rs.mu → r.mu.
func (rs *ReplicaSet) noteUp(r *Replica, h *api.Health) {
	rs.mu.Lock()
	r.mu.Lock()
	wasUp := r.up
	r.up = true
	r.consecFails = 0
	r.lastErr = nil
	if h != nil {
		r.lastHealth = *h
	}
	r.mu.Unlock()
	if !wasUp {
		rs.ring.Add(r.ID)
	}
	rs.mu.Unlock()
	if !wasUp {
		rs.met.ObserveReadmission()
		rs.met.SetUp(r.ID, true)
		rs.journal.Emit(events.TypeReadmission, "replica re-admitted to the ring", "",
			"replica", r.ID, "url", r.URL)
	}
}

// NoteFailure records a failed probe or routed call; failAfter consecutive
// failures eject the replica from the ring until a probe (or routed call)
// succeeds again.
func (rs *ReplicaSet) NoteFailure(r *Replica, err error) {
	rs.mu.Lock()
	r.mu.Lock()
	r.consecFails++
	r.lastErr = err
	eject := r.up && r.consecFails >= rs.failAfter
	if eject {
		r.up = false
	}
	r.mu.Unlock()
	if eject {
		rs.ring.Remove(r.ID)
	}
	rs.mu.Unlock()
	if eject {
		rs.met.ObserveEjection()
		rs.met.SetUp(r.ID, false)
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		rs.journal.Emit(events.TypeEjection, "replica ejected from the ring", "",
			"replica", r.ID, "url", r.URL, "error", msg)
	}
}

// Replicas returns the fixed replica list in URL order.
func (rs *ReplicaSet) Replicas() []*Replica { return rs.replicas }

// Live returns the replicas currently on the ring, in URL order.
func (rs *ReplicaSet) Live() []*Replica {
	out := make([]*Replica, 0, len(rs.replicas))
	for _, r := range rs.replicas {
		if r.Up() {
			out = append(out, r)
		}
	}
	return out
}

// Get resolves a replica by ID.
func (rs *ReplicaSet) Get(id string) (*Replica, bool) {
	r, ok := rs.byID[id]
	return r, ok
}

// Owner returns the live replica owning key.
func (rs *ReplicaSet) Owner(key string) (*Replica, bool) {
	seq := rs.Sequence(key, 1)
	if len(seq) == 0 {
		return nil, false
	}
	return seq[0], true
}

// Sequence returns up to n distinct replicas in consistent-hash order for
// key: the owner first, then the failover candidates. When every replica
// has been ejected it falls back to the full set in hash order — a
// last-resort attempt beats refusing outright, and one success re-admits.
// Replicas reporting themselves degraded (SLO breach) are stably moved
// behind the healthy candidates: still reachable, tried last.
func (rs *ReplicaSet) Sequence(key string, n int) []*Replica {
	rs.mu.RLock()
	ids := rs.ring.Sequence(key, n)
	if len(ids) == 0 {
		// fullRing is immutable after construction, so reading it under the
		// read lock is fine.
		ids = rs.fullRing.Sequence(key, n)
	}
	rs.mu.RUnlock()
	out := make([]*Replica, 0, len(ids))
	var degraded []*Replica
	for _, id := range ids {
		if r, ok := rs.byID[id]; ok {
			if r.Degraded() {
				degraded = append(degraded, r)
			} else {
				out = append(out, r)
			}
		}
	}
	return append(out, degraded...)
}

// Snapshot returns every replica's current state, in URL order.
func (rs *ReplicaSet) Snapshot() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(rs.replicas))
	for _, r := range rs.replicas {
		r.mu.Lock()
		out = append(out, ReplicaStatus{
			ID: r.ID, URL: r.URL, Up: r.up,
			ConsecFails: r.consecFails, LastErr: r.lastErr, Health: r.lastHealth,
		})
		r.mu.Unlock()
	}
	return out
}
