// Package shard is SICKLE-Go's horizontal scaling tier: a router that
// fronts N sickle-serve backends and is itself a byte-compatible pkg/api
// server. Infer and subsample requests are routed by consistent hashing on
// the model/dataset name — each backend's replica pool and LRU stay hot on
// its shard of the keyspace — with bounded-retry failover to the next ring
// node when a backend is unreachable, overloaded, or draining. Model
// listings and the version handshake are scatter-gathered across live
// backends; jobs stick to the backend that accepted them via a replica
// suffix baked into the job ID. A health prober ejects backends after
// consecutive failures and re-admits them when /healthz answers again,
// mutating the ring so the keyspace re-converges. cmd/sickle-shard is the
// binary; cmd/sickle-bench -serve URL -shard is the matching load phase.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per ring node — enough that a
// handful of nodes split 1k keys within a modest balance bound (asserted
// by TestRingBalance).
const DefaultVNodes = 160

// Ring is a consistent-hash ring over node IDs. Each node contributes
// vnodes points; a key belongs to the node owning the first point at or
// after the key's hash. Ring is not safe for concurrent use — the
// ReplicaSet guards it.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, node)
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per node
// (DefaultVNodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// ringHash is FNV-1a followed by the MurmurHash3 64-bit finalizer. Bare
// FNV-1a of short, similar strings ("r2#0", "r2#1", ...) barely differs in
// the low bits, so a node's virtual points would cluster into one tight
// arc and wreck the balance property; the finalizer's avalanche spreads
// them across the whole ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node's virtual points. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	r.rebuild()
}

// Remove drops a node and its points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	r.rebuild()
}

// rebuild regenerates the point list from the membership set. Points are
// a pure function of (nodes, vnodes), so any Add/Remove sequence reaching
// the same membership yields an identical ring: repeated joins cannot
// duplicate a node's vnode points, and interleaved join/leave churn
// cannot leave stale points behind. Membership changes are rare (admin
// joins, ejections), so the full re-sort is cheap relative to what it
// buys.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for node := range r.nodes {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{ringHash(node + "#" + strconv.Itoa(i)), node})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the node IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns up to n distinct nodes in ring order starting at the
// key's successor point — the owner first, then the failover candidates in
// the order keys would migrate if the owner left the ring.
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; len(out) < n && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
