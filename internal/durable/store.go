package durable

import (
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Store bundles a replica's durability state under one data directory:
//
//	<dir>/wal.log   write-ahead job log (wal.compact during recovery)
//	<dir>/results/  per-job result blobs, keyed by job ID
//	<dir>/cas/      content-addressed subsample cache, keyed by ContentKey
type Store struct {
	WAL     *Log
	Results *BlobStore
	Cache   *BlobStore
}

// Open creates dir if needed, replays the previous WAL, and returns the
// store plus the folded per-job records in submission order. The WAL is
// unsealed: the caller re-appends the records it retains (restored
// terminal jobs, re-enqueued interrupted ones) and then calls Seal,
// which atomically compacts the log. Dropped jobs simply aren't
// re-appended — that is the whole compaction scheme.
func Open(dir string) (*Store, []JobRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	wal, recs, err := openLog(dir)
	if err != nil {
		return nil, nil, err
	}
	results, err := newBlobStore(filepath.Join(dir, "results"))
	if err != nil {
		_ = wal.Close() // the store-open error dominates
		return nil, nil, err
	}
	cache, err := newBlobStore(filepath.Join(dir, "cas"))
	if err != nil {
		_ = wal.Close() // the store-open error dominates
		return nil, nil, err
	}
	return &Store{WAL: wal, Results: results, Cache: cache}, recs, nil
}

// Seal finishes recovery: see Log.Seal.
func (s *Store) Seal() error { return s.WAL.Seal() }

// Freeze drops all future WAL appends (crash simulation); see Log.Freeze.
func (s *Store) Freeze() {
	if s == nil {
		return
	}
	s.WAL.Freeze()
}

// Close releases the WAL file handle.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.WAL.Close()
}

// Register mounts sickle_wal_* and sickle_dedup_* metrics. The result
// store stays uncounted — its reads happen once, at recovery.
func (s *Store) Register(reg *obs.Registry) {
	s.WAL.register(reg)
	s.Cache.register(reg)
}
