package sampling

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/minimpi"
)

// PipelineConfig mirrors the artifact's subsample.py case parameters: which
// hypercube selector (phase 1) and point sampler (phase 2) to use, the
// hypercube geometry, and the per-cube sample budget.
type PipelineConfig struct {
	Hypercubes    string // "random" | "maxent"
	Method        string // "full" | "random" | "lhs" | "stratified" | "uips" | "maxent"
	NumHypercubes int    // cubes to keep per snapshot
	NumSamples    int    // points per cube (paper default: 3277 = 10% of 32³)
	CubeSx        int    // default 32
	CubeSy        int
	CubeSz        int
	NumClusters   int // k for the MaxEnt methods
	Seed          int64
	Meter         *energy.Meter
	// Progress, when non-nil, is called after each cube finishes phase 2
	// with the number of cubes done and the snapshot's total — the hook the
	// serve job manager uses to report cancellable progress. It must not
	// retain the arguments across calls.
	Progress func(done, total int) `json:"-" yaml:"-"`
}

func (c *PipelineConfig) defaults() {
	if c.Hypercubes == "" {
		c.Hypercubes = "random"
	}
	if c.Method == "" {
		c.Method = "random"
	}
	if c.NumHypercubes <= 0 {
		c.NumHypercubes = 12
	}
	if c.CubeSx <= 0 {
		c.CubeSx = 32
	}
	if c.CubeSy <= 0 {
		c.CubeSy = c.CubeSx
	}
	if c.CubeSz <= 0 {
		c.CubeSz = c.CubeSx
	}
	if c.NumSamples <= 0 {
		c.NumSamples = c.CubeSx * c.CubeSy * c.CubeSz / 10
	}
}

// CubeSample is the output of the two-phase pipeline for one cube of one
// snapshot: the cube identity plus the selected point indices (cube-local)
// and their feature/target values.
type CubeSample struct {
	Snapshot int
	Cube     grid.Hypercube
	// LocalIdx are indices into the cube's own point ordering.
	LocalIdx []int
	// Features[r] is the input feature vector of selected point r.
	Features [][]float64
	// Targets[r] holds the output variables of selected point r.
	Targets [][]float64
}

// NewHypercubeSelector builds a phase-1 selector by name.
func NewHypercubeSelector(name string, numClusters int, m *energy.Meter) (HypercubeSelector, error) {
	switch name {
	case "random", "":
		return HRandom{Meter: m}, nil
	case "maxent":
		return HMaxEnt{NumClusters: numClusters, Meter: m}, nil
	default:
		return nil, fmt.Errorf("sampling: unknown hypercube selector %q", name)
	}
}

// NewPointSampler builds a phase-2 sampler by name.
func NewPointSampler(name string, numClusters int, m *energy.Meter) (PointSampler, error) {
	switch name {
	case "random", "":
		return Random{Meter: m}, nil
	case "full":
		return Full{Meter: m}, nil
	case "uniform":
		return Uniform{Meter: m}, nil
	case "lhs":
		return LHS{Meter: m}, nil
	case "stratified":
		return Stratified{Meter: m}, nil
	case "uips":
		return UIPS{Meter: m}, nil
	case "maxent":
		return MaxEnt{NumClusters: numClusters, Meter: m}, nil
	default:
		return nil, fmt.Errorf("sampling: unknown point sampler %q", name)
	}
}

// MethodNames lists the registered point samplers (for CLIs and sweeps).
func MethodNames() []string {
	return []string{"full", "random", "uniform", "lhs", "stratified", "uips", "maxent"}
}

// SelectCubesForDataset runs phase 1 once, on the snapshot refSnap, and
// returns the cube set to use for every snapshot. Holding the cube set
// fixed across time is what makes spatiotemporal windows well-defined: the
// same spatial region is observed at every timestep (fixed sensor regions).
// The context is checked before the (potentially expensive, for MaxEnt)
// selection runs; a canceled ctx returns ctx.Err().
func SelectCubesForDataset(ctx context.Context, d *grid.Dataset, refSnap int, cfg PipelineConfig) ([]grid.Hypercube, error) {
	return SelectCubesForField(ctx, d.Snapshots[refSnap], d.ClusterVar, cfg)
}

// SelectCubesForField runs phase 1 on a single in-memory snapshot (the
// streaming twin of SelectCubesForDataset): the rng is seeded from cfg.Seed
// alone, so streamed and offline runs derive the identical cube set from the
// same reference snapshot.
func SelectCubesForField(ctx context.Context, f *grid.Field, clusterVar string, cfg PipelineConfig) ([]grid.Hypercube, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	hsel, err := NewHypercubeSelector(cfg.Hypercubes, cfg.NumClusters, cfg.Meter)
	if err != nil {
		return nil, err
	}
	cubes := grid.Tile(f, cfg.CubeSx, cfg.CubeSy, cfg.CubeSz)
	if len(cubes) == 0 {
		return nil, fmt.Errorf("sampling: grid %dx%dx%d too small for %dx%dx%d cubes",
			f.Nx, f.Ny, f.Nz, cfg.CubeSx, cfg.CubeSy, cfg.CubeSz)
	}
	return hsel.SelectCubes(f, cubes, clusterVar, cfg.NumHypercubes, rng), nil
}

// SubsampleSnapshotWithCubes runs phase 2 on one snapshot over a fixed cube
// set. The rng is seeded per snapshot, so results do not depend on how
// snapshots are distributed across ranks.
func SubsampleSnapshotWithCubes(ctx context.Context, d *grid.Dataset, snap int, kept []grid.Hypercube, cfg PipelineConfig) ([]CubeSample, error) {
	return SubsampleFieldWithCubes(ctx, d.Snapshots[snap], snap, kept,
		d.InputVars, d.OutputVars, d.ClusterVar, cfg)
}

// SubsampleFieldWithCubes runs phase 2 on a single in-memory snapshot
// without requiring a materialized Dataset — the entry point for in-situ
// streaming consumers that receive snapshots one at a time. snap seeds the
// per-snapshot rng exactly as the offline pipeline does (Seed + snap·7919),
// so a streamed selection reproduces the offline result bit-for-bit.
//
// The context is checked between cubes: a cancellation lands before the
// next cube starts and returns ctx.Err(), so a canceled job stops within
// one cube batch of the signal. cfg.Progress (if set) fires after every
// completed cube.
func SubsampleFieldWithCubes(ctx context.Context, f *grid.Field, snap int, kept []grid.Hypercube,
	inVars, outVars []string, clusterVar string, cfg PipelineConfig) ([]CubeSample, error) {

	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(snap)*7919))
	psel, err := NewPointSampler(cfg.Method, cfg.NumClusters, cfg.Meter)
	if err != nil {
		return nil, err
	}
	out := make([]CubeSample, 0, len(kept))
	for i, cube := range kept {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs, err := samplePointsInCube(f, snap, cube, psel, cfg, rng, inVars, outVars, clusterVar)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(kept))
		}
	}
	return out, nil
}

// SubsampleSnapshot runs the full two-phase pipeline (Fig. 3) on one
// snapshot in isolation: tile → phase-1 cube selection → phase-2 point
// selection inside each kept cube. When cfg.Method == "full" the second
// phase is skipped and every point of each cube is kept (the paper's
// structured-cube baseline).
func SubsampleSnapshot(ctx context.Context, d *grid.Dataset, snap int, cfg PipelineConfig) ([]CubeSample, error) {
	kept, err := SelectCubesForDataset(ctx, d, snap, cfg)
	if err != nil {
		return nil, err
	}
	return SubsampleSnapshotWithCubes(ctx, d, snap, kept, cfg)
}

func samplePointsInCube(f *grid.Field, snap int, cube grid.Hypercube,
	psel PointSampler, cfg PipelineConfig, rng *rand.Rand,
	inVars, outVars []string, clusterVar string) (CubeSample, error) {

	flat := cube.Indices(f)
	features := make([][]float64, len(flat))
	backing := make([]float64, len(flat)*len(inVars))
	for r, idx := range flat {
		row := backing[r*len(inVars) : (r+1)*len(inVars)]
		f.Point(idx, inVars, row)
		features[r] = row
	}
	var kcv []float64
	if clusterVar != "" {
		kcv = cube.VarValues(f, clusterVar)
	}
	data := &Data{Features: features, ClusterVar: kcv}

	n := cfg.NumSamples
	if _, isFull := psel.(Full); isFull {
		n = len(flat)
	}
	local := psel.SelectPoints(data, n, rng)

	cs := CubeSample{Snapshot: snap, Cube: cube, LocalIdx: local}
	cs.Features = make([][]float64, len(local))
	cs.Targets = make([][]float64, len(local))
	for r, li := range local {
		cs.Features[r] = features[li]
		tgt := make([]float64, len(outVars))
		f.Point(flat[li], outVars, tgt)
		cs.Targets[r] = tgt
	}
	return cs, nil
}

// SubsampleDataset runs the pipeline over every snapshot serially: one
// phase-1 selection on snapshot 0, then phase-2 per snapshot over the fixed
// cube set. The context is checked between phases and between snapshots
// (and, inside each snapshot, between cubes).
func SubsampleDataset(ctx context.Context, d *grid.Dataset, cfg PipelineConfig) ([]CubeSample, error) {
	kept, err := SelectCubesForDataset(ctx, d, 0, cfg)
	if err != nil {
		return nil, err
	}
	var out []CubeSample
	for t := range d.Snapshots {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs, err := SubsampleSnapshotWithCubes(ctx, d, t, kept, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}

// SubsampleParallel distributes snapshots across minimpi ranks (the unit of
// parallelism in the artifact's `srun -n 32 subsample.py`), gathers results
// on rank 0, and returns them with the world handle for comm-cost queries.
func SubsampleParallel(ctx context.Context, d *grid.Dataset, cfg PipelineConfig, ranks int, cost minimpi.CostModel) ([]CubeSample, *minimpi.World, error) {
	results := make([][]CubeSample, ranks)
	errs := make([]error, ranks)
	w := minimpi.Run(ranks, cost, func(c *minimpi.Comm) {
		// Phase 1 is deterministic under cfg.Seed, so every rank derives
		// the identical cube set locally (as each MPI rank reads the
		// shared snapshot metadata). A failing rank (including one that
		// observes cancellation) still joins the Gather below — collectives
		// deadlock if any rank skips them.
		var local []CubeSample
		kept, err := SelectCubesForDataset(ctx, d, 0, cfg)
		if err != nil {
			errs[c.Rank()] = err
		} else {
			lo, hi := c.PartitionRange(len(d.Snapshots))
			for t := lo; t < hi; t++ {
				cs, err := SubsampleSnapshotWithCubes(ctx, d, t, kept, cfg)
				if err != nil {
					errs[c.Rank()] = err
					break
				}
				local = append(local, cs...)
			}
		}
		results[c.Rank()] = local
		// Gather a summary (sample counts) to rank 0, mirroring the MPI
		// communication pattern (and charging the cost model for it).
		counts := []float64{float64(len(local))}
		c.Gather(0, counts)
	})
	var out []CubeSample
	for r := 0; r < ranks; r++ {
		if errs[r] != nil {
			return nil, w, errs[r]
		}
		out = append(out, results[r]...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Snapshot != out[b].Snapshot {
			return out[a].Snapshot < out[b].Snapshot
		}
		return out[a].Cube.ID < out[b].Cube.ID
	})
	return out, w, nil
}
