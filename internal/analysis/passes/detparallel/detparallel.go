// Package detparallel protects the kernel engine's determinism contract
// (PR 3, asserted by internal/tensor's parity tests): every kernel
// produces bit-identical results serial or parallel, because
// tensor.ParallelFor's chunk decomposition depends only on (n, grain)
// and each chunk's work is a pure function of its index range.
//
// That contract dies quietly when a chunk body consults anything
// nondeterministic, so inside every function literal passed to
// (*tensor.Pool).ParallelFor this pass bans:
//
//   - time.Now / time.Since / time.Until (wall-clock-dependent values
//     diverge between serial and parallel runs — measure outside the
//     kernel);
//   - math/rand and math/rand/v2 (global or not, the draw order depends
//     on chunk interleaving; use a per-chunk seeded generator derived
//     from the chunk index, constructed outside);
//   - ranging over a map (iteration order differs run to run; iterate a
//     sorted slice).
//
// Nested closures inside the body are included — they run on pool
// workers too.
package detparallel

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detparallel pass.
var Analyzer = &analysis.Analyzer{
	Name: "detparallel",
	Doc:  "ParallelFor bodies must be deterministic: no wall clock, no math/rand, no map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isParallelFor(pass, call) || len(call.Args) == 0 {
				return true
			}
			if body, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
				checkBody(pass, body.Body)
			}
			return true
		})
	}
	return nil, nil
}

// isParallelFor matches (*tensor.Pool).ParallelFor method calls.
func isParallelFor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ParallelFor" {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	return ok && analysis.NamedTypePath(selection.Recv(), "internal/tensor", "Pool")
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(n.Pos(),
						"time.%s inside a ParallelFor body breaks the serial/parallel parity contract; measure outside the kernel", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(n.Pos(),
					"%s.%s inside a ParallelFor body draws in chunk-interleaving order; derive a per-chunk generator from the chunk index outside the kernel",
					fn.Pkg().Name(), fn.Name())
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map iteration order inside a ParallelFor body is nondeterministic; iterate a sorted slice instead")
				}
			}
		}
		return true
	})
}
