package shard

import (
	"fmt"
	"testing"
)

func synthKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%04d", i)
	}
	return keys
}

func ownersOf(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		node, ok := r.Owner(k)
		if !ok {
			t.Fatalf("key %q has no owner on a %d-node ring", k, r.Len())
		}
		out[k] = node
	}
	return out
}

// TestRingBalance is the load-spread property: 1k synthetic model names
// over 5 nodes must land within a bounded factor of the even share on
// every node.
func TestRingBalance(t *testing.T) {
	r := NewRing(0) // DefaultVNodes
	const nodes = 5
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("r%d", i))
	}
	keys := synthKeys(1000)
	counts := map[string]int{}
	for _, k := range keys {
		node, _ := r.Owner(k)
		counts[node]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d/%d nodes own keys: %v", len(counts), nodes, counts)
	}
	mean := float64(len(keys)) / nodes
	for node, n := range counts {
		ratio := float64(n) / mean
		if ratio < 0.5 || ratio > 1.7 {
			t.Errorf("node %s owns %d keys (%.2f× the even share %.0f); balance bound violated: %v",
				node, n, ratio, mean, counts)
		}
	}
}

// TestRingMinimalMovementOnJoin: adding a node must only move keys onto
// the new node (never shuffle keys between surviving nodes), and the moved
// fraction must stay near the ideal 1/(n+1).
func TestRingMinimalMovementOnJoin(t *testing.T) {
	r := NewRing(0)
	const nodes = 5
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("r%d", i))
	}
	keys := synthKeys(1000)
	before := ownersOf(t, r, keys)

	r.Add("r5")
	after := ownersOf(t, r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] == after[k] {
			continue
		}
		if after[k] != "r5" {
			t.Fatalf("key %q moved %s → %s, not to the joining node", k, before[k], after[k])
		}
		moved++
	}
	ideal := float64(len(keys)) / (nodes + 1)
	if moved == 0 {
		t.Fatal("joining node received no keys")
	}
	if float64(moved) > 2*ideal {
		t.Errorf("%d keys moved on join (ideal %.0f); movement is not minimal", moved, ideal)
	}
}

// TestRingMinimalMovementOnLeave: removing a node must only move that
// node's keys; every other assignment is untouched — the property that
// keeps surviving replicas' LRUs hot through a failure.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	r := NewRing(0)
	const nodes = 5
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("r%d", i))
	}
	keys := synthKeys(1000)
	before := ownersOf(t, r, keys)

	const gone = "r2"
	r.Remove(gone)
	after := ownersOf(t, r, keys)
	for _, k := range keys {
		if before[k] == gone {
			if after[k] == gone {
				t.Fatalf("key %q still owned by removed node", k)
			}
			continue
		}
		if after[k] != before[k] {
			t.Fatalf("key %q moved %s → %s though its owner never left", k, before[k], after[k])
		}
	}

	// Re-admission restores the exact pre-failure assignment: the ring is
	// deterministic in its membership, so the keyspace re-converges.
	r.Add(gone)
	restored := ownersOf(t, r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %q owned by %s after re-admission, was %s", k, restored[k], before[k])
		}
	}
}

// TestRingAddRemoveIdempotent is the churn property behind dynamic
// membership: however a join/leave sequence interleaves — repeated Adds
// of a present node, Removes of an absent one, full leave-and-rejoin
// cycles — the ring must hold exactly vnodes points per member (no
// duplicated vnode points, no stale leftovers) and assign keys exactly
// as a fresh ring with the same membership would.
func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(0)

	r.Add("a")
	r.Add("a") // repeated join: must not duplicate vnode points
	if r.Len() != 1 || len(r.points) != DefaultVNodes {
		t.Fatalf("after double Add: %d nodes, %d points; want 1, %d", r.Len(), len(r.points), DefaultVNodes)
	}
	r.Remove("a")
	r.Remove("a") // repeated leave: no panic, no underflow
	r.Remove("never-joined")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("after double Remove: %d nodes, %d points; want empty", r.Len(), len(r.points))
	}

	// Deterministic churn: every prefix of the sequence must leave the
	// ring identical to one built fresh from the surviving membership.
	ops := []struct {
		add  bool
		node string
	}{
		{true, "r0"}, {true, "r1"}, {true, "r2"}, {true, "r1"}, // dup join
		{false, "r0"}, {false, "r0"}, // dup leave
		{true, "r3"}, {true, "r0"}, // rejoin after leave
		{false, "r2"}, {true, "r2"}, {false, "rX"}, // leave-rejoin, phantom leave
	}
	live := map[string]bool{}
	for step, op := range ops {
		if op.add {
			r.Add(op.node)
			live[op.node] = true
		} else {
			r.Remove(op.node)
			delete(live, op.node)
		}
		if got, want := len(r.points), r.vnodes*len(live); got != want {
			t.Fatalf("step %d: %d points for %d nodes; want %d", step, got, len(live), want)
		}
		fresh := NewRing(0)
		for n := range live {
			fresh.Add(n)
		}
		for _, k := range synthKeys(200) {
			churned, ok1 := r.Owner(k)
			direct, ok2 := fresh.Owner(k)
			if ok1 != ok2 || churned != direct {
				t.Fatalf("step %d: key %q owned by %q after churn, %q on a fresh ring", step, k, churned, direct)
			}
		}
	}
}

// TestRingSequence: the failover order starts at the owner, contains no
// duplicates, and is capped by the node count.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("r%d", i))
	}
	for _, k := range synthKeys(50) {
		owner, _ := r.Owner(k)
		seq := r.Sequence(k, 5)
		if len(seq) != 3 {
			t.Fatalf("Sequence(%q, 5) returned %d nodes on a 3-node ring", k, len(seq))
		}
		if seq[0] != owner {
			t.Fatalf("Sequence(%q)[0] = %s, owner is %s", k, seq[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("Sequence(%q) repeats node %s: %v", k, n, seq)
			}
			seen[n] = true
		}
	}
	if got := r.Sequence("x", 0); got != nil {
		t.Fatalf("Sequence(n=0) = %v, want nil", got)
	}
	empty := NewRing(0)
	if got := empty.Sequence("x", 2); got != nil {
		t.Fatalf("empty ring Sequence = %v, want nil", got)
	}
}
