package closecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/closecheck"
)

func TestClosecheck(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, closecheck.Analyzer, "closecheck/a")
}
