// sickle-serve exposes SICKLE-Go online: trained surrogates behind a
// micro-batched inference endpoint and the subsampling pipeline behind an
// LRU-cached dataset resolver. See internal/serve for the subsystem.
//
// Usage:
//
//	sickle-serve -addr :8080 -demo
//	sickle-serve -name drag -arch lstm -ckpt model.sknn -in-dim 8 -out-dim 1 \
//	             -input-shape 5,8
//	sickle-serve -case case.yaml -demo
//
// Routes (v2, the current surface — typed pkg/api error envelope):
//
//	POST /v2/infer          micro-batched inference
//	POST /v2/subsample      synchronous two-phase pipeline
//	GET|POST /v2/models     list / register-or-hot-swap models
//	POST /v2/jobs           submit an async subsample or train job
//	GET /v2/jobs[/{id}]     list / poll jobs
//	GET /v2/jobs/{id}/result  fetch a succeeded job's output
//	DELETE /v2/jobs/{id}    cancel (propagates through context into the
//	                        sampling/training loops)
//	GET /api/version        version negotiation handshake
//
// /v1/{infer,subsample,models} remain as a frozen byte-compatible shim
// with the legacy {"error":"..."} envelope; GET /healthz and GET /metrics
// are unversioned. GET /debug/traces[/{id}] serves the span ring, and
// -debug-addr starts a net/http/pprof sidecar listener. Use pkg/client as
// the Go SDK.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	olog "repro/internal/obs/log"
	"repro/internal/obs/slo"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8080 or the case file's serve.addr)")
	caseFile := flag.String("case", "", "YAML case file with an optional serve: section")
	maxBatch := flag.Int("max-batch", 0, "micro-batch cap (default 16)")
	windowMS := flag.Int("window-ms", 0, "batch collection window in ms (default 2)")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 0, "per-model queue bound before 429s (default 1024)")
	cacheEntries := flag.Int("cache-entries", 0, "dataset/shard LRU capacity (default 8)")
	replicas := flag.Int("replicas", 0, "model replicas per registered model (default 2)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async jobs (default 2)")
	jobTTLMin := flag.Int("job-ttl-min", 0, "terminal-job retention in minutes (default 15)")
	dataDir := flag.String("data-dir", "", "durability directory: WAL + results + dedup cache; jobs survive restarts (\"\" = in-memory)")

	name := flag.String("name", "", "register a model under this name at startup")
	arch := flag.String("arch", "", "architecture: lstm|mlp_transformer|cnn_transformer|matey")
	ckpt := flag.String("ckpt", "", "checkpoint written by sickle-train -ckpt-out")
	inDim := flag.Int("in-dim", 0, "model input width / input variables")
	hidden := flag.Int("hidden", 16, "hidden size / model dim")
	heads := flag.Int("heads", 2, "attention heads")
	outDim := flag.Int("out-dim", 0, "model output width / output variables")
	edge := flag.Int("edge", 0, "decoder cube edge (transformers/MATEY)")
	inputShape := flag.String("input-shape", "", "per-example input shape, comma-separated (e.g. 1,64,4)")

	demo := flag.Bool("demo", false, "train a small surrogate at startup and register it as \"demo\"")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines")
	debugAddr := flag.String("debug-addr", "", "pprof + debug sidecar listen address (\"\" = off)")
	slos := flag.String("slo", "", "comma-separated SLO specs (e.g. latency:/v2/infer:250ms:99.9,availability:/v2/infer:99.9)")
	flag.Parse()

	lvl, ok := olog.ParseLevel(*logLevel)
	lg := olog.New(os.Stderr, lvl, *logJSON)
	if !ok {
		lg.Warn("unknown -log-level, using info", "given", *logLevel)
	}
	fatal := func(msg string, err error) {
		lg.Error(msg, "err", err)
		os.Exit(1)
	}

	cfg := serve.Config{Logger: lg}
	if *caseFile != "" {
		c, err := config.LoadCase(*caseFile)
		if err != nil {
			fatal("load case file", err)
		}
		cfg = serve.Config{
			Addr:         c.Serve.Addr,
			MaxBatch:     c.Serve.MaxBatch,
			Window:       time.Duration(c.Serve.WindowMS) * time.Millisecond,
			Workers:      c.Serve.Workers,
			QueueCap:     c.Serve.QueueCap,
			CacheEntries: c.Serve.CacheEntries,
			Replicas:     c.Serve.Replicas,
			JobWorkers:   c.Serve.JobWorkers,
			JobTTL:       time.Duration(c.Serve.JobTTLMin) * time.Minute,
			DataDir:      c.Serve.DataDir,
			Logger:       lg,

			HistoryInterval: time.Duration(c.Obs.HistoryIntervalMS) * time.Millisecond,
			HistoryCapacity: c.Obs.HistoryCapacity,
			EventCapacity:   c.Obs.EventCapacity,
		}
		objectives, err := slo.ParseObjectives(c.Obs.SLOs)
		if err != nil {
			fatal("parse obs.slos", err)
		}
		cfg.SLOs = objectives
		if *debugAddr == "" {
			*debugAddr = c.Serve.DebugAddr
		}
	}
	if *slos != "" {
		objectives, err := slo.ParseObjectives(strings.Split(*slos, ","))
		if err != nil {
			fatal("parse -slo", err)
		}
		cfg.SLOs = objectives
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *maxBatch > 0 {
		cfg.MaxBatch = *maxBatch
	}
	if *windowMS > 0 {
		cfg.Window = time.Duration(*windowMS) * time.Millisecond
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *queueCap > 0 {
		cfg.QueueCap = *queueCap
	}
	if *cacheEntries > 0 {
		cfg.CacheEntries = *cacheEntries
	}
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *jobWorkers > 0 {
		cfg.JobWorkers = *jobWorkers
	}
	if *jobTTLMin > 0 {
		cfg.JobTTL = time.Duration(*jobTTLMin) * time.Minute
	}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
	}

	s, err := serve.NewServer(cfg)
	if err != nil {
		fatal("start server", err)
	}

	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, s.Metrics().Registry(), s.Tracer(), func(err error) {
			lg.Error("debug listener", "err", err)
		}, s.History(), s.Journal(), s.SLO())
		lg.Info("debug endpoints up", "addr", *debugAddr)
	}

	if *name != "" {
		spec := train.ArchSpec{Arch: *arch, InDim: *inDim, Hidden: *hidden,
			Heads: *heads, OutDim: *outDim, Edge: *edge}
		shape, err := parseShape(*inputShape)
		if err != nil {
			fatal("parse -input-shape", err)
		}
		if _, err := s.Registry().Register(*name, spec, *ckpt, shape, cfg.Replicas); err != nil {
			fatal("register model", err)
		}
		lg.Info("registered model", "name", *name, "arch", spec.Arch, "ckpt", *ckpt)
	}
	if *demo {
		if err := registerDemoModel(s, cfg.Replicas, lg); err != nil {
			fatal("register demo model", err)
		}
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain in-flight
	// batches, then exit.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		lg.Info("draining")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			lg.Error("shutdown", "err", err)
		}
		close(done)
	}()

	lg.Info("sickle-serve listening", "addr", cfg.Addr)
	if err := s.ListenAndServe(); err != nil {
		fatal("listen", err)
	}
	<-done
}

func parseShape(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -input-shape %q", s)
		}
		out[i] = v
	}
	return out, nil
}

// registerDemoModel trains the shared toy surrogate (serve.TrainDemo) and
// registers it as "demo", so a bare `sickle-serve -demo` is immediately
// load-testable with `sickle-bench -serve`.
func registerDemoModel(s *serve.Server, replicas int, lg *olog.Logger) error {
	dm, err := serve.TrainDemo(context.Background())
	if err != nil {
		return err
	}
	if err := dm.Register(s, "demo", replicas); err != nil {
		return err
	}
	lg.Info("demo model registered", "params", dm.Params,
		"test_loss", dm.FinalLoss, "ckpt", dm.Checkpoint)
	return nil
}
