package top

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs/tsdb"
)

func TestQuantile(t *testing.T) {
	buckets := []float64{0.1, 0.5, 1}
	cases := []struct {
		name   string
		counts []uint64 // len(buckets)+1, +Inf last
		q      float64
		want   float64
	}{
		{"empty", []uint64{0, 0, 0, 0}, 0.99, 0},
		// 100 obs all in the first bucket: p50 interpolates to its middle.
		{"first-bucket", []uint64{100, 0, 0, 0}, 0.5, 0.05},
		// Uniform 50/50 across two buckets: p50 lands exactly on the
		// first bound, p99 interpolates deep into the second bucket.
		{"two-buckets-p50", []uint64{50, 50, 0, 0}, 0.5, 0.1},
		// rank 99 of 100; 49 of the 50 in-bucket observations below it.
		{"two-buckets-p99", []uint64{50, 50, 0, 0}, 0.99, 0.1 + 0.4*(49.0/50.0)},
		// Mass in +Inf clamps to the last finite bound.
		{"inf-clamp", []uint64{0, 0, 0, 10}, 0.99, 1},
	}
	for _, c := range cases {
		got := Quantile(buckets, c.counts, c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Quantile(q=%g) = %g, want %g", c.name, c.q, got, c.want)
		}
	}
	if got := Quantile(nil, []uint64{5}, 0.5); got != 0 {
		t.Errorf("no finite buckets: got %g, want 0", got)
	}
}

func TestDeriveReplicaStats(t *testing.T) {
	// Two replicas' scattered series over a 10s span: r0 serves 100
	// requests with 10 errors, r1 serves 50 clean.
	pts := func(vals ...float64) []tsdb.Point {
		out := make([]tsdb.Point, len(vals))
		for i, v := range vals {
			out[i] = tsdb.Point{T: 1000 + float64(i)*5, V: v}
		}
		return out
	}
	p := &tsdb.Payload{Series: []tsdb.Series{
		{Name: "sickle_requests_total", Kind: "counter", Replica: "r0",
			Labels: map[string]string{"route": "/v2/infer"}, Points: pts(40, 30, 30)},
		{Name: "sickle_request_errors_total", Kind: "counter", Replica: "r0",
			Labels: map[string]string{"route": "/v2/infer"}, Points: pts(5, 5, 0)},
		{Name: "sickle_requests_total", Kind: "counter", Replica: "r1",
			Labels: map[string]string{"route": "/v2/infer"}, Points: pts(20, 20, 10)},
		{Name: "sickle_request_seconds", Kind: "histogram", Replica: "r0",
			Buckets: []float64{0.1, 0.5},
			HistPoints: []tsdb.HistPoint{
				{T: 1005, Counts: []uint64{90, 10, 0}, Count: 100},
			}},
		// An unrelated series must not perturb the stats.
		{Name: "sickle_queue_depth", Kind: "gauge", Replica: "r0", Points: pts(1, 2, 3)},
	}}

	stats := DeriveReplicaStats(p, time.Minute)
	if len(stats) != 2 {
		t.Fatalf("got %d replica rows, want 2: %+v", len(stats), stats)
	}
	r0, r1 := stats[0], stats[1]
	if r0.Replica != "r0" || r1.Replica != "r1" {
		t.Fatalf("rows not sorted by replica: %+v", stats)
	}
	if r0.Requests != 100 || r1.Requests != 50 {
		t.Errorf("requests = %g/%g, want 100/50", r0.Requests, r1.Requests)
	}
	// Span of the points is 10s.
	if math.Abs(r0.QPS-10) > 1e-9 || math.Abs(r1.QPS-5) > 1e-9 {
		t.Errorf("qps = %g/%g, want 10/5", r0.QPS, r1.QPS)
	}
	if math.Abs(r0.ErrorRate-0.1) > 1e-9 || r1.ErrorRate != 0 {
		t.Errorf("error rate = %g/%g, want 0.1/0", r0.ErrorRate, r1.ErrorRate)
	}
	if r0.P99 == 0 || r1.P99 != 0 {
		t.Errorf("p99 = %g/%g, want >0 for r0 (has histogram), 0 for r1", r0.P99, r1.P99)
	}

	// A narrow window anchored at the newest point drops the older
	// samples: only the t=1010 deltas remain.
	narrow := DeriveReplicaStats(p, 7*time.Second)
	for _, r := range narrow {
		switch r.Replica {
		case "r0":
			if r.Requests != 60 {
				t.Errorf("narrow r0 requests = %g, want 60 (last two samples)", r.Requests)
			}
		case "r1":
			if r.Requests != 30 {
				t.Errorf("narrow r1 requests = %g, want 30", r.Requests)
			}
		}
	}
}

func TestRenderEmptySnapshot(t *testing.T) {
	s := &Snapshot{Target: "http://x", Time: time.Unix(0, 0),
		Errors: []string{"healthz: connection refused"}}
	out := Render(s, false)
	if out == "" {
		t.Fatal("empty snapshot rendered nothing")
	}
	out = Render(s, true)
	if out == "" {
		t.Fatal("color render produced nothing")
	}
}
