// Package metricname lints every series registered on the obs metrics
// registry, complementing the runtime exposition linter
// (obs.LintExposition gates the wire format; this pass gates the source).
//
// For each call to Counter/Gauge/Histogram/CounterFunc/GaugeFunc/
// GaugeMapFunc on an *obs.Registry:
//
//   - the metric name must be a compile-time string constant (otherwise
//     the name is unlintable and ungreppable);
//   - the name must match sickle(_[a-z0-9]+)+ — the project namespace,
//     lower snake case, no leading/trailing/double underscores;
//   - counters end in _total; histograms end in a unit suffix
//     (_seconds, _bytes, _size, _points or _ratio); gauges must not end
//     in _total (Prometheus conventions, enforced at lint time by CI);
//   - each name is registered at exactly one site. Series identity is
//     the name; two registration sites for one name either collide at
//     runtime (same registry) or silently fork the series' meaning
//     (different registries). The check spans every package the driver
//     loads in one process; under per-package `go vet` it degrades to
//     per-package detection.
//
// Misnamed literal names carry a suggested fix with a sanitized name.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// New builds a fresh pass (the duplicate-registration table is per
// instance; tests use New to isolate runs).
func New() *analysis.Analyzer {
	r := &runner{sites: map[string]string{}}
	return &analysis.Analyzer{
		Name: "metricname",
		Doc:  "registered metric series must be sickle_* snake-case constants with unit suffixes, registered exactly once",
		Run:  r.run,
	}
}

// Analyzer is the shared instance used by cmd/sicklevet.
var Analyzer = New()

var registerMethods = map[string]string{
	"Counter":      "counter",
	"CounterFunc":  "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"GaugeMapFunc": "gauge",
	"Histogram":    "histogram",
}

var nameRe = regexp.MustCompile(`^sickle(_[a-z0-9]+)+$`)

var histogramUnits = []string{"_seconds", "_bytes", "_size", "_points", "_ratio"}

type runner struct {
	mu    sync.Mutex
	sites map[string]string // metric name -> first registration site
}

func (r *runner) run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registerMethods[sel.Sel.Name]
			if !ok || len(call.Args) == 0 {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || !analysis.NamedTypePath(selection.Recv(), "internal/obs", "Registry") {
				return true
			}
			r.checkName(pass, call, kind)
			return true
		})
	}
	return nil, nil
}

func (r *runner) checkName(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	arg := call.Args[0]
	tv := pass.TypesInfo.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time string constant so sicklevet and grep can see it")
		return
	}
	name := constant.StringVal(tv.Value)

	if !nameRe.MatchString(name) {
		d := analysis.Diagnostic{
			Pos:     arg.Pos(),
			Message: "metric name " + quote(name) + " must match sickle(_[a-z0-9]+)+ (project prefix, lower snake case)",
		}
		if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if fixed := sanitize(name); fixed != name && nameRe.MatchString(fixed) {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message:   "rename to " + fixed,
					TextEdits: []analysis.TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: []byte(`"` + fixed + `"`)}},
				}}
			}
		}
		pass.Report(d)
		return
	}

	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter %s must end in _total (Prometheus counter convention)", quote(name))
		}
	case "histogram":
		unitOK := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				unitOK = true
				break
			}
		}
		if !unitOK {
			pass.Reportf(arg.Pos(), "histogram %s must end in a unit suffix (%s)", quote(name), strings.Join(histogramUnits, ", "))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "gauge %s must not end in _total (reserved for counters)", quote(name))
		}
	}

	site := pass.Fset.Position(arg.Pos()).String()
	r.mu.Lock()
	first, dup := r.sites[name]
	if !dup {
		r.sites[name] = site
	}
	r.mu.Unlock()
	if dup && first != site {
		pass.Reportf(arg.Pos(), "metric %s already registered at %s; each series has exactly one registration site", quote(name), first)
	}
}

func sanitize(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	for strings.Contains(s, "__") {
		s = strings.ReplaceAll(s, "__", "_")
	}
	s = strings.Trim(s, "_")
	if !strings.HasPrefix(s, "sickle_") && s != "sickle" {
		s = "sickle_" + s
	}
	return s
}

// quote renders a name for a diagnostic message.
func quote(name string) string { return `"` + name + `"` }
