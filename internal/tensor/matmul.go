package tensor

import "fmt"

// Matmul kernel tuning. rowGrain batches output rows per ParallelFor chunk;
// blockK × blockJ tiles keep the active slab of b and the dst row segment
// resident in L2 while a row of a streams through. The tiling only reorders
// which (i, j) cells are visited when — for any fixed output cell the terms
// still accumulate over l in ascending order, exactly as the serial
// reference kernel does, so blocked and reference results are bit-identical.
const (
	rowGrain = 8
	blockK   = 64
	blockJ   = 256
)

// MatMul returns a @ b for 2-D tensors a (m×k) and b (k×n). The output of
// New is already zeroed, so the kernel accumulates directly — no redundant
// clearing pass.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matmulAccum(out.Data, a.Data, b.Data, m, k, n, DefaultPool())
	return out
}

// MatMulInto computes dst = a @ b, reusing dst's storage.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkDst2D(dst, m, n, "MatMulInto")
	zeroParallel(dst.Data, DefaultPool())
	matmulAccum(dst.Data, a.Data, b.Data, m, k, n, DefaultPool())
}

// MatMulAccum computes dst += a @ b — the gradient-accumulation primitive
// that replaces the alloc-then-AddScaled pattern in backward passes.
func MatMulAccum(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkDst2D(dst, m, n, "MatMulAccum")
	matmulAccum(dst.Data, a.Data, b.Data, m, k, n, DefaultPool())
}

// MatMulTransB returns a @ bᵀ for a (m×k) and b (n×k) WITHOUT materializing
// the transpose: it walks both operands row-major (contiguous dot products).
// This is the natural orientation for nn layers whose weights are stored
// [out, in]: y = x @ Wᵀ needs no Transpose allocation per forward.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransB(a, b)
	out := New(m, n)
	matmulTransBAccum(out.Data, a.Data, b.Data, m, k, n, DefaultPool())
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ, reusing dst's storage.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	checkDst2D(dst, m, n, "MatMulTransBInto")
	zeroParallel(dst.Data, DefaultPool())
	matmulTransBAccum(dst.Data, a.Data, b.Data, m, k, n, DefaultPool())
}

// MatMulTransBAccum computes dst += a @ bᵀ.
func MatMulTransBAccum(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	checkDst2D(dst, m, n, "MatMulTransBAccum")
	matmulTransBAccum(dst.Data, a.Data, b.Data, m, k, n, DefaultPool())
}

// MatMulTransAAccum computes dst += aᵀ @ b for a (m×k) and b (m×n), giving
// dst (k×n) — the dW += dyᵀ·x step of every linear backward, again without
// materializing Transpose(dy).
func MatMulTransAAccum(dst, a, b *Tensor) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs 2-D tensors, got %v and %v", a.Shape, b.Shape))
	}
	if a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dims differ: %v vs %v", a.Shape, b.Shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	checkDst2D(dst, k, n, "MatMulTransAAccum")
	matmulTransAAccum(dst.Data, a.Data, b.Data, m, k, n, DefaultPool())
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D tensors, got %v and %v", a.Shape, b.Shape))
	}
	if a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v vs %v", a.Shape, b.Shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

func checkMatMulTransB(a, b *Tensor) (m, k, n int) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs 2-D tensors, got %v and %v", a.Shape, b.Shape))
	}
	if a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims differ: %v vs %v", a.Shape, b.Shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(0)
}

func checkDst2D(dst *Tensor, m, n int, op string) {
	if dst.NDim() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
}

// matmulAccum computes dst += a @ b with a cache-blocked ikj kernel,
// parallel over output rows. Accumulation order over l is ascending for
// every output cell — bit-identical to matmulAccumRef.
func matmulAccum(dst, a, b []float64, m, k, n int, p *Pool) {
	p.ParallelFor(m, rowGrain, func(i0, i1 int) {
		for jb := 0; jb < n; jb += blockJ {
			j1 := jb + blockJ
			if j1 > n {
				j1 = n
			}
			for lb := 0; lb < k; lb += blockK {
				l1 := lb + blockK
				if l1 > k {
					l1 = k
				}
				for i := i0; i < i1; i++ {
					ar := a[i*k : (i+1)*k]
					dr := dst[i*n+jb : i*n+j1]
					for l := lb; l < l1; l++ {
						av := ar[l]
						if av == 0 {
							continue
						}
						br := b[l*n+jb : l*n+j1]
						for j, bv := range br {
							dr[j] += av * bv
						}
					}
				}
			}
		}
	})
}

// matmulAccumRef is the serial reference: plain ikj, no tiling, no pool.
// The parity tests assert the blocked/parallel kernel matches it bit for
// bit.
func matmulAccumRef(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		dr := dst[i*n : (i+1)*n]
		for l, av := range ar {
			if av == 0 {
				continue
			}
			br := b[l*n : (l+1)*n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// matmulTransBAccum computes dst += a @ bᵀ (b stored n×k). Both operands
// stream contiguously, so no tiling is needed; rows are parallel.
func matmulTransBAccum(dst, a, b []float64, m, k, n int, p *Pool) {
	p.ParallelFor(m, rowGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ar := a[i*k : (i+1)*k]
			dr := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				br := b[j*k : (j+1)*k]
				s := 0.0
				for l, av := range ar {
					s += av * br[l]
				}
				dr[j] += s
			}
		}
	})
}

// matmulTransBAccumRef is the serial reference for matmulTransBAccum.
func matmulTransBAccumRef(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		dr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			s := 0.0
			for l, av := range ar {
				s += av * br[l]
			}
			dr[j] += s
		}
	}
}

// matmulTransAAccum computes dst += aᵀ @ b (a stored m×k, dst k×n),
// parallel over dst rows (columns of a). For each dst cell the terms
// accumulate over the shared dimension m in ascending order.
func matmulTransAAccum(dst, a, b []float64, m, k, n int, p *Pool) {
	p.ParallelFor(k, rowGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			dr := dst[i*n : (i+1)*n]
			for l := 0; l < m; l++ {
				av := a[l*k+i]
				if av == 0 {
					continue
				}
				br := b[l*n : (l+1)*n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
}

// matmulTransAAccumRef is the serial reference for matmulTransAAccum.
func matmulTransAAccumRef(dst, a, b []float64, m, k, n int) {
	for i := 0; i < k; i++ {
		dr := dst[i*n : (i+1)*n]
		for l := 0; l < m; l++ {
			av := a[l*k+i]
			if av == 0 {
				continue
			}
			br := b[l*n : (l+1)*n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor. Prefer the TransB/TransA
// matmul variants over materializing a transpose in hot paths.
func Transpose(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D tensor, got %v", a.Shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j*m+i] = v
		}
	}
	return out
}

// MatVec returns a @ x for a (m×k) and x (k), parallel over rows.
func MatVec(a, x *Tensor) *Tensor {
	if a.NDim() != 2 || x.NDim() != 1 || a.Dim(1) != x.Dim(0) {
		panic(fmt.Sprintf("tensor: MatVec shapes %v, %v incompatible", a.Shape, x.Shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	out := New(m)
	xd := x.Data
	DefaultPool().ParallelFor(m, 4*rowGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			row := a.Data[i*k : (i+1)*k]
			s := 0.0
			for j, v := range row {
				s += v * xd[j]
			}
			out.Data[i] = s
		}
	})
	return out
}

// AddRowVecInto computes dst[i,j] = a[i,j] + v[j] for a 2-D a and 1-D v
// (broadcast bias addition), parallel over rows.
func AddRowVecInto(dst, a, v *Tensor) {
	if a.NDim() != 2 || v.NDim() != 1 || a.Dim(1) != v.Dim(0) || !SameShape(dst, a) {
		panic(fmt.Sprintf("tensor: AddRowVec shapes %v, %v, %v incompatible", dst.Shape, a.Shape, v.Shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	vd := v.Data
	DefaultPool().ParallelFor(m, 4*rowGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ar := a.Data[i*n : (i+1)*n]
			dr := dst.Data[i*n : (i+1)*n]
			for j := range dr {
				dr[j] = ar[j] + vd[j]
			}
		}
	})
}

// SumRowsInto accumulates the column sums of 2-D a into 1-D dst:
// dst[j] += sum_i a[i,j]. Used for bias gradients. Serial: each dst[j] is a
// shared accumulator and column counts are small in practice.
func SumRowsInto(dst, a *Tensor) {
	if a.NDim() != 2 || dst.NDim() != 1 || a.Dim(1) != dst.Dim(0) {
		panic(fmt.Sprintf("tensor: SumRows shapes %v, %v incompatible", dst.Shape, a.Shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j] += v
		}
	}
}

// zeroParallel clears data, fanning large buffers across the pool.
func zeroParallel(data []float64, p *Pool) {
	p.ParallelFor(len(data), ewiseGrain, func(lo, hi int) {
		clear(data[lo:hi])
	})
}
