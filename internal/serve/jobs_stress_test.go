package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/pkg/api"
)

// TestJobManagerChurnRace hammers the manager from every direction at
// once — submitters, cancelers, status readers, TTL expiry — under a tiny
// retention TTL so purge runs constantly. The -race CI step is the real
// assertion; the test itself checks the manager stays consistent: every
// submitted job reaches a terminal state and is then either readable or
// cleanly expired, never stuck.
func TestJobManagerChurnRace(t *testing.T) {
	jm := NewJobManager(4, 32, 20*time.Millisecond)
	defer jm.Close()

	const (
		submitters    = 4
		perSubmitter  = 30
		totalAttempts = submitters * perSubmitter
	)
	var (
		mu  sync.Mutex
		ids []string
	)
	pickID := func(rng *rand.Rand) string {
		mu.Lock()
		defer mu.Unlock()
		if len(ids) == 0 {
			return ""
		}
		return ids[rng.Intn(len(ids))]
	}

	// Half the jobs finish on their own quickly; half park until canceled
	// or a deadline fires, so cancelers race real running work.
	runner := func(slow bool) JobRunner {
		return func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
			progress("work", 1, 2)
			if slow {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(30 * time.Millisecond):
				}
			}
			progress("work", 2, 2)
			return &api.JobResult{Subsample: &api.SubsampleResponse{Cubes: 1}}, nil
		}
	}

	var wg sync.WaitGroup
	stopAux := make(chan struct{})
	// Cancelers and readers churn until the submitters are done.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopAux:
					return
				default:
				}
				if id := pickID(rng); id != "" {
					jm.Cancel(id) // job_not_found after TTL expiry is fine
				}
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			}
		}(int64(500 + g))
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopAux:
					return
				default:
				}
				jm.List()
				jm.Stats()
				if id := pickID(rng); id != "" {
					jm.Get(id)
					jm.Result(id)
				}
			}
		}(int64(600 + g))
	}

	overloaded := 0
	var subWG sync.WaitGroup
	for g := 0; g < submitters; g++ {
		subWG.Add(1)
		go func(seed int64) {
			defer subWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perSubmitter; i++ {
				job, err := jm.Submit(api.JobSubsample, runner(rng.Intn(2) == 0))
				if err != nil {
					var ae *api.Error
					if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
						t.Errorf("submit failed with %v, want only overloaded rejections", err)
						return
					}
					mu.Lock()
					overloaded++
					mu.Unlock()
					time.Sleep(time.Millisecond)
					continue
				}
				mu.Lock()
				ids = append(ids, job.ID)
				mu.Unlock()
			}
		}(int64(700 + g))
	}
	subWG.Wait()
	close(stopAux)
	wg.Wait()

	// Every admitted job reaches a terminal state (slow ones are bounded by
	// their 30ms deadline), after which it is either still readable and
	// terminal, or already TTL-purged.
	mu.Lock()
	admitted := append([]string(nil), ids...)
	mu.Unlock()
	if len(admitted) == 0 {
		t.Fatalf("no jobs admitted out of %d attempts (%d overloaded)", totalAttempts, overloaded)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range admitted {
		for {
			j, err := jm.Get(id)
			if err != nil {
				var ae *api.Error
				if !errors.As(err, &ae) || ae.Code != api.CodeJobNotFound {
					t.Fatalf("Get(%s) = %v", id, err)
				}
				break // expired after reaching a terminal state
			}
			if j.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, j.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	t.Logf("churn: %d admitted, %d overloaded rejections", len(admitted), overloaded)
}

// TestJobCancelAfterTerminal pins the cancel-after-terminal contract:
// cancel on a terminal job is an idempotent no-op returning the terminal
// snapshot, result fetches answer deterministically (the result for
// succeeded, typed job_canceled for canceled), and repeating any of it
// changes nothing.
func TestJobCancelAfterTerminal(t *testing.T) {
	jm := NewJobManager(2, 8, time.Minute)
	defer jm.Close()

	// Succeeded job: cancel must not disturb it.
	done, err := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		return &api.JobResult{Subsample: &api.SubsampleResponse{Cubes: 3}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jm, done.ID)
	for i := 0; i < 2; i++ { // twice: idempotent
		snap, err := jm.Cancel(done.ID)
		if err != nil || snap.State != api.JobSucceeded {
			t.Fatalf("cancel #%d on succeeded job = %+v, %v", i+1, snap, err)
		}
		res, err := jm.Result(done.ID)
		if err != nil || res.Subsample.Cubes != 3 {
			t.Fatalf("result after cancel #%d = %+v, %v", i+1, res, err)
		}
	}

	// Canceled job: every later cancel/result answers the same way.
	started := make(chan struct{})
	parked, err := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := jm.Cancel(parked.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, jm, parked.ID)
	if final.State != api.JobCanceled || final.Error == nil || final.Error.Code != api.CodeJobCanceled {
		t.Fatalf("canceled job = %+v", final)
	}
	for i := 0; i < 2; i++ {
		snap, err := jm.Cancel(parked.ID)
		if err != nil || snap.State != api.JobCanceled {
			t.Fatalf("re-cancel #%d = %+v, %v", i+1, snap, err)
		}
		_, err = jm.Result(parked.ID)
		var ae *api.Error
		if !errors.As(err, &ae) || ae.Code != api.CodeJobCanceled {
			t.Fatalf("result of canceled job #%d = %v, want typed job_canceled", i+1, err)
		}
	}

	// Failed job: the result endpoint replays the job's own typed error.
	failed, err := jm.Submit(api.JobSubsample, func(ctx context.Context, progress func(string, int, int)) (*api.JobResult, error) {
		return nil, api.Errorf(api.CodeNotFound, "no such dataset")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jm, failed.ID)
	_, err = jm.Result(failed.ID)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("result of failed job = %v, want its own not_found", err)
	}
}
