package obs

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/pkg/api"
)

// Span is one recorded operation inside a trace: a name, its tier of
// origin, wall-clock start and duration, a parent link, and free-form
// attributes. The JSON shape is the /debug/traces wire format, shared
// across tiers so the shard router can merge downstream spans verbatim.
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Tier     string            `json:"tier"`
	Start    time.Time         `json:"start"`
	Seconds  float64           `json:"seconds"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// TraceInfo summarizes one trace present in the ring (the /debug/traces
// listing entry).
type TraceInfo struct {
	TraceID string    `json:"trace_id"`
	Spans   int       `json:"spans"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"` // span of wall-clock covered by the trace's spans
	Root    string    `json:"root"`    // name of the earliest parentless span (or earliest span)
}

// Tracer records spans into a bounded in-memory ring; when full, the
// oldest spans are overwritten. A nil *Tracer is a valid no-op recorder,
// so instrumentation never has to branch. All methods are safe for
// concurrent use.
type Tracer struct {
	tier string

	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped uint64
}

// DefaultTraceCapacity bounds the span ring when the caller does not.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer whose spans carry the given tier label
// ("serve", "shard", "stream", ...). capacity <= 0 selects
// DefaultTraceCapacity.
func NewTracer(tier string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{tier: tier, buf: make([]Span, 0, capacity)}
}

// Record stores one finished span (stamping the tracer's tier).
func (t *Tracer) Record(s Span) {
	if t == nil || s.TraceID == "" {
		return
	}
	s.Tier = t.tier
	t.mu.Lock()
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
		if len(t.buf) == cap(t.buf) {
			t.full = true
		}
	} else {
		t.buf[t.next] = s
		t.full = true
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Dropped reports how many spans ring eviction has overwritten (0 on nil).
// Registries expose it as sickle_obs_spans_dropped_total so a span ring
// wrapping under load is visible instead of silent.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// RegisterDropped mounts the span-eviction counter on reg. Nil-safe.
func (t *Tracer) RegisterDropped(reg *Registry) {
	reg.CounterFunc("sickle_obs_spans_dropped_total",
		"Spans overwritten by trace-ring eviction before they could be read.",
		func() float64 { return float64(t.Dropped()) })
}

// ActiveSpan is an in-flight span started by StartSpan; End records it.
// Nil handles (from a nil Tracer) no-op.
type ActiveSpan struct {
	t    *Tracer
	span Span
	mu   sync.Mutex
	done bool
}

// StartSpan opens a span under the trace carried by ctx, minting a fresh
// trace ID when ctx has none (so a tier entered without an upstream header
// still produces a complete local trace). The returned context carries the
// new span as the parent for anything downstream — including the
// X-Sickle-Trace header pkg/client attaches.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	tc, ok := api.TraceFrom(ctx)
	if !ok {
		tc = api.TraceContext{TraceID: api.NewTraceID()}
	}
	sp := Span{
		TraceID:  tc.TraceID,
		SpanID:   api.NewSpanID(),
		ParentID: tc.SpanID,
		Name:     name,
		Start:    time.Now(),
	}
	ctx = api.WithTrace(ctx, api.TraceContext{TraceID: sp.TraceID, SpanID: sp.SpanID})
	return ctx, &ActiveSpan{t: t, span: sp}
}

// SetAttr attaches one attribute to the span.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[k] = v
	a.mu.Unlock()
}

// TraceID returns the span's trace ID ("" on nil).
func (a *ActiveSpan) TraceID() string {
	if a == nil {
		return ""
	}
	return a.span.TraceID
}

// SpanID returns the span's own ID ("" on nil).
func (a *ActiveSpan) SpanID() string {
	if a == nil {
		return ""
	}
	return a.span.SpanID
}

// End stamps the duration and records the span. Idempotent.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.span.Seconds = time.Since(a.span.Start).Seconds()
	sp := a.span
	a.mu.Unlock()
	a.t.Record(sp)
}

// snapshot copies the ring's live spans, oldest first.
func (t *Tracer) snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.buf...)
	}
	out := make([]Span, 0, cap(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Spans returns every recorded span of one trace, ordered by start time.
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.snapshot() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start.Before(out[b].Start) })
	return out
}

// Traces lists the newest `limit` distinct traces in the ring (all when
// limit <= 0), most recent first.
func (t *Tracer) Traces(limit int) []TraceInfo {
	if t == nil {
		return nil
	}
	byID := map[string]*TraceInfo{}
	var order []string
	for _, s := range t.snapshot() {
		info, ok := byID[s.TraceID]
		if !ok {
			info = &TraceInfo{TraceID: s.TraceID, Start: s.Start, Root: s.Name}
			byID[s.TraceID] = info
			order = append(order, s.TraceID)
		}
		info.Spans++
		if s.Start.Before(info.Start) {
			info.Start = s.Start
		}
		if s.ParentID == "" {
			info.Root = s.Name
		}
		if end := s.Start.Add(time.Duration(s.Seconds * float64(time.Second))); end.Sub(info.Start).Seconds() > info.Seconds {
			info.Seconds = end.Sub(info.Start).Seconds()
		}
	}
	out := make([]TraceInfo, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- { // newest first
		out = append(out, *byID[order[i]])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
