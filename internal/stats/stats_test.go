package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMomentsGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 3
	}
	m := ComputeMoments(xs)
	if math.Abs(m.Mean-3) > 0.05 {
		t.Fatalf("Mean = %v, want ~3", m.Mean)
	}
	if math.Abs(m.Variance-4) > 0.1 {
		t.Fatalf("Variance = %v, want ~4", m.Variance)
	}
	if math.Abs(m.Skewness) > 0.05 {
		t.Fatalf("Skewness = %v, want ~0", m.Skewness)
	}
	if math.Abs(m.Kurtosis) > 0.1 {
		t.Fatalf("Kurtosis = %v, want ~0", m.Kurtosis)
	}
}

func TestMomentsDegenerate(t *testing.T) {
	if m := ComputeMoments(nil); m.Mean != 0 || m.Variance != 0 {
		t.Fatal("empty moments should be zero")
	}
	if m := ComputeMoments([]float64{5}); m.Mean != 5 || m.Variance != 0 {
		t.Fatal("single-sample moments wrong")
	}
	m := ComputeMoments([]float64{2, 2, 2})
	if m.Variance != 0 || m.Skewness != 0 {
		t.Fatal("constant sample should have zero variance/skewness")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0.5, 1.5, 1.7, 9.9, -5, 50})
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -5
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bin1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 50
		t.Fatalf("bin9 = %d, want 2", h.Counts[9])
	}
	p := h.PDF()
	s := 0.0
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("PDF sums to %v", s)
	}
}

func TestHistogramFromDataSpansRange(t *testing.T) {
	xs := []float64{-3, 0, 7}
	h := HistogramFromData(xs, 5)
	if h.N != 3 {
		t.Fatalf("N = %d", h.N)
	}
	if h.BinIndex(-3) != 0 {
		t.Fatal("min should land in bin 0")
	}
	if h.BinIndex(7) != 4 {
		t.Fatal("max should land in last bin")
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 4
	}
	h := HistogramFromData(xs, 20)
	d := h.Density()
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	integral := 0.0
	for _, v := range d {
		integral += v * w
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integrates to %v", integral)
	}
}

func TestEntropyKnownValues(t *testing.T) {
	// Uniform over 4 -> log 4.
	if got := Entropy([]float64{1, 1, 1, 1}); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy = %v", got)
	}
	// Deterministic -> 0.
	if got := Entropy([]float64{0, 1, 0}); got != 0 {
		t.Fatalf("deterministic entropy = %v", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Fatalf("empty entropy = %v", got)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	if got := KLDivergence(p, p); got > 1e-12 {
		t.Fatalf("D(p||p) = %v, want 0", got)
	}
	q := []float64{0.2, 0.3, 0.5}
	if got := KLDivergence(p, q); got <= 0 {
		t.Fatalf("D(p||q) = %v, want > 0", got)
	}
	// Known value: D between (1,0) and (0.5,0.5) = log 2.
	d := KLDivergence([]float64{1, 0}, []float64{0.5, 0.5})
	if math.Abs(d-math.Log(2)) > 1e-9 {
		t.Fatalf("D = %v, want log2", d)
	}
}

// Property: KL >= 0 (Gibbs' inequality) for random distributions.
func TestKLNonNegativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, 8)
		q := make([]float64, 8)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64() + 1e-6
		}
		return KLDivergence(p, q) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: JS is symmetric and bounded by log 2.
func TestJensenShannonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, 6)
		q := make([]float64, 6)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		a := JensenShannon(p, q)
		b := JensenShannon(q, p)
		return math.Abs(a-b) < 1e-9 && a >= 0 && a <= math.Log(2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianKDEPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	d := GaussianKDE(xs, []float64{0, 3}, 0)
	if d[0] < d[1] {
		t.Fatalf("KDE at mode (%v) should exceed tail (%v)", d[0], d[1])
	}
	if math.Abs(d[0]-1/math.Sqrt(2*math.Pi)) > 0.05 {
		t.Fatalf("KDE(0) = %v, want ~0.399", d[0])
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestTailCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make([]float64, 10000)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	// A subset drawn from the same distribution covers tails ~proportionally.
	same := ref[:2000]
	if tc := TailCoverage(ref, same, 0.05); tc < 0.7 || tc > 1.3 {
		t.Fatalf("same-dist tail coverage = %v, want ~1", tc)
	}
	// A center-only subset misses the tails entirely.
	var center []float64
	for _, x := range ref {
		if math.Abs(x) < 0.5 {
			center = append(center, x)
		}
	}
	if tc := TailCoverage(ref, center, 0.05); tc > 0.01 {
		t.Fatalf("center-only tail coverage = %v, want ~0", tc)
	}
}

func TestNormalizeColumns(t *testing.T) {
	pts := [][]float64{{0, 5}, {10, 5}, {5, 5}}
	mins, maxs := NormalizeColumns(pts)
	if mins[0] != 0 || maxs[0] != 10 {
		t.Fatalf("col0 range = [%v,%v]", mins[0], maxs[0])
	}
	if pts[1][0] != 1 || pts[2][0] != 0.5 {
		t.Fatalf("normalized col0 = %v,%v", pts[1][0], pts[2][0])
	}
	// Constant column maps to zero.
	for i := range pts {
		if pts[i][1] != 0 {
			t.Fatalf("constant column should normalize to 0, got %v", pts[i][1])
		}
	}
}

func TestNDHistogram(t *testing.T) {
	h := NewNDHistogram([]float64{0, 0}, []float64{1, 1}, 4)
	h.Add([]float64{0.1, 0.1})
	h.Add([]float64{0.1, 0.12})
	h.Add([]float64{0.9, 0.9})
	if h.N != 3 {
		t.Fatalf("N = %d", h.N)
	}
	if h.OccupiedCells() != 2 {
		t.Fatalf("occupied = %d, want 2", h.OccupiedCells())
	}
	if p := h.Probability([]float64{0.11, 0.11}); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("P = %v, want 2/3", p)
	}
}

func TestNDHistogramUniformityIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	uniform := make([][]float64, 20000)
	for i := range uniform {
		uniform[i] = []float64{rng.Float64(), rng.Float64()}
	}
	hu := NDHistogramFromPoints(uniform, 8)
	clumped := make([][]float64, 20000)
	for i := range clumped {
		// 95% of mass in one corner cell.
		if rng.Float64() < 0.95 {
			clumped[i] = []float64{rng.Float64() * 0.1, rng.Float64() * 0.1}
		} else {
			clumped[i] = []float64{rng.Float64(), rng.Float64()}
		}
	}
	hc := NDHistogramFromPoints(clumped, 8)
	iu, ic := hu.UniformityIndex(), hc.UniformityIndex()
	if iu < 0.95 {
		t.Fatalf("uniform index = %v, want ~1", iu)
	}
	if ic > 0.5*iu {
		t.Fatalf("clumped index %v should be well below uniform %v", ic, iu)
	}
}

// Property: histogram conserves total mass regardless of out-of-range values.
func TestHistogramMassConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 7)
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 3) // frequently out of range
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
