// sickle-shard scales SICKLE-Go serving horizontally: a consistent-hash
// router that fronts N sickle-serve backends and speaks the same pkg/api
// surface, so pkg/client (and sickle-bench -serve) work against it
// unchanged. Infer/subsample requests route by model/dataset hash with
// bounded failover when a backend is unreachable, overloaded, or
// draining; model listings and the version handshake scatter-gather;
// jobs stick to the backend that accepted them. A health prober ejects
// dead backends and re-admits them when /healthz answers again.
//
// Usage:
//
//	sickle-shard -addr :8090 -backends http://h1:8080,http://h2:8080
//	sickle-shard -case case.yaml          # shard: section
//	sickle-shard -addr :8090 -demo        # 3 in-process replicas, shared demo model
//
// Routes: the full /v2 surface plus GET /api/version, GET /healthz
// (aggregated, with per-replica detail), and GET /metrics
// (sickle_shard_replica_up, routed/failed/failover counters).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8090 or the case file's shard.addr)")
	backends := flag.String("backends", "", "comma-separated backend base URLs")
	caseFile := flag.String("case", "", "YAML case file with an optional shard: section")
	probeMS := flag.Int("probe-ms", 0, "health-probe period in ms (default 1000)")
	failAfter := flag.Int("fail-after", 0, "consecutive failures before ejecting a replica (default 2)")
	maxFailover := flag.Int("max-failover", 0, "extra ring nodes tried after the primary (default 2)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (default 160)")
	demo := flag.Bool("demo", false, "spawn in-process replicas sharing a freshly trained demo model")
	demoReplicas := flag.Int("demo-replicas", 3, "in-process replicas to spawn with -demo")
	flag.Parse()

	cfg := shard.Config{}
	if *caseFile != "" {
		c, err := config.LoadCase(*caseFile)
		if err != nil {
			log.Fatal(err)
		}
		cfg = shard.Config{
			Addr:        c.Shard.Addr,
			URLs:        c.Shard.Replicas,
			VNodes:      c.Shard.VNodes,
			ProbeEvery:  time.Duration(c.Shard.ProbeMS) * time.Millisecond,
			FailAfter:   c.Shard.FailAfter,
			MaxFailover: c.Shard.MaxFailover,
		}
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *backends != "" {
		cfg.URLs = strings.Split(*backends, ",")
	}
	if *probeMS > 0 {
		cfg.ProbeEvery = time.Duration(*probeMS) * time.Millisecond
	}
	if *failAfter > 0 {
		cfg.FailAfter = *failAfter
	}
	if *maxFailover > 0 {
		cfg.MaxFailover = *maxFailover
	}
	if *vnodes > 0 {
		cfg.VNodes = *vnodes
	}

	var inprocs []*serve.InProc
	if *demo {
		if len(cfg.URLs) > 0 {
			log.Fatal("use either -demo or -backends/-case replicas, not both")
		}
		if *demoReplicas < 1 {
			log.Fatal("-demo-replicas must be >= 1")
		}
		log.Printf("training demo model for %d in-process replicas...", *demoReplicas)
		dm, err := serve.TrainDemo(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("demo model trained (%d params, test loss %.4g)", dm.Params, dm.FinalLoss)
		for i := 0; i < *demoReplicas; i++ {
			p, err := serve.StartInProc(serve.Config{})
			if err != nil {
				log.Fatal(err)
			}
			if err := dm.Register(p.Server, "demo", 2); err != nil {
				log.Fatal(err)
			}
			inprocs = append(inprocs, p)
			cfg.URLs = append(cfg.URLs, p.URL)
			log.Printf("replica r%d serving \"demo\" at %s", i, p.URL)
		}
	}
	if len(cfg.URLs) == 0 {
		log.Fatal("no backends: pass -backends, a -case shard: section, or -demo")
	}

	rt, err := shard.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()
	if owner, ok := rt.ReplicaSet().Owner("demo"); ok && *demo {
		log.Printf("consistent-hash owner of model \"demo\": %s (%s)", owner.ID, owner.URL)
	}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		for i, p := range inprocs {
			if err := p.Close(ctx); err != nil {
				log.Printf("replica r%d shutdown: %v", i, err)
			}
		}
		close(done)
	}()

	log.Printf("sickle-shard routing %d replicas", len(cfg.URLs))
	if err := rt.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
	<-done
}
