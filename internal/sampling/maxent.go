package sampling

import (
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/stats"
)

// MaxEnt implements the paper's phase-2 point selection (Xmaxent, §4.1):
//
//  1. cluster the points on the cluster variable (MiniBatchKMeans),
//  2. estimate each cluster's distribution of the cluster variable,
//  3. build the adjacency matrix A_ij = Σ P(C_i) log(P(C_i)/P(C_j))
//     (pairwise KL divergences, Eqs. 1-2),
//  4. node strength = row sum of A,
//  5. allocate the sample budget across clusters ∝ node strength
//     (entropy-weighted random sampling), drawing uniformly inside each.
//
// Clusters whose distribution diverges most from the rest — the rare,
// information-rich tail regions of Fig. 5 — receive proportionally more of
// the budget than their population share.
type MaxEnt struct {
	NumClusters int // default 20 (the paper's SST config)
	HistBins    int // bins for per-cluster distributions, default 100 (paper's Fig 5 setting)
	BatchSize   int // minibatch size for k-means, default 256
	Meter       *energy.Meter
}

// Name implements PointSampler.
func (MaxEnt) Name() string { return "maxent" }

func (m MaxEnt) defaults() MaxEnt {
	if m.NumClusters <= 0 {
		m.NumClusters = 20
	}
	if m.HistBins <= 0 {
		m.HistBins = 100
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 256
	}
	return m
}

// SelectPoints implements PointSampler.
func (m MaxEnt) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	validateRequest(d, n)
	m = m.defaults()
	total := d.N()
	if n >= total {
		return allIndices(total)
	}
	kcv := d.KCV()

	// The clustering uses a fixed internal seed: it is a deterministic
	// preprocessing step, so replicate-to-replicate variation comes only
	// from the within-cluster draws. This is the mechanism behind MaxEnt's
	// reproducibility advantage over random sampling (paper §7, Fig. 6).
	res, err := cluster.KMeans(cluster.Scalar1D(kcv), cluster.Config{
		K: m.NumClusters, Seed: 12345, BatchSize: m.BatchSize, MaxIters: 60,
	})
	if err != nil {
		// Degenerate data; fall back to uniform selection.
		return Random{Meter: m.Meter}.SelectPoints(d, n, rng)
	}
	k := len(res.Centroids)
	members := make([][]int, k)
	for i, l := range res.Labels {
		members[l] = append(members[l], i)
	}

	strength := NodeStrengths(kcv, res.Labels, k, m.HistBins)

	// Entropy-weighted budget allocation across clusters, capped by
	// cluster population; leftover budget cascades to the next-strongest
	// clusters.
	counts := allocateBudget(strength, members, n)

	out := make([]int, 0, n)
	for c, take := range counts {
		if take == 0 {
			continue
		}
		for _, j := range rng.Perm(len(members[c]))[:take] {
			out = append(out, members[c][j])
		}
	}
	sort.Ints(out)
	chargeSampling(m.Meter, total, dims(d), 8) // clustering dominates
	return out
}

// NodeStrengths computes the per-cluster node strengths of Eq. 2: each
// cluster's distribution of the cluster variable is histogrammed on a
// common support, the adjacency matrix holds pairwise KL divergences, and
// the strength is the row sum. Exported because phase-1 hypercube selection
// reuses it on cube-occupancy distributions.
func NodeStrengths(kcv []float64, labels []int, k, bins int) []float64 {
	lo, hi := kcv[0], kcv[0]
	for _, x := range kcv[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	pdfs := make([][]float64, k)
	hists := make([]*stats.Histogram, k)
	for c := range hists {
		hists[c] = stats.NewHistogram(lo, hi+1e-9, bins)
	}
	for i, x := range kcv {
		hists[labels[i]].Add(x)
	}
	for c := range hists {
		pdfs[c] = hists[c].PDF()
	}
	strength := make([]float64, k)
	for i := 0; i < k; i++ {
		if hists[i].N == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			if i == j || hists[j].N == 0 {
				continue
			}
			strength[i] += stats.KLDivergence(pdfs[i], pdfs[j])
		}
	}
	return strength
}

// allocateBudget distributes n samples across clusters proportionally to
// strength, capping each cluster at its population and cascading overflow
// to the remaining strongest clusters.
func allocateBudget(strength []float64, members [][]int, n int) []int {
	k := len(strength)
	counts := make([]int, k)
	totalStrength := 0.0
	for c := range strength {
		if len(members[c]) > 0 {
			totalStrength += strength[c]
		}
	}
	remaining := n
	if totalStrength <= 0 {
		// All clusters identical: proportional to population.
		totalPop := 0
		for _, m := range members {
			totalPop += len(m)
		}
		for c := range counts {
			counts[c] = n * len(members[c]) / totalPop
			remaining -= counts[c]
		}
	} else {
		for c := range counts {
			if len(members[c]) == 0 {
				continue
			}
			want := int(float64(n) * strength[c] / totalStrength)
			if want > len(members[c]) {
				want = len(members[c])
			}
			counts[c] = want
			remaining -= want
		}
	}
	// Cascade any remainder by strength order, respecting capacity.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return strength[order[a]] > strength[order[b]] })
	for remaining > 0 {
		progress := false
		for _, c := range order {
			if remaining == 0 {
				break
			}
			if counts[c] < len(members[c]) {
				counts[c]++
				remaining--
				progress = true
			}
		}
		if !progress {
			break // budget exceeds population; give back what we can't place
		}
	}
	return counts
}

// HypercubeSelector picks which hypercubes of a snapshot to keep (phase 1).
type HypercubeSelector interface {
	Name() string
	SelectCubes(f *grid.Field, cubes []grid.Hypercube, kcvVar string, nSelect int, rng *rand.Rand) []grid.Hypercube
}

// HRandom selects hypercubes uniformly at random (the Hrandom baseline in
// the paper's Fig. 7/8 case matrix).
type HRandom struct {
	Meter *energy.Meter
}

// Name implements HypercubeSelector.
func (HRandom) Name() string { return "random" }

// SelectCubes implements HypercubeSelector.
func (h HRandom) SelectCubes(f *grid.Field, cubes []grid.Hypercube, kcvVar string, nSelect int, rng *rand.Rand) []grid.Hypercube {
	if nSelect >= len(cubes) {
		return cubes
	}
	out := make([]grid.Hypercube, 0, nSelect)
	for _, i := range rng.Perm(len(cubes))[:nSelect] {
		out = append(out, cubes[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	chargeSampling(h.Meter, nSelect, 1, 1)
	return out
}

// HMaxEnt is phase-1 MaxEnt hypercube selection (Hmaxent, §4.1 / Fig. 3):
// the cluster variable is clustered globally (MiniBatchKMeans on a strided
// subsample for tractability), each cube's cluster-occupancy distribution
// P(C_i) is computed, the Eq. 2 adjacency matrix of pairwise KLs yields node
// strengths, and cubes are drawn by entropy/strength-weighted random
// sampling without replacement.
type HMaxEnt struct {
	NumClusters int // default 5 (paper's SST-P1F100 config uses 5-20)
	Stride      int // KCV subsampling stride for global clustering, default 8
	Meter       *energy.Meter
}

// Name implements HypercubeSelector.
func (HMaxEnt) Name() string { return "maxent" }

// SelectCubes implements HypercubeSelector.
func (h HMaxEnt) SelectCubes(f *grid.Field, cubes []grid.Hypercube, kcvVar string, nSelect int, rng *rand.Rand) []grid.Hypercube {
	if nSelect >= len(cubes) {
		return cubes
	}
	k := h.NumClusters
	if k <= 0 {
		k = 5
	}
	stride := h.Stride
	if stride <= 0 {
		stride = 8
	}
	kcv := f.Var(kcvVar)

	// Global clustering of the KCV on a strided subsample.
	sub := make([]float64, 0, len(kcv)/stride+1)
	for i := 0; i < len(kcv); i += stride {
		sub = append(sub, kcv[i])
	}
	res, err := cluster.KMeans(cluster.Scalar1D(sub), cluster.Config{
		K: k, Seed: 12345, BatchSize: 256, MaxIters: 60,
	})
	if err != nil {
		return HRandom{Meter: h.Meter}.SelectCubes(f, cubes, kcvVar, nSelect, rng)
	}
	k = len(res.Centroids)

	// Per-cube occupancy distribution over the global clusters.
	occ := make([][]float64, len(cubes))
	for ci, cube := range cubes {
		counts := make([]float64, k)
		vals := cube.VarValues(f, kcvVar)
		labels := cluster.Assign(cluster.Scalar1D(vals), res.Centroids)
		for _, l := range labels {
			counts[l]++
		}
		occ[ci] = counts
	}

	// Node strength: row sums of pairwise KL between occupancy PDFs,
	// blended with each cube's own entropy so information-rich cubes with
	// broad occupancy also score high even when many cubes are similar.
	strength := make([]float64, len(cubes))
	for i := range cubes {
		strength[i] = stats.Entropy(occ[i])
		for j := range cubes {
			if i == j {
				continue
			}
			strength[i] += stats.KLDivergence(occ[i], occ[j]) / float64(len(cubes)-1)
		}
	}

	sel := weightedSampleWithoutReplacement(strength, nSelect, rng)
	out := make([]grid.Hypercube, 0, nSelect)
	for _, i := range sel {
		out = append(out, cubes[i])
	}
	chargeSampling(h.Meter, len(kcv)/stride+len(cubes)*k, 1, 8)
	return out
}
