package durable

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/pkg/api"
)

func TestBlobRoundTrip(t *testing.T) {
	bs, err := newBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"rows":128,"elapsedMs":7}`)
	if err := bs.Put("job-1", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := bs.Get("job-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	// Overwrite is atomic and replaces the payload.
	if err := bs.Put("job-1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := bs.Get("job-1"); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestBlobMissing(t *testing.T) {
	bs, err := newBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	bs.Delete("nope") // best-effort, must not panic
}

func TestBlobCorrupt(t *testing.T) {
	bs, err := newBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Put("k", []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	path := bs.path("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(corrupt) = %v, want ErrCorrupt", err)
	}
	// Truncated below the frame header is also corrupt, not a crash.
	if err := os.WriteFile(path, raw[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(truncated) = %v, want ErrCorrupt", err)
	}
	bs.Delete("k")
	if _, err := bs.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
	}
}

func TestBlobKeySanitized(t *testing.T) {
	bs, err := newBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A hostile key must not escape the store directory.
	if err := bs.Put("../../etc/passwd", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := bs.Get("../../etc/passwd")
	if err != nil || string(got) != "x" {
		t.Fatalf("sanitized round trip: %q, %v", got, err)
	}
}

func TestContentKeyStability(t *testing.T) {
	base := api.SubsampleRequest{
		Dataset: "synthetic", Scale: "small", Snapshot: 3,
		Method: "dbscan", NumHypercubes: 8, NumSamples: 64, Seed: 42,
	}
	k1 := ContentKey(base)
	if len(k1) != 64 {
		t.Fatalf("key %q is not sha256 hex", k1)
	}
	// Identical parameters hash identically; trace identity is not part
	// of the request struct, so two retries collide by construction.
	if k2 := ContentKey(base); k2 != k1 {
		t.Fatalf("unstable key: %s vs %s", k1, k2)
	}
	// Scale and method normalize.
	norm := base
	norm.Scale, norm.Method = "  SMALL ", "DBScan"
	if ContentKey(norm) != k1 {
		t.Fatal("scale/method normalization broken")
	}
	// Every result-bearing parameter discriminates.
	for name, mut := range map[string]func(*api.SubsampleRequest){
		"dataset":  func(r *api.SubsampleRequest) { r.Dataset = "other" },
		"snapshot": func(r *api.SubsampleRequest) { r.Snapshot++ },
		"method":   func(r *api.SubsampleRequest) { r.Method = "kmeans" },
		"cubes":    func(r *api.SubsampleRequest) { r.NumHypercubes++ },
		"samples":  func(r *api.SubsampleRequest) { r.NumSamples++ },
		"seed":     func(r *api.SubsampleRequest) { r.Seed++ },
	} {
		r := base
		mut(&r)
		if ContentKey(r) == k1 {
			t.Errorf("mutating %s did not change the content key", name)
		}
	}
}
