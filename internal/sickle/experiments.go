package sickle

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/minimpi"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Table1Row summarizes one dataset like the paper's Table 1.
type Table1Row struct {
	Label, Grid   string
	Time          int
	SizeMB        float64
	KCV           string
	Input, Output string
}

// Table1 builds every dataset analogue and reports its summary row.
func Table1(scale Scale) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range DatasetNames() {
		d, err := BuildDataset(name, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Label: d.Label, Grid: d.GridString(), Time: d.NTime(),
			SizeMB: float64(d.SizeBytes()) / 1e6,
			KCV:    d.ClusterVar,
			Input:  strings.Join(d.InputVars, ","),
			Output: strings.Join(d.OutputVars, ","),
		})
	}
	return rows, nil
}

// FormatTable1 renders rows as a paper-style text table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %6s %10s %-10s %-16s %-8s\n",
		"Label", "Space", "Time", "Size(MB)", "KCV", "Input", "Output")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-14s %6d %10.1f %-10s %-16s %-8s\n",
			r.Label, r.Grid, r.Time, r.SizeMB, r.KCV, r.Input, r.Output)
	}
	return b.String()
}

// snapshotData builds the sampling view of one snapshot.
func snapshotData(d *grid.Dataset, snap int) *sampling.Data {
	f := d.Snapshots[snap]
	feats := f.Points(d.InputVars, nil)
	var kcv []float64
	if d.ClusterVar != "" {
		kcv = append([]float64(nil), f.Var(d.ClusterVar)...)
	}
	return &sampling.Data{Features: feats, ClusterVar: kcv}
}

// Fig3Result holds one sampling method's visualization + summary on OF2D.
type Fig3Result struct {
	Method     string
	NumSamples int
	WakeFrac   float64 // fraction of samples landing in the wake region
	TailCover  float64 // vorticity tail coverage vs full field
	Indices    []int
}

// Fig3 reproduces the OF2D sampling visualization (Figs. 1 and 3): sample
// the final snapshot at `rate` with each method and measure how well each
// captures the wake. The caller can render Indices via the viz package.
func Fig3(scale Scale, rate float64) ([]Fig3Result, *grid.Field, error) {
	d, err := BuildDataset("OF2D", scale)
	if err != nil {
		return nil, nil, err
	}
	snap := d.NTime() - 1
	f := d.Snapshots[snap]
	data := snapshotData(d, snap)
	n := int(rate * float64(data.N()))
	wz := f.Var("wz")

	// The wake: downstream of the cylinder with significant |vorticity|.
	thr := stats.Quantile(absAll(wz), 0.9)
	wakeCells := 0
	for i, w := range wz {
		ci, _, _ := f.Coords(i)
		if ci > 30 && abs(w) > thr {
			wakeCells++
		}
	}

	var out []Fig3Result
	for _, method := range []string{"full", "random", "uips", "maxent"} {
		s, err := sampling.NewPointSampler(method, 10, nil)
		if err != nil {
			return nil, nil, err
		}
		nn := n
		if method == "full" {
			nn = data.N()
		}
		idx := s.SelectPoints(data, nn, rand.New(rand.NewSource(42)))
		inWake := 0
		sampleWz := make([]float64, len(idx))
		for r, i := range idx {
			sampleWz[r] = wz[i]
			ci, _, _ := f.Coords(i)
			if ci > 30 && abs(wz[i]) > thr {
				inWake++
			}
		}
		out = append(out, Fig3Result{
			Method: method, NumSamples: len(idx),
			WakeFrac:  float64(inWake) / float64(len(idx)),
			TailCover: stats.TailCoverage(wz, sampleWz, 0.05),
			Indices:   idx,
		})
	}
	return out, f, nil
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = abs(x)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig4Result reports UIPS phase-space coverage on one dataset.
type Fig4Result struct {
	Dataset string
	// Coverage is the fraction of the full data's occupied phase-space
	// cells that the UIPS sample reaches, normalized by the best any
	// sample of that size could do. 1.0 = uniform coverage of the
	// feature space; low values = the clumping of the paper's Fig. 4.
	Coverage float64
}

// Fig4 reproduces the UIPS clumping comparison: UIPS covers the 2-D TC2D
// phase space nearly uniformly but clumps on the 3-D anisotropic SST-P1F4
// case, reaching only a fraction of the occupied cells.
func Fig4(scale Scale) ([]Fig4Result, error) {
	var out []Fig4Result
	for _, name := range []string{"TC2D", "SST-P1F4"} {
		d, err := BuildDataset(name, scale)
		if err != nil {
			return nil, err
		}
		data := snapshotData(d, d.NTime()-1)
		n := data.N() / 10
		idx := sampling.UIPS{Bins: 20}.SelectPoints(data, n, rand.New(rand.NewSource(1)))

		// Bin the normalized full feature space once; count occupied cells
		// for the full data and for the sample on the same grid.
		pts := make([][]float64, data.N())
		for i := range pts {
			pts[i] = append([]float64(nil), data.Features[i]...)
		}
		stats.NormalizeColumns(pts)
		full := stats.NDHistogramFromPoints(pts, 10)
		lo := make([]float64, len(pts[0]))
		hi := make([]float64, len(pts[0]))
		for j := range hi {
			hi[j] = 1 + 1e-9
		}
		smp := stats.NewNDHistogram(lo, hi, 10)
		for _, i := range idx {
			smp.Add(pts[i])
		}
		denom := full.OccupiedCells()
		if n < denom {
			denom = n
		}
		out = append(out, Fig4Result{
			Dataset:  name,
			Coverage: float64(smp.OccupiedCells()) / float64(denom),
		})
	}
	return out, nil
}

// Fig5Row reports PDF fidelity of one sampling method on one dataset.
type Fig5Row struct {
	Dataset   string
	Method    string
	KLtoFull  float64 // KL(full ‖ sample) on the first input variable
	TailCover float64
}

// Fig5 reproduces the PDF comparison (10% sampling): for each dataset and
// method, compare the sampled PDF of the cluster variable (the KCV of
// Table 1 — vorticity, potential vorticity, enstrophy) to the full-field
// PDF. Sampling operates on a 1-D phase space of the KCV itself, which is
// the variable whose tails carry the dynamics the paper's Fig. 5 examines.
func Fig5(scale Scale) ([]Fig5Row, error) {
	var out []Fig5Row
	for _, name := range []string{"OF2D", "SST-P1F4", "GESTS-2048"} {
		d, err := BuildDataset(name, scale)
		if err != nil {
			return nil, err
		}
		f := d.Snapshots[d.NTime()-1]
		kcv := f.Var(d.ClusterVar)
		full := append([]float64(nil), kcv...)
		data := &sampling.Data{Features: oneColumn(full), ClusterVar: full}
		lo, hi := minMax(full)
		fullHist := stats.NewHistogram(lo, hi+1e-12, 100) // paper: 100 bins
		fullHist.AddAll(full)
		n := data.N() / 10
		for _, method := range []string{"random", "uips", "maxent"} {
			s, err := sampling.NewPointSampler(method, 20, nil)
			if err != nil {
				return nil, err
			}
			idx := s.SelectPoints(data, n, rand.New(rand.NewSource(2)))
			vals := make([]float64, len(idx))
			for r, i := range idx {
				vals[r] = full[i]
			}
			sh := stats.NewHistogram(lo, hi+1e-12, 100)
			sh.AddAll(vals)
			out = append(out, Fig5Row{
				Dataset: name, Method: method,
				KLtoFull:  stats.KLDivergence(fullHist.PDF(), sh.PDF()),
				TailCover: stats.TailCoverage(full, vals, 0.02),
			})
		}
	}
	return out, nil
}

// oneColumn wraps a scalar series as an n×1 feature matrix.
func oneColumn(xs []float64) [][]float64 {
	out := make([][]float64, len(xs))
	backing := make([]float64, len(xs))
	copy(backing, xs)
	for i := range xs {
		out[i] = backing[i : i+1 : i+1]
	}
	return out
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

// Fig7Row is one point of the scalability study.
type Fig7Row struct {
	Dataset    string
	Ranks      int
	Speedup    float64
	Efficiency float64
}

// Fig7 reproduces the MaxEnt parallel-scalability study. Per-rank compute
// time comes from a real serial measurement of the two-phase pipeline; the
// scaling model combines the measured compute, the integer work partition
// (ceil(cubes/ranks) — the "dataset too thinly distributed" knee), and the
// minimpi communication cost model (log₂-tree collectives). SST-P1F100 has
// many more cubes than SST-P1F4, so it scales much further before the knee.
func Fig7(ctx context.Context, scale Scale, maxRanks int, cost minimpi.CostModel) ([]Fig7Row, error) {
	var out []Fig7Row
	type caseDef struct {
		name     string
		cubeEdge int
	}
	for _, cd := range []caseDef{{"SST-P1F4", 16}, {"SST-P1F100", 8}} {
		d, err := BuildDataset(cd.name, scale)
		if err != nil {
			return nil, err
		}
		cfg := sampling.PipelineConfig{
			Hypercubes: "maxent", Method: "maxent",
			CubeSx: cd.cubeEdge, CubeSy: cd.cubeEdge, CubeSz: cd.cubeEdge,
			NumClusters: 5, Seed: 3,
		}
		// Total work units = cubes per snapshot × snapshots (ranks
		// partition the tiled domain).
		f := d.Snapshots[0]
		cubes := grid.Tile(f, cd.cubeEdge, cd.cubeEdge, cd.cubeEdge)
		cfg.NumHypercubes = len(cubes)
		cfg.NumSamples = cd.cubeEdge * cd.cubeEdge * cd.cubeEdge / 10
		units := len(cubes) * d.NTime()

		t0 := time.Now()
		if _, err := sampling.SubsampleDataset(ctx, d, cfg); err != nil {
			return nil, err
		}
		t1 := time.Since(t0).Seconds()

		// Bytes exchanged per collective: the gathered per-rank summary.
		const collectiveBytes = 4096
		for ranks := 1; ranks <= maxRanks; ranks *= 2 {
			maxUnits := (units + ranks - 1) / ranks
			tComp := t1 * float64(maxUnits) / float64(units)
			tComm := commCost(cost, collectiveBytes, ranks) * float64(d.NTime())
			tn := tComp + tComm
			sp := t1 / tn
			out = append(out, Fig7Row{
				Dataset: cd.name, Ranks: ranks,
				Speedup: sp, Efficiency: sp / float64(ranks),
			})
		}
	}
	return out, nil
}

// commCost mirrors minimpi.CostModel.cost (log₂-tree collectives).
func commCost(m minimpi.CostModel, bytes, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	hops := 0
	for p := 1; p < ranks; p *= 2 {
		hops++
	}
	c := m.Latency
	if m.Bandwidth > 0 {
		c += float64(bytes) / m.Bandwidth
	}
	return c * float64(hops)
}

// DefaultCostModel is the interconnect model used for Fig. 7: 20 µs
// collective latency (a Slingshot-class MPI collective at modest scale)
// and 10 GB/s effective bandwidth.
func DefaultCostModel() minimpi.CostModel {
	return minimpi.CostModel{Latency: 20e-6, Bandwidth: 10e9}
}

// KneeRanks returns the rank count after which efficiency first drops
// below the threshold — the paper's "scaling limit (knee point)".
func KneeRanks(rows []Fig7Row, dataset string, threshold float64) int {
	knee := 1
	for _, r := range rows {
		if r.Dataset != dataset {
			continue
		}
		if r.Efficiency >= threshold {
			knee = r.Ranks
		}
	}
	return knee
}

// EnergyReportString formats an energy.Report like the artifact's logs.
func EnergyReportString(r energy.Report) string {
	return fmt.Sprintf("%-22s loss=%.4f  sample=%.3g kJ  train=%.3g kJ  total=%.3g kJ",
		r.Label, r.EvalLoss, r.SampleJoules/1000, r.TrainJoules/1000, r.TotalKJ())
}
