// Golden input for closecheck: discarded Close/Sync errors on writable
// files and writers.
package a

import (
	"io"
	"os"
)

func createDiscards() error {
	f, err := os.Create("out.bin")
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error discarded on writable`
	_, err = f.Write([]byte("x"))
	return err
}

func exprDiscard() {
	f, _ := os.Create("out.bin")
	f.Close() // want `Close error discarded on writable`
}

func syncDiscard() {
	f, _ := os.Create("out.bin")
	f.Sync() // want `Sync error discarded on writable`
	_ = f.Close()
}

func acknowledged() {
	f, _ := os.Create("out.bin")
	_ = f.Close() // explicit discard: fine
}

func readOnlyFile() error {
	f, err := os.Open("in.bin")
	if err != nil {
		return err
	}
	defer f.Close() // read path: fine
	_, err = io.ReadAll(f)
	return err
}

func readOnlyOpenFile() error {
	f, err := os.OpenFile("in.bin", os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close() // read path: fine
	return nil
}

func openFileForWrite() error {
	f, err := os.OpenFile("out.bin", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error discarded on writable`
	return nil
}

// doubleClose is the standard idiom: the deferred close is cleanup for
// early returns, the success path checks the error. Not flagged.
func doubleClose() error {
	f, err := os.Create("out.bin")
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close()
}

func writeCloserParam(wc io.WriteCloser) {
	wc.Close() // want `Close error discarded on writable`
}

func readCloserParam(rc io.ReadCloser) {
	rc.Close() // read side: fine
}

func annotated() {
	f, _ := os.Create("out.bin")
	//sicklevet:ignore closecheck error path, the write error dominates
	f.Close()
}
