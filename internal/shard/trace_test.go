package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/api"
	"repro/pkg/client"
)

// TestTracePropagationEndToEnd is the acceptance test for the tracing
// tentpole: one client infer through the router to a replica must produce
// ONE trace whose merged /debug/traces/<id> payload contains the router
// span, the route/client spans, and the replica's server/queue/execute
// spans — all sharing the trace ID the client minted, with a coherent
// parent chain.
func TestTracePropagationEndToEnd(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	closeCtx := context.Background()
	p1 := startReplica(t, "", ckpt)
	defer p1.Close(closeCtx)
	p2 := startReplica(t, "", ckpt)
	defer p2.Close(closeCtx)

	rt := newTestRouter(t, []string{p1.URL, p2.URL})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	// Mint the trace client-side, exactly as an instrumented caller would.
	tc := api.TraceContext{TraceID: api.NewTraceID()}
	ctx := api.WithTrace(context.Background(), tc)
	c := client.New(srv.URL)
	if _, err := c.Infer(ctx, &api.InferRequest{
		Model: "m", Items: []api.InferItem{randomItem(rand.New(rand.NewSource(3)))},
	}); err != nil {
		t.Fatalf("infer: %v", err)
	}

	// The merged trace view from the router must carry all four tiers of
	// spans under the single client-minted trace ID. Spans are recorded as
	// handlers unwind (after the response flushes), so poll briefly.
	var payload obs.TracePayload
	fetchMerged := func() int {
		resp, err := http.Get(srv.URL + "/debug/traces/" + tc.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return 0
		}
		payload = obs.TracePayload{}
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatalf("decode: %v (%s)", err, raw)
		}
		return len(payload.Spans)
	}
	waitFor(t, "all six spans", 3*time.Second, func() bool { return fetchMerged() >= 6 })
	if payload.TraceID != tc.TraceID {
		t.Fatalf("payload trace = %q, want %q", payload.TraceID, tc.TraceID)
	}
	if len(payload.Spans) < 4 {
		t.Fatalf("got %d spans, want >= 4", len(payload.Spans))
	}
	byID := map[string]obs.Span{}
	var names []string
	for _, s := range payload.Spans {
		if s.TraceID != tc.TraceID {
			t.Errorf("span %s belongs to trace %q", s.Name, s.TraceID)
		}
		byID[s.SpanID] = s
		names = append(names, s.Name)
	}
	find := func(prefix string) obs.Span {
		t.Helper()
		for _, s := range payload.Spans {
			if strings.HasPrefix(s.Name, prefix) {
				return s
			}
		}
		t.Fatalf("no %q span in %v", prefix, names)
		return obs.Span{}
	}
	router := find("router:/v2/infer")
	route := find("route:m")
	clientSpan := find("client:")
	server := find("server:/v2/infer")
	queue := find("queue:m")
	execute := find("execute:m")

	// Parent chain: route under router, client attempt under route, the
	// replica's server span under the client attempt, queue/execute under
	// the server span.
	if route.ParentID != router.SpanID {
		t.Errorf("route parent = %q, want router %q", route.ParentID, router.SpanID)
	}
	if clientSpan.ParentID != route.SpanID {
		t.Errorf("client parent = %q, want route %q", clientSpan.ParentID, route.SpanID)
	}
	if server.ParentID != clientSpan.SpanID {
		t.Errorf("server parent = %q, want client %q", server.ParentID, clientSpan.SpanID)
	}
	if queue.ParentID != server.SpanID {
		t.Errorf("queue parent = %q, want server %q", queue.ParentID, server.SpanID)
	}
	if execute.ParentID != server.SpanID {
		t.Errorf("execute parent = %q, want server %q", execute.ParentID, server.SpanID)
	}
	if execute.Attrs["batch_size"] == "" {
		t.Error("execute span missing batch_size attr")
	}
	for _, tier := range []struct{ span, want string }{
		{router.Tier, "shard"}, {route.Tier, "shard"}, {clientSpan.Tier, "shard"},
		{server.Tier, "serve"}, {queue.Tier, "serve"}, {execute.Tier, "serve"},
	} {
		if tier.span != tier.want {
			t.Errorf("tier = %q, want %q", tier.span, tier.want)
		}
	}
}

// TestRouterTraceListAndMetricsLint covers the router's own observability
// surface: /debug/traces lists recorded traces, and /metrics passes the
// exposition lint with le-bucketed latency histograms and build info.
func TestRouterTraceListAndMetricsLint(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	p := startReplica(t, "", ckpt)
	defer p.Close(context.Background())
	rt := newTestRouter(t, []string{p.URL})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	c := client.New(srv.URL)
	if _, err := c.Infer(context.Background(), &api.InferRequest{
		Model: "m", Items: []api.InferItem{randomItem(rand.New(rand.NewSource(4)))},
	}); err != nil {
		t.Fatalf("infer: %v", err)
	}

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list obs.TraceListPayload
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if list.Tier != "shard" || len(list.Traces) == 0 {
		t.Fatalf("trace list = %+v", list)
	}

	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintExposition(text); len(errs) != 0 {
		t.Errorf("router /metrics fails lint: %v", errs)
	}
	for _, want := range []string{
		`sickle_shard_request_seconds_bucket{route="/v2/infer",le="`,
		`sickle_shard_request_seconds_sum{route="/v2/infer"}`,
		`sickle_shard_request_seconds_count{route="/v2/infer"}`,
		`sickle_shard_replica_up{replica="r0"} 1`,
		"sickle_build_info{go_version=",
		"sickle_process_start_time_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
	// Every pre-registry series name must still be present.
	for _, name := range []string{
		"sickle_shard_routed_requests_total", "sickle_shard_failovers_total",
		"sickle_shard_ejections_total", "sickle_shard_readmissions_total",
		"sickle_shard_requests_total",
	} {
		if !strings.Contains(text, fmt.Sprintf("# TYPE %s ", name)) {
			t.Errorf("router /metrics missing family %s", name)
		}
	}
}
