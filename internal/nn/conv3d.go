package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Conv3D is a 3-D convolution over inputs [B, Ci, D, H, W] with cubic
// kernels, stride and zero padding — the encoder building block of the
// paper's CNN-Transformer (Table 2).
type Conv3D struct {
	Ci, Co, K, Stride, Pad int
	W                      *Param // [Co, Ci, K, K, K]
	B                      *Param // [Co]
	x                      *tensor.Tensor
}

// NewConv3D builds a Glorot-initialized 3-D convolution.
func NewConv3D(rng *rand.Rand, ci, co, k, stride, pad int) *Conv3D {
	fanIn := ci * k * k * k
	fanOut := co * k * k * k
	w := tensor.Rand(rng, xavier(fanIn, fanOut), co, ci, k, k, k)
	return &Conv3D{Ci: ci, Co: co, K: k, Stride: stride, Pad: pad,
		W: NewParam("conv3d.w", w), B: NewParam("conv3d.b", tensor.New(co))}
}

// Params implements Module.
func (c *Conv3D) Params() []*Param { return []*Param{c.W, c.B} }

// OutDim returns the output spatial size for input size n.
func (c *Conv3D) OutDim(n int) int { return (n+2*c.Pad-c.K)/c.Stride + 1 }

// Forward computes y [B, Co, D', H', W'].
func (c *Conv3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	if ci != c.Ci {
		panic("nn: Conv3D channel mismatch")
	}
	od, oh, ow := c.OutDim(dd), c.OutDim(hh), c.OutDim(ww)
	y := tensor.New(b, c.Co, od, oh, ow)
	k, s, p := c.K, c.Stride, c.Pad
	for bi := 0; bi < b; bi++ {
		for co := 0; co < c.Co; co++ {
			bias := c.B.W.Data[co]
			for zd := 0; zd < od; zd++ {
				for zh := 0; zh < oh; zh++ {
					for zw := 0; zw < ow; zw++ {
						sum := bias
						for cin := 0; cin < ci; cin++ {
							for kd := 0; kd < k; kd++ {
								id := zd*s + kd - p
								if id < 0 || id >= dd {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh*s + kh - p
									if ih < 0 || ih >= hh {
										continue
									}
									for kw := 0; kw < k; kw++ {
										iw := zw*s + kw - p
										if iw < 0 || iw >= ww {
											continue
										}
										sum += x.At(bi, cin, id, ih, iw) * c.W.W.At(co, cin, kd, kh, kw)
									}
								}
							}
						}
						y.Set(sum, bi, co, zd, zh, zw)
					}
				}
			}
		}
	}
	return y
}

// Backward propagates dL/dy and accumulates kernel/bias grads.
func (c *Conv3D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := c.x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	od, oh, ow := dy.Dim(2), dy.Dim(3), dy.Dim(4)
	dx := tensor.New(b, ci, dd, hh, ww)
	k, s, p := c.K, c.Stride, c.Pad
	for bi := 0; bi < b; bi++ {
		for co := 0; co < c.Co; co++ {
			for zd := 0; zd < od; zd++ {
				for zh := 0; zh < oh; zh++ {
					for zw := 0; zw < ow; zw++ {
						g := dy.At(bi, co, zd, zh, zw)
						if g == 0 {
							continue
						}
						c.B.Grad.Data[co] += g
						for cin := 0; cin < ci; cin++ {
							for kd := 0; kd < k; kd++ {
								id := zd*s + kd - p
								if id < 0 || id >= dd {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh*s + kh - p
									if ih < 0 || ih >= hh {
										continue
									}
									for kw := 0; kw < k; kw++ {
										iw := zw*s + kw - p
										if iw < 0 || iw >= ww {
											continue
										}
										xv := x.At(bi, cin, id, ih, iw)
										wv := c.W.W.At(co, cin, kd, kh, kw)
										c.W.Grad.Data[(((co*ci+cin)*k+kd)*k+kh)*k+kw] += g * xv
										dx.Data[((bi*ci+cin)*dd+id)*hh*ww+ih*ww+iw] += g * wv
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// ConvTranspose3D is the transposed (fractionally strided) 3-D convolution
// used by the paper's decoders: input [B, Ci, D, H, W] → output
// [B, Co, (D-1)·S+K, ...] (no padding).
type ConvTranspose3D struct {
	Ci, Co, K, Stride int
	W                 *Param // [Ci, Co, K, K, K]
	B                 *Param // [Co]
	x                 *tensor.Tensor
}

// NewConvTranspose3D builds a Glorot-initialized transposed convolution.
func NewConvTranspose3D(rng *rand.Rand, ci, co, k, stride int) *ConvTranspose3D {
	fan := ci * k * k * k
	w := tensor.Rand(rng, xavier(fan, co*k*k*k), ci, co, k, k, k)
	return &ConvTranspose3D{Ci: ci, Co: co, K: k, Stride: stride,
		W: NewParam("convt3d.w", w), B: NewParam("convt3d.b", tensor.New(co))}
}

// Params implements Module.
func (c *ConvTranspose3D) Params() []*Param { return []*Param{c.W, c.B} }

// OutDim returns the output spatial size for input size n.
func (c *ConvTranspose3D) OutDim(n int) int { return (n-1)*c.Stride + c.K }

// Forward computes the transposed convolution.
func (c *ConvTranspose3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	od, oh, ow := c.OutDim(dd), c.OutDim(hh), c.OutDim(ww)
	y := tensor.New(b, c.Co, od, oh, ow)
	k, s := c.K, c.Stride
	// Bias.
	for bi := 0; bi < b; bi++ {
		for co := 0; co < c.Co; co++ {
			base := ((bi*c.Co + co) * od) * oh * ow
			bias := c.B.W.Data[co]
			for i := 0; i < od*oh*ow; i++ {
				y.Data[base+i] = bias
			}
		}
	}
	for bi := 0; bi < b; bi++ {
		for cin := 0; cin < ci; cin++ {
			for zd := 0; zd < dd; zd++ {
				for zh := 0; zh < hh; zh++ {
					for zw := 0; zw < ww; zw++ {
						xv := x.At(bi, cin, zd, zh, zw)
						if xv == 0 {
							continue
						}
						for co := 0; co < c.Co; co++ {
							for kd := 0; kd < k; kd++ {
								for kh := 0; kh < k; kh++ {
									for kw := 0; kw < k; kw++ {
										od0, oh0, ow0 := zd*s+kd, zh*s+kh, zw*s+kw
										y.Data[(((bi*c.Co+co)*od+od0)*oh+oh0)*ow+ow0] +=
											xv * c.W.W.At(cin, co, kd, kh, kw)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return y
}

// Backward propagates dL/dy and accumulates grads.
func (c *ConvTranspose3D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := c.x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	od, oh, ow := dy.Dim(2), dy.Dim(3), dy.Dim(4)
	dx := tensor.New(b, ci, dd, hh, ww)
	k, s := c.K, c.Stride
	// Bias grads.
	for bi := 0; bi < b; bi++ {
		for co := 0; co < c.Co; co++ {
			base := ((bi*c.Co + co) * od) * oh * ow
			for i := 0; i < od*oh*ow; i++ {
				c.B.Grad.Data[co] += dy.Data[base+i]
			}
		}
	}
	for bi := 0; bi < b; bi++ {
		for cin := 0; cin < ci; cin++ {
			for zd := 0; zd < dd; zd++ {
				for zh := 0; zh < hh; zh++ {
					for zw := 0; zw < ww; zw++ {
						xv := x.At(bi, cin, zd, zh, zw)
						var acc float64
						for co := 0; co < c.Co; co++ {
							for kd := 0; kd < k; kd++ {
								for kh := 0; kh < k; kh++ {
									for kw := 0; kw < k; kw++ {
										g := dy.Data[(((bi*c.Co+co)*od+zd*s+kd)*oh+zh*s+kh)*ow+zw*s+kw]
										acc += g * c.W.W.At(cin, co, kd, kh, kw)
										c.W.Grad.Data[(((cin*c.Co+co)*k+kd)*k+kh)*k+kw] += g * xv
									}
								}
							}
						}
						dx.Data[((bi*ci+cin)*dd+zd)*hh*ww+zh*ww+zw] = acc
					}
				}
			}
		}
	}
	return dx
}
