package api

// API version path prefixes.
const (
	V1 = "v1" // frozen compatibility shim (legacy error envelope)
	V2 = "v2" // current surface: typed errors + jobs
)

// Latest is the newest version this contract describes.
const Latest = V2

// SupportedVersions lists the versions a current server speaks, oldest
// first.
func SupportedVersions() []string { return []string{V1, V2} }

// VersionInfo is the GET /api/version body — the negotiation handshake.
// A client picks the newest entry of Versions it understands and prefixes
// its routes with it.
type VersionInfo struct {
	Versions []string `json:"versions"` // oldest first
	Latest   string   `json:"latest"`
}
