package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("demo_requests_total", "Requests served.", "route")
	c.With("/v1/infer").Add(3)
	c.With("/healthz").Inc()
	g := reg.Gauge("demo_inflight", "In-flight requests.")
	g.With().Set(2)
	g.With().Add(-1)

	out := reg.Render()
	for _, want := range []string{
		"# HELP demo_requests_total Requests served.",
		"# TYPE demo_requests_total counter",
		`demo_requests_total{route="/healthz"} 1`,
		`demo_requests_total{route="/v1/infer"} 3`,
		"# TYPE demo_inflight gauge",
		"demo_inflight 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_seconds", "Latency.", []float64{0.1, 1}, "route")
	h.With("a").Observe(0.05)
	h.With("a").Observe(0.5)
	h.With("a").Observe(5)

	out := reg.Render()
	for _, want := range []string{
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{route="a",le="0.1"} 1`,
		`demo_seconds_bucket{route="a",le="1"} 2`,
		`demo_seconds_bucket{route="a",le="+Inf"} 3`,
		`demo_seconds_sum{route="a"} 5.55`,
		`demo_seconds_count{route="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := h.With("a").Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

func TestIntegerValuesRenderBare(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_hits_total", "h").With().Add(1)
	out := reg.Render()
	// Exact-match consumers (tests, loadgen) rely on integers rendering
	// without a decimal point.
	if !strings.Contains(out, "demo_hits_total 1\n") {
		t.Errorf("integer counter rendered oddly:\n%s", out)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("nil metric values should be zero")
	}
}

func TestFuncProbes(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("demo_live", "live", func() float64 { return 42 })
	reg.CounterFunc("demo_live_total", "live", func() float64 { return 7 })
	reg.GaugeMapFunc("demo_map", "map", "k", func() map[string]float64 {
		return map[string]float64{"b": 2, "a": 1}
	})
	out := reg.Render()
	for _, want := range []string{
		"demo_live 42", "demo_live_total 7",
		`demo_map{k="a"} 1`, `demo_map{k="b"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("demo_esc", "e", "v").With(`a"b\c` + "\n").Set(1)
	out := reg.Render()
	if !strings.Contains(out, `demo_esc{v="a\"b\\c\n"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	if errs := LintExposition(out); len(errs) != 0 {
		t.Errorf("escaped output fails lint: %v", errs)
	}
}

func TestLabelArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	NewRegistry().Counter("demo_total", "d", "a", "b").With("only-one")
}

// TestRegistryConcurrency hammers every mutator while rendering; run with
// -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("stress_total", "s", "w")
	g := reg.Gauge("stress_gauge", "s")
	h := reg.Histogram("stress_seconds", "s", nil, "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < 500; i++ {
				c.With(lbl).Inc()
				g.With().Add(1)
				h.With(lbl).Observe(float64(i) / 1000)
				if i%50 == 0 {
					_ = reg.Render()
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += c.With(lbl).Value()
	}
	if total != 8*500 {
		t.Errorf("counter lost updates: %g", total)
	}
	if g.With().Value() != 8*500 {
		t.Errorf("gauge lost updates: %g", g.With().Value())
	}
	if errs := LintExposition(reg.Render()); len(errs) != 0 {
		t.Errorf("stressed registry fails lint: %v", errs)
	}
}

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	out := reg.Render()
	for _, want := range []string{
		`sickle_build_info{go_version="go`,
		"sickle_process_start_time_seconds",
		"sickle_go_goroutines",
		"sickle_go_heap_alloc_bytes",
		"sickle_go_gc_pause_seconds_total",
		"sickle_tensor_pool_workers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
	if errs := LintExposition(out); len(errs) != 0 {
		t.Errorf("runtime metrics fail lint: %v", errs)
	}
}
