package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ctxfirst"
)

func TestLibrary(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer, "ctxfirst/a")
}

func TestMainPackageExempt(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer, "ctxfirst/mainpkg")
}
