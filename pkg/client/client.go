// Package client is the Go SDK for a running sickle-serve instance: typed
// methods over the pkg/api wire contract, per-call context/deadline
// propagation, automatic retry with exponential backoff on typed
// overloaded responses (honoring Retry-After), and submit/wait/cancel
// helpers for the asynchronous job surface.
//
// Minimal use:
//
//	c := client.New("http://localhost:8080")
//	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
//	defer cancel()
//	out, err := c.Infer(ctx, &api.InferRequest{Model: "demo", Items: items})
//
// Failures are *api.Error values: errors.As exposes the machine-readable
// code (api.CodeOverloaded, api.CodeModelNotFound, ...).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"time"

	"repro/pkg/api"
)

// Client talks to one sickle-serve base URL. The zero value is not usable;
// construct with New. Clients are safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	version    string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). Per-call contexts still bound each request.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets how many times a typed overloaded response is retried
// (default 3) and the base backoff doubled per attempt (default 100ms).
// The server's Retry-After, when longer, wins. maxRetries 0 disables
// retry.
func WithRetry(maxRetries int, backoff time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = maxRetries
		c.backoff = backoff
	}
}

// New builds a client for the server at base (e.g. "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{},
		maxRetries: 3,
		backoff:    100 * time.Millisecond,
		version:    api.Latest,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ServerVersions fetches the raw version-negotiation handshake (GET
// /api/version) without changing the client's pinned version — routing
// layers use it to intersect version sets across backends.
func (c *Client) ServerVersions(ctx context.Context) (*api.VersionInfo, error) {
	var info api.VersionInfo
	if err := c.do(ctx, http.MethodGet, "/api/version", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Negotiate asks the server which API versions it speaks (GET
// /api/version) and pins the newest one this SDK understands; subsequent
// calls use it. Servers without the endpoint (pre-v2) yield a typed
// unsupported_version error.
func (c *Client) Negotiate(ctx context.Context) (string, error) {
	info, err := c.ServerVersions(ctx)
	if err != nil {
		ae := api.AsError(err)
		if ae.Code == api.CodeNotFound {
			return "", api.Errorf(api.CodeUnsupportedVersion,
				"server at %s predates API version negotiation", c.base)
		}
		return "", err
	}
	for _, v := range []string{api.V2} { // newest first among SDK-known versions
		if slices.Contains(info.Versions, v) {
			c.version = v
			return v, nil
		}
	}
	return "", api.Errorf(api.CodeUnsupportedVersion,
		"no common API version: server speaks %v", info.Versions)
}

// Version returns the API version in use ("v2" unless Negotiate found
// otherwise).
func (c *Client) Version() string { return c.version }

// Infer runs micro-batched inference.
func (c *Client) Infer(ctx context.Context, req *api.InferRequest) (*api.InferResponse, error) {
	var out api.InferResponse
	if err := c.doVersioned(ctx, http.MethodPost, "/infer", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subsample runs the two-phase pipeline synchronously (small requests; use
// SubmitSubsampleJob for work worth cancelling).
func (c *Client) Subsample(ctx context.Context, req *api.SubsampleRequest) (*api.SubsampleResponse, error) {
	var out api.SubsampleResponse
	if err := c.doVersioned(ctx, http.MethodPost, "/subsample", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Models lists the registered models.
func (c *Client) Models(ctx context.Context) ([]api.ModelInfo, error) {
	var out []api.ModelInfo
	if err := c.doVersioned(ctx, http.MethodGet, "/models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RegisterModel loads (or hot-swaps) a checkpoint under a name.
func (c *Client) RegisterModel(ctx context.Context, req *api.RegisterModelRequest) (*api.ModelInfo, error) {
	var out api.ModelInfo
	if err := c.doVersioned(ctx, http.MethodPost, "/models", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var out api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the raw Prometheus exposition from /metrics.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", api.Errorf(api.CodeFromStatus(resp.StatusCode), "GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(raw), nil
}

// DebugTraceJSON fetches one trace's raw JSON payload from
// /debug/traces/<id>. A missing trace yields a typed not-found error. The
// shard router uses this to merge replica-side spans into its own view of
// a trace; operators can use it as a programmatic /debug/traces client.
func (c *Client) DebugTraceJSON(ctx context.Context, traceID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/debug/traces/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, api.Errorf(api.CodeUnavailable, "GET /debug/traces/%s: %v", traceID, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, api.Errorf(api.CodeUnavailable, "GET /debug/traces/%s: reading response: %v", traceID, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, api.Errorf(api.CodeFromStatus(resp.StatusCode),
			"GET /debug/traces/%s: HTTP %d", traceID, resp.StatusCode)
	}
	return raw, nil
}

// doVersioned prefixes the path with the negotiated API version.
func (c *Client) doVersioned(ctx context.Context, method, path string, in, out any) error {
	return c.do(ctx, method, "/"+c.version+path, in, out)
}

// do performs one JSON round trip with the overloaded-retry loop. in and
// out may be nil. When ctx carries no trace identity, do mints a fresh
// trace ID so every SDK call is traceable end to end; either way the
// identity travels downstream as the X-Sickle-Trace header.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, in, out, false)
}

// doRetry is do with an optional widened retry policy: with
// retryUnavailable set, typed unavailable answers (transport failures,
// refused WAL appends) retry on the same backoff schedule. Only calls
// the server deduplicates — keyed job submissions — may set it; anything
// else could double-apply on a connection that died after the server
// acted.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any, retryUnavailable bool) error {
	if _, ok := api.TraceFrom(ctx); !ok {
		ctx = api.WithTrace(ctx, api.TraceContext{TraceID: api.NewTraceID()})
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		if err == nil || attempt >= c.maxRetries {
			return err
		}
		ae := api.AsError(err)
		if ae.Code != api.CodeOverloaded &&
			!(retryUnavailable && ae.Code == api.CodeUnavailable) {
			return err
		}
		delay := c.backoff << attempt
		if ra := time.Duration(ae.RetryAfterSeconds) * time.Second; ra > delay {
			delay = ra
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return api.AsError(ctx.Err())
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc, ok := api.TraceFrom(ctx); ok {
		req.Header.Set(api.TraceHeader, tc.HeaderValue())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Ctx cancellation/deadline surface as their own codes; any other
		// transport failure (connection refused, reset, DNS) is typed
		// unavailable so routing layers can tell "backend unreachable" apart
		// from an application error and fail over.
		ae := api.AsError(err)
		if ae.Code == api.CodeInternal {
			ae = api.Errorf(api.CodeUnavailable, "%s %s: %v", method, c.base+path, err)
		}
		return ae
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	// A success status whose body cannot be read or parsed means the
	// connection died (or the payload was truncated) after the headers: type
	// it unavailable too, so routing layers fail over instead of treating it
	// as a final application answer.
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return api.Errorf(api.CodeUnavailable, "%s %s: reading response: %v", method, c.base+path, err)
	}
	return nil
}

// decodeError recovers a typed *api.Error from a failure response: the v2
// envelope when present, the legacy v1 {"error":"msg"} shape, or a bare
// status otherwise.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env api.ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Error != nil && env.Error.Code != "" {
		return env.Error
	}
	var legacy struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &legacy) == nil && legacy.Error != "" {
		msg = legacy.Error
	}
	return &api.Error{
		Code:    api.CodeFromStatus(resp.StatusCode),
		Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, msg),
	}
}

// debugJSON fetches one debug endpoint's raw JSON payload. Transport
// failures surface as typed unavailable errors so the shard router's
// scatter-gather can count them against replica health.
func (c *Client) debugJSON(ctx context.Context, pathAndQuery string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+pathAndQuery, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, api.Errorf(api.CodeUnavailable, "GET %s: %v", pathAndQuery, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, api.Errorf(api.CodeUnavailable, "GET %s: reading response: %v", pathAndQuery, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, api.Errorf(api.CodeFromStatus(resp.StatusCode),
			"GET %s: HTTP %d", pathAndQuery, resp.StatusCode)
	}
	return raw, nil
}

// DebugHistoryJSON fetches the raw /debug/history payload (the tsdb
// metrics history). query is the raw query string without the leading
// "?", e.g. "series=sickle_requests_total&since=5m"; "" fetches all.
func (c *Client) DebugHistoryJSON(ctx context.Context, query string) ([]byte, error) {
	p := "/debug/history"
	if query != "" {
		p += "?" + query
	}
	return c.debugJSON(ctx, p)
}

// DebugEventsJSON fetches the raw /debug/events payload (the event
// journal tail). query is the raw query string without the leading "?",
// e.g. "limit=64&type=ejection"; "" uses the server defaults.
func (c *Client) DebugEventsJSON(ctx context.Context, query string) ([]byte, error) {
	p := "/debug/events"
	if query != "" {
		p += "?" + query
	}
	return c.debugJSON(ctx, p)
}

// DebugSLOJSON fetches the raw /debug/slo payload (the burn-rate
// engine's current report).
func (c *Client) DebugSLOJSON(ctx context.Context) ([]byte, error) {
	return c.debugJSON(ctx, "/debug/slo")
}
