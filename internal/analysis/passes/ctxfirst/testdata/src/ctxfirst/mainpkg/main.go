// Package main may mint root contexts: it is the lifecycle root.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
