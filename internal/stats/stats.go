// Package stats provides the statistical machinery SICKLE's sampling methods
// are built on: histograms and multi-dimensional binned PDFs, kernel density
// estimates, Shannon entropy, Kullback-Leibler divergence, and distribution
// moments. All estimators operate on plain []float64 / point slices so they
// can run directly over field data without copies.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments holds the first four standardized moments of a sample.
type Moments struct {
	Mean     float64
	Variance float64
	Skewness float64
	Kurtosis float64 // excess kurtosis (0 for a Gaussian)
}

// ComputeMoments returns mean, variance (population), skewness and excess
// kurtosis of xs. It returns zeros for fewer than two samples.
func ComputeMoments(xs []float64) Moments {
	n := float64(len(xs))
	if len(xs) < 2 {
		var m Moments
		if len(xs) == 1 {
			m.Mean = xs[0]
		}
		return m
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	m2 /= n
	m3 /= n
	m4 /= n
	out := Moments{Mean: mean, Variance: m2}
	if m2 > 0 {
		s := math.Sqrt(m2)
		out.Skewness = m3 / (s * s * s)
		out.Kurtosis = m4/(m2*m2) - 3
	}
	return out
}

// Histogram is a fixed-width 1-D histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int // total samples, including clipped ones
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi). Values outside the range are clamped to the edge bins, so
// total mass is conserved.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: histogram needs >=1 bin, got %d", bins))
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: histogram range [%v,%v) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// HistogramFromData builds a histogram spanning the observed data range.
// A tiny padding keeps the max value inside the last bin.
func HistogramFromData(xs []float64, bins int) *Histogram {
	if len(xs) == 0 {
		return NewHistogram(0, 1, bins)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 1e-9
	h := NewHistogram(lo, hi+pad, bins)
	h.AddAll(xs)
	return h
}

// BinIndex returns the bin x falls into, clamped to [0, bins-1].
func (h *Histogram) BinIndex(x float64) int {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Counts[h.BinIndex(x)]++
	h.N++
}

// AddAll records a batch of observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// PDF returns the normalized probability mass per bin (sums to 1).
func (h *Histogram) PDF() []float64 {
	p := make([]float64, len(h.Counts))
	if h.N == 0 {
		return p
	}
	inv := 1 / float64(h.N)
	for i, c := range h.Counts {
		p[i] = float64(c) * inv
	}
	return p
}

// Density returns the probability density per bin (integrates to 1).
func (h *Histogram) Density() []float64 {
	p := h.PDF()
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i := range p {
		p[i] /= w
	}
	return p
}

// BinCenters returns the center coordinate of each bin.
func (h *Histogram) BinCenters() []float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	c := make([]float64, len(h.Counts))
	for i := range c {
		c[i] = h.Lo + (float64(i)+0.5)*w
	}
	return c
}

// Entropy returns the Shannon entropy (nats) of a discrete distribution p.
// Zero-probability bins contribute nothing. p need not be normalized; it is
// normalized internally.
func Entropy(p []float64) float64 {
	total := 0.0
	for _, v := range p {
		if v < 0 {
			panic("stats: negative probability mass")
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, v := range p {
		if v > 0 {
			q := v / total
			h -= q * math.Log(q)
		}
	}
	return h
}

// klFloor regularises zero bins in KL computations so that the divergence
// stays finite on empirical histograms, mirroring the epsilon smoothing in
// the reference implementation.
const klFloor = 1e-12

// KLDivergence returns D(p||q) = Σ p log(p/q) in nats. Inputs are
// normalized internally and zero bins are floored at klFloor.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KL length mismatch %d vs %d", len(p), len(q)))
	}
	sp, sq := 0.0, 0.0
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			panic("stats: negative probability mass")
		}
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return 0
	}
	d := 0.0
	for i := range p {
		pi := p[i] / sp
		if pi <= 0 {
			continue
		}
		qi := q[i] / sq
		if qi < klFloor {
			qi = klFloor
		}
		d += pi * math.Log(pi/qi)
	}
	if d < 0 {
		// Numerical noise from the floor can push a tiny bit below zero.
		d = 0
	}
	return d
}

// JensenShannon returns the Jensen-Shannon divergence between p and q,
// a bounded symmetric alternative to KL used for snapshot novelty scoring.
func JensenShannon(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: JS length mismatch")
	}
	m := make([]float64, len(p))
	sp, sq := 0.0, 0.0
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return 0
	}
	for i := range p {
		m[i] = 0.5*(p[i]/sp) + 0.5*(q[i]/sq)
	}
	return 0.5*KLDivergence(p, m) + 0.5*KLDivergence(q, m)
}

// GaussianKDE evaluates a Gaussian kernel density estimate of xs at each
// point in eval, using Silverman's rule of thumb when bandwidth <= 0.
func GaussianKDE(xs, eval []float64, bandwidth float64) []float64 {
	out := make([]float64, len(eval))
	n := len(xs)
	if n == 0 {
		return out
	}
	if bandwidth <= 0 {
		m := ComputeMoments(xs)
		sigma := math.Sqrt(m.Variance)
		if sigma == 0 {
			sigma = 1
		}
		bandwidth = 1.06 * sigma * math.Pow(float64(n), -0.2)
	}
	norm := 1 / (float64(n) * bandwidth * math.Sqrt(2*math.Pi))
	for i, e := range eval {
		s := 0.0
		for _, x := range xs {
			u := (e - x) / bandwidth
			s += math.Exp(-0.5 * u * u)
		}
		out[i] = s * norm
	}
	return out
}

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// TailCoverage measures what fraction of the extreme tails of the reference
// sample ref (beyond the lo and hi quantiles) is covered by the sampled
// subset: it returns the ratio of the subset's tail mass to the reference
// tail mass (1.0 = tails represented proportionally; <1 under-sampled).
// This is the scalar summary used for the paper's Fig. 5 comparison.
func TailCoverage(ref, sample []float64, tailFrac float64) float64 {
	if len(ref) == 0 || len(sample) == 0 || tailFrac <= 0 {
		return 0
	}
	lo := Quantile(ref, tailFrac)
	hi := Quantile(ref, 1-tailFrac)
	refTail := 0
	for _, x := range ref {
		if x < lo || x > hi {
			refTail++
		}
	}
	smpTail := 0
	for _, x := range sample {
		if x < lo || x > hi {
			smpTail++
		}
	}
	refFrac := float64(refTail) / float64(len(ref))
	smpFrac := float64(smpTail) / float64(len(sample))
	if refFrac == 0 {
		return 1
	}
	return smpFrac / refFrac
}

// NormalizeColumns rescales each feature column of pts (n×d, row-major
// points) to [0,1] in place and returns the per-column (min, max) used.
// Constant columns map to 0.
func NormalizeColumns(pts [][]float64) (mins, maxs []float64) {
	if len(pts) == 0 {
		return nil, nil
	}
	d := len(pts[0])
	mins = make([]float64, d)
	maxs = make([]float64, d)
	copy(mins, pts[0])
	copy(maxs, pts[0])
	for _, p := range pts {
		for j, v := range p {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	for _, p := range pts {
		for j := range p {
			r := maxs[j] - mins[j]
			if r > 0 {
				p[j] = (p[j] - mins[j]) / r
			} else {
				p[j] = 0
			}
		}
	}
	return mins, maxs
}
