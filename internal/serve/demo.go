package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/train"
)

// DemoModel is a tiny trained surrogate checkpoint produced by TrainDemo —
// the shared ingredient behind `sickle-serve -demo` and `sickle-shard
// -demo`. Train once, register on any number of servers.
type DemoModel struct {
	Spec       train.ArchSpec
	Checkpoint string
	InputShape []int
	Params     int
	FinalLoss  float64
}

// TrainDemo runs the paper's offline T1→T2 pipeline at toy scale —
// subsample GESTS-2048, train an MLP-Transformer, checkpoint it — so a
// bare `-demo` server is immediately load-testable with
// `sickle-bench -serve`.
func TrainDemo(ctx context.Context) (*DemoModel, error) {
	d, err := sickle.BuildDataset("GESTS-2048", sickle.Small)
	if err != nil {
		return nil, err
	}
	cubes, err := sampling.SubsampleDataset(ctx, d, sampling.PipelineConfig{
		Hypercubes: "random", Method: "random",
		NumHypercubes: 6, NumSamples: 64,
		CubeSx: 8, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	ex, err := train.BuildSampleFull(d, cubes, 1)
	if err != nil {
		return nil, err
	}
	spec := train.ArchSpec{Arch: "mlp_transformer", InDim: len(d.InputVars),
		Hidden: 16, Heads: 2, OutDim: len(d.OutputVars), Edge: 8}
	model, hist, err := train.Train(ctx, spec.Factory(), ex, train.Config{
		Epochs: 5, Batch: 4, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	path := filepath.Join(os.TempDir(), fmt.Sprintf("sickle-demo-%d.sknn", os.Getpid()))
	if err := nn.SaveCheckpoint(path, model); err != nil {
		return nil, err
	}
	return &DemoModel{
		Spec:       spec,
		Checkpoint: path,
		InputShape: ex[0].Input.Shape,
		Params:     hist.Params,
		FinalLoss:  hist.FinalLoss,
	}, nil
}

// Register publishes the checkpoint to s under name with the given
// model-replica count.
func (d *DemoModel) Register(s *Server, name string, replicas int) error {
	_, err := s.Registry().Register(name, d.Spec, d.Checkpoint, d.InputShape, replicas)
	return err
}
