// Package olog is the structured, leveled logger shared by the sickle
// binaries and the serve/shard request paths. Records are key-value
// pairs rendered either as logfmt-style text or as JSON objects, chosen
// at construction — the binaries wire this to -log-level / -log-json.
package olog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level orders log records by severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a -log-level flag value to a Level; unknown values
// default to info with ok=false.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, true
	case "info", "":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	default:
		return LevelInfo, false
	}
}

// Logger writes leveled key-value records. A nil *Logger discards
// everything, so components can hold one unconditionally. Methods are
// safe for concurrent use.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	json  bool
	bound []any // With()-bound key-value pairs, prepended to every record
	lim   *limiter
	now   func() time.Time
}

// Warn/error flood control defaults: every distinct message gets a burst
// of identical lines, then one token back per refill interval; suppressed
// repeats are counted and reported on the next emitted line.
const (
	defaultLimitBurst  = 5
	defaultLimitRefill = time.Second
)

// limiter is a per-call-site (keyed by level+message) token bucket shared
// by a logger and all its With children, so a flapping replica repeating
// one warn line cannot flood the journal.
type limiter struct {
	mu     sync.Mutex
	burst  float64
	refill time.Duration
	sites  map[string]*site
}

type site struct {
	tokens     float64
	last       time.Time
	suppressed int
}

// allow charges one token for key at time t. It returns whether the line
// may be written and, when it may, how many identical lines were
// suppressed since the last one written.
func (l *limiter) allow(key string, t time.Time) (ok bool, suppressed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, have := l.sites[key]
	if !have {
		// Bound the site map: a pathological stream of distinct messages
		// must not grow it forever. Resetting forgets suppression counts,
		// which only costs accuracy of the suppressed=N tail.
		if len(l.sites) >= 4096 {
			l.sites = map[string]*site{}
		}
		s = &site{tokens: l.burst, last: t}
		l.sites[key] = s
	}
	if dt := t.Sub(s.last); dt > 0 {
		s.tokens += float64(dt) / float64(l.refill)
		if s.tokens > l.burst {
			s.tokens = l.burst
		}
		s.last = t
	}
	if s.tokens < 1 {
		s.suppressed++
		return false, 0
	}
	s.tokens--
	suppressed = s.suppressed
	s.suppressed = 0
	return true, suppressed
}

// New builds a logger writing records at or above min to w; jsonOut
// selects JSON objects instead of logfmt text. Repeated identical warn and
// error messages are rate-limited per call site (token bucket, burst 5,
// one token back per second) with a suppressed=N tail on the next line
// written; SetRateLimit tunes or disables this.
func New(w io.Writer, min Level, jsonOut bool) *Logger {
	return &Logger{
		mu: &sync.Mutex{}, w: w, min: min, json: jsonOut, now: time.Now,
		lim: &limiter{burst: defaultLimitBurst, refill: defaultLimitRefill,
			sites: map[string]*site{}},
	}
}

// SetRateLimit reconfigures warn/error flood control: at most burst
// identical lines back to back, then one more per refill. burst <= 0
// disables limiting. The limiter is shared with existing With children.
func (l *Logger) SetRateLimit(burst int, refill time.Duration) {
	if l == nil {
		return
	}
	if burst <= 0 {
		l.lim = nil
		return
	}
	if refill <= 0 {
		refill = defaultLimitRefill
	}
	if l.lim == nil {
		l.lim = &limiter{sites: map[string]*site{}}
	}
	l.lim.mu.Lock()
	l.lim.burst = float64(burst)
	l.lim.refill = refill
	l.lim.mu.Unlock()
}

// Default returns a text logger to stderr at info level.
func Default() *Logger { return New(os.Stderr, LevelInfo, false) }

// With returns a child logger whose records carry the given key-value
// pairs ahead of per-call pairs (e.g. With("tier", "shard")).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.bound = append(append([]any{}, l.bound...), kv...)
	return &child
}

// Enabled reports whether records at lvl would be written.
func (l *Logger) Enabled(lvl Level) bool { return l != nil && lvl >= l.min }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	t := l.now()
	if lvl >= LevelWarn && l.lim != nil {
		ok, suppressed := l.lim.allow(lvl.String()+"\x00"+msg, t)
		if !ok {
			return
		}
		if suppressed > 0 {
			kv = append(append([]any{}, kv...), "suppressed", suppressed)
		}
	}
	pairs := append(append([]any{}, l.bound...), kv...)
	ts := t.Format(time.RFC3339Nano)

	var line []byte
	if l.json {
		obj := map[string]any{"ts": ts, "level": lvl.String(), "msg": msg}
		for i := 0; i+1 < len(pairs); i += 2 {
			obj[fmt.Sprint(pairs[i])] = pairs[i+1]
		}
		if len(pairs)%2 == 1 {
			obj["_odd_key"] = fmt.Sprint(pairs[len(pairs)-1])
		}
		line = appendJSON(obj)
	} else {
		var b strings.Builder
		b.WriteString(ts)
		b.WriteByte(' ')
		b.WriteString(lvl.String())
		b.WriteByte(' ')
		b.WriteString(msg)
		for i := 0; i+1 < len(pairs); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fmt.Sprint(pairs[i]))
			b.WriteByte('=')
			b.WriteString(quoteIfNeeded(fmt.Sprint(pairs[i+1])))
		}
		if len(pairs)%2 == 1 {
			b.WriteString(" _odd_key=")
			b.WriteString(quoteIfNeeded(fmt.Sprint(pairs[len(pairs)-1])))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}

	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

// appendJSON marshals with deterministic key order (ts/level/msg first,
// then sorted) so log lines are stable for tests and grepping.
func appendJSON(obj map[string]any) []byte {
	keys := make([]string, 0, len(obj))
	for k := range obj {
		if k == "ts" || k == "level" || k == "msg" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(`{"ts":`)
	writeJSONVal(&b, obj["ts"])
	b.WriteString(`,"level":`)
	writeJSONVal(&b, obj["level"])
	b.WriteString(`,"msg":`)
	writeJSONVal(&b, obj["msg"])
	for _, k := range keys {
		b.WriteByte(',')
		writeJSONVal(&b, k)
		b.WriteByte(':')
		writeJSONVal(&b, obj[k])
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

func writeJSONVal(b *strings.Builder, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprint(v))
	}
	b.Write(enc)
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\n\"=") {
		enc, _ := json.Marshal(s)
		return string(enc)
	}
	return s
}
