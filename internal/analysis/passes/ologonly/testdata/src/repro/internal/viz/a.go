// Package viz is outside the long-running set: printing is legal here.
package viz

import (
	"fmt"
	"log"
)

func render() {
	fmt.Println("plot written")
	log.Printf("done")
}
