package train

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Example is one training pair; Input and Target carry no batch dimension.
type Example struct {
	Input  *tensor.Tensor
	Target *tensor.Tensor
}

// stack assembles a batch tensor from per-example tensors. The batch
// tensor comes from the tensor workspace: callers that finish with it
// inside one step should tensor.Put it back, which makes the training
// inner loop's stacking allocation-free at steady state.
func stack(xs []*tensor.Tensor) *tensor.Tensor {
	shape := append([]int{len(xs)}, xs[0].Shape...)
	out := tensor.Get(shape...)
	stride := xs[0].Len()
	for i, x := range xs {
		if x.Len() != stride {
			panic("train: ragged examples in batch")
		}
		copy(out.Data[i*stride:(i+1)*stride], x.Data)
	}
	return out
}

// SplitTrainTest shuffles and splits examples (paper: 90:10).
func SplitTrainTest(ex []Example, testFrac float64, seed int64) (trainSet, testSet []Example) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(ex))
	nTest := int(float64(len(ex)) * testFrac)
	if nTest < 1 && len(ex) > 1 {
		nTest = 1
	}
	for i, p := range perm {
		if i < nTest {
			testSet = append(testSet, ex[p])
		} else {
			trainSet = append(trainSet, ex[p])
		}
	}
	return
}

// BuildSampleFull converts subsampled cubes into sample-full examples for
// the MLP-Transformer: input = the cube's sampled points over a window of
// snapshots [T, N, C]; target = the dense cube of output variables at the
// final window snapshot [1, C', G, G, G]. Cubes are matched across
// snapshots by cube ID, so a window slides along time for each cube.
func BuildSampleFull(d *grid.Dataset, cubes []sampling.CubeSample, window int) ([]Example, error) {
	if window <= 0 {
		window = 1
	}
	byCube := map[int][]sampling.CubeSample{}
	for _, cs := range cubes {
		byCube[cs.Cube.ID] = append(byCube[cs.Cube.ID], cs)
	}
	var out []Example
	for _, series := range byCube {
		for start := 0; start+window <= len(series); start++ {
			win := series[start : start+window]
			n := len(win[0].Features)
			c := len(d.InputVars)
			ok := true
			for _, w := range win {
				if len(w.Features) != n {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			in := tensor.New(window, n, c)
			for t, w := range win {
				for p, feat := range w.Features {
					copy(in.Data[(t*n+p)*c:(t*n+p)*c+c], feat)
				}
			}
			lastCS := win[window-1]
			g := lastCS.Cube.Sx
			f := d.Snapshots[lastCS.Snapshot]
			tgt := tensor.New(1, len(d.OutputVars), g, g, g)
			flat := lastCS.Cube.Indices(f)
			for v, name := range d.OutputVars {
				src := f.Var(name)
				for p, fi := range flat {
					tgt.Data[v*g*g*g+p] = src[fi]
				}
			}
			out = append(out, Example{Input: in, Target: tgt})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("train: no sample-full examples could be built")
	}
	return out, nil
}

// BuildFullFull converts full-cube samples into full-full examples for the
// CNN-Transformer: input = dense input-variable cube window [T, C, G, G, G];
// target = dense output cube at the final snapshot [1, C', G, G, G].
func BuildFullFull(d *grid.Dataset, cubes []sampling.CubeSample, window int) ([]Example, error) {
	if window <= 0 {
		window = 1
	}
	byCube := map[int][]sampling.CubeSample{}
	for _, cs := range cubes {
		byCube[cs.Cube.ID] = append(byCube[cs.Cube.ID], cs)
	}
	var out []Example
	for _, series := range byCube {
		for start := 0; start+window <= len(series); start++ {
			win := series[start : start+window]
			g := win[0].Cube.Sx
			cIn := len(d.InputVars)
			in := tensor.New(window, cIn, g, g, g)
			for t, w := range win {
				f := d.Snapshots[w.Snapshot]
				flat := w.Cube.Indices(f)
				for v, name := range d.InputVars {
					src := f.Var(name)
					for p, fi := range flat {
						in.Data[(t*cIn+v)*g*g*g+p] = src[fi]
					}
				}
			}
			lastCS := win[window-1]
			f := d.Snapshots[lastCS.Snapshot]
			flat := lastCS.Cube.Indices(f)
			tgt := tensor.New(1, len(d.OutputVars), g, g, g)
			for v, name := range d.OutputVars {
				src := f.Var(name)
				for p, fi := range flat {
					tgt.Data[v*g*g*g+p] = src[fi]
				}
			}
			out = append(out, Example{Input: in, Target: tgt})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("train: no full-full examples could be built")
	}
	return out, nil
}

// BuildSampleSingle converts subsampled snapshots into sample-single
// examples for the LSTM drag surrogate: input = per-snapshot summary
// statistics (mean and std of every input variable over the sampled
// points) across a window [T, 2C]; target = the dataset's global target
// (drag) at the final window snapshot [1].
func BuildSampleSingle(d *grid.Dataset, cubes []sampling.CubeSample, window int) ([]Example, error) {
	if d.GlobalTargets == nil {
		return nil, fmt.Errorf("train: dataset %q has no global targets", d.Label)
	}
	if window <= 0 {
		window = 1
	}
	c := len(d.InputVars)
	// Aggregate all sampled points of each snapshot.
	bySnap := map[int][][]float64{}
	for _, cs := range cubes {
		bySnap[cs.Snapshot] = append(bySnap[cs.Snapshot], cs.Features...)
	}
	nSnap := len(d.Snapshots)
	feats := make([][]float64, nSnap)
	for t := 0; t < nSnap; t++ {
		pts := bySnap[t]
		if len(pts) == 0 {
			return nil, fmt.Errorf("train: snapshot %d has no sampled points", t)
		}
		row := make([]float64, 2*c)
		for v := 0; v < c; v++ {
			col := make([]float64, len(pts))
			for p := range pts {
				col[p] = pts[p][v]
			}
			m := stats.ComputeMoments(col)
			row[2*v] = m.Mean
			row[2*v+1] = mSqrt(m.Variance)
		}
		feats[t] = row
	}
	var out []Example
	for start := 0; start+window <= nSnap; start++ {
		in := tensor.New(window, 2*c)
		for t := 0; t < window; t++ {
			copy(in.Data[t*2*c:(t+1)*2*c], feats[start+t])
		}
		tgt := tensor.FromSlice([]float64{d.GlobalTargets[start+window-1]}, 1)
		out = append(out, Example{Input: in, Target: tgt})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("train: window %d longer than trajectory %d", window, nSnap)
	}
	return out, nil
}

// mSqrt is a non-negative square root (stddev from a variance that may be
// -0 due to rounding).
func mSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
