// Package cfd2d simulates the paper's OF2D case — 2-D incompressible flow
// over a circular cylinder with periodic vortex shedding — using a D2Q9
// lattice-Boltzmann (BGK) solver with half-way bounce-back on the cylinder
// and a momentum-exchange drag evaluation. It replaces the OpenFOAM
// simulation the paper used: the learning problem only needs u, v, p
// snapshots of a Kármán vortex street plus a fluctuating drag signal, which
// the LBM reproduces at small scale.
package cfd2d

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/tensor"
)

// D2Q9 lattice directions and weights.
var (
	ex = [9]int{0, 1, 0, -1, 0, 1, -1, -1, 1}
	ey = [9]int{0, 0, 1, 0, -1, 1, 1, -1, -1}
	wt = [9]float64{4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36}
	// opp[i] is the direction opposite to i (for bounce-back).
	opp = [9]int{0, 3, 4, 1, 2, 7, 8, 5, 6}
)

// Config describes the cylinder-flow setup in lattice units.
type Config struct {
	Nx, Ny   int     // lattice size, default 300×120
	U0       float64 // inflow velocity (lattice), default 0.1
	Reynolds float64 // Re = U0·D/ν, default 150
	D        float64 // cylinder diameter in cells, default Ny/6
	Cx, Cy   float64 // cylinder center, default (Ny/2, Ny/2)
}

func (c *Config) defaults() {
	if c.Nx == 0 {
		c.Nx = 300
	}
	if c.Ny == 0 {
		c.Ny = 120
	}
	if c.U0 == 0 {
		c.U0 = 0.1
	}
	if c.Reynolds == 0 {
		c.Reynolds = 150
	}
	if c.D == 0 {
		c.D = float64(c.Ny) / 6
	}
	if c.Cx == 0 {
		c.Cx = float64(c.Ny) / 2
	}
	if c.Cy == 0 {
		c.Cy = float64(c.Ny) / 2
	}
}

// Solver is a D2Q9 BGK lattice-Boltzmann solver.
type Solver struct {
	Cfg   Config
	Nx    int
	Ny    int
	Tau   float64
	f     []float64 // 9 × Nx × Ny, direction-major
	ftmp  []float64
	Solid []bool
	Steps int
	// Per-(direction, row) momentum-exchange partials; combined in index
	// order after streaming so the force sum is deterministic regardless
	// of how rows are scheduled across the worker pool.
	fxRow, fyRow []float64
	// Fx, Fy hold the instantaneous momentum-exchange force on the
	// cylinder from the most recent Step.
	Fx, Fy float64
}

// New builds the solver, initializing the flow to uniform inflow
// equilibrium.
func New(cfg Config) *Solver {
	cfg.defaults()
	nu := cfg.U0 * cfg.D / cfg.Reynolds
	tau := 3*nu + 0.5
	if tau <= 0.5 {
		panic(fmt.Sprintf("cfd2d: relaxation time %v <= 0.5 (unstable); increase D or lower Re", tau))
	}
	s := &Solver{
		Cfg: cfg, Nx: cfg.Nx, Ny: cfg.Ny, Tau: tau,
		f:     make([]float64, 9*cfg.Nx*cfg.Ny),
		ftmp:  make([]float64, 9*cfg.Nx*cfg.Ny),
		Solid: make([]bool, cfg.Nx*cfg.Ny),
		fxRow: make([]float64, 9*cfg.Ny),
		fyRow: make([]float64, 9*cfg.Ny),
	}
	r2 := (cfg.D / 2) * (cfg.D / 2)
	for y := 0; y < cfg.Ny; y++ {
		for x := 0; x < cfg.Nx; x++ {
			dx := float64(x) - cfg.Cx
			dy := float64(y) - cfg.Cy
			if dx*dx+dy*dy <= r2 {
				s.Solid[y*cfg.Nx+x] = true
			}
		}
	}
	// Initialize to inflow equilibrium with a deterministic transverse
	// perturbation. The phase offset matters: a perturbation that is
	// antisymmetric about the cylinder axis preserves the wake's mirror
	// symmetry and shedding never starts; the 0.7 rad shift breaks it.
	for y := 0; y < cfg.Ny; y++ {
		for x := 0; x < cfg.Nx; x++ {
			vy := 0.1 * cfg.U0 * math.Sin(2*math.Pi*float64(y)/float64(cfg.Ny)+0.7)
			s.setEquilibrium(x, y, 1.0, cfg.U0, vy)
		}
	}
	return s
}

func (s *Solver) idx(i, x, y int) int { return (i*s.Ny+y)*s.Nx + x }

func equilibrium(i int, rho, ux, uy float64) float64 {
	eu := float64(ex[i])*ux + float64(ey[i])*uy
	u2 := ux*ux + uy*uy
	return wt[i] * rho * (1 + 3*eu + 4.5*eu*eu - 1.5*u2)
}

func (s *Solver) setEquilibrium(x, y int, rho, ux, uy float64) {
	for i := 0; i < 9; i++ {
		s.f[s.idx(i, x, y)] = equilibrium(i, rho, ux, uy)
	}
}

// Macro returns density and velocity at (x, y).
func (s *Solver) Macro(x, y int) (rho, ux, uy float64) {
	for i := 0; i < 9; i++ {
		fi := s.f[s.idx(i, x, y)]
		rho += fi
		ux += fi * float64(ex[i])
		uy += fi * float64(ey[i])
	}
	if rho > 0 {
		ux /= rho
		uy /= rho
	}
	return
}

// Step advances one LBM collide-stream cycle and updates the drag force,
// decomposed over the kernel pool: collision is parallel over rows (each
// cell updates only itself) and streaming is parallel over (direction, row)
// units, whose destination writes are disjoint — every ftmp slot has a
// unique source because bounce-back targets are fluid cells whose mirrored
// source is solid and therefore skipped. Momentum exchange accumulates into
// per-(direction, row) partials combined in index order, so Step is
// bit-identical to the serial reference stepRef.
func (s *Solver) Step() { s.step(tensor.DefaultPool()) }

// stepRef is the serial reference implementation: the same decomposition
// executed inline. The parity test asserts Step == stepRef bit for bit.
func (s *Solver) stepRef() { s.step(nil) }

func (s *Solver) step(p *tensor.Pool) {
	nx, ny := s.Nx, s.Ny
	invTau := 1 / s.Tau

	// Collide.
	p.ParallelFor(ny, 4, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < nx; x++ {
				if s.Solid[y*nx+x] {
					continue
				}
				var rho, ux, uy float64
				base := y*nx + x
				for i := 0; i < 9; i++ {
					fi := s.f[i*nx*ny+base]
					rho += fi
					ux += fi * float64(ex[i])
					uy += fi * float64(ey[i])
				}
				ux /= rho
				uy /= rho
				for i := 0; i < 9; i++ {
					pi := i*nx*ny + base
					s.f[pi] += (equilibrium(i, rho, ux, uy) - s.f[pi]) * invTau
				}
			}
		}
	})

	// Stream with half-way bounce-back; accumulate momentum exchange into
	// per-(direction, row) partials.
	p.ParallelFor(9*ny, 8, func(u0, u1 int) {
		for u := u0; u < u1; u++ {
			i, y := u/ny, u%ny
			plane := i * nx * ny
			oplane := opp[i] * nx * ny
			yd := y + ey[i]
			// Periodic in y.
			if yd < 0 {
				yd += ny
			} else if yd >= ny {
				yd -= ny
			}
			var fx, fy float64
			for x := 0; x < nx; x++ {
				src := plane + y*nx + x
				if s.Solid[y*nx+x] {
					continue
				}
				xd := x + ex[i]
				if xd < 0 || xd >= nx {
					// Populations leaving through x=0 / x=nx-1 are NOT
					// copied into ftmp: both boundary columns are fully
					// regenerated below (inflow equilibrium, outflow
					// zero-gradient copy) before anything reads them, and
					// skipping the write keeps every ftmp slot single-writer
					// — a boundary slot is otherwise also the streaming
					// destination of a diagonal direction from the adjacent
					// row, which would race across (direction, row) units.
					continue
				}
				if s.Solid[yd*nx+xd] {
					// Bounce back into the opposite direction at the same
					// node; momentum 2·e_i·f_i is transferred to the body.
					s.ftmp[oplane+y*nx+x] = s.f[src]
					fx += 2 * float64(ex[i]) * s.f[src]
					fy += 2 * float64(ey[i]) * s.f[src]
					continue
				}
				s.ftmp[plane+yd*nx+xd] = s.f[src]
			}
			s.fxRow[u] = fx
			s.fyRow[u] = fy
		}
	})
	var fx, fy float64
	for u := 0; u < 9*ny; u++ {
		fx += s.fxRow[u]
		fy += s.fyRow[u]
	}
	s.f, s.ftmp = s.ftmp, s.f
	s.Fx, s.Fy = fx, fy

	// Inflow (x=0): impose equilibrium at (U0, 0).
	for y := 0; y < ny; y++ {
		if !s.Solid[y*nx] {
			s.setEquilibrium(0, y, 1.0, s.Cfg.U0, 0)
		}
	}
	// Outflow (x=nx-1): zero-gradient copy from the neighbor column.
	for y := 0; y < ny; y++ {
		if s.Solid[y*nx+nx-1] {
			continue
		}
		for i := 0; i < 9; i++ {
			s.f[s.idx(i, nx-1, y)] = s.f[s.idx(i, nx-2, y)]
		}
	}
	s.Steps++
}

// DragCoefficient returns Cd = 2Fx/(ρ U0² D) for the latest step.
func (s *Solver) DragCoefficient() float64 {
	return 2 * s.Fx / (1.0 * s.Cfg.U0 * s.Cfg.U0 * s.Cfg.D)
}

// LiftCoefficient returns Cl = 2Fy/(ρ U0² D) for the latest step.
func (s *Solver) LiftCoefficient() float64 {
	return 2 * s.Fy / (1.0 * s.Cfg.U0 * s.Cfg.U0 * s.Cfg.D)
}

// Snapshot exports u, v, p (lattice pressure c_s²ρ) and vorticity as a
// grid.Field. Solid cells carry zero velocity.
func (s *Solver) Snapshot() *grid.Field {
	f := grid.NewField(s.Nx, s.Ny, 1)
	f.Time = float64(s.Steps)
	u := f.AddVar("u", nil)
	v := f.AddVar("v", nil)
	p := f.AddVar("p", nil)
	for y := 0; y < s.Ny; y++ {
		for x := 0; x < s.Nx; x++ {
			id := f.Idx(x, y, 0)
			if s.Solid[y*s.Nx+x] {
				p[id] = 1.0 / 3
				continue
			}
			rho, ux, uy := s.Macro(x, y)
			u[id] = ux
			v[id] = uy
			p[id] = rho / 3
		}
	}
	f.ComputeVorticityZ()
	return f
}

// OF2DDataset runs the cylinder simulation, discards warmup steps, then
// records nSnapshots every stepsPer steps together with the per-snapshot
// drag coefficient (the sample-single regression target of Fig. 6).
func OF2DDataset(cfg Config, warmup, nSnapshots, stepsPer int) *grid.Dataset {
	s := New(cfg)
	for i := 0; i < warmup; i++ {
		s.Step()
	}
	snaps := make([]*grid.Field, 0, nSnapshots)
	drags := make([]float64, 0, nSnapshots)
	for t := 0; t < nSnapshots; t++ {
		for i := 0; i < stepsPer; i++ {
			s.Step()
		}
		snaps = append(snaps, s.Snapshot())
		drags = append(drags, s.DragCoefficient())
	}
	return &grid.Dataset{
		Label:         "OF2D",
		Description:   "2D laminar flow over cylinder (lattice-Boltzmann analogue of the OpenFOAM case)",
		Snapshots:     snaps,
		InputVars:     []string{"u", "v"},
		OutputVars:    []string{"p"},
		ClusterVar:    "wz",
		GlobalTargets: drags,
	}
}
