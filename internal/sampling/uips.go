package sampling

import (
	"math/rand"
	"sort"

	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// UIPS implements uniform-in-phase-space selection (Hassanaly et al. 2023)
// in the binned variant the paper adopted: the joint feature PDF is
// estimated with a fixed-width histogram over the normalized phase space,
// and points are accepted with probability ∝ 1/p̂(x) (clipped), so that the
// accepted set covers phase space approximately uniformly. The acceptance
// scale is found by bisection to hit the requested count in expectation,
// then the draw is finalized by weighted sampling without replacement.
//
// The paper's Fig. 4 behaviour — good uniformity in 2-D, clumping on 3-D
// anisotropic data — emerges from the binning: in higher dimension with
// strongly correlated features most cells are empty or singletons, so the
// inverse-PDF weights saturate at the clip value.
type UIPS struct {
	Bins    int     // histogram bins per dimension, default 20
	ClipMax float64 // max weight relative to the mean, default 1e4
	Meter   *energy.Meter
}

// Name implements PointSampler.
func (UIPS) Name() string { return "uips" }

// SelectPoints implements PointSampler.
func (u UIPS) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	validateRequest(d, n)
	total := d.N()
	if n >= total {
		return allIndices(total)
	}
	bins := u.Bins
	if bins <= 0 {
		bins = 20
	}
	clip := u.ClipMax
	if clip <= 0 {
		clip = 1e4
	}
	pts := normalizedCopy(d.Features)
	lo := make([]float64, len(pts[0]))
	hi := make([]float64, len(pts[0]))
	for j := range hi {
		hi[j] = 1 + 1e-9
	}
	h := stats.NewNDHistogram(lo, hi, bins)
	for _, p := range pts {
		h.Add(p)
	}
	// Inverse-PDF weights, clipped relative to the mean weight. The
	// histogram is frozen after the build pass, so per-point lookups fan
	// out over the kernel pool; the mean is summed in point order so the
	// selection stays deterministic.
	w := make([]float64, total)
	tensor.DefaultPool().ParallelFor(total, 2048, func(p0, p1 int) {
		for i := p0; i < p1; i++ {
			prob := h.Probability(pts[i])
			if prob <= 0 {
				prob = 1e-12
			}
			w[i] = 1 / prob
		}
	})
	sum := 0.0
	for _, wi := range w {
		sum += wi
	}
	mean := sum / float64(total)
	for i := range w {
		if w[i] > clip*mean {
			w[i] = clip * mean
		}
	}
	out := weightedSampleWithoutReplacement(w, n, rng)
	sort.Ints(out)
	chargeSampling(u.Meter, total, dims(d), 4)
	return out
}
