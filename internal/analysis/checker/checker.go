// Package checker is the sicklevet driver. It runs a set of analyzers in
// two modes:
//
//   - standalone multichecker: `sicklevet [flags] [packages]` loads the
//     patterns via internal/analysis/load and analyzes every matched
//     package, printing file:line:col diagnostics and exiting non-zero
//     when any survive ignore filtering;
//
//   - go vet tool: `go vet -vettool=$(which sicklevet) ./...` invokes the
//     binary once per package with a JSON config file argument (the
//     unitchecker protocol); the driver type-checks from the supplied
//     export data and reports in the same format.
//
// Both modes honor //sicklevet:ignore directives and report malformed
// ones (see internal/analysis/ignore.go).
package checker

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Main is the entry point shared by cmd/sicklevet. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag definitions as JSON and exit (go vet protocol)")
	listFlag := fs.Bool("list", false, "list analyzers and exit")
	disableFlag := fs.String("disable", "", "comma-separated analyzer names to skip")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [package patterns]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])

	switch {
	case *versionFlag != "":
		// cmd/go hashes this line into its action cache key.
		fmt.Printf("%s version sickle-1 (%s/%s)\n", progname, runtime.GOOS, runtime.GOARCH)
		os.Exit(0)
	case *flagsFlag:
		printFlagDefs()
		os.Exit(0)
	case *listFlag:
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		os.Exit(0)
	}

	analyzers = enabled(analyzers, *disableFlag)
	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers))
}

func enabled(all []*analysis.Analyzer, disable string) []*analysis.Analyzer {
	if disable == "" {
		return all
	}
	skip := map[string]bool{}
	for _, name := range strings.Split(disable, ",") {
		skip[strings.TrimSpace(name)] = true
	}
	var kept []*analysis.Analyzer
	for _, a := range all {
		if !skip[a.Name] {
			kept = append(kept, a)
		}
	}
	return kept
}

func printFlagDefs() {
	// The go vet driver asks for the tool's flags as a JSON array so it
	// can validate pass-through flags.
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{{Name: "disable", Bool: false, Usage: "comma-separated analyzer names to skip"}}
	data, _ := json.Marshal(defs)
	fmt.Println(string(data))
}

// diag pairs a finding with its analyzer for printing.
type diag struct {
	analyzer string
	pos      token.Position
	msg      string
}

// runPackage executes every analyzer over one type-checked package and
// returns the surviving (non-suppressed) findings plus malformed-directive
// complaints.
func runPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]diag, error) {
	nonTest := files[:0:0]
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			nonTest = append(nonTest, f)
		}
	}
	ignores := analysis.ParseIgnores(fset, nonTest)
	var out []diag
	for _, m := range ignores.Malformed {
		out = append(out, diag{analyzer: "sicklevet", pos: fset.Position(m.Pos), msg: m.Message})
	}
	for _, a := range analyzers {
		var found []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     nonTest,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { found = append(found, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return out, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
		for _, d := range ignores.Filter(fset, a.Name, found) {
			out = append(out, diag{analyzer: a.Name, pos: fset.Position(d.Pos), msg: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// --- standalone mode ---

func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := load.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.ImportPath, pkg.Err)
			exit = 2
			continue
		}
		found, err := runPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.ImportPath, err)
			exit = 2
		}
		for _, d := range found {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.pos, d.msg, d.analyzer)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// --- go vet unitchecker mode ---

// vetConfig mirrors the JSON config cmd/go writes for -vettool tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing vet config: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go requires the "facts" output file to exist even though
	// sicklevet exchanges no facts between packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	exports := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", exports),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found, err := runPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range found {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.pos, d.msg, d.analyzer)
	}
	if len(found) > 0 {
		return 2
	}
	return 0
}
