package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/pkg/api"
	"repro/pkg/client"
)

// testSpec is the same tiny LSTM the serve tests use: input [T=3, C=4] →
// output [2].
var testSpec = train.ArchSpec{Arch: "lstm", InDim: 4, Hidden: 8, OutDim: 2}

var testShape = []int{3, 4}

// newCheckpoint builds a reference model and saves its checkpoint, so
// every replica serves identical weights and outputs are bit-checkable.
func newCheckpoint(t *testing.T) (train.Model, string) {
	t.Helper()
	ref, err := testSpec.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "m.sknn")
	if err := nn.SaveCheckpoint(ckpt, ref); err != nil {
		t.Fatal(err)
	}
	return ref, ckpt
}

// startReplica boots an in-process serve backend with model "m" loaded
// from ckpt. addr "" picks an ephemeral port.
func startReplica(t *testing.T, addr, ckpt string) *serve.InProc {
	t.Helper()
	p, err := serve.StartInProc(serve.Config{Addr: addr, MaxBatch: 4, Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Server.Registry().Register("m", testSpec, ckpt, testShape, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

func randomItem(rng *rand.Rand) api.InferItem {
	data := make([]float64, 3*4)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return api.InferItem{Shape: testShape, Data: data}
}

// expect runs the reference model unbatched (batch dimension 1).
func expect(ref train.Model, item api.InferItem) []float64 {
	in := tensor.FromSlice(append([]float64(nil), item.Data...), append([]int{1}, item.Shape...)...)
	out := ref.Forward(in)
	return append([]float64(nil), out.Data...)
}

func sameData(got api.InferItem, want []float64) bool {
	if len(got.Data) != len(want) {
		return false
	}
	for i := range want {
		if got.Data[i] != want[i] {
			return false
		}
	}
	return true
}

// newTestRouter builds (but does not Start) a router over the given
// backend URLs with fast probe/ejection settings.
func newTestRouter(t *testing.T, urls []string) *Router {
	t.Helper()
	rt, err := NewRouter(Config{
		URLs:        urls,
		ProbeEvery:  25 * time.Millisecond,
		FailAfter:   2,
		MaxFailover: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardFailoverEndToEnd is the acceptance test for the scaling tier:
// three in-process replicas behind the router, the unchanged pkg/client
// SDK on top, a replica killed mid-load. The client must see zero errors
// other than typed overloaded (which its retry layer already absorbs), the
// dead replica must be ejected, and after respawning at the same address
// it must be re-admitted with the ring re-converging to the original
// assignment.
func TestShardFailoverEndToEnd(t *testing.T) {
	ref, ckpt := newCheckpoint(t)
	ctx := context.Background()

	replicas := make([]*serve.InProc, 3)
	urls := make([]string, 3)
	for i := range replicas {
		replicas[i] = startReplica(t, "", ckpt)
		urls[i] = replicas[i].URL
	}
	rt := newTestRouter(t, urls)
	rt.Start()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		rt.Shutdown(ctx)
		for _, p := range replicas {
			if p != nil {
				p.Close(ctx)
			}
		}
	}()

	// The SDK works unchanged against the router.
	c := client.New(ts.URL, client.WithRetry(5, 10*time.Millisecond))
	if v, err := c.Negotiate(ctx); err != nil || v != api.V2 {
		t.Fatalf("Negotiate through router = %q, %v; want v2", v, err)
	}
	models, err := c.Models(ctx)
	if err != nil || len(models) != 1 || models[0].Name != "m" {
		t.Fatalf("Models through router = %+v, %v", models, err)
	}

	rng := rand.New(rand.NewSource(17))
	item := randomItem(rng)
	want := expect(ref, item)
	out, err := c.Infer(ctx, &api.InferRequest{Model: "m", Items: []api.InferItem{item}})
	if err != nil || !sameData(out.Outputs[0], want) {
		t.Fatalf("routed infer = %+v, %v; want bit-identical reference output", out, err)
	}

	owner, ok := rt.ReplicaSet().Owner("m")
	if !ok {
		t.Fatal("no owner for model m")
	}
	var ownerIdx int
	for i, p := range replicas {
		if p.URL == owner.URL {
			ownerIdx = i
		}
	}

	// Background load: every response must be bit-identical; any error
	// that is not typed overloaded is a client-visible failure.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var badErrs []error
	okBefore, okAfter := 0, 0
	killed := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// Models cache forward-pass state in struct fields, so each
			// worker computes expectations on its own replica of the
			// reference (same seed → identical weights).
			wref, err := testSpec.Build(rand.New(rand.NewSource(7)))
			if err != nil {
				t.Error(err)
				return
			}
			wrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := randomItem(wrng)
				w := expect(wref, it)
				resp, err := c.Infer(ctx, &api.InferRequest{Model: "m", Items: []api.InferItem{it}})
				mu.Lock()
				switch {
				case err != nil:
					var ae *api.Error
					if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
						badErrs = append(badErrs, err)
					}
				case !sameData(resp.Outputs[0], w):
					badErrs = append(badErrs, errors.New("response differs from reference"))
				default:
					select {
					case <-killed:
						okAfter++
					default:
						okBefore++
					}
				}
				mu.Unlock()
			}
		}(int64(100 + w))
	}

	// Let the load warm up, then kill the owning replica abruptly.
	waitFor(t, "load warm-up", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return okBefore >= 20
	})
	deadAddr := replicas[ownerIdx].Addr()
	replicas[ownerIdx].Kill()
	close(killed)

	// The prober must eject the dead replica...
	waitFor(t, "ejection of the dead replica", 5*time.Second, func() bool {
		r, _ := rt.ReplicaSet().Get(owner.ID)
		return !r.Up()
	})
	// ...while the load keeps succeeding through failover the whole time.
	waitFor(t, "post-kill successes", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return okAfter >= 20
	})

	// Respawn at the same address with the same model and wait for
	// re-admission.
	replicas[ownerIdx] = startReplica(t, deadAddr, ckpt)
	waitFor(t, "re-admission of the respawned replica", 5*time.Second, func() bool {
		r, _ := rt.ReplicaSet().Get(owner.ID)
		return r.Up()
	})

	// Ring re-convergence: identical membership hashes identically, so the
	// respawned replica owns "m" again and new requests route to it.
	waitFor(t, "ring re-convergence to the original owner", 5*time.Second, func() bool {
		cur, ok := rt.ReplicaSet().Owner("m")
		return ok && cur.ID == owner.ID
	})
	routedBefore := rt.Metrics().RoutedTotal(owner.ID)
	waitFor(t, "traffic returning to the re-admitted owner", 5*time.Second, func() bool {
		return rt.Metrics().RoutedTotal(owner.ID) > routedBefore
	})

	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(badErrs) > 0 {
		t.Fatalf("%d non-overloaded client-visible errors during failover, first: %v",
			len(badErrs), badErrs[0])
	}
	if okBefore == 0 || okAfter == 0 {
		t.Fatalf("load phases empty: %d before kill, %d after", okBefore, okAfter)
	}
	if rt.Metrics().FailoversTotal() == 0 {
		t.Fatal("failover counter never moved despite a killed owner")
	}
}

// TestShardJobStickyRouting: job IDs carry the accepting replica, so
// lookups resolve even when raw downstream IDs collide across replicas.
func TestShardJobStickyRouting(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()

	a := startReplica(t, "", ckpt)
	b := startReplica(t, "", ckpt)
	defer a.Close(ctx)
	defer b.Close(ctx)
	rt := newTestRouter(t, []string{a.URL, b.URL})
	rt.Start()
	defer rt.Shutdown(ctx)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	// One job through the router...
	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1}
	job, err := c.SubmitSubsampleJob(ctx, &sub)
	if err != nil {
		t.Fatalf("submit through router: %v", err)
	}
	if !strings.Contains(job.ID, jobIDSep) {
		t.Fatalf("router job ID %q carries no replica suffix", job.ID)
	}
	// ...and one submitted directly to each backend, so both backends hold
	// a raw "job-1".
	dcA := client.New(a.URL)
	dcB := client.New(b.URL)
	if _, err := dcA.SubmitSubsampleJob(ctx, &sub); err != nil {
		t.Fatal(err)
	}
	if _, err := dcB.SubmitSubsampleJob(ctx, &sub); err != nil {
		t.Fatal(err)
	}

	// The scatter-gathered list disambiguates every job by suffix.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("list through router: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("router lists %d jobs, want 3", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate client-facing job ID %q in %+v", j.ID, jobs)
		}
		seen[j.ID] = true
		raw, rid := splitJobID(j.ID)
		if raw == "" || rid == "" {
			t.Fatalf("job ID %q not in raw@replica form", j.ID)
		}
		// Every listed ID resolves through the router.
		got, err := c.Job(ctx, j.ID)
		if err != nil {
			t.Fatalf("Job(%q): %v", j.ID, err)
		}
		if got.ID != j.ID {
			t.Fatalf("Job(%q) answered ID %q", j.ID, got.ID)
		}
	}

	// The submitted job completes and its result is reachable via the
	// sticky mapping.
	done, err := c.WaitJob(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob through router: %v", err)
	}
	if done.State != api.JobSucceeded {
		t.Fatalf("job finished %s (%v)", done.State, done.Error)
	}
	res, err := c.JobResult(ctx, job.ID)
	if err != nil || res.Subsample == nil {
		t.Fatalf("JobResult through router = %+v, %v", res, err)
	}

	// Unknown IDs answer the typed job_not_found either way.
	for _, id := range []string{"job-99@r0", "job-99", "job-1@r9"} {
		_, err := c.Job(ctx, id)
		var ae *api.Error
		if !errors.As(err, &ae) || ae.Code != api.CodeJobNotFound {
			t.Fatalf("Job(%q) = %v, want job_not_found", id, err)
		}
	}
}

// TestShardScatterGatherAndHealth: model listings merge across replicas,
// /api/version intersects, and /healthz aggregates with per-replica
// detail.
func TestShardScatterGatherAndHealth(t *testing.T) {
	_, ckpt := newCheckpoint(t)
	ctx := context.Background()

	a := startReplica(t, "", ckpt)
	b := startReplica(t, "", ckpt)
	defer a.Close(ctx)
	defer b.Close(ctx)
	// Distinct extra models on each backend.
	if _, err := a.Server.Registry().Register("only-a", testSpec, ckpt, testShape, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Server.Registry().Register("only-b", testSpec, ckpt, testShape, 1); err != nil {
		t.Fatal(err)
	}

	rt := newTestRouter(t, []string{a.URL, b.URL})
	rt.ReplicaSet().ProbeAll() // deterministic: one probe round, no background prober
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatalf("Models: %v", err)
	}
	var names []string
	for _, m := range models {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "m,only-a,only-b" {
		t.Fatalf("merged model names = %v", names)
	}

	info, err := c.ServerVersions(ctx)
	if err != nil || info.Latest != api.V2 {
		t.Fatalf("ServerVersions through router = %+v, %v", info, err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || len(h.Replicas) != 2 {
		t.Fatalf("router health = %+v", h)
	}
	for _, rh := range h.Replicas {
		if !rh.Up {
			t.Fatalf("replica %s reported down: %+v", rh.ID, h.Replicas)
		}
	}
	if len(h.Models) == 0 || h.Models[0] != "m@v1" {
		t.Fatalf("aggregated models = %v", h.Models)
	}

	// The metrics surface carries the per-replica gauges.
	raw, err := c.MetricsText(ctx)
	if err != nil || !strings.Contains(raw, `sickle_shard_replica_up{replica="r0"} 1`) {
		t.Fatalf("metrics missing replica_up gauge (err %v):\n%s", err, raw)
	}
}

// TestShardSubmitDoesNotFailOver pins the at-most-once submission policy:
// with the owning replica dead (pre-ejection), an infer for a key it owns
// fails over to the survivor, but a job submission for the same key
// surfaces the typed unavailable instead of retrying elsewhere — the dead
// backend might have admitted the job before the connection broke.
func TestShardSubmitDoesNotFailOver(t *testing.T) {
	ref, ckpt := newCheckpoint(t)
	ctx := context.Background()

	a := startReplica(t, "", ckpt)
	b := startReplica(t, "", ckpt)
	defer b.Close(ctx)
	// No prober (Start never called): both replicas stay optimistically on
	// the ring, so the router's first contact with the dead one is the
	// request itself.
	rt := newTestRouter(t, []string{a.URL, b.URL})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetry(0, 0))

	// Find keys owned by replica a (the one we kill): "m" may hash either
	// way, so name models until one lands on a.
	deadRep, _ := rt.ReplicaSet().Get("r0")
	key := ""
	for i := 0; i < 100 && key == ""; i++ {
		k := fmt.Sprintf("victim-%d", i)
		if owner, _ := rt.ReplicaSet().Owner(k); owner == deadRep {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no key hashed to r0 in 100 tries")
	}
	if _, err := a.Server.Registry().Register(key, testSpec, ckpt, testShape, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Server.Registry().Register(key, testSpec, ckpt, testShape, 1); err != nil {
		t.Fatal(err)
	}
	a.Kill()

	// Idempotent infer: fails over to b and still answers bit-identically.
	rng := rand.New(rand.NewSource(29))
	it := randomItem(rng)
	out, err := c.Infer(ctx, &api.InferRequest{Model: key, Items: []api.InferItem{it}})
	if err != nil || !sameData(out.Outputs[0], expect(ref, it)) {
		t.Fatalf("infer did not fail over to the survivor: %+v, %v", out, err)
	}
	if rt.Metrics().FailoversTotal() == 0 {
		t.Fatal("failover counter never moved")
	}

	// Non-idempotent submit keyed to the dead owner: typed unavailable, and
	// the survivor must have admitted nothing.
	_, err = c.SubmitSubsampleJob(ctx, &api.SubsampleRequest{
		Dataset: key, Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnavailable {
		t.Fatalf("submit to dead owner = %v, want typed unavailable", err)
	}
	if jobs := b.Server.Jobs().List(); len(jobs) != 0 {
		t.Fatalf("submission leaked onto the survivor: %+v", jobs)
	}
	// Once the failure streak ejects the dead owner, submissions hash to
	// the survivor and succeed.
	job, err := c.SubmitSubsampleJob(ctx, &api.SubsampleRequest{
		Dataset: key, Cube: 8, NumHypercubes: 2, NumSamples: 16, Seed: 1})
	if err != nil {
		t.Fatalf("submit after ejection: %v", err)
	}
	if _, rid := splitJobID(job.ID); rid != "r1" {
		t.Fatalf("post-ejection job %q not owned by the survivor", job.ID)
	}
}

// TestShardConsistentRouting: every request for one model lands on the
// same replica (its ring owner), keeping that backend's caches hot.
func TestShardConsistentRouting(t *testing.T) {
	ref, ckpt := newCheckpoint(t)
	ctx := context.Background()

	a := startReplica(t, "", ckpt)
	b := startReplica(t, "", ckpt)
	defer a.Close(ctx)
	defer b.Close(ctx)
	rt := newTestRouter(t, []string{a.URL, b.URL})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		it := randomItem(rng)
		out, err := c.Infer(ctx, &api.InferRequest{Model: "m", Items: []api.InferItem{it}})
		if err != nil || !sameData(out.Outputs[0], expect(ref, it)) {
			t.Fatalf("infer %d through router failed: %v", i, err)
		}
	}
	owner, _ := rt.ReplicaSet().Owner("m")
	if got := rt.Metrics().RoutedTotal(owner.ID); got != 10 {
		t.Fatalf("owner %s served %d/10 requests; routing is not consistent", owner.ID, got)
	}
	for _, r := range rt.ReplicaSet().Replicas() {
		if r.ID != owner.ID && rt.Metrics().RoutedTotal(r.ID) != 0 {
			t.Fatalf("non-owner %s served traffic for a single hot model", r.ID)
		}
	}
}
