package repro

// Top-level benchmarks: one per table/figure of the paper's evaluation.
// Each regenerates the corresponding experiment at Small scale and reports
// the headline numbers through b.ReportMetric, so `go test -bench=.` prints
// the same quantities the paper's figures plot. EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"math/rand"
	"testing"

	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/tensor"
	"repro/internal/train"
)

func BenchmarkTable1_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Table1(sickle.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable2_Architectures(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mt := train.NewMLPTransformer(rng, 4, 16, 2, 1, 8)
	ct := train.NewCNNTransformer(rng, 4, 16, 2, 1, 8)
	ls := train.NewLSTMModel(rng, 4, 16, 1)
	xPts := tensor.Randn(rng, 1, 2, 2, 64, 4).Reshape(2, 2, 64, 4)
	xCube := tensor.Randn(rng, 1, 2, 2, 4, 8, 8, 8).Reshape(2, 2, 4, 8, 8, 8)
	xSeq := tensor.Randn(rng, 1, 2, 5, 4).Reshape(2, 5, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Forward(xPts)
		ct.Forward(xCube)
		ls.Forward(xSeq)
	}
}

func BenchmarkFig3_SamplingOF2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := sickle.Fig3(sickle.Small, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Method == "maxent" {
				b.ReportMetric(r.TailCover, "maxent-tailcover")
			}
		}
	}
}

func BenchmarkFig4_UIPSClumping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sickle.Fig4(sickle.Small)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			switch r.Dataset {
			case "TC2D":
				b.ReportMetric(r.Coverage, "tc2d-coverage")
			case "SST-P1F4":
				b.ReportMetric(r.Coverage, "sst-coverage")
			}
		}
	}
}

func BenchmarkFig5_PDFComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Fig5(sickle.Small)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "SST-P1F4" && r.Method == "maxent" {
				b.ReportMetric(r.TailCover, "sst-maxent-tailcover")
			}
		}
	}
}

func BenchmarkFig6_DragSurrogate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Fig6(b.Context(), sickle.Small, sickle.Fig6Config{
			SampleSizes: []int{540}, Replicates: 2, Epochs: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "maxent" {
				b.ReportMetric(r.MeanLoss, "maxent-loss")
			} else {
				b.ReportMetric(r.MeanLoss, "random-loss")
			}
		}
	}
}

func BenchmarkFig7_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Fig7(b.Context(), sickle.Small, 512, sickle.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sickle.KneeRanks(rows, "SST-P1F4", 0.5)), "knee-p1f4")
		b.ReportMetric(float64(sickle.KneeRanks(rows, "SST-P1F100", 0.5)), "knee-p1f100")
	}
}

func BenchmarkFig8_LossVsEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Fig8(b.Context(), sickle.Small, sickle.Fig8Config{
			Datasets: []string{"SST-P1F4"}, Epochs: 3, CubeEdge: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		var fullE, maxentE float64
		for _, r := range rows {
			switch r.Case {
			case "Hrandom-Xfull":
				fullE = r.Report.TrainJoules
			case "Hmaxent-Xmaxent":
				maxentE = r.Report.TrainJoules
			}
		}
		if maxentE > 0 {
			b.ReportMetric(fullE/maxentE, "full/maxent-energy")
		}
	}
}

func BenchmarkFig9_FoundationModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Fig9(b.Context(), sickle.Small, sickle.Fig9Config{Epochs: 2, CubeEdge: 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "random" {
				b.ReportMetric(r.Report.EvalLoss, "random-valloss")
			}
		}
	}
}

// BenchmarkEq3_SamplingVsTrainingCost decomposes the Eq. 3 cost model:
// the one-time sampling term c(m) against the per-epoch training term
// m·p·e, measured through the energy meter.
func BenchmarkEq3_SamplingVsTrainingCost(b *testing.B) {
	d, err := sickle.BuildDataset("SST-P1F4", sickle.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := sickle.Fig8(b.Context(), sickle.Small, sickle.Fig8Config{
			Datasets: []string{d.Label}, Epochs: 2, CubeEdge: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0].Report
		if r.TrainJoules > 0 {
			b.ReportMetric(r.SampleJoules/r.TrainJoules, "sample/train-energy")
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblation_ClusterCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.AblateClusterCount(sickle.Small, []int{5, 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].TailCover, "k20-tailcover")
	}
}

func BenchmarkAblation_UIPSBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.AblateUIPSBins(sickle.Small, []int{10, 50})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].TailCover, "bins50-tailcover")
	}
}

func BenchmarkAblation_CommLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sickle.AblateCommLatency(b.Context(), sickle.Small, []float64{2e-6, 200e-6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TailCover, "knee-fast-net")
		b.ReportMetric(rows[1].TailCover, "knee-slow-net")
	}
}

func BenchmarkTemporalSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kept, total, err := sickle.TemporalSelectionSummary(sickle.Small, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(kept)/float64(total), "kept-fraction")
	}
}

func BenchmarkSamplers10Percent(b *testing.B) {
	d, err := sickle.BuildDataset("GESTS-2048", sickle.Small)
	if err != nil {
		b.Fatal(err)
	}
	f := d.Snapshots[0]
	data := &sampling.Data{
		Features:   f.Points(d.InputVars, nil),
		ClusterVar: f.Var(d.ClusterVar),
	}
	n := data.N() / 10
	for _, name := range sampling.MethodNames() {
		if name == "full" {
			continue
		}
		s, err := sampling.NewPointSampler(name, 10, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				s.SelectPoints(data, n, rng)
			}
		})
	}
}
