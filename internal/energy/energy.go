// Package energy replaces the paper's Cray Power Management counters with a
// deterministic, counter-based energy model. Consumers charge the meter
// with the floating-point operations they execute and the bytes they move;
// the meter converts both to joules using per-operation energies whose
// ratio encodes the paper's central premise (moving a double across the
// system costs ~100× computing on it — Kogge & Shalf). Because the model is
// driven by measured work rather than wall-clock, results are reproducible
// across machines while preserving the orderings and ratios the paper's
// Figs. 8-9 report.
package energy

import (
	"fmt"
	"sync/atomic"
)

// Per-operation energy constants. Absolute values are representative of a
// recent HPC node (tens of pJ per flop); what matters for the reproduction
// is the movement:compute ratio per 8-byte datum, set to 100:1.
const (
	JoulesPerFlop = 12.5e-12           // 12.5 pJ per double-precision op
	JoulesPerByte = 100 * 12.5e-12 / 8 // 100× per 8-byte datum moved
)

// Meter accumulates work counters. It is safe for concurrent use; the
// parallel samplers and the data-parallel trainer charge it from many
// goroutines.
type Meter struct {
	flops atomic.Int64
	bytes atomic.Int64
}

// NewMeter returns a zeroed meter.
func NewMeter() *Meter { return &Meter{} }

// AddFlops charges n floating-point operations.
func (m *Meter) AddFlops(n int64) {
	if n > 0 {
		m.flops.Add(n)
	}
}

// AddBytes charges n bytes of data movement (reads + writes).
func (m *Meter) AddBytes(n int64) {
	if n > 0 {
		m.bytes.Add(n)
	}
}

// Flops returns the accumulated op count.
func (m *Meter) Flops() int64 { return m.flops.Load() }

// Bytes returns the accumulated byte count.
func (m *Meter) Bytes() int64 { return m.bytes.Load() }

// Joules converts the counters to energy.
func (m *Meter) Joules() float64 {
	return float64(m.flops.Load())*JoulesPerFlop + float64(m.bytes.Load())*JoulesPerByte
}

// Kilojoules is Joules()/1000, the unit the paper reports.
func (m *Meter) Kilojoules() float64 { return m.Joules() / 1000 }

// Add merges another meter's counters into m.
func (m *Meter) Add(o *Meter) {
	m.flops.Add(o.flops.Load())
	m.bytes.Add(o.bytes.Load())
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	m.flops.Store(0)
	m.bytes.Store(0)
}

// String formats the meter like the artifact's "Total Energy Consumed" log
// line.
func (m *Meter) String() string {
	return fmt.Sprintf("Total Energy Consumed: %.6g kJ (%.3g Gflop, %.3g GB moved)",
		m.Kilojoules(), float64(m.Flops())/1e9, float64(m.Bytes())/1e9)
}

// Report is a labelled energy breakdown used by the experiment harness to
// implement Eq. 3: CostToTrain ≈ O(c(m)) + O(m·p·e) — the sampling term
// plus the training term.
type Report struct {
	Label          string
	SampleJoules   float64
	TrainJoules    float64
	EvalLoss       float64
	WallSeconds    float64
	SampleFraction float64
}

// TotalJoules returns sampling + training energy.
func (r Report) TotalJoules() float64 { return r.SampleJoules + r.TrainJoules }

// TotalKJ returns the total in kilojoules.
func (r Report) TotalKJ() float64 { return r.TotalJoules() / 1000 }
