package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/nn"
	"repro/internal/train"
)

// ModelEntry is one servable model version: the arch spec, the checkpoint
// it was loaded from, and a pool of identical replicas. Replicas exist
// because the Table 2 models cache forward-pass state in struct fields, so
// a single instance cannot run two batches concurrently; the pool lets the
// worker pool run up to len(replicas) batches of the same model in
// parallel, each replica used by one worker at a time.
type ModelEntry struct {
	Name       string         `json:"name"`
	Version    int            `json:"version"`
	Spec       train.ArchSpec `json:"spec"`
	Checkpoint string         `json:"checkpoint,omitempty"`
	InputShape []int          `json:"inputShape,omitempty"` // per-example shape, no batch dim
	Replicas   int            `json:"replicas"`

	pool chan train.Model
}

// maxReplicas bounds the per-model replica pool a single registration may
// request.
const maxReplicas = 64

// validateModelName restricts registry names to a safe charset: names flow
// into URLs, metrics labels and log lines, and must never smuggle path
// separators toward anything filesystem-shaped.
func validateModelName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: model name must not be empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: model name longer than 128 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: model name %q contains %q (allowed: letters, digits, '-', '_', '.')", name, r)
		}
	}
	return nil
}

// Registry maps model names to their current entry. Register on an
// existing name hot-swaps: the version increments and new requests use the
// new replicas while in-flight batches finish on the old ones.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*ModelEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*ModelEntry{}}
}

// Register builds `replicas` identical models from spec, loads the
// checkpoint into each, and publishes them under name. With an empty
// checkpoint path the freshly initialized weights are served (useful in
// tests). inputShape documents the per-example tensor shape clients must
// send; it is surfaced through /v1/models for load generators.
func (r *Registry) Register(name string, spec train.ArchSpec, checkpoint string, inputShape []int, replicas int) (*ModelEntry, error) {
	if err := validateModelName(name); err != nil {
		return nil, err
	}
	if replicas < 1 {
		replicas = 1
	}
	// Each replica is a full weight copy (plus a checkpoint read); an
	// unbounded count would let one POST /v1/models OOM the process.
	if replicas > maxReplicas {
		return nil, fmt.Errorf("serve: %d replicas exceeds the limit of %d", replicas, maxReplicas)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pool := make(chan train.Model, replicas)
	for i := 0; i < replicas; i++ {
		// The seed is irrelevant once a checkpoint overwrites the weights,
		// but keeping it fixed makes no-checkpoint replicas identical too.
		m, err := spec.Build(rand.New(rand.NewSource(1)))
		if err != nil {
			return nil, err
		}
		if checkpoint != "" {
			if err := nn.LoadCheckpoint(checkpoint, m); err != nil {
				return nil, fmt.Errorf("serve: loading %s into %q: %w", checkpoint, name, err)
			}
		}
		pool <- m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	version := 1
	if old, ok := r.models[name]; ok {
		version = old.Version + 1
	}
	e := &ModelEntry{
		Name: name, Version: version, Spec: spec, Checkpoint: checkpoint,
		InputShape: append([]int(nil), inputShape...), Replicas: replicas, pool: pool,
	}
	r.models[name] = e
	return e, nil
}

// Lookup returns the current entry for name.
func (r *Registry) Lookup(name string) (*ModelEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	return e, ok
}

// List returns the current entries sorted by name.
func (r *Registry) List() []*ModelEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ModelEntry, 0, len(r.models))
	for _, name := range sortedKeys(r.models) {
		out = append(out, r.models[name])
	}
	return out
}

// Acquire blocks until a replica of the entry is free or ctx is done
// (returning ctx.Err()) — no caller waits on a replica longer than its own
// deadline. Callers must pass the same replica to Release when done; an
// entry that has since been hot-swapped still accepts the release (the old
// pool is garbage once all in-flight batches return their replicas).
func (e *ModelEntry) Acquire(ctx context.Context) (train.Model, error) {
	select {
	case m := <-e.pool:
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a replica to the entry's pool.
func (e *ModelEntry) Release(m train.Model) { e.pool <- m }
