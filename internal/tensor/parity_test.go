package tensor

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// The parity suite asserts the tentpole invariant: every blocked/pooled
// kernel is bit-identical to its serial reference implementation, for sizes
// that exercise partial tiles and multi-chunk ParallelFor decompositions.

var paritySizes = [][3]int{
	{1, 1, 1}, {3, 5, 7}, {17, 33, 65}, {64, 64, 64},
	{100, 70, 130}, {257, 61, 300},
}

func randMat(rng *rand.Rand, m, n int) *Tensor {
	t := New(m, n)
	for i := range t.Data {
		// Mix magnitudes and exact zeros so the av==0 skip path and
		// non-associativity-sensitive sums are both exercised.
		switch rng.Intn(8) {
		case 0:
			t.Data[i] = 0
		case 1:
			t.Data[i] = rng.NormFloat64() * 1e8
		default:
			t.Data[i] = rng.NormFloat64()
		}
	}
	return t
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs: %v (bits %x) vs %v (bits %x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestMatMulBitIdenticalToRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sz := range paritySizes {
		m, k, n := sz[0], sz[1], sz[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		got := MatMul(a, b)
		want := make([]float64, m*n)
		matmulAccumRef(want, a.Data, b.Data, m, k, n)
		bitsEqual(t, "MatMul", got.Data, want)

		// Accum on a non-zero destination.
		dst := randMat(rng, m, n)
		ref := dst.Clone()
		MatMulAccum(dst, a, b)
		matmulAccumRef(ref.Data, a.Data, b.Data, m, k, n)
		bitsEqual(t, "MatMulAccum", dst.Data, ref.Data)
	}
}

func TestMatMulTransBBitIdenticalToRef(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sz := range paritySizes {
		m, k, n := sz[0], sz[1], sz[2]
		a, bT := randMat(rng, m, k), randMat(rng, n, k)
		got := MatMulTransB(a, bT)
		want := make([]float64, m*n)
		matmulTransBAccumRef(want, a.Data, bT.Data, m, k, n)
		bitsEqual(t, "MatMulTransB", got.Data, want)

		dst := randMat(rng, m, n)
		ref := dst.Clone()
		MatMulTransBAccum(dst, a, bT)
		matmulTransBAccumRef(ref.Data, a.Data, bT.Data, m, k, n)
		bitsEqual(t, "MatMulTransBAccum", dst.Data, ref.Data)
	}
}

func TestMatMulTransABitIdenticalToRef(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sz := range paritySizes {
		m, k, n := sz[0], sz[1], sz[2]
		a, b := randMat(rng, m, k), randMat(rng, m, n)
		dst := randMat(rng, k, n)
		ref := dst.Clone()
		MatMulTransAAccum(dst, a, b)
		matmulTransAAccumRef(ref.Data, a.Data, b.Data, m, k, n)
		bitsEqual(t, "MatMulTransAAccum", dst.Data, ref.Data)
	}
}

// TestMatMulTransBMatchesTransposedMatMul checks the transpose-free
// orientation against the materialized-transpose formulation.
func TestMatMulTransBMatchesTransposedMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, w := randMat(rng, 33, 21), randMat(rng, 47, 21)
	got := MatMulTransB(a, w)
	want := MatMul(a, Transpose(w))
	bitsEqual(t, "TransB vs Transpose+MatMul", got.Data, want.Data)
}

func TestMatMulTransAMatchesTransposedMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dy, x := randMat(rng, 29, 13), randMat(rng, 29, 37)
	dst := New(13, 37)
	MatMulTransAAccum(dst, dy, x)
	want := MatMul(Transpose(dy), x)
	bitsEqual(t, "TransA vs Transpose+MatMul", dst.Data, want.Data)
}

func TestElementwiseBitIdenticalSerialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 3*ewiseGrain + 17 // multi-chunk with a partial tail
	a := Randn(rng, 1, n)
	b := Randn(rng, 1, n)

	run := func() []float64 {
		d := a.Clone()
		AddInto(d, d, b)
		SubInto(d, d, b)
		MulInto(d, d, b)
		d.Scale(1.0 / 3.0)
		d.AddScaled(0.5, b)
		d.Apply(math.Tanh)
		return d.Data
	}
	SetParallel(false)
	want := run()
	SetParallel(true)
	got := run()
	bitsEqual(t, "elementwise serial vs parallel", got, want)
}

func TestReductionsBitIdenticalSerialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, ewiseGrain - 1, ewiseGrain, 5*ewiseGrain + 3} {
		a := Randn(rng, 1e6, n)
		b := Randn(rng, 1e-6, n)
		sumP, dotP, normP := a.Sum(), Dot(a, b), a.Norm2()
		SetParallel(false)
		sumS, dotS, normS := a.Sum(), Dot(a, b), a.Norm2()
		SetParallel(true)
		if math.Float64bits(sumP) != math.Float64bits(sumS) {
			t.Fatalf("Sum(n=%d): %v vs %v", n, sumP, sumS)
		}
		if math.Float64bits(dotP) != math.Float64bits(dotS) {
			t.Fatalf("Dot(n=%d): %v vs %v", n, dotP, dotS)
		}
		if math.Float64bits(normP) != math.Float64bits(normS) {
			t.Fatalf("Norm2(n=%d): %v vs %v", n, normP, normS)
		}
		// And against the explicit chunked serial reference.
		d := a.Data
		ref := chunkedSumRef(n, func(lo, hi int) float64 {
			s := 0.0
			for _, v := range d[lo:hi] {
				s += v
			}
			return s
		})
		if math.Float64bits(sumP) != math.Float64bits(ref) {
			t.Fatalf("Sum(n=%d) vs chunkedSumRef: %v vs %v", n, sumP, ref)
		}
	}
}

func TestMatVecBitIdenticalSerialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 301, 53)
	x := Randn(rng, 1, 53)
	got := MatVec(a, x)
	SetParallel(false)
	want := MatVec(a, x)
	SetParallel(true)
	bitsEqual(t, "MatVec", got.Data, want.Data)
}

// TestMain forces a real multi-worker pool for the whole package test run,
// so the parity assertions exercise genuine cross-goroutine scheduling even
// on single-core machines (where DefaultPool would otherwise be nil).
func TestMain(m *testing.M) {
	SetWorkers(4)
	os.Exit(m.Run())
}
