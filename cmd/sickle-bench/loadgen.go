package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// runLoadGen drives a running sickle-serve instance (the acceptance
// harness for the serve subsystem): it replays a fixed input set serially
// to get unbatched reference outputs, then replays it through `clients`
// concurrent connections and verifies every response is bit-identical to
// the reference while micro-batching engages (mean batch size > 1). It
// also issues a repeated /v1/subsample request to show the dataset LRU
// serving hits.
func runLoadGen(base, model string, clients, requests int) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("need -clients >= 1 and -requests >= 1 (got %d, %d)", clients, requests)
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	entry, err := pickModel(client, base, model)
	if err != nil {
		return err
	}
	if len(entry.InputShape) == 0 {
		return fmt.Errorf("model %q registered without inputShape; pass one at registration", entry.Name)
	}
	fmt.Printf("target model: %s@v%d (%s), input shape %v\n",
		entry.Name, entry.Version, entry.Spec.Arch, entry.InputShape)

	// A small pool of distinct deterministic inputs, reused round-robin so
	// concurrent responses can be checked against the serial reference.
	const pool = 8
	rng := rand.New(rand.NewSource(42))
	n := 1
	for _, d := range entry.InputShape {
		n *= d
	}
	inputs := make([]serve.InferItem, pool)
	for i := range inputs {
		data := make([]float64, n)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		inputs[i] = serve.InferItem{Shape: entry.InputShape, Data: data}
	}

	fmt.Printf("phase 1: %d serial requests (unbatched reference)...\n", pool)
	refs := make([]serve.InferItem, pool)
	for i := range inputs {
		resp, err := postInfer(client, base, entry.Name, inputs[i])
		if err != nil {
			return err
		}
		refs[i] = resp.Outputs[0]
	}

	fmt.Printf("phase 2: %d requests over %d concurrent clients...\n", requests, clients)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		mismatch  int
		firstErr  error
	)
	next := make(chan int, requests)
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				in := i % pool
				s0 := time.Now()
				resp, err := postInfer(client, base, entry.Name, inputs[in])
				lat := time.Since(s0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					latencies = append(latencies, lat)
					if !sameItem(resp.Outputs[0], refs[in]) {
						mismatch++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return firstErr
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no successful requests recorded")
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		return latencies[int(p*float64(len(latencies)-1))]
	}
	fmt.Printf("  %d ok, %.0f req/s, latency p50 %v p95 %v p99 %v\n",
		len(latencies), float64(len(latencies))/elapsed.Seconds(), pct(0.50), pct(0.95), pct(0.99))
	if mismatch > 0 {
		return fmt.Errorf("%d responses differ from unbatched reference", mismatch)
	}
	fmt.Println("  all concurrent responses bit-identical to unbatched reference ✓")

	mean, err := meanBatchSize(client, base)
	if err != nil {
		return err
	}
	fmt.Printf("  mean micro-batch size: %.2f", mean)
	if mean > 1 {
		fmt.Println(" (batching engaged ✓)")
	} else {
		fmt.Println(" (no batching observed — raise concurrency or -window-ms)")
	}

	fmt.Println("phase 3: repeated /v1/subsample (dataset LRU)...")
	sub := serve.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 32, Seed: 1}
	for i := 0; i < 2; i++ {
		var out serve.SubsampleResponse
		if err := postJSON(client, base+"/v1/subsample", sub, &out); err != nil {
			return err
		}
		fmt.Printf("  run %d: %d cubes, %d points, cacheHit=%v, %.1f ms\n",
			i+1, out.Cubes, out.Points, out.CacheHit, out.ElapsedMS)
	}
	return nil
}

func pickModel(client *http.Client, base, want string) (*serve.ModelEntry, error) {
	resp, err := client.Get(base + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var entries []*serve.ModelEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("server has no registered models (start sickle-serve with -demo or -name/-ckpt)")
	}
	if want == "" {
		return entries[0], nil
	}
	for _, e := range entries {
		if e.Name == want {
			return e, nil
		}
	}
	return nil, fmt.Errorf("model %q not registered on server", want)
}

func postInfer(client *http.Client, base, model string, item serve.InferItem) (*serve.InferResponse, error) {
	var out serve.InferResponse
	err := postJSON(client, base+"/v1/infer",
		serve.InferRequest{Model: model, Items: []serve.InferItem{item}}, &out)
	if err != nil {
		return nil, err
	}
	if len(out.Outputs) != 1 {
		return nil, fmt.Errorf("expected 1 output, got %d", len(out.Outputs))
	}
	return &out, nil
}

func postJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func sameItem(a, b serve.InferItem) bool {
	if len(a.Shape) != len(b.Shape) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// meanBatchSize scrapes /metrics for sickle_batch_size_sum / _count.
func meanBatchSize(client *http.Client, base string) (float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var sum, count float64
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "sickle_batch_size_sum":
			sum = v
		case "sickle_batch_size_count":
			count = v
		}
	}
	if count == 0 {
		return 0, nil
	}
	return sum / count, nil
}
