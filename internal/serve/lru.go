package serve

import (
	"container/list"
	"context"
	"sync"
)

// LRU is a bounded, load-through cache keyed by string. It backs the
// service's dataset/.skl-shard resolution: repeated /v1/subsample requests
// for the same dataset hit the cache instead of re-synthesizing or
// re-reading gigascale snapshots. Loads are deduplicated per key — when two
// requests race on a cold key, one loads and the other waits for it.
type LRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key   string
	val   any
	err   error
	ready chan struct{} // closed once val/err are populated
}

// NewLRU returns a cache holding at most capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// GetOrLoad returns the cached value for key, invoking load on a miss. The
// second return reports whether this call was a hit. The cache lock is not
// held during load, so distinct keys load concurrently; concurrent callers
// of the same cold key share one load. A failed load is evicted immediately
// so the next request retries.
//
// A caller whose ctx ends while waiting on another caller's in-flight load
// gets ctx.Err() back immediately; the load itself continues for the
// remaining waiters (it is owned by the request that initiated it, so one
// impatient client cannot poison the shared entry).
func (c *LRU) GetOrLoad(ctx context.Context, key string, load func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
		return e.val, true, e.err
	}
	e := &lruEntry{key: key, ready: make(chan struct{})}
	c.items[key] = c.ll.PushFront(e)
	c.misses++
	for c.ll.Len() > c.cap {
		c.evictOldest()
	}
	c.mu.Unlock()

	e.val, e.err = load()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if el, ok := c.items[key]; ok && el.Value.(*lruEntry) == e {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	return e.val, false, e.err
}

func (c *LRU) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.evictions++
}

// Keys returns the cached keys from most- to least-recently used.
func (c *LRU) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *LRU) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
