// Golden input for apierr: untyped error construction in HTTP handlers
// and unregistered ErrorCode literals.
package a

import (
	"errors"
	"fmt"
	"net/http"

	"repro/pkg/api"
)

func handler(w http.ResponseWriter, r *http.Request) {
	var err error
	err = fmt.Errorf("lookup failed: %d", 42) // want `fmt.Errorf in an HTTP handler`
	err = fmt.Errorf("wrap: %w", err)         // want `fmt.Errorf in an HTTP handler`
	err = errors.New("bare")                  // want `errors.New in an HTTP handler`
	err = api.Errorf(api.CodeInternal, "typed: %v", err)
	_ = err
	_ = w
	_ = r
}

var _ = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	//sicklevet:ignore apierr demonstrating the escape hatch
	_ = errors.New("suppressed")
	_ = fmt.Errorf("closure") // want `fmt.Errorf in an HTTP handler`
})

func notAHandler() error {
	return fmt.Errorf("library code: fine")
}

func codes() {
	var c api.ErrorCode = "bogus_code" // want `not a registered api.ErrorCode`
	c = api.ErrorCode("also_bogus")    // want `not a registered api.ErrorCode`
	c = api.CodeNotFound
	c = "" // unset sentinel: fine
	if c == "weird_code" { // want `not a registered api.ErrorCode`
		return
	}
	_ = c
}
