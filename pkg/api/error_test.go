package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// codeStatus is the authoritative code ↔ status table: every declared
// ErrorCode with the HTTP status it must map to. A code added to the
// contract without updating this table (or the HTTPStatus/CodeFromStatus
// switches) fails TestErrorCodeStatusRoundTrip.
var codeStatus = map[ErrorCode]int{
	CodeInvalidArgument:    http.StatusBadRequest,
	CodeNotFound:           http.StatusNotFound,
	CodeModelNotFound:      http.StatusNotFound,
	CodeJobNotFound:        http.StatusNotFound,
	CodeJobNotReady:        http.StatusConflict,
	CodeJobCanceled:        http.StatusConflict,
	CodeOverloaded:         http.StatusTooManyRequests,
	CodeUnavailable:        http.StatusBadGateway,
	CodeShuttingDown:       http.StatusServiceUnavailable,
	CodeCanceled:           StatusClientClosedRequest,
	CodeDeadlineExceeded:   http.StatusGatewayTimeout,
	CodeMethodNotAllowed:   http.StatusMethodNotAllowed,
	CodeUnsupportedVersion: http.StatusBadRequest,
	CodeInternal:           http.StatusInternalServerError,
}

// TestErrorCodeStatusRoundTrip pins the mapping in both directions for
// every code: code → status matches the table, and recovering a code from
// that bare status (the v1/proxy fallback path) yields a code carrying
// the same status — so a round trip through a typed-envelope-stripping
// hop never changes the HTTP semantics.
func TestErrorCodeStatusRoundTrip(t *testing.T) {
	for code, status := range codeStatus {
		if got := code.HTTPStatus(); got != status {
			t.Errorf("%s.HTTPStatus() = %d, want %d", code, got, status)
		}
		back := CodeFromStatus(status)
		if back.HTTPStatus() != status {
			t.Errorf("CodeFromStatus(%d) = %s with status %d; round trip changes the status",
				status, back, back.HTTPStatus())
		}
		// Only the internal catch-all may land on 500: any other code
		// mapping there means a switch arm is missing.
		if status == http.StatusInternalServerError && code != CodeInternal {
			t.Errorf("%s maps to 500; add it to HTTPStatus", code)
		}
	}
	// Reverse direction: every status the recovery switch knows maps to a
	// code that reproduces it exactly.
	statuses := map[int]bool{}
	for _, s := range codeStatus {
		statuses[s] = true
	}
	for s := range statuses {
		if got := CodeFromStatus(s).HTTPStatus(); got != s {
			t.Errorf("status %d → %s → %d; reverse mapping not status-preserving",
				s, CodeFromStatus(s), got)
		}
	}
	// Statuses outside the table degrade to the internal catch-all.
	for _, s := range []int{http.StatusTeapot, http.StatusForbidden, http.StatusBadGateway + 100} {
		if got := CodeFromStatus(s); got != CodeInternal {
			t.Errorf("CodeFromStatus(%d) = %s, want internal", s, got)
		}
	}
}

// TestErrorEnvelopeJSONRoundTrip checks every code survives the wire
// envelope byte-exactly, including the retry hint.
func TestErrorEnvelopeJSONRoundTrip(t *testing.T) {
	for code := range codeStatus {
		in := ErrorEnvelope{Error: Errorf(code, "boom %d", 7).WithRetryAfter(3)}
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("%s: marshal: %v", code, err)
		}
		var out ErrorEnvelope
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s: unmarshal: %v", code, err)
		}
		if out.Error == nil || *out.Error != *in.Error {
			t.Errorf("%s: round trip %+v → %+v", code, in.Error, out.Error)
		}
	}
	// The retry hint is omitted from the wire when zero.
	raw, _ := json.Marshal(ErrorEnvelope{Error: Errorf(CodeOverloaded, "x")})
	if s := string(raw); s != `{"error":{"code":"overloaded","message":"x"}}` {
		t.Errorf("zero retry hint not omitted: %s", s)
	}
}

// TestAsErrorCoercion covers the error-classification fallbacks: typed
// errors pass through (even wrapped), context sentinels map to their
// codes, arbitrary errors become internal, transport failures keep the
// unavailable code through a wrap.
func TestAsErrorCoercion(t *testing.T) {
	if AsError(nil) != nil {
		t.Error("AsError(nil) != nil")
	}
	typed := Errorf(CodeOverloaded, "busy").WithRetryAfter(2)
	if got := AsError(fmt.Errorf("wrapped: %w", typed)); got != typed {
		t.Errorf("wrapped typed error did not pass through: %+v", got)
	}
	if got := AsError(context.Canceled); got.Code != CodeCanceled {
		t.Errorf("context.Canceled → %s", got.Code)
	}
	if got := AsError(context.DeadlineExceeded); got.Code != CodeDeadlineExceeded {
		t.Errorf("context.DeadlineExceeded → %s", got.Code)
	}
	if got := AsError(errors.New("weird")); got.Code != CodeInternal {
		t.Errorf("plain error → %s", got.Code)
	}
	unavailable := Errorf(CodeUnavailable, "conn refused")
	if got := AsError(fmt.Errorf("routing: %w", unavailable)); got.Code != CodeUnavailable {
		t.Errorf("wrapped unavailable → %s", got.Code)
	}
}
