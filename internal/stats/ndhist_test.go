package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNDHistogramAddWeighted(t *testing.T) {
	h := NewNDHistogram([]float64{0, 0}, []float64{1, 1}, 4)
	h.AddWeighted([]float64{0.1, 0.1}, 3)
	h.AddWeighted([]float64{0.9, 0.9}, 2)
	h.AddWeighted([]float64{0.5, 0.5}, 0) // no-op
	if h.N != 5 {
		t.Fatalf("N = %d, want 5", h.N)
	}
	if got := h.Probability([]float64{0.1, 0.1}); math.Abs(got-3.0/5) > 1e-15 {
		t.Fatalf("Probability = %v, want 0.6", got)
	}
	if h.OccupiedCells() != 2 {
		t.Fatalf("occupied = %d, want 2", h.OccupiedCells())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight should panic")
		}
	}()
	h.AddWeighted([]float64{0.1, 0.1}, -1)
}

func TestNDHistogramMergeMatchesPooledAdd(t *testing.T) {
	lo, hi := []float64{-1, -1, -1}, []float64{1, 1, 1}
	rng := rand.New(rand.NewSource(42))
	pooled := NewNDHistogram(lo, hi, 5)
	parts := []*NDHistogram{
		NewNDHistogram(lo, hi, 5),
		NewNDHistogram(lo, hi, 5),
		NewNDHistogram(lo, hi, 5),
	}
	for i := 0; i < 3000; i++ {
		p := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5, rng.Float64()*2 - 1}
		pooled.Add(p)
		parts[i%3].Add(p)
	}
	merged := NewNDHistogram(lo, hi, 5)
	for _, part := range parts {
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N != pooled.N {
		t.Fatalf("merged N = %d, pooled N = %d", merged.N, pooled.N)
	}
	if len(merged.Counts) != len(pooled.Counts) {
		t.Fatalf("merged cells = %d, pooled cells = %d", len(merged.Counts), len(pooled.Counts))
	}
	for cell, c := range pooled.Counts {
		if merged.Counts[cell] != c {
			t.Fatalf("cell %d: merged %d, pooled %d", cell, merged.Counts[cell], c)
		}
	}
	if a, b := merged.UniformityIndex(), pooled.UniformityIndex(); math.Abs(a-b) > 1e-12 {
		t.Fatalf("uniformity %v vs %v", a, b)
	}
}

func TestNDHistogramMergeRejectsMismatch(t *testing.T) {
	h := NewNDHistogram([]float64{0}, []float64{1}, 4)
	if err := h.Merge(NewNDHistogram([]float64{0, 0}, []float64{1, 1}, 4)); err == nil {
		t.Fatal("dims mismatch should error")
	}
	if err := h.Merge(NewNDHistogram([]float64{0}, []float64{1}, 8)); err == nil {
		t.Fatal("bins mismatch should error")
	}
	if err := h.Merge(NewNDHistogram([]float64{0}, []float64{2}, 4)); err == nil {
		t.Fatal("bounds mismatch should error")
	}
}

func TestNDHistogramTotalCells(t *testing.T) {
	if got := NewNDHistogram([]float64{0}, []float64{1}, 4).TotalCells(); got != 4 {
		t.Fatalf("TotalCells = %d, want 4", got)
	}
	if got := NewNDHistogram([]float64{0, 0, 0}, []float64{1, 1, 1}, 5).TotalCells(); got != 125 {
		t.Fatalf("TotalCells = %d, want 125", got)
	}
}
