// Package serve turns SICKLE-Go's offline pipeline into an online service:
// a versioned HTTP JSON API (the pkg/api wire contract) over the trained
// surrogates (micro-batched inference through a bounded worker pool), the
// subsampling pipeline (datasets and .skl shards resolved through a
// bounded LRU cache), and an asynchronous job manager for long-running
// subsample/train work, with health and Prometheus-style metrics
// endpoints. Cancellation is context-first end to end: every request and
// job carries a context.Context that reaches the batcher queues, replica
// acquisition, the cache, and the sampling/training loops.
//
// With Config.DataDir set the job manager is durable (internal/durable):
// submissions are fsync'd to a write-ahead log before acknowledgment and
// recovered on restart, results persist on disk, client idempotency keys
// deduplicate retried submissions, and identical subsample jobs are
// served byte-identically from a content-addressed cache.
//
// Two API versions are served: /v2 (typed error envelope, jobs) and /v1, a
// thin frozen shim over the same types that keeps the original payloads
// byte-compatible. cmd/sickle-serve is the binary; cmd/sickle-bench -serve
// is the matching load generator, built on pkg/client.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/obs/events"
	olog "repro/internal/obs/log"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/pkg/api"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	Addr         string        // listen address (default :8080)
	MaxBatch     int           // micro-batch cap (default 16)
	Window       time.Duration // batch collection window (default 2ms)
	Workers      int           // worker pool size (default GOMAXPROCS)
	QueueCap     int           // per-model queue bound before 429s (default 1024)
	CacheEntries int           // LRU capacity for datasets/shards (default 8)
	Replicas     int           // model replicas per registered model (default 2)
	JobWorkers   int           // concurrent jobs (default 2)
	MaxJobs      int           // live-job admission bound (default 64)
	JobTTL       time.Duration // terminal-job retention (default 15m)

	// DataDir, when set, makes jobs durable: submissions are fsync'd to
	// a write-ahead log under this directory before they are
	// acknowledged, results persist on disk, identical subsample jobs
	// are served from a content-addressed cache, and a restart on the
	// same directory recovers job state (re-enqueuing interrupted
	// jobs). Empty keeps the pre-durability in-memory behavior.
	DataDir string

	// Logger receives request and lifecycle logs; nil discards them.
	Logger *olog.Logger
	// TraceCapacity bounds the in-memory span ring behind /debug/traces
	// (default obs.DefaultTraceCapacity).
	TraceCapacity int

	// Flight recorder: metrics history, event journal, SLO engine.
	HistoryInterval time.Duration   // tsdb sampling period (default 1s)
	HistoryCapacity int             // points kept per series (default 600)
	EventCapacity   int             // event-journal ring size (default 1024)
	SLOs            []slo.Objective // declared objectives (empty = always ok)
}

func (c *Config) defaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
}

// Server wires the registry, batcher, cache, job manager and metrics
// behind an HTTP mux.
type Server struct {
	cfg      Config
	reg      *Registry
	batcher  *Batcher
	cache    *LRU
	jobs     *JobManager
	met      *Metrics
	tracer   *obs.Tracer
	logger   *olog.Logger
	journal  *events.Journal
	history  *tsdb.Store
	sloEng   *slo.Engine
	durable  *durable.Store // nil without Config.DataDir
	httpSrv  *http.Server
	start    time.Time
	draining atomic.Bool

	// testProgressHook, when set (tests only), is invoked from inside the
	// sampling pipeline's per-cube progress callback during subsample jobs
	// — the coordination point for deterministic mid-job cancellation.
	testProgressHook func(done, total int)
}

// NewServer builds a ready-to-listen server. With Config.DataDir set it
// opens (creating if needed) the durability store there and replays the
// write-ahead job log — the only error path; an unusable data dir must
// refuse to start rather than silently serve without durability.
func NewServer(cfg Config) (*Server, error) {
	cfg.defaults()
	met := NewMetrics()
	reg := NewRegistry()
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		batcher: NewBatcher(reg, met, cfg.MaxBatch, cfg.Window, cfg.Workers, cfg.QueueCap),
		cache:   NewLRU(cfg.CacheEntries),
		jobs:    NewJobManager(cfg.JobWorkers, cfg.MaxJobs, cfg.JobTTL),
		met:     met,
		tracer:  obs.NewTracer("serve", cfg.TraceCapacity),
		logger:  cfg.Logger,
		journal: events.NewJournal("serve", cfg.EventCapacity),
		start:   time.Now(),
	}
	met.SetJobStatsFunc(s.jobs.Stats)
	s.batcher.SetTracer(s.tracer)
	s.jobs.SetTracer(s.tracer)
	s.jobs.SetPanicHook(func(id string, typ api.JobType, traceID, msg string) {
		s.journal.Emit(events.TypeJobPanic, "job panicked (recovered)", traceID,
			"job", id, "type", string(typ), "panic", msg)
	})
	s.tracer.RegisterDropped(met.Registry())
	s.journal.Register(met.Registry())
	if cfg.DataDir != "" {
		st, records, err := durable.Open(cfg.DataDir)
		if err != nil {
			return nil, fmt.Errorf("serve: open data dir %s: %w", cfg.DataDir, err)
		}
		s.durable = st
		st.Register(met.Registry())
		s.jobs.SetDurable(st, func(err error) {
			s.logger.Error("wal append failed; next submission will be refused",
				"err", err.Error())
		})
		s.recoverJobs(records)
	}
	s.history = tsdb.NewStore("serve", met.Registry(), cfg.HistoryInterval, cfg.HistoryCapacity)
	s.sloEng = slo.NewEngine("serve", s.history, slo.ServeMetrics, cfg.SLOs,
		met.Registry(), s.journal)
	s.history.Start()
	s.httpSrv = &http.Server{Addr: cfg.Addr, Handler: s.Handler()}
	return s, nil
}

// recoverJobs replays the folded WAL records into the job manager:
// terminal jobs within the retention TTL come back queryable (succeeded
// ones with their result blob — a succeeded record whose result is
// missing or corrupt is re-run instead, since the WAL promised a result
// it cannot produce), interrupted pending/running jobs are re-enqueued
// from their persisted submission payload, and expired jobs are
// dropped. Retained jobs are re-appended to the fresh WAL, which Seal
// then atomically compacts over the old one.
func (s *Server) recoverJobs(records []durable.JobRecord) {
	ttl := s.cfg.JobTTL
	if ttl <= 0 {
		ttl = defaultJobTTL
	}
	wal := s.durable.WAL
	type restore struct {
		job    api.Job
		run    JobRunner
		result *api.JobResult
		action string
	}
	var restores []restore
	for _, rec := range records {
		job := api.Job{
			ID: rec.ID, Type: rec.Type, State: rec.State, Error: rec.Err,
			CreatedAt: rec.Created, StartedAt: rec.Started, FinishedAt: rec.Finished,
			IdempotencyKey: rec.Key,
		}
		if rec.State.Terminal() && time.Since(rec.Finished) > ttl {
			s.durable.Results.Delete(rec.ID)
			wal.CountRecovered("dropped")
			continue
		}
		reappendSubmit := func() {
			wal.Append(durable.Record{
				Kind: durable.KindSubmit, ID: rec.ID, Type: string(rec.Type),
				Key: rec.Key, Payload: rec.Payload, Time: rec.Created,
			})
		}
		reappendTerminal := func(j api.Job) {
			wal.Append(durable.Record{
				Kind: durable.KindTerminal, ID: j.ID, State: string(j.State),
				Error: j.Error, Time: j.FinishedAt,
			})
		}
		if rec.State.Terminal() {
			var result *api.JobResult
			lost := false
			if rec.State == api.JobSucceeded {
				if b, err := s.durable.Results.Get(rec.ID); err == nil {
					result = &api.JobResult{}
					if json.Unmarshal(b, result) != nil {
						result, lost = nil, true
					}
				} else {
					lost = true
					s.durable.Results.Delete(rec.ID)
				}
			}
			if !lost {
				reappendSubmit()
				reappendTerminal(job)
				restores = append(restores, restore{job: job, result: result, action: "restored"})
				continue
			}
			// Fall through: recompute the lost result below.
		}
		var req api.SubmitJobRequest
		runner := JobRunner(nil)
		if json.Unmarshal(rec.Payload, &req) == nil {
			runner, _ = s.runnerFor(&req)
		}
		if runner == nil {
			// Interrupted and unrecoverable: mark it failed so the client
			// gets a truthful terminal answer instead of a vanished job.
			job.State = api.JobFailed
			job.Error = api.Errorf(api.CodeInternal,
				"serve: job %s interrupted by restart; submission payload unrecoverable", rec.ID)
			job.FinishedAt = time.Now()
			reappendSubmit()
			reappendTerminal(job)
			restores = append(restores, restore{job: job, action: "interrupted"})
			continue
		}
		reappendSubmit()
		restores = append(restores, restore{job: job, run: runner, action: "reenqueued"})
	}
	// Seal first so the runners the restores spawn append to a log whose
	// every record is individually fsync'd.
	if err := s.durable.Seal(); err != nil {
		s.logger.Error("wal compaction failed", "err", err.Error())
	}
	for _, r := range restores {
		s.jobs.Restore(r.job, r.run, r.result)
		wal.CountRecovered(r.action)
		s.journal.Emit(events.TypeRecovery, "job recovered from WAL", "",
			"job", r.job.ID, "action", r.action, "state", string(r.job.State))
	}
	if n := len(records); n > 0 {
		s.logger.Info("wal replayed", "jobs", n, "restored", len(restores))
	}
}

// runnerFor builds the runner a submission (live or recovered) asks for.
func (s *Server) runnerFor(req *api.SubmitJobRequest) (JobRunner, error) {
	switch req.Type {
	case api.JobSubsample:
		if req.Subsample == nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "subsample job needs a subsample payload")
		}
		return s.subsampleJobRunner(*req.Subsample), nil
	case api.JobTrain:
		if req.Train == nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "train job needs a train payload")
		}
		return s.trainJobRunner(*req.Train), nil
	default:
		return nil, api.Errorf(api.CodeInvalidArgument,
			"unknown job type %q (want %q or %q)", req.Type, api.JobSubsample, api.JobTrain)
	}
}

// Registry exposes the model registry for pre-registering models.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the collector (tests assert on mean batch size).
func (s *Server) Metrics() *Metrics { return s.met }

// Cache exposes the dataset/shard LRU.
func (s *Server) Cache() *LRU { return s.cache }

// Jobs exposes the job manager (tests and embedders).
func (s *Server) Jobs() *JobManager { return s.jobs }

// Tracer exposes the span ring behind /debug/traces (tests and embedders).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Journal exposes the event journal behind /debug/events.
func (s *Server) Journal() *events.Journal { return s.journal }

// Durable exposes the durability store (nil without Config.DataDir).
// Embedders and crash-recovery tests use it for fault injection:
// Store.WAL.SetCrashPoint arms a stage-precise freeze, Store.Freeze
// simulates process death outright.
func (s *Server) Durable() *durable.Store { return s.durable }

// History exposes the metrics-history store behind /debug/history.
func (s *Server) History() *tsdb.Store { return s.history }

// SLO exposes the burn-rate engine behind /debug/slo.
func (s *Server) SLO() *slo.Engine { return s.sloEng }

// Handler returns the route mux (also usable under httptest). The /v1
// routes are the frozen compatibility shim; /v2 is the current surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.tracer.Mount(mux)
	s.journal.Mount(mux)
	s.history.Mount(mux)
	s.sloEng.Mount(mux)
	mux.HandleFunc("GET /api/version", s.instrument("/api/version", s.handleVersion))

	// v1: legacy envelope, original status mapping.
	mux.HandleFunc("/v1/infer", s.instrument("/v1/infer", s.handleInferV1))
	mux.HandleFunc("/v1/subsample", s.instrument("/v1/subsample", s.handleSubsampleV1))
	mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModelsV1))

	// v2: typed envelope + jobs.
	mux.HandleFunc("POST /v2/infer", s.instrument("/v2/infer", s.handleInferV2))
	mux.HandleFunc("POST /v2/subsample", s.instrument("/v2/subsample", s.handleSubsampleV2))
	mux.HandleFunc("GET /v2/models", s.instrument("/v2/models", s.handleListModelsV2))
	mux.HandleFunc("POST /v2/models", s.instrument("/v2/models", s.handleRegisterModelV2))
	mux.HandleFunc("POST /v2/jobs", s.instrument("/v2/jobs", s.handleSubmitJob))
	mux.HandleFunc("GET /v2/jobs", s.instrument("/v2/jobs", s.handleListJobs))
	mux.HandleFunc("GET /v2/jobs/{id}", s.instrument("/v2/jobs/{id}", s.handleGetJob))
	mux.HandleFunc("DELETE /v2/jobs/{id}", s.instrument("/v2/jobs/{id}", s.handleCancelJob))
	mux.HandleFunc("GET /v2/jobs/{id}/result", s.instrument("/v2/jobs/{id}/result", s.handleJobResult))
	mux.HandleFunc("GET /v2/keys/{key}", s.instrument("/v2/keys/{key}", s.handleGetJobByKey))

	// Keep the "every v2 failure is a typed envelope" contract even for
	// requests the method-qualified patterns above don't match: a generic
	// (method-less) registration per route loses to the specific pattern
	// for matching methods and catches the rest with a typed 405; the /v2/
	// prefix fallback turns unknown paths into a typed 404 instead of the
	// mux's plain-text page.
	methodNotAllowed := func(allow string) func(http.ResponseWriter, *http.Request) error {
		return func(w http.ResponseWriter, r *http.Request) error {
			w.Header().Set("Allow", allow)
			return writeAPIError(w, api.Errorf(api.CodeMethodNotAllowed, "%s only", allow))
		}
	}
	mux.HandleFunc("/v2/infer", s.instrument("/v2/infer", methodNotAllowed("POST")))
	mux.HandleFunc("/v2/subsample", s.instrument("/v2/subsample", methodNotAllowed("POST")))
	mux.HandleFunc("/v2/models", s.instrument("/v2/models", methodNotAllowed("GET, POST")))
	mux.HandleFunc("/v2/jobs", s.instrument("/v2/jobs", methodNotAllowed("GET, POST")))
	mux.HandleFunc("/v2/keys/{key}", s.instrument("/v2/keys/{key}", methodNotAllowed("GET")))
	mux.HandleFunc("/v2/jobs/{id}", s.instrument("/v2/jobs/{id}", methodNotAllowed("GET, DELETE")))
	mux.HandleFunc("/v2/jobs/{id}/result", s.instrument("/v2/jobs/{id}/result", methodNotAllowed("GET")))
	mux.HandleFunc("/v2/", s.instrument("/v2/", func(w http.ResponseWriter, r *http.Request) error {
		return writeAPIError(w, api.Errorf(api.CodeNotFound, "no route %s %s", r.Method, r.URL.Path))
	}))
	mux.HandleFunc("/api/version", s.instrument("/api/version", methodNotAllowed("GET")))
	return mux
}

// ListenAndServe blocks serving on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve blocks serving on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: new batcher admissions fail fast with the
// typed shutting_down error, the HTTP server stops accepting and waits for
// in-flight handlers (each bounded by its own request context), running
// jobs are canceled (their state becomes canceled/shutting_down), and
// finally the batcher is torn down — a request admitted before Shutdown
// always gets either its real response or a typed shutting_down error,
// never a hang.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	s.jobs.Close()
	s.batcher.Stop()
	s.history.Stop()
	if cerr := s.durable.Close(); err == nil {
		err = cerr
	}
	return err
}

// instrument wraps a handler with latency/error accounting, a server span
// (joining the caller's trace when an X-Sickle-Trace header is present,
// minting one otherwise), and a trace-ID-stamped request log.
func (s *Server) instrument(route string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if tc, ok := api.ParseTraceHeader(r.Header.Get(api.TraceHeader)); ok {
			ctx = api.WithTrace(ctx, tc)
		}
		ctx, span := s.tracer.StartSpan(ctx, "server:"+route)
		span.SetAttr("method", r.Method)
		t0 := time.Now()
		s.met.AddInflight(1)
		err := h(w, r.WithContext(ctx))
		s.met.AddInflight(-1)
		d := time.Since(t0)
		s.met.ObserveRequestEx(route, d, err != nil, span.TraceID())
		if err != nil {
			span.SetAttr("error", string(api.AsError(err).Code))
		}
		span.End()
		if s.logger.Enabled(olog.LevelDebug) || err != nil {
			kv := []any{"route", route, "method", r.Method,
				"trace", span.TraceID(), "seconds", d.Seconds()}
			if err != nil {
				s.logger.Warn("request failed", append(kv, "error", err.Error())...)
			} else {
				s.logger.Debug("request", kv...)
			}
		}
	}
}

// ---- shared core (both API versions decode into pkg/api types) ----

func specToArch(s api.ModelSpec) train.ArchSpec {
	return train.ArchSpec{Arch: s.Arch, InDim: s.InDim, Hidden: s.Hidden,
		Heads: s.Heads, OutDim: s.OutDim, Edge: s.Edge}
}

func archToSpec(a train.ArchSpec) api.ModelSpec {
	return api.ModelSpec{Arch: a.Arch, InDim: a.InDim, Hidden: a.Hidden,
		Heads: a.Heads, OutDim: a.OutDim, Edge: a.Edge}
}

func entryToInfo(e *ModelEntry) api.ModelInfo {
	return api.ModelInfo{Name: e.Name, Version: e.Version, Spec: archToSpec(e.Spec),
		Checkpoint: e.Checkpoint, InputShape: e.InputShape, Replicas: e.Replicas}
}

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return api.Errorf(api.CodeInvalidArgument, "bad JSON: %v", err)
	}
	return nil
}

// doInfer validates, fans the items into the batcher under the request
// context, and gathers per-item outputs in order.
func (s *Server) doInfer(ctx context.Context, req *api.InferRequest) (*api.InferResponse, error) {
	if req.Model == "" || len(req.Items) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "need model and at least one item")
	}
	if _, ok := s.reg.Lookup(req.Model); !ok {
		return nil, api.Errorf(api.CodeModelNotFound, "unknown model %q", req.Model)
	}
	inputs := make([]*tensor.Tensor, len(req.Items))
	for i, it := range req.Items {
		n := 1
		for _, d := range it.Shape {
			if d <= 0 {
				return nil, api.Errorf(api.CodeInvalidArgument, "item %d: bad shape %v", i, it.Shape)
			}
			n *= d
		}
		if len(it.Shape) == 0 || n != len(it.Data) {
			return nil, api.Errorf(api.CodeInvalidArgument,
				"item %d: shape %v wants %d values, got %d", i, it.Shape, n, len(it.Data))
		}
		inputs[i] = tensor.FromSlice(it.Data, it.Shape...)
	}
	// Enqueue every item separately so items from concurrent clients can
	// share micro-batches, then gather in order.
	type itemOut struct {
		out     *tensor.Tensor
		version int
		batch   int
		err     error
	}
	outs := make([]itemOut, len(inputs))
	done := make(chan int, len(inputs))
	for i := range inputs {
		go func(i int) {
			o, v, bsz, err := s.batcher.Infer(ctx, req.Model, inputs[i])
			outs[i] = itemOut{o, v, bsz, err}
			done <- i
		}(i)
	}
	for range inputs {
		<-done
	}
	resp := &api.InferResponse{Model: req.Model}
	for i, o := range outs {
		if o.err != nil {
			ae := api.AsError(o.err)
			return nil, api.Errorf(ae.Code, "item %d: %s", i, ae.Message).WithRetryAfter(ae.RetryAfterSeconds)
		}
		resp.Version = o.version
		resp.Outputs = append(resp.Outputs, api.InferItem{Shape: o.out.Shape, Data: o.out.Data})
		resp.BatchSizes = append(resp.BatchSizes, o.batch)
	}
	return resp, nil
}

func (s *Server) doRegisterModel(req *api.RegisterModelRequest) (api.ModelInfo, error) {
	replicas := req.Replicas
	if replicas <= 0 {
		replicas = s.cfg.Replicas
	}
	e, err := s.reg.Register(req.Name, specToArch(req.Spec), req.Checkpoint, req.InputShape, replicas)
	if err != nil {
		return api.ModelInfo{}, api.Errorf(api.CodeInvalidArgument, "%s", err.Error())
	}
	if e.Version > 1 {
		s.journal.Emit(events.TypeHotSwap, "model checkpoint hot-swapped", "",
			"model", e.Name, "version", fmt.Sprint(e.Version),
			"checkpoint", e.Checkpoint)
	}
	return entryToInfo(e), nil
}

func (s *Server) listModels() []api.ModelInfo {
	entries := s.reg.List()
	out := make([]api.ModelInfo, len(entries))
	for i, e := range entries {
		out[i] = entryToInfo(e)
	}
	return out
}

// ---- v1 handlers (frozen compatibility shim) ----

func (s *Server) handleInferV1(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return writeLegacyError(w, api.Errorf(api.CodeMethodNotAllowed, "POST only"), 0)
	}
	var req api.InferRequest
	if err := decodeBody(r, &req); err != nil {
		return writeLegacyError(w, err, 0)
	}
	resp, err := s.doInfer(r.Context(), &req)
	if err != nil {
		return writeLegacyError(w, err, 0)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubsampleV1(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return writeLegacyError(w, api.Errorf(api.CodeMethodNotAllowed, "POST only"), 0)
	}
	var req api.SubsampleRequest
	if err := decodeBody(r, &req); err != nil {
		return writeLegacyError(w, err, 0)
	}
	resp, err := s.doSubsample(r.Context(), &req, nil)
	if err != nil {
		// v1 reported every pipeline failure as a 400.
		return writeLegacyError(w, err, http.StatusBadRequest)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModelsV1(w http.ResponseWriter, r *http.Request) error {
	switch r.Method {
	case http.MethodGet:
		return writeJSON(w, http.StatusOK, s.listModels())
	case http.MethodPost:
		var req api.RegisterModelRequest
		if err := decodeBody(r, &req); err != nil {
			return writeLegacyError(w, err, 0)
		}
		info, err := s.doRegisterModel(&req)
		if err != nil {
			return writeLegacyError(w, err, http.StatusBadRequest)
		}
		return writeJSON(w, http.StatusOK, info)
	default:
		return writeLegacyError(w, api.Errorf(api.CodeMethodNotAllowed, "GET or POST"), 0)
	}
}

// ---- v2 handlers (typed envelope) ----

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, api.VersionInfo{
		Versions: api.SupportedVersions(), Latest: api.Latest,
	})
}

func (s *Server) handleInferV2(w http.ResponseWriter, r *http.Request) error {
	var req api.InferRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	resp, err := s.doInfer(r.Context(), &req)
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubsampleV2(w http.ResponseWriter, r *http.Request) error {
	var req api.SubsampleRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	resp, err := s.doSubsample(r.Context(), &req, nil)
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListModelsV2(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, s.listModels())
}

func (s *Server) handleRegisterModelV2(w http.ResponseWriter, r *http.Request) error {
	var req api.RegisterModelRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	info, err := s.doRegisterModel(&req)
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) error {
	if s.draining.Load() {
		return writeAPIError(w, errShuttingDown())
	}
	var req api.SubmitJobRequest
	if err := decodeBody(r, &req); err != nil {
		return writeAPIError(w, err)
	}
	runner, err := s.runnerFor(&req)
	if err != nil {
		return writeAPIError(w, err)
	}
	opts := SubmitOptions{Key: req.IdempotencyKey}
	if s.durable != nil {
		if b, merr := json.Marshal(&req); merr == nil {
			opts.Payload = b
		}
	}
	job, dup, err := s.jobs.SubmitWith(r.Context(), req.Type, runner, opts)
	if err != nil {
		return writeAPIError(w, err)
	}
	if dup {
		// A keyed resubmission deduplicated onto its original job: 200
		// (nothing new was created) with the original snapshot.
		tc, _ := api.TraceFrom(r.Context())
		s.journal.Emit(events.TypeDedupHit, "idempotent resubmission returned original job",
			tc.TraceID, "job", job.ID, "kind", "idempotency_key")
		return writeJSON(w, http.StatusOK, job)
	}
	return writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) error {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, job)
}

// handleGetJobByKey answers "do you hold idempotency key X?" — the
// owner-set consultation a shard router runs before admitting a keyed
// resubmission, so a key claimed anywhere in a key's owner set maps to
// exactly one fleet-wide job.
func (s *Server) handleGetJobByKey(w http.ResponseWriter, r *http.Request) error {
	key, err := url.PathUnescape(r.PathValue("key"))
	if err != nil {
		return writeAPIError(w, api.Errorf(api.CodeInvalidArgument, "bad idempotency key encoding: %v", err))
	}
	job, err := s.jobs.GetByKey(key)
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) error {
	job, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	res, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		return writeAPIError(w, err)
	}
	return writeJSON(w, http.StatusOK, res)
}

// ---- shared plain endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	models := []string{}
	for _, e := range s.reg.List() {
		models = append(models, fmt.Sprintf("%s@v%d", e.Name, e.Version))
	}
	return writeJSON(w, http.StatusOK, api.Health{
		Status:        s.sloEng.Status(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Models:        models,
		QueueDepth:    s.batcher.QueueDepth(),
		Jobs:          s.jobs.Stats(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.met.Render(s.cache))
}
