package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for data-parallel kernels. It exists so
// that hot loops (matmul, element-wise ops, solver steps) do not pay a
// goroutine spawn + scheduler wakeup per call: the workers are started once
// and fed closures through a bounded queue.
//
// Determinism contract: ParallelFor decomposes [0, n) into fixed chunks of
// `grain` iterations. The decomposition depends only on (n, grain) — never
// on the worker count or on whether a pool is present — so any kernel whose
// per-chunk work writes disjoint outputs (or fills per-chunk partials that
// are combined in chunk order afterwards) produces bit-identical results
// serial or parallel, on any machine. All kernels in this repository follow
// that contract, and the parity tests assert it.
type Pool struct {
	workers int
	tasks   chan func()

	// Utilization counters read by the observability layer: how many
	// workers are executing a task right now, and how many tasks the
	// workers have completed since the pool started. Chunks executed
	// inline on the calling goroutine are not counted — these measure
	// pool occupancy, not kernel throughput.
	busy      atomic.Int64
	tasksDone atomic.Uint64
}

// NewPool starts a pool with the given number of workers (minimum 1). The
// calling goroutine always participates in ParallelFor, so a pool of W
// workers can have W+1 goroutines executing chunks.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan func(), 4*workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				p.busy.Add(1)
				task()
				p.busy.Add(-1)
				p.tasksDone.Add(1)
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Stats reports the pool's size and utilization: total workers, workers
// currently executing a task, and tasks completed since the pool started.
func (p *Pool) Stats() (workers, busy int, tasksDone uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.workers, int(p.busy.Load()), p.tasksDone.Load()
}

// PoolStats reports Stats for the process-wide default pool (zeros when
// parallelism is off or the process is single-core).
func PoolStats() (workers, busy int, tasksDone uint64) {
	return DefaultPool().Stats()
}

var (
	defaultPool     atomic.Pointer[Pool]
	defaultPoolOnce sync.Once
	parallelOff     atomic.Bool
)

// DefaultPool returns the process-wide kernel pool, sized to GOMAXPROCS at
// first use. It returns nil — meaning "run serial" — on single-core
// processes (where workers can only add overhead) and while parallelism is
// disabled via SetParallel(false). All kernels accept a nil pool.
func DefaultPool() *Pool {
	if parallelOff.Load() {
		return nil
	}
	defaultPoolOnce.Do(func() {
		if w := runtime.GOMAXPROCS(0); w > 1 {
			defaultPool.Store(NewPool(w))
		}
	})
	return defaultPool.Load()
}

// SetParallel toggles the default pool off/on. It exists for the parity
// tests and the kernel benchmarks, which measure the identical code path
// with and without workers; results are bit-identical either way (see the
// Pool determinism contract).
func SetParallel(on bool) { parallelOff.Store(!on) }

// SetWorkers replaces the default pool with one of n workers; n <= 0
// restores the GOMAXPROCS default and n == 1 means serial. The previous
// pool's workers wind down only when the process exits, so this is a
// configuration/testing knob, not something to call per-request. Kernels
// already in flight keep the pool they started with.
func SetWorkers(n int) {
	defaultPoolOnce.Do(func() {})
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == 1 {
		defaultPool.Store(nil)
		return
	}
	defaultPool.Store(NewPool(n))
}

// ParallelFor runs fn over [0, n) split into chunks of grain iterations.
// fn(lo, hi) must be safe to run concurrently with other chunks (disjoint
// writes). A nil pool, a single chunk, or a saturated task queue degrade to
// inline execution on the caller; the chunk decomposition is unchanged, so
// results are identical. ParallelFor may be called from inside a chunk
// (nested data parallelism): the inner call simply shares the queue, and
// because the caller always works through the remaining chunks itself, no
// call can deadlock waiting for a free worker.
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if p == nil || chunks == 1 {
		fn(0, n)
		return
	}
	// Completion is tracked per CHUNK, not per helper task: a queued helper
	// that only starts after all chunks are claimed finds nothing to do and
	// exits, and nobody waits on it. This is what makes nested ParallelFor
	// deadlock-free — a worker blocked in the final wait is only ever
	// waiting on chunks that some live goroutine is actively executing.
	var next, done atomic.Int64
	allDone := make(chan struct{})
	run := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			if int(done.Add(1)) == chunks {
				close(allDone)
			}
		}
	}
	helpers := p.workers
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- run:
		default:
			// Queue saturated (deep nesting or heavy load): skip the
			// remaining helpers; the caller works through every chunk.
			i = helpers
		}
	}
	run()
	<-allDone
}
