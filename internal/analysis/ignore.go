package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. A finding is deliberate when the code carries
//
//	//sicklevet:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the same line as the diagnostic or on the line directly above it, or
// when the file carries
//
//	//sicklevet:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// anywhere (conventionally next to the package clause), which suppresses
// that analyzer for the whole file. The reason is mandatory: a
// suppression that cannot say why it exists is itself a diagnostic.
// The analyzer list may be the literal "all".

const (
	linePrefix = "//sicklevet:ignore"
	filePrefix = "//sicklevet:file-ignore"
)

// ignoreDirective is one parsed suppression.
type ignoreDirective struct {
	analyzers map[string]bool // nil means "all"
	line      int             // line the directive appears on
	wholeFile bool
}

// IgnoreSet holds every directive of one file set, ready to filter
// diagnostics, plus diagnostics for malformed directives (missing
// reason, empty analyzer list).
type IgnoreSet struct {
	byFile    map[string][]ignoreDirective
	Malformed []Diagnostic
}

// ParseIgnores scans the comments of files for sicklevet directives.
func ParseIgnores(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{byFile: map[string][]ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.parse(fset, c)
			}
		}
	}
	return s
}

func (s *IgnoreSet) parse(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	wholeFile := false
	switch {
	case strings.HasPrefix(text, filePrefix):
		text, wholeFile = text[len(filePrefix):], true
	case strings.HasPrefix(text, linePrefix):
		text = text[len(linePrefix):]
	default:
		return
	}
	pos := fset.Position(c.Pos())
	fields := strings.Fields(text)
	// fields[0] is the analyzer list, the rest is the reason.
	if len(fields) < 2 {
		s.Malformed = append(s.Malformed, Diagnostic{
			Pos: c.Pos(),
			Message: "malformed sicklevet directive: want " +
				"`//sicklevet:ignore <analyzer> <reason>` (the reason is mandatory)",
		})
		return
	}
	d := ignoreDirective{line: pos.Line, wholeFile: wholeFile}
	if fields[0] != "all" {
		d.analyzers = map[string]bool{}
		for _, name := range strings.Split(fields[0], ",") {
			d.analyzers[name] = true
		}
	}
	s.byFile[pos.Filename] = append(s.byFile[pos.Filename], d)
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range s.byFile[p.Filename] {
		if d.analyzers != nil && !d.analyzers[analyzer] {
			continue
		}
		if d.wholeFile || d.line == p.Line || d.line == p.Line-1 {
			return true
		}
	}
	return false
}

// Filter drops the suppressed diagnostics of one analyzer.
func (s *IgnoreSet) Filter(fset *token.FileSet, analyzer string, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !s.Suppressed(fset, analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept
}
