package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/stream"
)

// streamBenchReport is the BENCH_stream.json schema CI accumulates: the
// in-situ pipeline's throughput and memory trajectory plus the
// selection-quality scalar, so perf regressions in the streaming subsystem
// show up as a diffable artifact.
type streamBenchReport struct {
	Dataset           string  `json:"dataset"`
	Ranks             int     `json:"ranks"`
	Window            int     `json:"window"`
	Snapshots         int     `json:"snapshots"`
	Points            int     `json:"points"`
	SnapshotsPerSec   float64 `json:"snapshots_per_sec"`
	PeakBuffered      int     `json:"peak_buffered"`
	PeakBufferedBytes int64   `json:"peak_buffered_bytes"`
	MergeRounds       int     `json:"merge_rounds"`
	Uniformity        float64 `json:"uniformity"`
	SimCommSeconds    float64 `json:"sim_comm_seconds"`
}

// runStreamBench drives the streaming pipeline over the small SST-P1F4
// replay with a tight window and writes the JSON report to outPath.
func runStreamBench(outPath string) error {
	d, err := sickle.BuildDataset("SST-P1F4", sickle.Small)
	if err != nil {
		return err
	}
	cfg := stream.Config{
		Pipeline: sampling.PipelineConfig{
			Hypercubes: "maxent", Method: "uips",
			NumHypercubes: 4, NumSamples: 256,
			CubeSx: 16, CubeSy: 16, CubeSz: 16,
			NumClusters: 5, Seed: 1,
		},
		Ranks: 4, Window: 2, MergeEvery: 4,
		Cost: sickle.DefaultCostModel(),
	}
	res, err := stream.Run(context.Background(), stream.NewReplaySource(d), cfg)
	if err != nil {
		return err
	}
	rep := streamBenchReport{
		Dataset:           d.Label,
		Ranks:             cfg.Ranks,
		Window:            cfg.Window,
		Snapshots:         res.Snapshots,
		Points:            res.Points,
		SnapshotsPerSec:   res.SnapshotsPerSec,
		PeakBuffered:      res.PeakBuffered,
		PeakBufferedBytes: res.PeakBufferedBytes,
		MergeRounds:       res.MergeRounds,
		Uniformity:        res.Sketch.UniformityIndex(),
		SimCommSeconds:    res.World.MaxSimCommSeconds(),
	}
	if res.PeakBuffered > cfg.Window {
		return fmt.Errorf("stream bench: peak buffered %d exceeded window %d",
			res.PeakBuffered, cfg.Window)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("stream bench: %d snapshots at %.2f/s, peak %d buffered (%.2f MiB), uniformity %.3f\n",
		rep.Snapshots, rep.SnapshotsPerSec, rep.PeakBuffered,
		float64(rep.PeakBufferedBytes)/(1<<20), rep.Uniformity)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
