package sickle

import (
	"strings"
	"testing"
)

func TestBuildAllDatasets(t *testing.T) {
	for _, name := range DatasetNames() {
		d, err := BuildDataset(name, Small)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Label != name {
			t.Fatalf("label %q, want %q", d.Label, name)
		}
	}
	if _, err := BuildDataset("nope", Small); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestBuildDatasetMemoized(t *testing.T) {
	a, _ := BuildDataset("GESTS-2048", Small)
	b, _ := BuildDataset("GESTS-2048", Small)
	if a != b {
		t.Fatal("dataset not memoized")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	s := FormatTable1(rows)
	for _, want := range []string{"TC2D", "OF2D", "SST-P1F4", "SST-P1F100", "GESTS-2048", "GESTS-8192"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %s:\n%s", want, s)
		}
	}
	// SST-P1F100 must be the anisotropic rhoy/ee case of Table 1.
	for _, r := range rows {
		if r.Label == "SST-P1F100" && (r.KCV != "rhoy" || r.Output != "ee") {
			t.Fatalf("P1F100 metadata wrong: %+v", r)
		}
	}
}

func TestFig3WakeCapture(t *testing.T) {
	res, f, err := Fig3(Small, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || len(res) != 4 {
		t.Fatalf("got %d methods", len(res))
	}
	byMethod := map[string]Fig3Result{}
	for _, r := range res {
		byMethod[r.Method] = r
	}
	// MaxEnt should capture the wake (vorticity tails) better than random —
	// the paper's Fig. 1/3 message.
	if byMethod["maxent"].TailCover <= byMethod["random"].TailCover {
		t.Fatalf("maxent tail coverage %v <= random %v",
			byMethod["maxent"].TailCover, byMethod["random"].TailCover)
	}
	if byMethod["full"].NumSamples <= byMethod["random"].NumSamples {
		t.Fatal("full must keep all points")
	}
}

func TestFig4UIPSClumping(t *testing.T) {
	res, err := Fig4(Small)
	if err != nil {
		t.Fatal(err)
	}
	var tc2d, sst float64
	for _, r := range res {
		switch r.Dataset {
		case "TC2D":
			tc2d = r.Coverage
		case "SST-P1F4":
			sst = r.Coverage
		}
	}
	// UIPS covers 2-D phase space much more uniformly than the 3-D
	// anisotropic case (the paper's Fig. 4).
	if !(tc2d > sst) {
		t.Fatalf("UIPS coverage: TC2D %v should exceed SST %v", tc2d, sst)
	}
}

func TestFig5TailCoverage(t *testing.T) {
	rows, err := Fig5(Small)
	if err != nil {
		t.Fatal(err)
	}
	get := func(ds, m string) Fig5Row {
		for _, r := range rows {
			if r.Dataset == ds && r.Method == m {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", ds, m)
		return Fig5Row{}
	}
	// On the anisotropic SST case, MaxEnt and UIPS must beat random in the
	// tails (Fig. 5b).
	sstRand := get("SST-P1F4", "random")
	if get("SST-P1F4", "maxent").TailCover <= sstRand.TailCover {
		t.Fatal("maxent should beat random tails on SST")
	}
	if get("SST-P1F4", "uips").TailCover <= sstRand.TailCover {
		t.Fatal("uips should beat random tails on SST")
	}
	// Random tracks the full PDF most closely by construction.
	if get("GESTS-2048", "random").KLtoFull > get("GESTS-2048", "maxent").KLtoFull {
		t.Fatal("random should have lowest KL to the full PDF")
	}
}

func TestFig7ScalabilityShape(t *testing.T) {
	rows, err := Fig7(t.Context(), Small, 512, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Both datasets: speedup at 2 ranks must be >1; efficiency decays with
	// rank count; the large dataset scales further than the small one.
	kneeSmallDS := KneeRanks(rows, "SST-P1F4", 0.5)
	kneeLargeDS := KneeRanks(rows, "SST-P1F100", 0.5)
	if kneeLargeDS <= kneeSmallDS {
		t.Fatalf("P1F100 knee (%d) should exceed P1F4 knee (%d)", kneeLargeDS, kneeSmallDS)
	}
	for _, r := range rows {
		if r.Ranks == 1 && (r.Speedup < 0.99 || r.Speedup > 1.01) {
			t.Fatalf("speedup at 1 rank = %v", r.Speedup)
		}
		if r.Speedup > float64(r.Ranks)*1.01 {
			t.Fatalf("superlinear speedup %v at %d ranks", r.Speedup, r.Ranks)
		}
	}
}

func TestFig6SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rows, err := Fig6(t.Context(), Small, Fig6Config{SampleSizes: []int{200}, Replicates: 2, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeanLoss <= 0 {
			t.Fatalf("%s: non-positive loss %v", r.Method, r.MeanLoss)
		}
	}
}

func TestFig8SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rows, err := Fig8(t.Context(), Small, Fig8Config{Datasets: []string{"SST-P1F4"}, Epochs: 3, CubeEdge: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d cases, want 5", len(rows))
	}
	var fullE, maxentE float64
	for _, r := range rows {
		if r.Report.TotalJoules() <= 0 {
			t.Fatalf("%s: no energy charged", r.Case)
		}
		switch r.Case {
		case "Hrandom-Xfull":
			fullE = r.Report.TrainJoules
		case "Hmaxent-Xmaxent":
			maxentE = r.Report.TrainJoules
		}
	}
	// The headline result: training on full hypercubes costs far more
	// energy than training on the 10% MaxEnt subsample.
	if fullE < 3*maxentE {
		t.Fatalf("full-sampling energy %v should dwarf maxent %v", fullE, maxentE)
	}
}

func TestFig9SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rows, err := Fig9(t.Context(), Small, Fig9Config{Epochs: 2, CubeEdge: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	methods := map[string]bool{}
	for _, r := range rows {
		methods[r.Method] = true
		if r.Report.EvalLoss < 0 {
			t.Fatalf("bad loss %v", r.Report.EvalLoss)
		}
	}
	for _, m := range []string{"uniform", "random", "maxent"} {
		if !methods[m] {
			t.Fatalf("method %s missing", m)
		}
	}
}

func TestEnergyReportString(t *testing.T) {
	rows, err := Fig9(t.Context(), Small, Fig9Config{Epochs: 1, CubeEdge: 8})
	if err != nil {
		t.Skip("fig9 unavailable")
	}
	s := EnergyReportString(rows[0].Report)
	if !strings.Contains(s, "kJ") {
		t.Fatalf("report string %q", s)
	}
}
