package train

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// synthExamples builds deterministic [T, N, C] → cube examples for the
// MLP-Transformer, exercising Linear, attention, LayerNorm and
// ConvTranspose3D in one stack.
func synthExamples(n int) []Example {
	rng := rand.New(rand.NewSource(42))
	ex := make([]Example, n)
	for i := range ex {
		ex[i] = Example{
			Input:  tensor.Randn(rng, 1, 2, 6, 3),
			Target: tensor.Randn(rng, 1, 2, 1, 4, 4, 4),
		}
	}
	return ex
}

func runTraining(t *testing.T) (Model, *History) {
	t.Helper()
	factory := func(rng *rand.Rand) Model {
		return NewMLPTransformer(rng, 3, 8, 2, 1, 4)
	}
	m, hist, err := Train(context.Background(), factory, synthExamples(24), Config{
		Epochs: 5, Batch: 4, Seed: 7, Normalize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, hist
}

// TestTrainingBitIdenticalSerialVsParallel runs the same 5-epoch training
// job with the kernel pool enabled and disabled and asserts every epoch
// loss and every final weight agrees bit for bit — the end-to-end version
// of the kernel parity contract, covering forward, backward, clipping,
// Adam, and the workspace reuse in one sweep.
func TestTrainingBitIdenticalSerialVsParallel(t *testing.T) {
	tensor.SetWorkers(4) // force a real pool even on single-core machines
	defer tensor.SetWorkers(0)
	mPar, histPar := runTraining(t)
	tensor.SetParallel(false)
	defer tensor.SetParallel(true)
	mSer, histSer := runTraining(t)

	for e := range histPar.TrainLoss {
		if math.Float64bits(histPar.TrainLoss[e]) != math.Float64bits(histSer.TrainLoss[e]) {
			t.Fatalf("epoch %d train loss differs: %v vs %v",
				e, histPar.TrainLoss[e], histSer.TrainLoss[e])
		}
		if math.Float64bits(histPar.TestLoss[e]) != math.Float64bits(histSer.TestLoss[e]) {
			t.Fatalf("epoch %d test loss differs: %v vs %v",
				e, histPar.TestLoss[e], histSer.TestLoss[e])
		}
	}
	pp, ps := mPar.(nn.Module).Params(), mSer.(nn.Module).Params()
	if len(pp) != len(ps) {
		t.Fatalf("param count differs: %d vs %d", len(pp), len(ps))
	}
	for i := range pp {
		for j := range pp[i].W.Data {
			if math.Float64bits(pp[i].W.Data[j]) != math.Float64bits(ps[i].W.Data[j]) {
				t.Fatalf("param %s[%d] differs: %v vs %v",
					pp[i].Name, j, pp[i].W.Data[j], ps[i].W.Data[j])
			}
		}
	}
}

// TestTrainingDDPBitIdenticalSerialVsParallel repeats the check for the
// multi-rank (minimpi allreduce) path, which stresses concurrent workspace
// Get/Put from rank goroutines.
func TestTrainingDDPBitIdenticalSerialVsParallel(t *testing.T) {
	tensor.SetWorkers(4) // force a real pool even on single-core machines
	defer tensor.SetWorkers(0)
	run := func() *History {
		factory := func(rng *rand.Rand) Model {
			return NewMLPTransformer(rng, 3, 8, 2, 1, 4)
		}
		_, hist, err := Train(context.Background(), factory, synthExamples(16), Config{
			Epochs: 2, Batch: 4, Seed: 7, Ranks: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	histPar := run()
	tensor.SetParallel(false)
	defer tensor.SetParallel(true)
	histSer := run()
	for e := range histPar.TrainLoss {
		if math.Float64bits(histPar.TrainLoss[e]) != math.Float64bits(histSer.TrainLoss[e]) {
			t.Fatalf("DDP epoch %d loss differs: %v vs %v",
				e, histPar.TrainLoss[e], histSer.TrainLoss[e])
		}
	}
}

// BenchmarkTrainStep measures one optimizer step (stack, forward, MSE,
// backward, clip, Adam) on the MLP-Transformer; the workspace keeps batch
// stacking allocation-free, which ReportAllocs tracks.
func BenchmarkTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLPTransformer(rng, 3, 8, 2, 1, 4)
	opt := nn.NewAdam(1e-3)
	ex := synthExamples(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(m)
		in, tgt := stackBatch(ex)
		pred := m.Forward(in)
		g := tensor.Get(pred.Shape...)
		nn.MSELossInto(g, pred, tgt)
		m.Backward(g)
		tensor.Put(g)
		tensor.Put(in)
		tensor.Put(tgt)
		nn.ClipGradNorm(m, 5)
		opt.Step(m)
	}
}
