// Package nn is SICKLE-Go's neural-network stack: the layers the paper's
// three architectures need (Linear, LSTM, LayerNorm, multi-head attention,
// Conv3D/ConvTranspose3D), MSE loss, the Adam optimizer with
// reduce-on-plateau scheduling, and gradient utilities. Every layer
// implements its backward pass analytically; tests validate each against
// finite differences.
package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and its gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...)}
}

// Module is anything owning parameters.
type Module interface {
	Params() []*Param
}

// ZeroGrads clears the gradients of all parameters.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// ParamCount returns the total number of scalars in a module.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Len()
	}
	return n
}

// GradNorm returns the global L2 norm of all gradients.
func GradNorm(m Module) float64 {
	s := 0.0
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales gradients so their global norm is at most maxNorm.
func ClipGradNorm(m Module, maxNorm float64) {
	n := GradNorm(m)
	if n <= maxNorm || n == 0 {
		return
	}
	f := maxNorm / n
	for _, p := range m.Params() {
		p.Grad.Scale(f)
	}
}

// xavier returns the Glorot-uniform initialization scale for a layer with
// the given fan-in and fan-out.
func xavier(fanIn, fanOut int) float64 {
	return math.Sqrt(6.0 / float64(fanIn+fanOut))
}

// initLinear fills w (out×in) with Glorot-uniform values.
func initLinear(rng *rand.Rand, out, in int) *tensor.Tensor {
	return tensor.Rand(rng, xavier(in, out), out, in)
}
