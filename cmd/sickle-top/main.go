// sickle-top is the flight-recorder console: it polls one serving target
// (a sickle-shard router, or a bare sickle-serve) over the /healthz,
// /debug/slo, /debug/events, and /debug/history endpoints and renders a
// live plain-ANSI dashboard — per-replica QPS, p50/p99 latency, error
// rate, SLO burn rates, and the event tail. Pointed at a router it shows
// the whole fleet (the router scatter-gathers its replicas' history and
// events).
//
// Usage:
//
//	sickle-top -target http://localhost:8090            # live dashboard, 2s refresh
//	sickle-top -target http://localhost:8090 -once      # one JSON snapshot (CI)
//	sickle-top -target http://localhost:8090 -once -text  # one rendered frame
//
// -once exits 0 even when the target is degraded; pipe the JSON through
// your own assertions. See internal/obs/top for the collection library.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs/top"
	"repro/pkg/client"
)

func main() {
	target := flag.String("target", "http://localhost:8090", "base URL of a sickle-shard router or sickle-serve")
	interval := flag.Duration("interval", 2*time.Second, "refresh period in live mode")
	window := flag.Duration("window", top.DefaultWindow, "trailing window for QPS/latency/error-rate stats")
	once := flag.Bool("once", false, "collect one snapshot, print it, and exit (for CI)")
	text := flag.Bool("text", false, "with -once, print the rendered dashboard instead of JSON")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	timeout := flag.Duration("timeout", 5*time.Second, "per-endpoint request timeout")
	flag.Parse()

	base := strings.TrimRight(*target, "/")
	c := client.New(base,
		client.WithHTTPClient(&http.Client{Timeout: *timeout}),
		client.WithRetry(0, 0))
	color := !*noColor

	if *once {
		ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
		defer cancel()
		snap := top.Collect(ctx, c, base, *window)
		if *text {
			fmt.Print(top.Render(snap, color))
		} else {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				fmt.Fprintln(os.Stderr, "sickle-top: encode:", err)
				os.Exit(1)
			}
		}
		// A snapshot that reached no endpoint at all is a failure CI should
		// see; partial answers are not.
		if snap.Health == nil && snap.History == nil && snap.SLO == nil && snap.Events == nil {
			fmt.Fprintln(os.Stderr, "sickle-top: target unreachable:", strings.Join(snap.Errors, "; "))
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		cctx, cancel := context.WithTimeout(ctx, *interval)
		snap := top.Collect(cctx, c, base, *window)
		cancel()
		// Home the cursor and clear: full-frame redraws without flicker on
		// any VT100-compatible terminal.
		fmt.Print("\x1b[H\x1b[2J" + top.Render(snap, color))
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-t.C:
		}
	}
}
