package shard

import (
	"container/list"
	"sync"
)

// ownerEntry is one remembered routing decision: raw job ID → the replica
// holding it, plus the idempotency key it was submitted under (empty for
// unkeyed jobs). The key is what lets the router re-find a replicated
// keyed job on the surviving owners after its primary dies.
type ownerEntry struct {
	raw     string
	replica string
	key     string
}

// ownerCache is the bounded sticky-routing memory behind job-ID fallback.
// Job IDs normally carry their replica suffix (job-3@r1), so this cache is
// only consulted for bare IDs and for the replicated-copy key lookup — a
// miss degrades to the legacy scatter, never to an error. It is a plain
// LRU: Remember promotes, the least-recently-used entry falls off at cap,
// and ForgetReplica drops every entry pointing at an ejected or removed
// replica so the map cannot pin dead routing state (the unbounded map it
// replaces kept entries for ejected replicas forever).
type ownerCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // raw ID → element whose Value is *ownerEntry
	order   *list.List               // front = most recently used
}

func newOwnerCache(capacity int) *ownerCache {
	if capacity <= 0 {
		capacity = maxJobOwnerEntries
	}
	return &ownerCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Remember records (or refreshes) raw → replica. A raw ID resubmitted
// under a different replica overwrites the old entry — the cache answers
// "where did I last see this ID", not "every place it ever lived" — with
// one exception: when both entries carry the same idempotency key they are
// replicated copies of one logical job, and the first-remembered replica
// (the one the client-facing ID suffix points at) is kept, so a copy seen
// later in a fan-out or fleet listing cannot clobber the mapping the
// dead-primary fallback depends on.
func (oc *ownerCache) Remember(raw, replica, key string) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if el, ok := oc.entries[raw]; ok {
		e := el.Value.(*ownerEntry)
		if e.key == "" || e.key != key {
			e.replica, e.key = replica, key
		}
		oc.order.MoveToFront(el)
		return
	}
	oc.entries[raw] = oc.order.PushFront(&ownerEntry{raw: raw, replica: replica, key: key})
	for oc.order.Len() > oc.cap {
		back := oc.order.Back()
		delete(oc.entries, back.Value.(*ownerEntry).raw)
		oc.order.Remove(back)
	}
}

// Resolve answers which replica last held raw, promoting the entry.
func (oc *ownerCache) Resolve(raw string) (string, bool) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	el, ok := oc.entries[raw]
	if !ok {
		return "", false
	}
	oc.order.MoveToFront(el)
	return el.Value.(*ownerEntry).replica, true
}

// Key returns the idempotency key raw was submitted under, but only if the
// cache still maps it to replica — a stale or overwritten entry must not
// redirect a read at some other replica's job.
func (oc *ownerCache) Key(raw, replica string) string {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if el, ok := oc.entries[raw]; ok {
		if e := el.Value.(*ownerEntry); e.replica == replica {
			return e.key
		}
	}
	return ""
}

// ForgetReplica evicts every entry pointing at replica (ejection, drain,
// removal) and reports how many it dropped.
func (oc *ownerCache) ForgetReplica(replica string) int {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	var dropped int
	for el := oc.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*ownerEntry); e.replica == replica {
			delete(oc.entries, e.raw)
			oc.order.Remove(el)
			dropped++
		}
		el = next
	}
	return dropped
}

// Len reports the current entry count.
func (oc *ownerCache) Len() int {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return oc.order.Len()
}
