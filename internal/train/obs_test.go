package train

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/pkg/api"
)

// TestTrainInstrumentation attaches a registry and tracer to a short run
// and checks the sickle_train_* series (epoch/batch histograms, live
// gauges) and the per-epoch span tree under one trace.
func TestTrainInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer("train", 64)
	ex := syntheticRegression(24, 7)
	factory := func(rng *rand.Rand) Model { return NewLSTMModel(rng, 2, 4, 1) }

	// The caller's trace must be joined, not replaced.
	tc := api.TraceContext{TraceID: api.NewTraceID(), SpanID: api.NewSpanID()}
	ctx := api.WithTrace(context.Background(), tc)
	_, hist, err := Train(ctx, factory, ex, Config{
		Epochs: 3, Batch: 8, Seed: 11, Metrics: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.TraceID != tc.TraceID {
		t.Fatalf("History.TraceID = %q, want caller's %q", hist.TraceID, tc.TraceID)
	}

	text := reg.Render()
	if errs := obs.LintExposition(text); len(errs) != 0 {
		t.Errorf("train registry fails lint: %v", errs)
	}
	for _, want := range []string{
		"sickle_train_epoch_seconds_count 3",
		`sickle_train_epoch_seconds_bucket{le="`,
		"sickle_train_batch_seconds_count",
		"sickle_train_batches_total",
		"sickle_train_epoch 3",
		"sickle_train_loss",
		"sickle_train_test_loss",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	spans := tracer.Spans(tc.TraceID)
	var root obs.Span
	epochs := 0
	for _, s := range spans {
		switch s.Name {
		case "train:run":
			root = s
		case "train:epoch":
			epochs++
		}
	}
	if root.SpanID == "" || root.ParentID != tc.SpanID {
		t.Fatalf("train:run span = %+v, want parent %q", root, tc.SpanID)
	}
	if epochs != 3 {
		t.Errorf("got %d train:epoch spans, want 3", epochs)
	}
	for _, s := range spans {
		if s.Name == "train:epoch" && s.ParentID != root.SpanID {
			t.Errorf("epoch span parent = %q, want %q", s.ParentID, root.SpanID)
		}
	}
}
