package grid

import "fmt"

// Hypercube identifies a sub-block of a field: origin (I0, J0, K0) and size
// (Sx, Sy, Sz). The paper's workflow partitions each snapshot into 32³
// candidate hypercubes before MaxEnt phase-1 selection.
type Hypercube struct {
	I0, J0, K0 int
	Sx, Sy, Sz int
	ID         int // position in the tiling, stable across runs
}

// NPoints returns the number of grid points in the cube.
func (h Hypercube) NPoints() int { return h.Sx * h.Sy * h.Sz }

// Tile partitions a field into non-overlapping hypercubes of size
// sx×sy×sz, dropping any partial cubes at the domain edges (matching the
// "structured cubes required by neural networks" constraint in §4).
func Tile(f *Field, sx, sy, sz int) []Hypercube {
	if sx <= 0 || sy <= 0 || sz <= 0 {
		panic(fmt.Sprintf("grid: invalid hypercube size %d×%d×%d", sx, sy, sz))
	}
	if f.Is2D() {
		sz = 1
	}
	var cubes []Hypercube
	id := 0
	for k := 0; k+sz <= f.Nz; k += sz {
		for j := 0; j+sy <= f.Ny; j += sy {
			for i := 0; i+sx <= f.Nx; i += sx {
				cubes = append(cubes, Hypercube{I0: i, J0: j, K0: k, Sx: sx, Sy: sy, Sz: sz, ID: id})
				id++
			}
		}
	}
	return cubes
}

// Indices returns the flat field indices covered by cube h, in x-fastest
// order.
func (h Hypercube) Indices(f *Field) []int {
	out := make([]int, 0, h.NPoints())
	for k := h.K0; k < h.K0+h.Sz; k++ {
		for j := h.J0; j < h.J0+h.Sy; j++ {
			base := (k*f.Ny+j)*f.Nx + h.I0
			for i := 0; i < h.Sx; i++ {
				out = append(out, base+i)
			}
		}
	}
	return out
}

// Extract copies cube h of field f into a standalone Field containing the
// named variables (all variables when vars is nil).
func (h Hypercube) Extract(f *Field, vars []string) *Field {
	if vars == nil {
		vars = f.VarNames()
	}
	sub := NewField(h.Sx, h.Sy, h.Sz)
	sub.Dx, sub.Dy, sub.Dz = f.Dx, f.Dy, f.Dz
	sub.Time = f.Time
	idx := h.Indices(f)
	for _, name := range vars {
		src := f.Var(name)
		dst := sub.AddVar(name, nil)
		for p, flat := range idx {
			dst[p] = src[flat]
		}
	}
	return sub
}

// VarValues gathers one variable over the cube without building a Field.
func (h Hypercube) VarValues(f *Field, name string) []float64 {
	src := f.Var(name)
	out := make([]float64, 0, h.NPoints())
	for k := h.K0; k < h.K0+h.Sz; k++ {
		for j := h.J0; j < h.J0+h.Sy; j++ {
			base := (k*f.Ny+j)*f.Nx + h.I0
			for i := 0; i < h.Sx; i++ {
				out = append(out, src[base+i])
			}
		}
	}
	return out
}
