// Package cfd3d implements a coarse pseudo-spectral/finite-difference
// Boussinesq solver used to evolve Taylor-Green vortices into stratified
// turbulence — the dynamically consistent substitute for the paper's
// SST-P1F4 "T-G[i] time evolving" DNS trajectory (Table 1). Advection and
// diffusion use second-order central differences; incompressibility is
// enforced by a spectral pressure projection on the triply periodic domain.
package cfd3d

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/spectral"
	"repro/internal/tensor"
)

// Config sets up the Boussinesq solver.
type Config struct {
	N      int     // cube edge (power of two)
	Nu     float64 // kinematic viscosity, default 5e-3
	Kappa  float64 // density diffusivity, default Nu (Pr = 1, as in SST-P1)
	BruntN float64 // buoyancy frequency of the stable background, default 1
	Dt     float64 // time step, default 0.25·h/u_max estimated at init
	Noise  float64 // initial perturbation amplitude, default 0.01
	Seed   int64
}

func (c *Config) defaults() {
	if c.N == 0 {
		c.N = 32
	}
	if c.Nu == 0 {
		c.Nu = 5e-3
	}
	if c.Kappa == 0 {
		c.Kappa = c.Nu
	}
	if c.BruntN == 0 {
		c.BruntN = 1
	}
	if c.Noise == 0 {
		c.Noise = 0.01
	}
}

// Solver holds the evolving state. Density r is the perturbation about the
// linear stable background; buoyancy b = -N²·r couples it to w.
type Solver struct {
	Cfg        Config
	N          int
	H          float64 // grid spacing (domain 2π)
	U, V, W, R []float64
	Time       float64
	Steps      int
	// Persistent scratch: the next-state fields Step writes into (swapped
	// with the live fields each step) and the spectral grids the projection
	// reuses, so the steady-state step allocates nothing.
	scrU, scrV, scrW, scrR []float64
	gu, gv, gw             *spectral.Grid3
}

// NewTaylorGreen initializes the classic Taylor-Green vortex array
// u = sin x cos y cos z, v = -cos x sin y cos z, w = 0 with a small random
// perturbation that seeds the transition to turbulence.
func NewTaylorGreen(cfg Config) *Solver {
	cfg.defaults()
	n := cfg.N
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("cfd3d: N must be a power of two, got %d", n))
	}
	s := &Solver{Cfg: cfg, N: n, H: 2 * math.Pi / float64(n)}
	np := n * n * n
	s.U = make([]float64, np)
	s.V = make([]float64, np)
	s.W = make([]float64, np)
	s.R = make([]float64, np)
	s.scrU = make([]float64, np)
	s.scrV = make([]float64, np)
	s.scrW = make([]float64, np)
	s.scrR = make([]float64, np)
	s.gu = spectral.NewGrid3(n, n, n)
	s.gv = spectral.NewGrid3(n, n, n)
	s.gw = spectral.NewGrid3(n, n, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for k := 0; k < n; k++ {
		z := float64(k) * s.H
		for j := 0; j < n; j++ {
			y := float64(j) * s.H
			for i := 0; i < n; i++ {
				x := float64(i) * s.H
				idx := (k*n+j)*n + i
				s.U[idx] = math.Sin(x)*math.Cos(y)*math.Cos(z) + cfg.Noise*rng.NormFloat64()
				s.V[idx] = -math.Cos(x)*math.Sin(y)*math.Cos(z) + cfg.Noise*rng.NormFloat64()
				s.W[idx] = cfg.Noise * rng.NormFloat64()
				s.R[idx] = 0
			}
		}
	}
	if cfg.Dt == 0 {
		s.Cfg.Dt = 0.25 * s.H // u_max ~ 1 for Taylor-Green
	}
	s.project()
	return s
}

func (s *Solver) idx(i, j, k int) int { return (k*s.N+j)*s.N + i }

func (s *Solver) wrap(i int) int {
	i %= s.N
	if i < 0 {
		i += s.N
	}
	return i
}

// deriv computes the central difference of f along the given axis at (i,j,k).
func (s *Solver) deriv(f []float64, i, j, k, axis int) float64 {
	switch axis {
	case 0:
		return (f[s.idx(s.wrap(i+1), j, k)] - f[s.idx(s.wrap(i-1), j, k)]) / (2 * s.H)
	case 1:
		return (f[s.idx(i, s.wrap(j+1), k)] - f[s.idx(i, s.wrap(j-1), k)]) / (2 * s.H)
	default:
		return (f[s.idx(i, j, s.wrap(k+1))] - f[s.idx(i, j, s.wrap(k-1))]) / (2 * s.H)
	}
}

// laplacian computes the 7-point Laplacian at (i,j,k).
func (s *Solver) laplacian(f []float64, i, j, k int) float64 {
	c := f[s.idx(i, j, k)]
	sum := f[s.idx(s.wrap(i+1), j, k)] + f[s.idx(s.wrap(i-1), j, k)] +
		f[s.idx(i, s.wrap(j+1), k)] + f[s.idx(i, s.wrap(j-1), k)] +
		f[s.idx(i, j, s.wrap(k+1))] + f[s.idx(i, j, s.wrap(k-1))]
	return (sum - 6*c) / (s.H * s.H)
}

// Step advances one explicit Euler step with pressure projection. The
// finite-difference update reads only the previous-state fields and writes
// only the scratch fields, so z-planes fan out across the kernel pool with
// bit-identical results to the serial reference stepRef; the spectral
// projection parallelizes the same way (independent lines/planes).
func (s *Solver) Step() { s.step(tensor.DefaultPool()) }

// stepRef is the serial reference implementation used by the parity tests:
// the identical decomposition executed inline.
func (s *Solver) stepRef() { s.step(nil) }

func (s *Solver) step(p *tensor.Pool) {
	n := s.N
	dt := s.Cfg.Dt
	nu := s.Cfg.Nu
	kap := s.Cfg.Kappa
	n2 := s.Cfg.BruntN * s.Cfg.BruntN

	nu2, nv2, nw2, nr2 := s.scrU, s.scrV, s.scrW, s.scrR

	p.ParallelFor(n, 1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					id := s.idx(i, j, k)
					u, v, w := s.U[id], s.V[id], s.W[id]
					adv := func(f []float64) float64 {
						return u*s.deriv(f, i, j, k, 0) + v*s.deriv(f, i, j, k, 1) + w*s.deriv(f, i, j, k, 2)
					}
					nu2[id] = u + dt*(-adv(s.U)+nu*s.laplacian(s.U, i, j, k))
					nv2[id] = v + dt*(-adv(s.V)+nu*s.laplacian(s.V, i, j, k))
					// Buoyancy couples w and r as a local oscillator at
					// frequency N. Explicit Euler amplifies oscillations
					// (growth √(1+(N·dt)²) per step), so the w↔r pair is
					// advanced semi-implicitly: the 2×2 linear system
					//   w' = A - dt·N²·r',  r' = B + dt·w'
					// is solved in closed form, which is neutrally stable.
					a := w + dt*(-adv(s.W)+nu*s.laplacian(s.W, i, j, k))
					bb := s.R[id] + dt*(-adv(s.R)+kap*s.laplacian(s.R, i, j, k))
					wNew := (a - dt*n2*bb) / (1 + dt*dt*n2)
					nw2[id] = wNew
					nr2[id] = bb + dt*wNew
				}
			}
		}
	})
	s.U, s.V, s.W, s.R, s.scrU, s.scrV, s.scrW, s.scrR =
		nu2, nv2, nw2, nr2, s.U, s.V, s.W, s.R
	s.projectP(p)
	s.Time += dt
	s.Steps++
}

// project removes the divergent part of the velocity with a direct
// solenoidal projection in spectral space: û ← û − k̂(k̂·û). Nyquist planes
// are zeroed (they are self-conjugate, so the projection would break
// Hermitian symmetry there; zeroing doubles as a mild dealiasing filter).
func (s *Solver) project() { s.projectP(tensor.DefaultPool()) }

func (s *Solver) projectP(p *tensor.Pool) {
	n := s.N
	gu, gv, gw := s.gu, s.gv, s.gw
	gu.FromReal(s.U)
	gv.FromReal(s.V)
	gw.FromReal(s.W)
	gu.FFT3()
	gv.FFT3()
	gw.FFT3()
	// The per-mode projection is independent cell-wise; fan out z-planes.
	p.ParallelFor(n, 1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			kz := spectral.WaveNumber(k, n)
			for j := 0; j < n; j++ {
				ky := spectral.WaveNumber(j, n)
				for i := 0; i < n; i++ {
					kx := spectral.WaveNumber(i, n)
					idx := (k*n+j)*n + i
					if i == n/2 || j == n/2 || k == n/2 {
						gu.Data[idx], gv.Data[idx], gw.Data[idx] = 0, 0, 0
						continue
					}
					k2 := kx*kx + ky*ky + kz*kz
					if k2 == 0 {
						continue // mean flow is divergence-free; keep it
					}
					du, dv, dw := gu.Data[idx], gv.Data[idx], gw.Data[idx]
					dot := (complex(kx, 0)*du + complex(ky, 0)*dv + complex(kz, 0)*dw) / complex(k2, 0)
					gu.Data[idx] = du - complex(kx, 0)*dot
					gv.Data[idx] = dv - complex(ky, 0)*dot
					gw.Data[idx] = dw - complex(kz, 0)*dot
				}
			}
		}
	})
	gu.IFFT3()
	gv.IFFT3()
	gw.IFFT3()
	gu.RealPart(s.U)
	gv.RealPart(s.V)
	gw.RealPart(s.W)
}

// KineticEnergy returns the volume-averaged kinetic energy ½⟨|u|²⟩.
func (s *Solver) KineticEnergy() float64 {
	e := 0.0
	for i := range s.U {
		e += s.U[i]*s.U[i] + s.V[i]*s.V[i] + s.W[i]*s.W[i]
	}
	return 0.5 * e / float64(len(s.U))
}

// MaxDivergence returns the max |∇·u| (spectral), a solver health check.
func (s *Solver) MaxDivergence() float64 {
	n := s.N
	dudx := spectral.Derivative(s.U, n, n, n, 0)
	dvdy := spectral.Derivative(s.V, n, n, n, 1)
	dwdz := spectral.Derivative(s.W, n, n, n, 2)
	m := 0.0
	for i := range dudx {
		if d := math.Abs(dudx[i] + dvdy[i] + dwdz[i]); d > m {
			m = d
		}
	}
	return m
}

// Snapshot exports the current state as a grid.Field with the SST variable
// set: u, v, w, r plus derived p, dissipation, pv.
func (s *Solver) Snapshot() *grid.Field {
	n := s.N
	f := grid.NewField(n, n, n)
	f.Dx, f.Dy, f.Dz = s.H, s.H, s.H
	f.Time = s.Time
	f.AddVar("u", append([]float64(nil), s.U...))
	f.AddVar("v", append([]float64(nil), s.V...))
	f.AddVar("w", append([]float64(nil), s.W...))
	f.AddVar("r", append([]float64(nil), s.R...))
	f.AddVar("p", spectral.PressureFromVelocity(s.U, s.V, s.W, n, n, n))
	f.ComputeDissipation(s.Cfg.Nu)
	f.ComputePotentialVorticity()
	return f
}

// EvolveDataset runs the Taylor-Green trajectory for nSnapshots, taking a
// snapshot every stepsPer steps — the SST-P1F4 analogue with genuine
// laminar → turbulent → re-laminarizing dynamics.
func EvolveDataset(label string, nSnapshots, stepsPer int, cfg Config) *grid.Dataset {
	s := NewTaylorGreen(cfg)
	snaps := make([]*grid.Field, 0, nSnapshots)
	for t := 0; t < nSnapshots; t++ {
		if t > 0 {
			for st := 0; st < stepsPer; st++ {
				s.Step()
			}
		}
		snaps = append(snaps, s.Snapshot())
	}
	return &grid.Dataset{
		Label:       label,
		Description: "3D Taylor-Green-initialized stratified trajectory (synthetic SST-P1F4 analogue)",
		Snapshots:   snaps,
		InputVars:   []string{"u", "v", "w", "r"},
		OutputVars:  []string{"p"},
		ClusterVar:  "pv",
	}
}
