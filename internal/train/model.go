// Package train implements SICKLE-Go's model zoo (the three architectures
// of the paper's Table 2: LSTM, MLP-Transformer, CNN-Transformer, plus the
// MATEY-like multiscale model of Fig. 9), batch assembly from subsampled
// cubes, and the training loop with data-parallel execution over minimpi
// ranks and energy accounting.
package train

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Model is a trainable network with explicit forward/backward passes.
type Model interface {
	nn.Module
	Name() string
	// Forward maps a batch input to a batch prediction.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/dpred and accumulates parameter gradients.
	Backward(dy *tensor.Tensor)
}

// LSTMModel is the paper's sample-single architecture: two LSTM layers and
// three dense layers mapping an input sequence [B, T, C] to a single
// per-sequence prediction [B, C'] (e.g. drag at the final timestep).
type LSTMModel struct {
	lstm1, lstm2     *nn.LSTM
	d1, d2, d3       *nn.Linear
	a1, a2           *nn.Activation
	batch, seq, hid2 int
}

// NewLSTMModel builds the two-LSTM/three-dense stack of Table 2.
func NewLSTMModel(rng *rand.Rand, inDim, hidden, outDim int) *LSTMModel {
	return &LSTMModel{
		lstm1: nn.NewLSTM(rng, inDim, hidden),
		lstm2: nn.NewLSTM(rng, hidden, hidden),
		d1:    nn.NewLinear(rng, hidden, hidden),
		a1:    nn.NewActivation("relu"),
		d2:    nn.NewLinear(rng, hidden, hidden/2+1),
		a2:    nn.NewActivation("relu"),
		d3:    nn.NewLinear(rng, hidden/2+1, outDim),
	}
}

// Name implements Model.
func (m *LSTMModel) Name() string { return "LSTM" }

// Params implements nn.Module.
func (m *LSTMModel) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.lstm1.Params()...)
	out = append(out, m.lstm2.Params()...)
	out = append(out, m.d1.Params()...)
	out = append(out, m.d2.Params()...)
	out = append(out, m.d3.Params()...)
	return out
}

// Forward maps x [B, T, C] to [B, C'].
func (m *LSTMModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, t := x.Dim(0), x.Dim(1)
	m.batch, m.seq = b, t
	h := m.lstm2.Forward(m.lstm1.Forward(x)) // [B, T, H]
	m.hid2 = h.Dim(2)
	// Take the final timestep.
	last := tensor.New(b, m.hid2)
	for i := 0; i < b; i++ {
		copy(last.Data[i*m.hid2:(i+1)*m.hid2],
			h.Data[(i*t+t-1)*m.hid2:(i*t+t-1)*m.hid2+m.hid2])
	}
	return m.d3.Forward(m.a2.Forward(m.d2.Forward(m.a1.Forward(m.d1.Forward(last)))))
}

// Backward implements Model.
func (m *LSTMModel) Backward(dy *tensor.Tensor) {
	dLast := m.d1.Backward(m.a1.Backward(m.d2.Backward(m.a2.Backward(m.d3.Backward(dy)))))
	// Scatter the last-timestep gradient back into the sequence.
	dh := tensor.New(m.batch, m.seq, m.hid2)
	for i := 0; i < m.batch; i++ {
		copy(dh.Data[(i*m.seq+m.seq-1)*m.hid2:(i*m.seq+m.seq-1)*m.hid2+m.hid2],
			dLast.Data[i*m.hid2:(i+1)*m.hid2])
	}
	m.lstm1.Backward(m.lstm2.Backward(dh))
}
