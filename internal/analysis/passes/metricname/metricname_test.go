package metricname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/metricname"
)

// New() isolates the duplicate-site table from other runs in this
// process (the shared Analyzer accumulates sites across packages).
func TestMetricname(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, metricname.New(), "metricname/a")
}
