// sickle-stream is the in-situ variant of the T1 stage: instead of
// materializing a full dataset on disk and then subsampling it, it couples a
// snapshot producer (a live solver, a synthetic generator, or a replay of a
// registry dataset) directly to the two-phase sampling pipeline under a
// fixed in-flight snapshot window, streaming the selection into per-rank
// .skl shards. It reports throughput, the peak-RSS proxy (max buffered
// snapshot bytes), and selection-quality stats, optionally against the
// offline sickle-subsample result.
//
// Usage:
//
//	sickle-stream -source replay -dataset SST-P1F4 -n 4 -window 2 -o stream
//	sickle-stream -source cfd3d -grid 32 -snapshots 16 -steps-per 2 -o stream
//	sickle-stream -case case.yaml -compare-offline
//
//sicklevet:file-ignore ologonly the run summary is the CLI result, printed once after the pipeline exits
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cfd2d"
	"repro/internal/cfd3d"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/obs/events"
	olog "repro/internal/obs/log"
	"repro/internal/obs/tsdb"
	"repro/internal/sampling"
	"repro/internal/sickle"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/synth"
)

func main() {
	caseFile := flag.String("case", "", "YAML case file (optional; flags override)")
	source := flag.String("source", "replay", "snapshot source: replay|cfd2d|cfd3d|synth")
	dataset := flag.String("dataset", "SST-P1F4", "dataset name for -source replay")
	scaleStr := flag.String("scale", "small", "dataset scale for -source replay")
	snapshots := flag.Int("snapshots", 8, "snapshots to stream from a live source")
	stepsPer := flag.Int("steps-per", 2, "solver steps between snapshots (live sources)")
	gridN := flag.Int("grid", 32, "grid edge for live 3-D sources (power of two)")
	ranks := flag.Int("n", 0, "minimpi worker ranks")
	window := flag.Int("window", 0, "max in-flight snapshots (memory budget)")
	mergeEvery := flag.Int("merge-every", 0, "collective sketch merge period in snapshots (0 = end only)")
	budget := flag.Int("budget", 0, "per-cube reservoir budget across the stream (0 = keep all)")
	out := flag.String("o", "", "shard path prefix (empty = keep selection in memory)")
	hsel := flag.String("hypercubes", "", "phase-1 selector: random|maxent")
	method := flag.String("method", "", "phase-2 sampler: full|random|uniform|lhs|stratified|uips|maxent")
	compare := flag.Bool("compare-offline", false, "also run the offline pipeline and compare selection quality (replay source only)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines")
	debugAddr := flag.String("debug-addr", "", "pprof + metrics + traces listen address for the run (\"\" = off)")
	flag.Parse()

	lvl, lok := olog.ParseLevel(*logLevel)
	lg := olog.New(os.Stderr, lvl, *logJSON)
	if !lok {
		lg.Warn("unknown -log-level, using info", "given", *logLevel)
	}
	fatal := func(msg string, kv ...any) {
		lg.Error(msg, kv...)
		os.Exit(1)
	}
	// Explicitly-set flags override the case file even at their zero value
	// (-budget 0 must force parity mode, -o "" in-memory mode, etc.).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	pcfg := sampling.PipelineConfig{Hypercubes: "maxent", Method: "maxent", NumClusters: 5, Seed: 1}
	scfg := stream.Config{}
	if *caseFile != "" {
		c, err := config.LoadCase(*caseFile)
		if err != nil {
			fatal("load case file", "err", err)
		}
		pcfg.Hypercubes = c.Hypercubes
		pcfg.Method = c.Method
		pcfg.NumHypercubes = c.NumHypercubes
		pcfg.NumSamples = c.NumSamples
		pcfg.NumClusters = c.NumClusters
		pcfg.CubeSx, pcfg.CubeSy, pcfg.CubeSz = c.NxSL, c.NySL, c.NzSL
		pcfg.Seed = c.Seed
		scfg.Ranks = c.Stream.Ranks
		scfg.Window = c.Stream.Window
		scfg.MergeEvery = c.Stream.MergeEvery
		scfg.SketchBins = c.Stream.SketchBins
		scfg.ReservoirBudget = c.Stream.Reservoir
		scfg.ShardPrefix = c.Stream.ShardPrefix
	}
	if *hsel != "" {
		pcfg.Hypercubes = *hsel
	}
	if *method != "" {
		pcfg.Method = *method
	}
	if set["n"] {
		scfg.Ranks = *ranks
	}
	if set["window"] {
		scfg.Window = *window
	}
	if set["merge-every"] {
		scfg.MergeEvery = *mergeEvery
	}
	if set["budget"] {
		scfg.ReservoirBudget = *budget
	}
	if set["o"] {
		scfg.ShardPrefix = *out
	}

	var (
		src       stream.SnapshotSource
		offlineDS *grid.Dataset
	)
	switch *source {
	case "replay":
		scale := sickle.Small
		if *scaleStr == "large" {
			scale = sickle.Large
		}
		d, err := sickle.BuildDataset(*dataset, scale)
		if err != nil {
			fatal("build dataset", "err", err)
		}
		offlineDS = d
		src = stream.NewReplaySource(d)
	case "cfd2d":
		src = stream.NewCFD2DSource(cfd2d.Config{
			Nx: 180, Ny: 60, U0: 0.1, Reynolds: 150, D: 12, Cx: 30, Cy: 30,
		}, 500, *snapshots, *stepsPer)
	case "cfd3d":
		src = stream.NewCFD3DSource(cfd3d.Config{N: *gridN, Seed: 11, BruntN: 2},
			*snapshots, *stepsPer)
	case "synth":
		src = stream.NewSynthSource(synth.StratifiedConfig{
			Nx: *gridN, Ny: *gridN / 2, Nz: *gridN, Seed: 13, AnisoFactor: 6, Froude: 0.15,
		}, *snapshots)
	default:
		fatal("unknown source (want replay|cfd2d|cfd3d|synth)", "source", *source)
	}
	defer src.Close()

	meter := energy.NewMeter()
	pcfg.Meter = meter
	scfg.Pipeline = pcfg
	scfg.Cost = sickle.DefaultCostModel()

	// Observability: the run always records stage metrics and spans; the
	// -debug-addr sidecar additionally serves them (plus pprof) live.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	tracer := obs.NewTracer("stream", 0)
	tracer.RegisterDropped(reg)
	journal := events.NewJournal("stream", 0)
	journal.Register(reg)
	history := tsdb.NewStore("stream", reg, 0, 0)
	scfg.Metrics = reg
	scfg.Tracer = tracer
	scfg.Journal = journal
	if *debugAddr != "" {
		history.Start()
		defer history.Stop()
		obs.ServeDebug(*debugAddr, reg, tracer, func(err error) {
			lg.Error("debug listener", "err", err)
		}, history, journal)
		lg.Info("debug endpoints up", "addr", *debugAddr)
	}

	res, err := stream.Run(context.Background(), src, scfg)
	if err != nil {
		fatal("stream run", "err", err)
	}

	meta := src.Meta()
	fmt.Printf("source: %s (%s), %d snapshots streamed\n", *source, meta.Label, res.Snapshots)
	fmt.Printf("pipeline: H%s-X%s, %d cubes kept, %d points selected\n",
		pcfg.Hypercubes, pcfg.Method, len(res.Kept), res.Points)
	fmt.Printf("throughput: %.2f snapshots/s (elapsed %v, sim comm %.3g s, %d merge rounds)\n",
		res.SnapshotsPerSec, res.Elapsed, res.World.MaxSimCommSeconds(), res.MergeRounds)
	fmt.Printf("memory: peak %d buffered snapshots (%.2f MiB) — window budget held\n",
		res.PeakBuffered, float64(res.PeakBufferedBytes)/(1<<20))
	fmt.Printf("selection quality: sketch uniformity %.3f over %d occupied cells\n",
		res.Sketch.UniformityIndex(), res.Sketch.OccupiedCells())
	fmt.Printf("observability: trace %s, %d backpressure stalls (%.3fs stalled)\n",
		res.TraceID, res.Stalls, res.StallSeconds)
	fmt.Println(meter.String())
	for _, p := range res.ShardPaths {
		fmt.Printf("wrote %s\n", p)
	}

	if *compare {
		if offlineDS == nil {
			fatal("-compare-offline requires -source replay")
		}
		// Use the clamped config the stream actually ran with, so both
		// selections share the same cube geometry.
		offline, err := sampling.SubsampleDataset(context.Background(), offlineDS, res.Pipeline)
		if err != nil {
			fatal("offline comparison run", "err", err)
		}
		// Score the offline selection on the stream's own sketch geometry so
		// the two uniformity numbers are directly comparable.
		ho := stats.NewNDHistogram(res.Sketch.Lo, res.Sketch.Hi, res.Sketch.Bins)
		nOffline := 0
		for i := range offline {
			for _, row := range offline[i].Features {
				ho.Add(row)
			}
			nOffline += len(offline[i].LocalIdx)
		}
		du := res.Sketch.UniformityIndex() - ho.UniformityIndex()
		fmt.Printf("offline reference: %d points, uniformity %.3f (stream-offline delta %+.4f)\n",
			nOffline, ho.UniformityIndex(), du)
	}
}
