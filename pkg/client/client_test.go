package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

// TestRetryOnOverloaded: typed 429 responses are retried with backoff
// until the server recovers; the successful payload comes back.
func TestRetryOnOverloaded(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{
				Error: api.Errorf(api.CodeOverloaded, "busy")})
			return
		}
		json.NewEncoder(w).Encode(api.InferResponse{Model: "m", Version: 3})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond))
	out, err := c.Infer(context.Background(), &api.InferRequest{Model: "m"})
	if err != nil {
		t.Fatalf("Infer after retries: %v", err)
	}
	if out.Version != 3 || calls.Load() != 3 {
		t.Fatalf("version %d after %d calls, want 3 after 3", out.Version, calls.Load())
	}
}

// TestRetryExhaustion: the typed overloaded error surfaces (with its code)
// once retries run out.
func TestRetryExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{
			Error: api.Errorf(api.CodeOverloaded, "busy").WithRetryAfter(0)})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(1, time.Millisecond))
	_, err := c.Infer(context.Background(), &api.InferRequest{Model: "m"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("err = %v, want overloaded", err)
	}
}

// TestRetryHonorsContext: cancellation during backoff returns promptly
// with the typed canceled code instead of sleeping out the delay.
func TestRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{
			Error: api.Errorf(api.CodeOverloaded, "busy").WithRetryAfter(30)})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := c.Infer(ctx, &api.InferRequest{Model: "m"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeCanceled {
		t.Fatalf("err = %v, want canceled", err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatal("retry loop ignored the canceled context")
	}
}

// TestLegacyErrorDecode: a v1-style {"error":"msg"} failure still becomes
// a typed error, with the code recovered from the HTTP status.
func TestLegacyErrorDecode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown model \"x\""})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(0, 0))
	_, err := c.Infer(context.Background(), &api.InferRequest{Model: "x"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("err = %v, want not_found from bare 404", err)
	}
}

// TestNegotiateUnsupported: a server without /api/version yields the
// typed unsupported_version error.
func TestNegotiateUnsupported(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL)
	_, err := c.Negotiate(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnsupportedVersion {
		t.Fatalf("err = %v, want unsupported_version", err)
	}
}
