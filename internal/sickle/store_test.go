package sickle

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sampling"
)

func TestSaveLoadCubeSamplesRoundTrip(t *testing.T) {
	d, err := BuildDataset("SST-P1F4", Small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampling.PipelineConfig{
		Hypercubes: "maxent", Method: "maxent",
		NumHypercubes: 2, NumSamples: 50,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, NumClusters: 4, Seed: 1,
	}
	cubes, err := sampling.SubsampleDataset(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub.skl")
	if err := SaveCubeSamples(path, cubes); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCubeSamples(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cubes) {
		t.Fatalf("round trip %d cubes, want %d", len(got), len(cubes))
	}
	for i := range got {
		a, b := got[i], cubes[i]
		if a.Snapshot != b.Snapshot || a.Cube != b.Cube {
			t.Fatalf("cube %d header mismatch", i)
		}
		for r := range a.LocalIdx {
			if a.LocalIdx[r] != b.LocalIdx[r] {
				t.Fatal("local index mismatch")
			}
			for v := range a.Features[r] {
				if a.Features[r][v] != b.Features[r][v] {
					t.Fatal("feature value mismatch")
				}
			}
			for v := range a.Targets[r] {
				if a.Targets[r][v] != b.Targets[r][v] {
					t.Fatal("target value mismatch")
				}
			}
		}
	}
	// Storage reduction must be substantial (10% points, few cubes).
	ratio, err := StorageReduction(d, path)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 10 {
		t.Fatalf("storage reduction %vx, want >= 10x", ratio)
	}
}

func TestShardAppenderRoundTrip(t *testing.T) {
	d, err := BuildDataset("SST-P1F4", Small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampling.PipelineConfig{
		Hypercubes: "random", Method: "random",
		NumHypercubes: 3, NumSamples: 40,
		CubeSx: 16, CubeSy: 16, CubeSz: 16, Seed: 2,
	}
	cubes, err := sampling.SubsampleDataset(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) < 4 {
		t.Fatalf("want several cube samples, got %d", len(cubes))
	}
	path := filepath.Join(t.TempDir(), "shard.skl")
	a, err := OpenShardAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append incrementally in uneven batches, as a streaming writer would.
	if err := a.Append(cubes[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(cubes[1:3]...); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(cubes[3:]...); err != nil {
		t.Fatal(err)
	}
	if a.Count() != len(cubes) {
		t.Fatalf("Count = %d, want %d", a.Count(), len(cubes))
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
	if err := a.Append(cubes[0]); err == nil {
		t.Fatal("append after Close should error")
	}

	got, err := LoadCubeSamples(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cubes) {
		t.Fatalf("loaded %d cubes, want %d", len(got), len(cubes))
	}
	for i := range got {
		a, b := got[i], cubes[i]
		if a.Snapshot != b.Snapshot || a.Cube != b.Cube || len(a.LocalIdx) != len(b.LocalIdx) {
			t.Fatalf("cube %d mismatch after round trip", i)
		}
		for r := range a.LocalIdx {
			if a.LocalIdx[r] != b.LocalIdx[r] {
				t.Fatal("local index mismatch")
			}
			for v := range a.Features[r] {
				if a.Features[r][v] != b.Features[r][v] {
					t.Fatal("feature value mismatch")
				}
			}
			for v := range a.Targets[r] {
				if a.Targets[r][v] != b.Targets[r][v] {
					t.Fatal("target value mismatch")
				}
			}
		}
	}

	// The appender output must be byte-identical to SaveCubeSamples on the
	// same cube set (same format, count patched correctly).
	ref := filepath.Join(t.TempDir(), "ref.skl")
	if err := SaveCubeSamples(ref, cubes); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("appender output differs from SaveCubeSamples output")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.skl")
	if err := os.WriteFile(path, []byte("not a subsample"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCubeSamples(path); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := LoadCubeSamples(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadRejectsTrailingBytes(t *testing.T) {
	// A shard with leftover bytes after the declared cube count (e.g. a
	// partial record flushed before a write failure) must not load as a
	// smaller valid dataset.
	path := filepath.Join(t.TempDir(), "trailing.skl")
	if err := SaveCubeSamples(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCubeSamples(path); err != nil {
		t.Fatalf("empty shard should load: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCubeSamples(path); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
}
