package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Conv3D is a 3-D convolution over inputs [B, Ci, D, H, W] with cubic
// kernels, stride and zero padding — the encoder building block of the
// paper's CNN-Transformer (Table 2). Forward fans (batch, out-channel)
// pairs across the kernel pool; Backward fans batch items with per-item
// gradient partials combined in batch order, so parallel and serial runs
// are bit-identical.
type Conv3D struct {
	Ci, Co, K, Stride, Pad int
	W                      *Param // [Co, Ci, K, K, K]
	B                      *Param // [Co]
	x                      *tensor.Tensor
}

// NewConv3D builds a Glorot-initialized 3-D convolution.
func NewConv3D(rng *rand.Rand, ci, co, k, stride, pad int) *Conv3D {
	fanIn := ci * k * k * k
	fanOut := co * k * k * k
	w := tensor.Rand(rng, xavier(fanIn, fanOut), co, ci, k, k, k)
	return &Conv3D{Ci: ci, Co: co, K: k, Stride: stride, Pad: pad,
		W: NewParam("conv3d.w", w), B: NewParam("conv3d.b", tensor.New(co))}
}

// Params implements Module.
func (c *Conv3D) Params() []*Param { return []*Param{c.W, c.B} }

// OutDim returns the output spatial size for input size n.
func (c *Conv3D) OutDim(n int) int { return (n+2*c.Pad-c.K)/c.Stride + 1 }

// Forward computes y [B, Co, D', H', W'].
func (c *Conv3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	if ci != c.Ci {
		panic("nn: Conv3D channel mismatch")
	}
	od, oh, ow := c.OutDim(dd), c.OutDim(hh), c.OutDim(ww)
	y := tensor.New(b, c.Co, od, oh, ow)
	k, s, p := c.K, c.Stride, c.Pad
	xd, wd, yd, bd := x.Data, c.W.W.Data, y.Data, c.B.W.Data
	// Each (bi, co) unit writes its own output volume — disjoint.
	tensor.DefaultPool().ParallelFor(b*c.Co, 1, func(u0, u1 int) {
		for u := u0; u < u1; u++ {
			bi, co := u/c.Co, u%c.Co
			bias := bd[co]
			for zd := 0; zd < od; zd++ {
				for zh := 0; zh < oh; zh++ {
					for zw := 0; zw < ow; zw++ {
						sum := bias
						for cin := 0; cin < ci; cin++ {
							xBase := (bi*ci + cin) * dd
							wBase := ((co*ci + cin) * k) * k * k
							for kd := 0; kd < k; kd++ {
								id := zd*s + kd - p
								if id < 0 || id >= dd {
									continue
								}
								for kh := 0; kh < k; kh++ {
									ih := zh*s + kh - p
									if ih < 0 || ih >= hh {
										continue
									}
									xRow := ((xBase+id)*hh + ih) * ww
									wRow := wBase + (kd*k+kh)*k
									for kw := 0; kw < k; kw++ {
										iw := zw*s + kw - p
										if iw < 0 || iw >= ww {
											continue
										}
										sum += xd[xRow+iw] * wd[wRow+kw]
									}
								}
							}
						}
						yd[(((bi*c.Co+co)*od+zd)*oh+zh)*ow+zw] = sum
					}
				}
			}
		}
	})
	return y
}

// Backward propagates dL/dy and accumulates kernel/bias grads. Batch items
// accumulate into per-item partial gradients (workspace tensors) that are
// combined in batch order — deterministic regardless of worker count.
func (c *Conv3D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := c.x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	od, oh, ow := dy.Dim(2), dy.Dim(3), dy.Dim(4)
	dx := tensor.New(b, ci, dd, hh, ww)
	k, s, p := c.K, c.Stride, c.Pad
	xd, wd, dyd, dxd := x.Data, c.W.W.Data, dy.Data, dx.Data
	wGrads := make([]*tensor.Tensor, b)
	bGrads := make([]*tensor.Tensor, b)
	tensor.DefaultPool().ParallelFor(b, 1, func(b0, b1 int) {
		for bi := b0; bi < b1; bi++ {
			wg := tensor.Get(c.W.W.Shape...)
			bg := tensor.Get(c.Co)
			wGrads[bi], bGrads[bi] = wg, bg
			for co := 0; co < c.Co; co++ {
				for zd := 0; zd < od; zd++ {
					for zh := 0; zh < oh; zh++ {
						for zw := 0; zw < ow; zw++ {
							g := dyd[(((bi*c.Co+co)*od+zd)*oh+zh)*ow+zw]
							if g == 0 {
								continue
							}
							bg.Data[co] += g
							for cin := 0; cin < ci; cin++ {
								xBase := (bi*ci + cin) * dd
								wBase := ((co*ci + cin) * k) * k * k
								for kd := 0; kd < k; kd++ {
									id := zd*s + kd - p
									if id < 0 || id >= dd {
										continue
									}
									for kh := 0; kh < k; kh++ {
										ih := zh*s + kh - p
										if ih < 0 || ih >= hh {
											continue
										}
										xRow := ((xBase+id)*hh + ih) * ww
										wRow := wBase + (kd*k+kh)*k
										for kw := 0; kw < k; kw++ {
											iw := zw*s + kw - p
											if iw < 0 || iw >= ww {
												continue
											}
											wg.Data[wRow+kw] += g * xd[xRow+iw]
											dxd[xRow+iw] += g * wd[wRow+kw]
										}
									}
								}
							}
						}
					}
				}
			}
		}
	})
	for bi := 0; bi < b; bi++ {
		c.W.Grad.AddScaled(1, wGrads[bi])
		c.B.Grad.AddScaled(1, bGrads[bi])
		tensor.Put(wGrads[bi])
		tensor.Put(bGrads[bi])
	}
	return dx
}

// ConvTranspose3D is the transposed (fractionally strided) 3-D convolution
// used by the paper's decoders: input [B, Ci, D, H, W] → output
// [B, Co, (D-1)·S+K, ...] (no padding). Parallel decomposition mirrors
// Conv3D: batch items are independent units.
type ConvTranspose3D struct {
	Ci, Co, K, Stride int
	W                 *Param // [Ci, Co, K, K, K]
	B                 *Param // [Co]
	x                 *tensor.Tensor
}

// NewConvTranspose3D builds a Glorot-initialized transposed convolution.
func NewConvTranspose3D(rng *rand.Rand, ci, co, k, stride int) *ConvTranspose3D {
	fan := ci * k * k * k
	w := tensor.Rand(rng, xavier(fan, co*k*k*k), ci, co, k, k, k)
	return &ConvTranspose3D{Ci: ci, Co: co, K: k, Stride: stride,
		W: NewParam("convt3d.w", w), B: NewParam("convt3d.b", tensor.New(co))}
}

// Params implements Module.
func (c *ConvTranspose3D) Params() []*Param { return []*Param{c.W, c.B} }

// OutDim returns the output spatial size for input size n.
func (c *ConvTranspose3D) OutDim(n int) int { return (n-1)*c.Stride + c.K }

// Forward computes the transposed convolution.
func (c *ConvTranspose3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	od, oh, ow := c.OutDim(dd), c.OutDim(hh), c.OutDim(ww)
	y := tensor.New(b, c.Co, od, oh, ow)
	k, s := c.K, c.Stride
	xd, wd, yd, bd := x.Data, c.W.W.Data, y.Data, c.B.W.Data
	// Output volumes are per-batch-item disjoint; scatter-adds from
	// different input cells of the same item stay on one worker.
	tensor.DefaultPool().ParallelFor(b, 1, func(b0, b1 int) {
		for bi := b0; bi < b1; bi++ {
			for co := 0; co < c.Co; co++ {
				base := ((bi*c.Co + co) * od) * oh * ow
				bias := bd[co]
				for i := 0; i < od*oh*ow; i++ {
					yd[base+i] = bias
				}
			}
			for cin := 0; cin < ci; cin++ {
				for zd := 0; zd < dd; zd++ {
					for zh := 0; zh < hh; zh++ {
						for zw := 0; zw < ww; zw++ {
							xv := xd[(((bi*ci+cin)*dd+zd)*hh+zh)*ww+zw]
							if xv == 0 {
								continue
							}
							for co := 0; co < c.Co; co++ {
								wBase := ((cin*c.Co + co) * k) * k * k
								for kd := 0; kd < k; kd++ {
									for kh := 0; kh < k; kh++ {
										yRow := (((bi*c.Co+co)*od+zd*s+kd)*oh+zh*s+kh)*ow + zw*s
										wRow := wBase + (kd*k+kh)*k
										for kw := 0; kw < k; kw++ {
											yd[yRow+kw] += xv * wd[wRow+kw]
										}
									}
								}
							}
						}
					}
				}
			}
		}
	})
	return y
}

// Backward propagates dL/dy and accumulates grads, with per-batch-item
// weight-gradient partials combined in batch order (bit-identical serial or
// parallel).
func (c *ConvTranspose3D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := c.x
	b, ci, dd, hh, ww := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	od, oh, ow := dy.Dim(2), dy.Dim(3), dy.Dim(4)
	dx := tensor.New(b, ci, dd, hh, ww)
	k, s := c.K, c.Stride
	xd, wd, dyd, dxd := x.Data, c.W.W.Data, dy.Data, dx.Data
	wGrads := make([]*tensor.Tensor, b)
	bGrads := make([]*tensor.Tensor, b)
	tensor.DefaultPool().ParallelFor(b, 1, func(b0, b1 int) {
		for bi := b0; bi < b1; bi++ {
			wg := tensor.Get(c.W.W.Shape...)
			bg := tensor.Get(c.Co)
			wGrads[bi], bGrads[bi] = wg, bg
			for co := 0; co < c.Co; co++ {
				base := ((bi*c.Co + co) * od) * oh * ow
				for i := 0; i < od*oh*ow; i++ {
					bg.Data[co] += dyd[base+i]
				}
			}
			for cin := 0; cin < ci; cin++ {
				for zd := 0; zd < dd; zd++ {
					for zh := 0; zh < hh; zh++ {
						for zw := 0; zw < ww; zw++ {
							xv := xd[(((bi*ci+cin)*dd+zd)*hh+zh)*ww+zw]
							var acc float64
							for co := 0; co < c.Co; co++ {
								wBase := ((cin*c.Co + co) * k) * k * k
								for kd := 0; kd < k; kd++ {
									for kh := 0; kh < k; kh++ {
										yRow := (((bi*c.Co+co)*od+zd*s+kd)*oh+zh*s+kh)*ow + zw*s
										wRow := wBase + (kd*k+kh)*k
										for kw := 0; kw < k; kw++ {
											g := dyd[yRow+kw]
											acc += g * wd[wRow+kw]
											wg.Data[wRow+kw] += g * xv
										}
									}
								}
							}
							dxd[(((bi*ci+cin)*dd+zd)*hh+zh)*ww+zw] = acc
						}
					}
				}
			}
		}
	})
	for bi := 0; bi < b; bi++ {
		c.W.Grad.AddScaled(1, wGrads[bi])
		c.B.Grad.AddScaled(1, bGrads[bi])
		tensor.Put(wGrads[bi])
		tensor.Put(bGrads[bi])
	}
	return dx
}
