package client

import (
	"context"
	"net/http"
	"net/url"
	"time"

	"repro/pkg/api"
)

// SubmitJob submits any job payload (POST /v2/jobs) and returns the
// pending snapshot. A request carrying an IdempotencyKey is safely
// retryable, so the SDK widens its retry policy for it: transport-level
// unavailable answers (connection refused/reset, a dead connection after
// the server may have acted) retry on the same backoff schedule as
// overloaded ones, and the server deduplicates by key — the caller
// observes exactly one job however many attempts it took. Unkeyed
// submissions keep the at-most-once policy: only overloaded (which
// provably did not admit) is retried.
func (c *Client) SubmitJob(ctx context.Context, req *api.SubmitJobRequest) (*api.Job, error) {
	var out api.Job
	err := c.doRetry(ctx, http.MethodPost, "/"+c.version+"/jobs", req, &out,
		req.IdempotencyKey != "")
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitSubsampleJob submits an asynchronous subsample run.
func (c *Client) SubmitSubsampleJob(ctx context.Context, req *api.SubsampleRequest) (*api.Job, error) {
	return c.SubmitJob(ctx, &api.SubmitJobRequest{Type: api.JobSubsample, Subsample: req})
}

// SubmitTrainJob submits an asynchronous subsample→train run.
func (c *Client) SubmitTrainJob(ctx context.Context, spec *api.TrainJobSpec) (*api.Job, error) {
	return c.SubmitJob(ctx, &api.SubmitJobRequest{Type: api.JobTrain, Train: spec})
}

// Job polls one job's status (GET /v2/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*api.Job, error) {
	var out api.Job
	if err := c.doVersioned(ctx, http.MethodGet, "/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobByKey looks up the job holding an idempotency key
// (GET /v2/keys/{key}). An unclaimed key answers a typed
// job_not_found. The shard router uses this to consult every member of a
// key's owner set before admitting a resubmission; callers can use it to
// re-find a submission whose job ID they lost.
func (c *Client) JobByKey(ctx context.Context, key string) (*api.Job, error) {
	var out api.Job
	if err := c.doVersioned(ctx, http.MethodGet, "/keys/"+url.PathEscape(key), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists all live jobs (GET /v2/jobs).
func (c *Client) Jobs(ctx context.Context) ([]api.Job, error) {
	var out []api.Job
	if err := c.doVersioned(ctx, http.MethodGet, "/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// JobResult fetches a succeeded job's output (GET /v2/jobs/{id}/result).
// Non-terminal jobs answer api.CodeJobNotReady; canceled ones
// api.CodeJobCanceled.
func (c *Client) JobResult(ctx context.Context, id string) (*api.JobResult, error) {
	var out api.JobResult
	if err := c.doVersioned(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob requests cancellation (DELETE /v2/jobs/{id}) and returns the
// pre-cancel snapshot; poll Job (or WaitJob) to observe the terminal
// canceled state.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.Job, error) {
	var out api.Job
	if err := c.doVersioned(ctx, http.MethodDelete, "/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls until the job reaches a terminal state or ctx ends,
// returning the terminal snapshot. poll <= 0 defaults to 250ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*api.Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return job, api.AsError(ctx.Err())
		}
	}
}
