package slo

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/tsdb"
)

func TestParseObjective(t *testing.T) {
	cases := []struct {
		spec string
		want Objective
		bad  bool
	}{
		{spec: "latency:/v2/infer:250ms:99.9",
			want: Objective{Kind: KindLatency, Route: "/v2/infer", Threshold: 250 * time.Millisecond, Target: 99.9}},
		{spec: "availability:/v2/infer:99.9",
			want: Objective{Kind: KindAvailability, Route: "/v2/infer", Target: 99.9}},
		{spec: "availability:*:95",
			want: Objective{Kind: KindAvailability, Route: "*", Target: 95}},
		{spec: "queue_depth:64:99",
			want: Objective{Kind: KindQueueDepth, Depth: 64, Target: 99}},
		{spec: "latency:/x:250ms:0", bad: true},     // target out of range
		{spec: "latency:/x:250ms:100", bad: true},   // target out of range
		{spec: "latency:/x:banana:99", bad: true},   // bad duration
		{spec: "latency:/x:99", bad: true},          // missing field
		{spec: "availability:/x:1:2:99", bad: true}, // extra field
		{spec: "queue_depth:-1:99", bad: true},      // negative depth
		{spec: "teapots:/x:99", bad: true},          // unknown kind
		{spec: "", bad: true},
	}
	for _, c := range cases {
		got, err := ParseObjective(c.spec)
		if c.bad {
			if err == nil {
				t.Errorf("ParseObjective(%q) = %+v, want error", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseObjective(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

// sloHarness is a registry + scripted-clock store + engine triple the
// burn-rate tests drive sample by sample.
type sloHarness struct {
	reg     *obs.Registry
	store   *tsdb.Store
	eng     *Engine
	journal *events.Journal

	mu sync.Mutex
	t  time.Time
}

func newHarness(t *testing.T, objectives ...Objective) *sloHarness {
	t.Helper()
	h := &sloHarness{reg: obs.NewRegistry(), t: time.Unix(1_700_000_000, 0)}
	h.store = tsdb.NewStore("test", h.reg, time.Second, 1024)
	h.store.SetNowFunc(func() time.Time {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.t
	})
	h.journal = events.NewJournal("test", 64)
	h.eng = NewEngine("test", h.store, ServeMetrics, objectives, h.reg, h.journal)
	return h
}

func (h *sloHarness) advance(d time.Duration) {
	h.mu.Lock()
	h.t = h.t.Add(d)
	h.mu.Unlock()
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestAvailabilityBurnRatesHandComputed scripts three traffic epochs and
// checks every window's burn rate against hand-computed values.
//
// Windows: fast 10s, mid 60s, slow 300s. Target 99% -> budget 0.01.
// Timeline (evaluation at t=300s):
//
//	t=5s    100 requests,  50 errors   (slow window only)
//	t=250s  100 requests,  10 errors   (slow + mid)
//	t=295s  100 requests,   1 error    (all three)
//
// fast: 1/100  = 0.01  -> burn 1
// mid:  11/200 = 0.055 -> burn 5.5
// slow: 61/300 ≈ 0.2033 -> burn ≈ 20.33
//
// With FastBurn 10 / SlowBurn 5, only the slow rule fires (slow ≥ 5 AND
// mid ≥ 5) -> breached, budget exhausted.
func TestAvailabilityBurnRatesHandComputed(t *testing.T) {
	h := newHarness(t, Objective{Kind: KindAvailability, Route: "/v2/infer", Target: 99})
	h.eng.SetWindows(Windows{
		Fast: 10 * time.Second, Mid: 60 * time.Second, Slow: 300 * time.Second,
		FastBurn: 10, SlowBurn: 5,
	})
	req := h.reg.Counter(ServeMetrics.RequestsTotal, "h", "route").With("/v2/infer")
	errs := h.reg.Counter(ServeMetrics.ErrorsTotal, "h", "route").With("/v2/infer")

	emit := func(requests, errors int) {
		req.Add(float64(requests))
		errs.Add(float64(errors))
		h.store.SampleNow()
	}
	h.advance(5 * time.Second)
	emit(100, 50)
	h.advance(245 * time.Second)
	emit(100, 10)
	h.advance(45 * time.Second)
	emit(100, 1)
	h.advance(5 * time.Second) // now = t=300s

	rep := h.eng.Evaluate()
	if len(rep.Objectives) != 1 {
		t.Fatalf("got %d objective reports, want 1", len(rep.Objectives))
	}
	or := rep.Objectives[0]
	wantBurn := map[string]float64{
		"fast": 0.01 / 0.01,
		"mid":  (11.0 / 200.0) / 0.01,
		"slow": (61.0 / 300.0) / 0.01,
	}
	wantSamples := map[string]float64{"fast": 100, "mid": 200, "slow": 300}
	for _, wb := range or.Windows {
		if !approx(wb.BurnRate, wantBurn[wb.Window]) {
			t.Errorf("%s burn = %v, want %v", wb.Window, wb.BurnRate, wantBurn[wb.Window])
		}
		if wb.Samples != wantSamples[wb.Window] {
			t.Errorf("%s samples = %v, want %v", wb.Window, wb.Samples, wantSamples[wb.Window])
		}
	}
	if !or.Breached {
		t.Error("slow rule (slow 20.3 ≥ 5 AND mid 5.5 ≥ 5) should breach")
	}
	if or.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %v, want 0 (20x overspent, clamped)", or.BudgetRemaining)
	}
	if rep.Status != "degraded" {
		t.Errorf("report status = %q, want degraded", rep.Status)
	}

	// The fast rule must NOT have fired alone: recheck with thresholds
	// that only the fast pair could satisfy.
	h.eng.SetWindows(Windows{
		Fast: 10 * time.Second, Mid: 60 * time.Second, Slow: 300 * time.Second,
		FastBurn: 10, SlowBurn: 1000,
	})
	if or := h.eng.Evaluate().Objectives[0]; or.Breached {
		t.Error("fast rule should not fire: fast burn 1 < 10")
	}
}

// TestBreachRecoverTransitions walks an objective into breach and back
// out, asserting the journaled transition events and healthz status.
func TestBreachRecoverTransitions(t *testing.T) {
	h := newHarness(t, Objective{Kind: KindAvailability, Route: "*", Target: 99})
	h.eng.SetWindows(Windows{
		Fast: 10 * time.Second, Mid: 10 * time.Second, Slow: 10 * time.Second,
		FastBurn: 10, SlowBurn: 10,
	})
	req := h.reg.Counter(ServeMetrics.RequestsTotal, "h", "route").With("/x")
	errs := h.reg.Counter(ServeMetrics.ErrorsTotal, "h", "route").With("/x")

	// Epoch 1: total failure -> burn 100.
	req.Add(10)
	errs.Add(10)
	h.store.SampleNow()
	if got := h.eng.Status(); got != "degraded" {
		t.Fatalf("status after failures = %q, want degraded", got)
	}
	if evs := h.journal.Events(0, events.TypeSLOBreach, time.Time{}); len(evs) != 1 {
		t.Fatalf("breach events = %d, want 1", len(evs))
	} else if evs[0].Attrs["slo"] != "availability:*" {
		t.Errorf("breach event attrs = %v, want slo=availability:*", evs[0].Attrs)
	}
	if evs := h.journal.Events(0, events.TypeDegraded, time.Time{}); len(evs) != 1 {
		t.Fatalf("degraded events = %d, want 1", len(evs))
	}
	// Re-evaluating in the same state must not re-journal the edge.
	h.eng.Evaluate()
	if evs := h.journal.Events(0, events.TypeSLOBreach, time.Time{}); len(evs) != 1 {
		t.Fatalf("breach events after re-eval = %d, want still 1", len(evs))
	}

	// Epoch 2: move past the window with clean traffic -> recovery.
	h.advance(30 * time.Second)
	req.Add(100)
	h.store.SampleNow()
	if got := h.eng.Status(); got != "ok" {
		t.Fatalf("status after recovery = %q, want ok", got)
	}
	if evs := h.journal.Events(0, events.TypeSLORecover, time.Time{}); len(evs) != 1 {
		t.Fatalf("recover events = %d, want 1", len(evs))
	}
	if evs := h.journal.Events(0, events.TypeRecovered, time.Time{}); len(evs) != 1 {
		t.Fatalf("recovered events = %d, want 1", len(evs))
	}
}

// TestLatencyObjectiveGoodBuckets: good = observations in buckets whose
// upper bound is at or under the threshold.
func TestLatencyObjectiveGoodBuckets(t *testing.T) {
	h := newHarness(t, Objective{Kind: KindLatency, Route: "/v2/infer", Threshold: 100 * time.Millisecond, Target: 99})
	h.eng.SetWindows(Windows{
		Fast: time.Minute, Mid: time.Minute, Slow: time.Minute,
		FastBurn: 5, SlowBurn: 5,
	})
	hist := h.reg.Histogram(ServeMetrics.LatencyHist, "h", []float64{0.1, 0.5}, "route").With("/v2/infer")
	// 9 fast, 1 slow -> bad fraction 0.1, burn 10 -> breach at threshold 5.
	for i := 0; i < 9; i++ {
		hist.Observe(0.05)
	}
	hist.Observe(0.3)
	h.store.SampleNow()

	rep := h.eng.Evaluate()
	or := rep.Objectives[0]
	if !approx(or.Windows[0].ErrorFraction, 0.1) {
		t.Errorf("error fraction = %v, want 0.1", or.Windows[0].ErrorFraction)
	}
	if !or.Breached {
		t.Error("latency objective should breach: burn 10 ≥ 5")
	}
}

func TestQueueDepthObjective(t *testing.T) {
	h := newHarness(t, Objective{Kind: KindQueueDepth, Depth: 64, Target: 50})
	h.eng.SetWindows(Windows{
		Fast: time.Minute, Mid: time.Minute, Slow: time.Minute,
		FastBurn: 1.5, SlowBurn: 1.5,
	})
	g := h.reg.Gauge(ServeMetrics.QueueGauge, "h").With()
	// 3 of 4 samples above depth 64 -> frac 0.75, budget 0.5 -> burn 1.5.
	for _, v := range []float64{10, 100, 100, 100} {
		g.Set(v)
		h.store.SampleNow()
		h.advance(time.Second)
	}
	or := h.eng.Evaluate().Objectives[0]
	if !approx(or.Windows[0].BurnRate, 1.5) {
		t.Errorf("queue burn = %v, want 1.5", or.Windows[0].BurnRate)
	}
	if !or.Breached {
		t.Error("queue objective should breach at burn 1.5 ≥ 1.5")
	}
}

// TestNoTrafficIsHealthy: zero samples must read as burn 0, not NaN or a
// division panic.
func TestNoTrafficIsHealthy(t *testing.T) {
	h := newHarness(t,
		Objective{Kind: KindAvailability, Route: "*", Target: 99.9},
		Objective{Kind: KindLatency, Route: "*", Threshold: time.Millisecond, Target: 99.9},
		Objective{Kind: KindQueueDepth, Depth: 1, Target: 99.9},
	)
	rep := h.eng.Evaluate()
	if rep.Status != "ok" {
		t.Fatalf("status with no traffic = %q, want ok", rep.Status)
	}
	for _, or := range rep.Objectives {
		for _, wb := range or.Windows {
			if wb.BurnRate != 0 || math.IsNaN(wb.BurnRate) {
				t.Errorf("%s %s burn = %v, want 0", or.Name, wb.Window, wb.BurnRate)
			}
		}
		if or.BudgetRemaining != 1 {
			t.Errorf("%s budget = %v, want 1", or.Name, or.BudgetRemaining)
		}
	}
}

func TestNilEngineIsOK(t *testing.T) {
	var e *Engine
	if e.Status() != "ok" {
		t.Error("nil engine must report ok")
	}
	e.SetWindows(DefaultWindows)
	if rep := e.Evaluate(); rep.Status != "ok" {
		t.Error("nil engine Evaluate must report ok")
	}
}

// TestSLOGauges: the engine mirrors its verdicts onto sickle_slo_*.
func TestSLOGauges(t *testing.T) {
	h := newHarness(t, Objective{Kind: KindAvailability, Route: "*", Target: 99})
	h.eng.SetWindows(Windows{
		Fast: time.Minute, Mid: time.Minute, Slow: time.Minute,
		FastBurn: 10, SlowBurn: 10,
	})
	req := h.reg.Counter(ServeMetrics.RequestsTotal, "h", "route").With("/x")
	errs := h.reg.Counter(ServeMetrics.ErrorsTotal, "h", "route").With("/x")
	req.Add(10)
	errs.Add(10)
	h.store.SampleNow()
	h.eng.Evaluate()

	text := h.reg.Render()
	for _, want := range []string{
		`sickle_slo_breached{slo="availability:*"} 1`,
		`sickle_slo_error_budget_remaining{slo="availability:*"} 0`,
		// 1/(1-0.99) in floats; asserting the prefix dodges the ulps.
		`sickle_slo_burn_rate{slo="availability:*",window="fast"} 99.99`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered metrics missing %q", want)
		}
	}
	if err := obs.LintExposition(text); err != nil {
		t.Errorf("exposition lint: %v", err)
	}
}
