// Package closecheck reports discarded Close/Sync errors on writable
// files and writers.
//
// The contract (ROADMAP "durability"): data is not durable until Close
// and Sync have returned nil, so a write path that drops either error can
// report success for data that never reached the disk. The analyzer flags
//
//	f.Close()        // statement: error silently dropped
//	defer f.Close()  // defer on a write path: error unobservable
//	go f.Close()
//
// when the receiver is writable: any type with a Write, Flush, Sync or
// Append method alongside the called one (io.WriteCloser
// implementations, gzip/bufio writers, record-oriented appenders), or an
// *os.File that was not provably opened read-only (os.Open, or
// os.OpenFile with O_RDONLY). Read-side closers (response bodies,
// os.Open files) are exempt — their Close errors carry no durability
// information.
//
// Accepted idioms, not flagged:
//
//	_ = f.Close()                  // explicit, visible discard (error paths)
//	if err := f.Close(); ... 	   // checked
//	defer f.Close()                // when the same function also checks
//	                               // f.Close() on the success path
//	                               // (the standard double-close idiom)
//
// The statement form carries a suggested fix inserting `_ = `.
package closecheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the closecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "report discarded Close/Sync errors on writable files and writers",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false // checkFunc walks nested literals itself
			case *ast.FuncLit:
				// Only reached for package-level var initializers; function
				// bodies return false above.
				checkFunc(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// discard is one Close/Sync call whose result is dropped.
type discard struct {
	call    *ast.CallExpr
	method  string
	recv    types.Object // rightmost identifier's object, if any
	defered bool
	stmt    ast.Stmt
}

// checkFunc analyzes one function body (nested function literals
// included: a deferred close in a closure still belongs to the
// surrounding write path).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	readOnly := map[types.Object]bool{}  // files from os.Open / O_RDONLY
	checked := map[types.Object]string{} // object -> method name with a used result
	handled := map[*ast.CallExpr]bool{}  // calls classified by an enclosing statement
	var discards []discard

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			markReadOnly(pass, s, readOnly)
			// `_ = f.Close()` is an acknowledged discard; any other
			// assignment is a checked use.
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				method, recv := closeLike(pass, call)
				if method == "" {
					continue
				}
				handled[call] = true
				if len(s.Lhs) == len(s.Rhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // acknowledged
					}
				}
				if recv != nil {
					checked[recv] = method
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if method, recv := closeLike(pass, call); method != "" {
					discards = append(discards, discard{call: call, method: method, recv: recv, stmt: s})
				}
			}
		case *ast.DeferStmt:
			if method, recv := closeLike(pass, s.Call); method != "" {
				discards = append(discards, discard{call: s.Call, method: method, recv: recv, defered: true, stmt: s})
			}
		case *ast.GoStmt:
			if method, recv := closeLike(pass, s.Call); method != "" {
				discards = append(discards, discard{call: s.Call, method: method, recv: recv, stmt: s})
			}
		default:
			// Any other appearance of a close-like call (if init, return,
			// argument) is a checked use.
			if call, ok := n.(*ast.CallExpr); ok && !handled[call] {
				if method, recv := closeLike(pass, call); method != "" && recv != nil {
					if !isDiscardedLater(call, discards) {
						checked[recv] = method
					}
				}
			}
		}
		return true
	})

	for _, d := range discards {
		if !writable(pass, d.call, readOnly) {
			continue
		}
		// Double-close idiom: a defer may drop the error when the same
		// function checks the same method on the same receiver.
		if d.defered && d.recv != nil && checked[d.recv] == d.method {
			continue
		}
		diag := analysis.Diagnostic{
			Pos: d.call.Pos(),
			Message: d.method + " error discarded on writable file/writer; check it, " +
				"assign to _ to acknowledge, or annotate //sicklevet:ignore closecheck <reason>",
		}
		if _, isExpr := d.stmt.(*ast.ExprStmt); isExpr {
			diag.SuggestedFixes = []analysis.SuggestedFix{{
				Message:   "acknowledge the discard with `_ =`",
				TextEdits: []analysis.TextEdit{{Pos: d.stmt.Pos(), NewText: []byte("_ = ")}},
			}}
		}
		pass.Report(diag)
	}
}

// isDiscardedLater guards against double-recording: ast.Inspect visits the
// ExprStmt before its CallExpr child, so the call is already in discards.
func isDiscardedLater(call *ast.CallExpr, discards []discard) bool {
	for _, d := range discards {
		if d.call == call {
			return true
		}
	}
	return false
}

// closeLike reports the method name ("Close" or "Sync") when call is a
// func() error method invocation of that name, plus the receiver's
// rightmost identifier object for idiom matching.
func closeLike(pass *analysis.Pass, call *ast.CallExpr) (string, types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	name := sel.Sel.Name
	if name != "Close" && name != "Sync" {
		return "", nil
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", nil
	}
	sig, ok := selection.Obj().Type().(*types.Signature)
	if !ok || !analysis.IsErrorOnlySignature(sig) {
		return "", nil
	}
	return name, rightmostObj(pass, sel.X)
}

// rightmostObj resolves the identifier a receiver expression bottoms out
// in: f -> f's var, s.file -> the file field, (f) -> f.
func rightmostObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// writable decides whether the receiver of a close-like call is on the
// write side: has a Write method, or is an *os.File not proven read-only.
func writable(pass *analysis.Pass, call *ast.CallExpr, readOnly map[types.Object]bool) bool {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	recvType := pass.TypesInfo.Types[sel.X].Type
	if recvType == nil {
		return false
	}
	if analysis.NamedTypePath(recvType, "os", "File") {
		obj := rightmostObj(pass, sel.X)
		return obj == nil || !readOnly[obj]
	}
	// Write catches io.WriteCloser shapes; Flush/Sync/Append catch
	// buffered or record-oriented writers (durable.Log,
	// sickle.ShardAppender) that expose records, not bytes.
	return analysis.HasMethod(recvType, "Write", nil) ||
		analysis.HasMethod(recvType, "Flush", nil) ||
		analysis.HasMethod(recvType, "Sync", nil) ||
		analysis.HasMethod(recvType, "Append", nil)
}

// markReadOnly records `f, err := os.Open(...)` / os.OpenFile with a
// constant O_RDONLY flag as read-only file objects.
func markReadOnly(pass *analysis.Pass, s *ast.AssignStmt, readOnly map[types.Object]bool) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case analysis.IsFuncNamed(fn, "os", "Open"):
	case analysis.IsFuncNamed(fn, "os", "OpenFile") && len(call.Args) >= 2:
		tv := pass.TypesInfo.Types[call.Args[1]]
		// os.O_RDONLY is 0; any write or create bit makes the flag nonzero.
		if tv.Value == nil || constant.Compare(tv.Value, token.NEQ, constant.MakeInt64(0)) {
			return
		}
	default:
		return
	}
	if len(s.Lhs) == 0 {
		return
	}
	if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		if obj := objOf(pass, id); obj != nil {
			readOnly[obj] = true
		}
	}
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
