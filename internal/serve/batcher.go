package serve

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/pkg/api"
)

// inferRequest is one example awaiting inference. The batcher owns it from
// enqueue until a result (or error) is delivered on resp.
type inferRequest struct {
	ctx   context.Context // the submitting caller's context
	input *tensor.Tensor  // per-example tensor, no batch dimension
	resp  chan inferResult

	// Trace identity captured at admission: the queue and execute spans
	// recorded when the request's batch runs are parented to the server
	// span that enqueued it. Zero when the request carries no trace.
	tc       api.TraceContext
	enqueued time.Time
}

type inferResult struct {
	output    *tensor.Tensor
	version   int
	batchSize int
	err       error
}

// Batcher implements the service's micro-batch scheduler: per-model queues
// feed per-model dispatcher goroutines that collect up to MaxBatch requests
// or wait at most Window after the first arrival, then hand the batch to a
// bounded worker pool (default GOMAXPROCS workers) that runs ONE forward
// pass for the whole batch on a pooled model replica. Batching amortizes
// per-request overhead exactly like inventory batching in queueing systems:
// under load the mean batch size rises and per-item cost falls, while the
// Window bound caps the latency a lone request pays.
//
// Row independence of the Table 2 architectures (matmuls, layer norms,
// attention and convolutions never mix batch rows) makes batched outputs
// bit-identical to single-request inference — the invariant the tests and
// the load generator check.
//
// Admission control: a per-model queue at capacity rejects immediately with
// the typed api.CodeOverloaded error (HTTP 429 + Retry-After) instead of
// blocking the caller's goroutine, and every Infer call carries a context —
// a caller that cancels while queued gets api.CodeCanceled back at once and
// its request is dropped (unstarted) when its batch is assembled.
type Batcher struct {
	reg      *Registry
	met      *Metrics
	maxBatch int
	window   time.Duration
	queueCap int

	jobs chan func()

	// tracer records per-request queue/execute spans; nil disables tracing.
	tracer *obs.Tracer

	mu      sync.Mutex
	queues  map[string]chan *inferRequest
	stopped bool // set under mu before the drain; gates admission

	stop     chan struct{}
	stopOnce sync.Once
	wgDisp   sync.WaitGroup // dispatcher goroutines
	wgWork   sync.WaitGroup // worker goroutines
}

// defaultQueueCap bounds each per-model queue when the config does not;
// enqueues beyond it are rejected with api.CodeOverloaded, applying
// backpressure to clients instead of growing memory (or blocked handler
// goroutines) without bound.
const defaultQueueCap = 1024

// errShuttingDown is the typed drain error every abandoned request gets.
func errShuttingDown() *api.Error {
	return api.Errorf(api.CodeShuttingDown, "serve: shutting down")
}

// NewBatcher starts the worker pool. maxBatch <= 0 defaults to 16, window
// <= 0 to 2ms, workers <= 0 to GOMAXPROCS, queueCap <= 0 to 1024.
func NewBatcher(reg *Registry, met *Metrics, maxBatch int, window time.Duration, workers, queueCap int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = defaultQueueCap
	}
	b := &Batcher{
		reg: reg, met: met, maxBatch: maxBatch, window: window, queueCap: queueCap,
		jobs:   make(chan func(), workers),
		queues: map[string]chan *inferRequest{},
		stop:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		b.wgWork.Add(1)
		go func() {
			defer b.wgWork.Done()
			for job := range b.jobs {
				job()
			}
		}()
	}
	met.SetQueueDepthFunc(b.QueueDepth)
	return b
}

// SetTracer installs the span recorder for queue/execute phases. Call
// before serving traffic (not synchronized with in-flight batches).
func (b *Batcher) SetTracer(t *obs.Tracer) { b.tracer = t }

// Infer enqueues one example for the named model and blocks until its
// result is ready, the queue rejects it (api.CodeOverloaded), the batcher
// is draining (api.CodeShuttingDown), or ctx is done (api.CodeCanceled /
// api.CodeDeadlineExceeded). All failures are typed *api.Error values.
func (b *Batcher) Infer(ctx context.Context, model string, input *tensor.Tensor) (*tensor.Tensor, int, int, error) {
	if ctx == nil {
		//sicklevet:ignore ctxfirst nil-ctx compatibility guard for direct library callers
		ctx = context.Background()
	}
	if _, ok := b.reg.Lookup(model); !ok {
		return nil, 0, 0, api.Errorf(api.CodeModelNotFound, "unknown model %q", model)
	}
	req := &inferRequest{ctx: ctx, input: input, resp: make(chan inferResult, 1), enqueued: time.Now()}
	req.tc, _ = api.TraceFrom(ctx)
	// Admission happens under b.mu so it cannot race Stop: Stop sets
	// `stopped` under the same lock before draining, so a request admitted
	// here is either answered by its dispatcher or by the drain loop —
	// never silently lost (and queueFor can no longer wgDisp.Add a new
	// dispatcher concurrently with Stop's wgDisp.Wait).
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return nil, 0, 0, errShuttingDown()
	}
	admitted := false
	select {
	case b.queueForLocked(model) <- req:
		admitted = true
	default:
	}
	b.mu.Unlock()
	if !admitted {
		b.met.ObserveRejected()
		return nil, 0, 0, api.Errorf(api.CodeOverloaded,
			"serve: model %q queue full (%d waiting)", model, b.queueCap).WithRetryAfter(1)
	}
	// The response channel is buffered, so abandoning the wait on ctx.Done
	// never blocks the dispatcher; an admitted-then-canceled request is
	// detected and skipped when its batch runs.
	select {
	case res := <-req.resp:
		return res.output, res.version, res.batchSize, res.err
	case <-ctx.Done():
		return nil, 0, 0, api.AsError(ctx.Err())
	}
}

// queueForLocked returns (creating if needed) the model's queue. Callers
// hold b.mu.
func (b *Batcher) queueForLocked(model string) chan *inferRequest {
	q, ok := b.queues[model]
	if !ok {
		q = make(chan *inferRequest, b.queueCap)
		b.queues[model] = q
		b.wgDisp.Add(1)
		go b.dispatch(model, q)
	}
	return q
}

// QueueDepth returns the total number of queued (not yet dispatched)
// requests across models.
func (b *Batcher) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, q := range b.queues {
		n += len(q)
	}
	return n
}

// dispatch is the per-model collection loop.
func (b *Batcher) dispatch(model string, q chan *inferRequest) {
	defer b.wgDisp.Done()
	for {
		// Priority check: once Stop has fired, halt even if the queue still
		// has entries — a bare two-case select picks randomly when both are
		// ready, which would let a draining dispatcher keep serving
		// arbitrarily long. Queued leftovers get the typed shutting_down
		// error from Stop's drain loop.
		select {
		case <-b.stop:
			return
		default:
		}
		var first *inferRequest
		select {
		case <-b.stop:
			return
		case first = <-q:
		}
		batch := []*inferRequest{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r := <-q:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.met.ObserveBatch(len(batch))
		select {
		case <-b.stop:
			// Shutdown raced the dispatch; run inline so waiters drain.
			b.runBatch(model, batch)
		case b.jobs <- func() { b.runBatch(model, batch) }:
		}
	}
}

// runBatch stacks the batch, runs one forward pass on a pooled replica,
// and scatters the output rows back to the waiting requests. Requests
// whose context died while queued are answered (typed canceled error) and
// dropped before any compute is spent on them.
func (b *Batcher) runBatch(model string, batch []*inferRequest) {
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.resp <- inferResult{err: api.AsError(err)}
			continue
		}
		live = append(live, r)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	// Close out each traced request's queue phase: time from admission to
	// the batch actually running.
	dispatched := time.Now()
	for _, r := range batch {
		if r.tc.TraceID == "" {
			continue
		}
		b.tracer.Record(obs.Span{
			TraceID: r.tc.TraceID, SpanID: api.NewSpanID(), ParentID: r.tc.SpanID,
			Name: "queue:" + model, Start: r.enqueued,
			Seconds: dispatched.Sub(r.enqueued).Seconds(),
		})
	}
	fail := func(err error) {
		for _, r := range batch {
			r.resp <- inferResult{err: err}
		}
	}
	entry, ok := b.reg.Lookup(model)
	if !ok {
		fail(api.Errorf(api.CodeModelNotFound, "serve: model %q disappeared", model))
		return
	}
	shape := batch[0].input.Shape
	for _, r := range batch[1:] {
		if !sameShape(r.input.Shape, shape) {
			// Mixed shapes cannot share a forward pass; split rather than
			// reject, so clients with heterogeneous windows still work.
			b.runBatch(model, []*inferRequest{r})
		}
	}
	uniform := batch[:0]
	for _, r := range batch {
		if sameShape(r.input.Shape, shape) {
			uniform = append(uniform, r)
		}
	}
	batch = uniform

	in := stackInputs(batch)
	// recordExec stamps each traced request's execute span: replica
	// acquisition + the shared forward pass, with the realized batch size.
	execStart := time.Now()
	recordExec := func(errMsg string) {
		secs := time.Since(execStart).Seconds()
		for _, r := range batch {
			if r.tc.TraceID == "" {
				continue
			}
			attrs := map[string]string{"batch_size": strconv.Itoa(len(batch))}
			if errMsg != "" {
				attrs["error"] = errMsg
			}
			b.tracer.Record(obs.Span{
				TraceID: r.tc.TraceID, SpanID: api.NewSpanID(), ParentID: r.tc.SpanID,
				Name: "execute:" + model, Start: execStart, Seconds: secs, Attrs: attrs,
			})
		}
	}
	// A single-request batch waits for its replica under the requester's
	// own context (cancelable); a shared batch must not let one client
	// cancel work its peers still wait on, so it acquires unconditionally.
	//sicklevet:ignore ctxfirst shared batches outlive any one requester, see comment above
	acquireCtx := context.Background()
	if len(batch) == 1 {
		acquireCtx = batch[0].ctx
	}
	rep, err := entry.Acquire(acquireCtx)
	if err != nil {
		tensor.Put(in)
		recordExec(api.AsError(err).Message)
		fail(api.AsError(err))
		return
	}
	out, err := forward(rep, in)
	entry.Release(rep)
	// The stacked input is dead once the forward pass returns (replicas
	// re-cache on the next forward), so recycle it into the workspace:
	// steady-state batching allocates no input buffers.
	tensor.Put(in)
	if err != nil {
		recordExec(err.Error())
		fail(err)
		return
	}
	if out.Dim(0) != len(batch) {
		recordExec("batch dimension mismatch")
		fail(api.Errorf(api.CodeInternal,
			"serve: model %q returned batch %d for input batch %d", model, out.Dim(0), len(batch)))
		return
	}
	recordExec("")
	rowShape := append([]int(nil), out.Shape[1:]...)
	stride := out.Len() / out.Dim(0)
	for i, r := range batch {
		row := tensor.New(rowShape...)
		copy(row.Data, out.Data[i*stride:(i+1)*stride])
		r.resp <- inferResult{output: row, version: entry.Version, batchSize: len(batch)}
	}
}

// forward runs the model's forward pass, converting panics (shape
// mismatches inside the nn stack) into errors so a malformed request cannot
// crash the service.
func forward(m interface {
	Forward(*tensor.Tensor) *tensor.Tensor
}, in *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = api.Errorf(api.CodeInternal, "serve: forward pass failed: %v", r)
		}
	}()
	return m.Forward(in), nil
}

// stackInputs assembles [B, ...] from per-example tensors of equal shape,
// drawing the batch buffer from the tensor workspace.
func stackInputs(batch []*inferRequest) *tensor.Tensor {
	shape := append([]int{len(batch)}, batch[0].input.Shape...)
	out := tensor.Get(shape...)
	stride := batch[0].input.Len()
	for i, r := range batch {
		copy(out.Data[i*stride:(i+1)*stride], r.input.Data)
	}
	return out
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stop terminates the dispatchers and workers. Call only after the HTTP
// server has drained: requests still queued at Stop time are completed
// inline by their dispatcher before it exits; anything left in a queue
// afterwards fails fast with the typed shutting_down error.
func (b *Batcher) Stop() {
	b.stopOnce.Do(func() {
		// Close admission first (under the same lock Infer admits under):
		// everything in a queue after this point was admitted before the
		// flag flipped and is answered by a dispatcher or the drain below.
		b.mu.Lock()
		b.stopped = true
		b.mu.Unlock()
		close(b.stop)
		// Wait for dispatchers first: they are the only senders on b.jobs,
		// so closing it is only safe once they have exited.
		b.wgDisp.Wait()
		b.mu.Lock()
		queues := make([]chan *inferRequest, 0, len(b.queues))
		for _, q := range b.queues {
			queues = append(queues, q)
		}
		b.mu.Unlock()
		for _, q := range queues {
		drain:
			for {
				select {
				case r := <-q:
					r.resp <- inferResult{err: errShuttingDown()}
				default:
					break drain
				}
			}
		}
		close(b.jobs)
		b.wgWork.Wait()
	})
}
