package top

// The flight-recorder acceptance tests: a router fronting two live
// replicas, observed exclusively through the same Collect path that
// `sickle-top -once` serializes to JSON — if these pass, the console
// sees what an operator needs to see.

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/obs/events"
	"repro/internal/obs/slo"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/train"
	"repro/pkg/api"
	"repro/pkg/client"
)

var e2eSpec = train.ArchSpec{Arch: "lstm", InDim: 4, Hidden: 8, OutDim: 2}
var e2eShape = []int{3, 4}

// e2eModels spreads routed load over the ring: distinct model names hash
// to distinct owners, so both replicas serve traffic.
var e2eModels = []string{"m0", "m1", "m2", "m3", "m4", "m5"}

func e2eCheckpoint(t *testing.T) string {
	t.Helper()
	ref, err := e2eSpec.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "m.sknn")
	if err := nn.SaveCheckpoint(ckpt, ref); err != nil {
		t.Fatal(err)
	}
	return ckpt
}

// startReplica boots an in-process serve backend with every e2e model
// registered and a fast-sampling flight recorder.
func startReplica(t *testing.T, addr, ckpt string, slos []slo.Objective) *serve.InProc {
	t.Helper()
	p, err := serve.StartInProc(serve.Config{
		Addr: addr, MaxBatch: 4, Window: 2 * time.Millisecond,
		HistoryInterval: 20 * time.Millisecond,
		SLOs:            slos,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range e2eModels {
		if _, err := p.Server.Registry().Register(m, e2eSpec, ckpt, e2eShape, 2); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// inferLoad drives round-robin inference over every model until stop is
// closed, through the router's retrying client so failover noise does
// not fail the load loop.
func inferLoad(c *client.Client, stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		item := api.InferItem{Shape: e2eShape, Data: make([]float64, 12)}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			c.Infer(ctx, &api.InferRequest{
				Model: e2eModels[i%len(e2eModels)],
				Items: []api.InferItem{item},
			})
			cancel()
		}
	}()
}

func collect(t *testing.T, url string) *Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return Collect(ctx, client.New(url, client.WithRetry(0, 0)), url, 30*time.Second)
}

func hasEvent(s *Snapshot, typ events.Type, replica string) bool {
	if s.Events == nil {
		return false
	}
	for _, e := range s.Events.Events {
		if e.Type != typ {
			continue
		}
		if replica == "" || e.Attrs["replica"] == replica {
			return true
		}
	}
	return false
}

func replicaQPS(s *Snapshot, replica string) (float64, bool) {
	for _, r := range s.Replicas {
		if r.Replica == replica {
			return r.QPS, true
		}
	}
	return 0, false
}

// TestFlightRecorderKillAndReadmit is the core acceptance path: kill a
// replica under load, watch the journal record the ejection and the
// per-replica history record the QPS dip, respawn it, watch the
// re-admission — all through the sickle-top collect library.
func TestFlightRecorderKillAndReadmit(t *testing.T) {
	ckpt := e2eCheckpoint(t)
	ctx := context.Background()

	replicas := []*serve.InProc{
		startReplica(t, "", ckpt, nil),
		startReplica(t, "", ckpt, nil),
	}
	rt, err := shard.NewRouter(shard.Config{
		URLs:            []string{replicas[0].URL, replicas[1].URL},
		ProbeEvery:      25 * time.Millisecond,
		FailAfter:       2,
		HistoryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		rt.Shutdown(ctx)
		for _, p := range replicas {
			if p != nil {
				p.Close(ctx)
			}
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	inferLoad(client.New(ts.URL, client.WithRetry(3, 5*time.Millisecond)), stop, &wg)
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
	}()

	// Phase 1: both replicas serving. The scattered history must show
	// per-replica traffic for both.
	time.Sleep(400 * time.Millisecond)
	snap := collect(t, ts.URL)
	if snap.Health == nil || snap.Health.Status != "ok" {
		t.Fatalf("health = %+v, want ok", snap.Health)
	}
	for _, id := range []string{"r0", "r1"} {
		qps, ok := replicaQPS(snap, id)
		if !ok || qps <= 0 {
			t.Fatalf("phase 1: replica %s QPS = %v (present=%v), want > 0;"+
				" replicas: %+v", id, qps, ok, snap.Replicas)
		}
	}

	// Phase 2: kill r1 under load. The prober must eject it, the journal
	// must record the ejection, and r1's history must stop flowing.
	addr1 := replicas[1].Addr()
	replicas[1].Kill()
	replicas[1] = nil
	rs := rt.ReplicaSet()
	waitFor(t, "r1 ejection", 5*time.Second, func() bool {
		r, _ := rs.Get("r1")
		return !r.Up()
	})
	time.Sleep(300 * time.Millisecond) // let post-ejection history accrue
	snap = collect(t, ts.URL)
	if !hasEvent(snap, events.TypeEjection, "r1") {
		t.Fatalf("phase 2: no ejection event for r1 in %+v", snap.Events)
	}
	if _, ok := replicaQPS(snap, "r1"); ok {
		t.Error("phase 2: dead replica still contributes scattered history")
	}
	if qps, ok := replicaQPS(snap, "r0"); !ok || qps <= 0 {
		t.Errorf("phase 2: survivor r0 QPS = %v, want > 0", qps)
	}
	// The router's own per-replica routed counters show r1's dip: its
	// recent deltas must be zero while r0 keeps moving.
	if snap.History == nil {
		t.Fatal("phase 2: no router history")
	}
	var r1Recent float64
	found := false
	for _, sr := range snap.History.Series {
		if sr.Replica != "" || sr.Name != "sickle_shard_routed_requests_total" ||
			sr.Labels["replica"] != "r1" {
			continue
		}
		found = true
		n := len(sr.Points)
		for _, p := range sr.Points[n-min(n, 5):] {
			r1Recent += p.V
		}
	}
	if !found {
		t.Fatal("phase 2: router history lacks routed counter for r1")
	}
	if r1Recent != 0 {
		t.Errorf("phase 2: r1 still being routed after ejection (recent deltas %v)", r1Recent)
	}

	// Phase 3: respawn at the same address; the prober must re-admit it
	// and the journal must say so.
	replicas[1] = startReplica(t, addr1, ckpt, nil)
	waitFor(t, "r1 re-admission", 5*time.Second, func() bool {
		r, _ := rs.Get("r1")
		return r.Up()
	})
	snap = collect(t, ts.URL)
	if !hasEvent(snap, events.TypeReadmission, "r1") {
		t.Fatalf("phase 3: no readmission event for r1 in %+v", snap.Events)
	}

	// The dashboard renders the whole story without panicking, in both
	// color and plain modes.
	if out := Render(snap, false); out == "" {
		t.Error("Render produced nothing")
	}
	Render(snap, true)
}

// TestFlightRecorderSLOBreachDegradesWithoutEjection induces an
// availability breach on one replica and asserts the contract: its own
// /healthz flips to degraded, the router sees that and deprioritizes it
// in failover order, but does NOT eject it.
func TestFlightRecorderSLOBreachDegradesWithoutEjection(t *testing.T) {
	ckpt := e2eCheckpoint(t)
	ctx := context.Background()

	objectives, err := slo.ParseObjectives([]string{"availability:*:99"})
	if err != nil {
		t.Fatal(err)
	}
	replicas := []*serve.InProc{
		startReplica(t, "", ckpt, objectives),
		startReplica(t, "", ckpt, nil),
	}
	// Tiny equal windows with a low threshold: a short error burst
	// breaches immediately and deterministically.
	replicas[0].Server.SLO().SetWindows(slo.Windows{
		Fast: 10 * time.Second, Mid: 10 * time.Second, Slow: 10 * time.Second,
		FastBurn: 2, SlowBurn: 2,
	})

	rt, err := shard.NewRouter(shard.Config{
		URLs:            []string{replicas[0].URL, replicas[1].URL},
		ProbeEvery:      25 * time.Millisecond,
		FailAfter:       2,
		HistoryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	defer func() {
		rt.Shutdown(ctx)
		for _, p := range replicas {
			p.Close(ctx)
		}
	}()

	// Error traffic straight at r0: inferring a model that does not
	// exist is a typed failure the availability objective counts.
	bad := client.New(replicas[0].URL, client.WithRetry(0, 0))
	item := api.InferItem{Shape: e2eShape, Data: make([]float64, 12)}
	for i := 0; i < 50; i++ {
		bctx, cancel := context.WithTimeout(ctx, time.Second)
		bad.Infer(bctx, &api.InferRequest{Model: "no-such-model", Items: []api.InferItem{item}})
		cancel()
	}
	waitFor(t, "r0 history to sample the errors", 5*time.Second, func() bool {
		h, err := bad.Health(context.Background())
		return err == nil && h.Status == "degraded"
	})

	// The router's prober must pick the degradation up — and keep the
	// replica on the ring.
	rs := rt.ReplicaSet()
	r0, _ := rs.Get("r0")
	waitFor(t, "router to see r0 degraded", 5*time.Second, func() bool {
		return r0.Degraded()
	})
	if !r0.Up() {
		t.Fatal("degraded replica was ejected; degraded must stay on the ring")
	}

	// Deprioritized: for every key, the failover sequence lists the
	// healthy replica before the degraded one.
	for _, key := range e2eModels {
		seq := rs.Sequence(key, 2)
		if len(seq) != 2 || seq[0].ID != "r1" || seq[1].ID != "r0" {
			ids := []string{}
			for _, r := range seq {
				ids = append(ids, r.ID)
			}
			t.Fatalf("Sequence(%q) = %v, want [r1 r0] (degraded last)", key, ids)
		}
	}

	// Through the console path: the router's health view names r0
	// degraded (and up), and the scattered journal carries the breach
	// and degraded events from r0's own flight recorder.
	snap := collect(t, ts.URL)
	if snap.Health == nil {
		t.Fatal("no health in snapshot")
	}
	var saw bool
	for _, r := range snap.Health.Replicas {
		if r.ID == "r0" {
			saw = true
			if !r.Up || r.Status != "degraded" {
				t.Errorf("router health for r0 = up=%v status=%q, want up degraded", r.Up, r.Status)
			}
		}
	}
	if !saw {
		t.Fatal("router health missing r0")
	}
	if !hasEvent(snap, events.TypeSLOBreach, "r0") {
		t.Errorf("scattered events missing r0's slo_breach: %+v", snap.Events)
	}
	if snap.SLO == nil {
		t.Error("snapshot missing the router's /debug/slo report")
	}
}
