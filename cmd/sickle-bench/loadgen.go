package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

// runLoadGen drives a running sickle-serve instance through the pkg/client
// SDK (the acceptance harness for the serve subsystem): it negotiates the
// API version, replays a fixed input set serially to get unbatched
// reference outputs, then replays it through `clients` concurrent
// connections and verifies every response is bit-identical to the
// reference while micro-batching engages (mean batch size > 1). It also
// issues a repeated subsample request to show the dataset LRU serving
// hits, and finishes with an asynchronous job round trip
// (submit → poll → result). With shardPhase set (the base URL points at a
// sickle-shard router) a final phase scrapes the router's shard metrics
// and verifies requests were actually routed across live replicas.
func runLoadGen(base, model string, clients, requests int, shardPhase bool) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("need -clients >= 1 and -requests >= 1 (got %d, %d)", clients, requests)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base, client.WithRetry(5, 100*time.Millisecond))

	version, err := c.Negotiate(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("negotiated API %s at %s\n", version, base)

	entry, err := pickModel(ctx, c, model)
	if err != nil {
		return err
	}
	if len(entry.InputShape) == 0 {
		return fmt.Errorf("model %q registered without inputShape; pass one at registration", entry.Name)
	}
	fmt.Printf("target model: %s@v%d (%s), input shape %v\n",
		entry.Name, entry.Version, entry.Spec.Arch, entry.InputShape)

	// A small pool of distinct deterministic inputs, reused round-robin so
	// concurrent responses can be checked against the serial reference.
	const pool = 8
	rng := rand.New(rand.NewSource(42))
	n := 1
	for _, d := range entry.InputShape {
		n *= d
	}
	inputs := make([]api.InferItem, pool)
	for i := range inputs {
		data := make([]float64, n)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		inputs[i] = api.InferItem{Shape: entry.InputShape, Data: data}
	}

	fmt.Printf("phase 1: %d serial requests (unbatched reference)...\n", pool)
	refs := make([]api.InferItem, pool)
	for i := range inputs {
		resp, err := inferOne(ctx, c, entry.Name, inputs[i])
		if err != nil {
			return err
		}
		refs[i] = resp.Outputs[0]
	}

	fmt.Printf("phase 2: %d requests over %d concurrent clients...\n", requests, clients)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		mismatch  int
		firstErr  error
	)
	next := make(chan int, requests)
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	t0 := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				in := i % pool
				s0 := time.Now()
				resp, err := inferOne(ctx, c, entry.Name, inputs[in])
				lat := time.Since(s0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					latencies = append(latencies, lat)
					if !sameItem(resp.Outputs[0], refs[in]) {
						mismatch++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return firstErr
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no successful requests recorded")
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		return latencies[int(p*float64(len(latencies)-1))]
	}
	fmt.Printf("  %d ok, %.0f req/s, latency p50 %v p95 %v p99 %v\n",
		len(latencies), float64(len(latencies))/elapsed.Seconds(), pct(0.50), pct(0.95), pct(0.99))
	if mismatch > 0 {
		return fmt.Errorf("%d responses differ from unbatched reference", mismatch)
	}
	fmt.Println("  all concurrent responses bit-identical to unbatched reference ✓")

	mean, err := meanBatchSize(ctx, c)
	if err != nil {
		return err
	}
	fmt.Printf("  mean micro-batch size: %.2f", mean)
	if mean > 1 {
		fmt.Println(" (batching engaged ✓)")
	} else {
		fmt.Println(" (no batching observed — raise concurrency or -window-ms)")
	}

	fmt.Println("phase 3: repeated subsample (dataset LRU)...")
	sub := api.SubsampleRequest{Dataset: "GESTS-2048", Cube: 8, NumHypercubes: 2, NumSamples: 32, Seed: 1}
	for i := 0; i < 2; i++ {
		out, err := c.Subsample(ctx, &sub)
		if err != nil {
			return err
		}
		fmt.Printf("  run %d: %d cubes, %d points, cacheHit=%v, %.1f ms\n",
			i+1, out.Cubes, out.Points, out.CacheHit, out.ElapsedMS)
	}

	fmt.Println("phase 4: async job round trip (submit → poll → result)...")
	job, err := c.SubmitSubsampleJob(ctx, &sub)
	if err != nil {
		return err
	}
	fmt.Printf("  submitted %s (%s)\n", job.ID, job.State)
	job, err = c.WaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("  terminal state %s (stage %q, %d/%d)\n",
		job.State, job.Progress.Stage, job.Progress.Done, job.Progress.Total)
	if job.State != api.JobSucceeded {
		return fmt.Errorf("job %s finished %s: %v", job.ID, job.State, job.Error)
	}
	res, err := c.JobResult(ctx, job.ID)
	if err != nil {
		return err
	}
	if res.Subsample == nil {
		return fmt.Errorf("job %s result carries no subsample payload", job.ID)
	}
	fmt.Printf("  result: %d cubes, %d points ✓\n", res.Subsample.Cubes, res.Subsample.Points)

	if shardPhase {
		return runShardPhase(ctx, c)
	}
	return nil
}

// runShardPhase scrapes the router's /metrics for the shard counters and
// verifies the preceding phases were actually routed through live
// replicas — the smoke check that -serve was pointed at sickle-shard and
// the ring is doing its job.
func runShardPhase(ctx context.Context, c *client.Client) error {
	fmt.Println("phase 5: shard routing (router metrics)...")
	raw, err := c.MetricsText(ctx)
	if err != nil {
		return err
	}
	up := map[string]float64{}
	routed := map[string]float64{}
	var failovers float64
	for _, line := range strings.Split(raw, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name, replica := parseShardMetric(fields[0])
		switch name {
		case "sickle_shard_replica_up":
			up[replica] = v
		case "sickle_shard_routed_requests_total":
			routed[replica] = v
		case "sickle_shard_failovers_total":
			failovers = v
		}
	}
	if len(up) == 0 {
		return fmt.Errorf("no sickle_shard_replica_up metrics — is -serve pointed at sickle-shard?")
	}
	liveCount, routedTotal := 0, 0.0
	for _, replica := range sortedReplicaKeys(up) {
		fmt.Printf("  replica %-4s up=%g routed=%g\n", replica, up[replica], routed[replica])
		if up[replica] > 0 {
			liveCount++
		}
		routedTotal += routed[replica]
	}
	fmt.Printf("  failovers: %g\n", failovers)
	if liveCount == 0 {
		return fmt.Errorf("router reports zero live replicas")
	}
	if routedTotal == 0 {
		return fmt.Errorf("router routed no requests despite the load phases")
	}
	fmt.Printf("  %d live replicas, %.0f requests routed through the ring ✓\n", liveCount, routedTotal)
	return nil
}

// parseShardMetric splits `name{replica="r0"}` into (name, "r0"); metrics
// without a replica label return an empty replica.
func parseShardMetric(s string) (name, replica string) {
	i := strings.IndexByte(s, '{')
	if i < 0 {
		return s, ""
	}
	name = s[:i]
	rest := s[i:]
	const pre = `{replica="`
	if j := strings.Index(rest, pre); j >= 0 {
		rest = rest[j+len(pre):]
		if k := strings.IndexByte(rest, '"'); k >= 0 {
			replica = rest[:k]
		}
	}
	return name, replica
}

func sortedReplicaKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pickModel(ctx context.Context, c *client.Client, want string) (*api.ModelInfo, error) {
	entries, err := c.Models(ctx)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("server has no registered models (start sickle-serve with -demo or -name/-ckpt)")
	}
	if want == "" {
		return &entries[0], nil
	}
	for i := range entries {
		if entries[i].Name == want {
			return &entries[i], nil
		}
	}
	return nil, fmt.Errorf("model %q not registered on server", want)
}

func inferOne(ctx context.Context, c *client.Client, model string, item api.InferItem) (*api.InferResponse, error) {
	out, err := c.Infer(ctx, &api.InferRequest{Model: model, Items: []api.InferItem{item}})
	if err != nil {
		var ae *api.Error
		if errors.As(err, &ae) {
			return nil, fmt.Errorf("infer %s: %w", model, ae)
		}
		return nil, err
	}
	if len(out.Outputs) != 1 {
		return nil, fmt.Errorf("expected 1 output, got %d", len(out.Outputs))
	}
	return out, nil
}

func sameItem(a, b api.InferItem) bool {
	if len(a.Shape) != len(b.Shape) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// meanBatchSize scrapes /metrics for sickle_batch_size_sum / _count.
func meanBatchSize(ctx context.Context, c *client.Client) (float64, error) {
	raw, err := c.MetricsText(ctx)
	if err != nil {
		return 0, err
	}
	var sum, count float64
	for _, line := range strings.Split(raw, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "sickle_batch_size_sum":
			sum = v
		case "sickle_batch_size_count":
			count = v
		}
	}
	if count == 0 {
		return 0, nil
	}
	return sum / count, nil
}
