package config

import (
	"testing"
)

const sampleCase = `
# SST-P1F4 case, mirroring the paper's Appendix B example.
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w, r]
  output_vars: p
  cluster_var: pv
  nx: 514
  ny: 512
  nz: 256
  gravity: z
  fileprefix: "SST-P1-H{hypercubes}"

subsample:
  hypercubes: maxent
  num_hypercubes: 32
  method: maxent
  path: /path/to/raw_data/
  num_samples: 3277
  num_clusters: 20
  nxsl: 32
  nysl: 32
  nzsl: 32

train:
  epochs: 1000
  batch: 16
  target: p_full
  window: 1
  arch: MLP_transformer
  sequence: true
`

func TestParseYAMLBasics(t *testing.T) {
	m, err := ParseYAML(sampleCase)
	if err != nil {
		t.Fatal(err)
	}
	shared := m.GetMap("shared")
	if shared.GetInt("dims", 0) != 3 {
		t.Fatalf("dims = %v", shared["dims"])
	}
	if shared.GetString("dtype", "") != "sst-binary" {
		t.Fatalf("dtype = %v", shared["dtype"])
	}
	if got := shared.GetStringList("input_vars"); len(got) != 4 || got[3] != "r" {
		t.Fatalf("input_vars = %v", got)
	}
	if shared.GetString("fileprefix", "") != "SST-P1-H{hypercubes}" {
		t.Fatalf("fileprefix = %v", shared["fileprefix"])
	}
	if m.GetMap("train").GetBool("sequence", false) != true {
		t.Fatal("sequence = false")
	}
}

func TestParseScalarTypes(t *testing.T) {
	m, err := ParseYAML(`
a: 42
b: 3.14
c: true
d: hello
e: "quoted string"
f: null
g: -7
h: 1e-3
`)
	if err != nil {
		t.Fatal(err)
	}
	if m["a"].(int64) != 42 || m["g"].(int64) != -7 {
		t.Fatalf("ints: %v %v", m["a"], m["g"])
	}
	if m["b"].(float64) != 3.14 || m["h"].(float64) != 1e-3 {
		t.Fatalf("floats: %v %v", m["b"], m["h"])
	}
	if m["c"].(bool) != true {
		t.Fatalf("bool: %v", m["c"])
	}
	if m["d"].(string) != "hello" || m["e"].(string) != "quoted string" {
		t.Fatalf("strings: %v %v", m["d"], m["e"])
	}
	if m["f"] != nil {
		t.Fatalf("null: %v", m["f"])
	}
}

func TestParseDashList(t *testing.T) {
	m, err := ParseYAML(`
cases:
  - alpha
  - beta
  - 3
`)
	if err != nil {
		t.Fatal(err)
	}
	l := m["cases"].([]any)
	if len(l) != 3 || l[0] != "alpha" || l[2].(int64) != 3 {
		t.Fatalf("list = %v", l)
	}
}

func TestParseDeepNesting(t *testing.T) {
	m, err := ParseYAML(`
a:
  b:
    c: 1
  d: 2
e: 3
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.GetMap("a").GetMap("b").GetInt("c", 0) != 1 {
		t.Fatal("deep value lost")
	}
	if m.GetMap("a").GetInt("d", 0) != 2 || m.GetInt("e", 0) != 3 {
		t.Fatal("sibling values lost")
	}
}

func TestParseComments(t *testing.T) {
	m, err := ParseYAML(`
a: 1  # trailing comment
# full-line comment
b: "text # not a comment"
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.GetInt("a", 0) != 1 {
		t.Fatal("trailing comment broke value")
	}
	if m.GetString("b", "") != "text # not a comment" {
		t.Fatalf("quoted # mishandled: %v", m["b"])
	}
}

func TestTabsRejected(t *testing.T) {
	if _, err := ParseYAML("a:\n\tb: 1\n"); err == nil {
		t.Fatal("expected error for tab indentation")
	}
}

func TestMissingColonRejected(t *testing.T) {
	if _, err := ParseYAML("just a line\n"); err == nil {
		t.Fatal("expected error for line without colon")
	}
}

func TestGetDefaults(t *testing.T) {
	m := Map{}
	if m.GetInt("x", 7) != 7 || m.GetString("y", "d") != "d" ||
		m.GetFloat("z", 1.5) != 1.5 || m.GetBool("w", true) != true {
		t.Fatal("defaults not honored")
	}
	if len(m.GetMap("missing")) != 0 {
		t.Fatal("missing map should be empty")
	}
}

func TestParseCaseFull(t *testing.T) {
	c, err := ParseCase(sampleCase)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims != 3 || c.Nx != 514 || c.NumSamples != 3277 {
		t.Fatalf("case = %+v", c)
	}
	if len(c.InputVars) != 4 || c.InputVars[0] != "u" {
		t.Fatalf("input vars %v", c.InputVars)
	}
	// Scalar output_vars form.
	if len(c.OutputVars) != 1 || c.OutputVars[0] != "p" {
		t.Fatalf("output vars %v", c.OutputVars)
	}
	if c.Hypercubes != "maxent" || c.Method != "maxent" {
		t.Fatal("subsample section lost")
	}
	if c.Epochs != 1000 || c.Batch != 16 || !c.Sequence {
		t.Fatal("train section lost")
	}
}

func TestParseCaseRequiresInputVars(t *testing.T) {
	if _, err := ParseCase("shared:\n  dims: 2\n"); err == nil {
		t.Fatal("expected error for missing input_vars")
	}
}

func TestParseCaseServeSection(t *testing.T) {
	src := `shared:
  input_vars: [u, v]
serve:
  addr: ":9090"
  max_batch: 32
  window_ms: 5
  workers: 4
  cache_entries: 3
  replicas: 1
`
	c, err := ParseCase(src)
	if err != nil {
		t.Fatal(err)
	}
	sv := c.Serve
	if sv.Addr != ":9090" || sv.MaxBatch != 32 || sv.WindowMS != 5 ||
		sv.Workers != 4 || sv.CacheEntries != 3 || sv.Replicas != 1 {
		t.Fatalf("serve section = %+v", sv)
	}
}

func TestParseCaseStreamSection(t *testing.T) {
	src := `shared:
  input_vars: [u, v]
stream:
  ranks: 4
  window: 3
  merge_every: 8
  sketch_bins: 12
  reservoir: 500
  shard_prefix: "out/stream"
`
	c, err := ParseCase(src)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stream
	if st.Ranks != 4 || st.Window != 3 || st.MergeEvery != 8 ||
		st.SketchBins != 12 || st.Reservoir != 500 || st.ShardPrefix != "out/stream" {
		t.Fatalf("stream section = %+v", st)
	}
}

func TestParseCaseShardSection(t *testing.T) {
	src := `shared:
  input_vars: [u, v]
shard:
  addr: ":9091"
  replicas: [http://h1:8080, http://h2:8080]
  probe_ms: 500
  fail_after: 3
  max_failover: 1
  vnodes: 64
`
	c, err := ParseCase(src)
	if err != nil {
		t.Fatal(err)
	}
	sh := c.Shard
	if sh.Addr != ":9091" || sh.ProbeMS != 500 || sh.FailAfter != 3 ||
		sh.MaxFailover != 1 || sh.VNodes != 64 {
		t.Fatalf("shard section = %+v", sh)
	}
	if len(sh.Replicas) != 2 || sh.Replicas[0] != "http://h1:8080" || sh.Replicas[1] != "http://h2:8080" {
		t.Fatalf("shard replicas = %v", sh.Replicas)
	}
}

func TestParseCaseShardUnsetStaysZero(t *testing.T) {
	// Unset shard keys must parse to zero values so internal/shard.Config
	// remains the single owner of the routing defaults.
	c, err := ParseCase("shared:\n  input_vars: [u]\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Shard.Addr != "" || c.Shard.Replicas != nil || c.Shard.ProbeMS != 0 ||
		c.Shard.FailAfter != 0 || c.Shard.MaxFailover != 0 || c.Shard.VNodes != 0 {
		t.Fatalf("shard section should be zero when unset, got %+v", c.Shard)
	}
}

func TestParseCaseStreamUnsetStaysZero(t *testing.T) {
	// Unset stream keys must parse to zero values so internal/stream.Config
	// remains the single owner of the streaming defaults.
	c, err := ParseCase("shared:\n  input_vars: [u]\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stream != (StreamCase{}) {
		t.Fatalf("stream section should be zero when unset, got %+v", c.Stream)
	}
}

func TestParseCaseServeUnsetStaysZero(t *testing.T) {
	// Unset serve keys must parse to zero values so internal/serve.Config
	// remains the single owner of the serving defaults.
	c, err := ParseCase("shared:\n  input_vars: [u]\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Serve != (ServeCase{}) {
		t.Fatalf("serve section should be zero when unset, got %+v", c.Serve)
	}
}
