// Package synth generates the synthetic analogues of the paper's DNS
// datasets (Table 1). Since the original multi-terabyte data (GESTS
// isotropic boxes, SST stratified ensembles, NREL combustion planes) is not
// available, each generator reproduces the statistical structure the
// sampling experiments depend on: spectral content, (an)isotropy, layered
// gradients, and heavy-tailed derived quantities. See DESIGN.md for the
// substitution rationale.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/spectral"
)

// IsotropicConfig controls the GESTS-like isotropic turbulence generator.
type IsotropicConfig struct {
	N        int     // cube edge (power of two)
	Spectrum float64 // spectral slope, default -5/3
	KPeak    float64 // energy-containing wavenumber, default 4
	URMS     float64 // target RMS velocity per component, default 1
	Nu       float64 // viscosity used for the dissipation field, default 1e-3
	Seed     int64
}

func (c *IsotropicConfig) defaults() {
	if c.N == 0 {
		c.N = 32
	}
	if c.Spectrum == 0 {
		c.Spectrum = -5.0 / 3.0
	}
	if c.KPeak == 0 {
		c.KPeak = 4
	}
	if c.URMS == 0 {
		c.URMS = 1
	}
	if c.Nu == 0 {
		c.Nu = 1e-3
	}
}

// Isotropic synthesizes a divergence-free velocity field with a model
// energy spectrum E(k) ∝ k^4 exp(-2(k/kp)²) for k < kp crossing into
// k^slope beyond the peak (a standard von Kármán-like shape), derives
// pressure from the spectral Poisson equation, and computes dissipation
// and enstrophy. The result carries the GESTS variable set of Table 1:
// u, v, w, dissipation (inputs), p (output), enstrophy (KCV).
func Isotropic(cfg IsotropicConfig) *grid.Field {
	cfg.defaults()
	n := cfg.N
	rng := rand.New(rand.NewSource(cfg.Seed))

	gu := spectral.NewGrid3(n, n, n)
	gv := spectral.NewGrid3(n, n, n)
	gw := spectral.NewGrid3(n, n, n)

	fillSpectralVelocity(gu, gv, gw, rng, func(kmag float64) float64 {
		return modelSpectrum(kmag, cfg.KPeak, cfg.Spectrum)
	})

	gu.IFFT3()
	gv.IFFT3()
	gw.IFFT3()

	f := grid.NewField(n, n, n)
	f.Dx = 2 * math.Pi / float64(n)
	f.Dy, f.Dz = f.Dx, f.Dx
	u := gu.RealPart(nil)
	v := gv.RealPart(nil)
	w := gw.RealPart(nil)
	// A single common factor preserves the solenoidal projection; isotropy
	// makes the per-component RMS statistically equal anyway.
	rescaleRMSCommon(cfg.URMS, u, v, w)
	f.AddVar("u", u)
	f.AddVar("v", v)
	f.AddVar("w", w)
	f.AddVar("p", spectral.PressureFromVelocity(u, v, w, n, n, n))
	f.ComputeDissipation(cfg.Nu)
	f.ComputeEnstrophy()
	return f
}

// modelSpectrum is the target E(k): k⁴ rise to the peak, power-law decay
// beyond it.
func modelSpectrum(k, kp, slope float64) float64 {
	if k <= 0 {
		return 0
	}
	if k < kp {
		r := k / kp
		return r * r * r * r
	}
	return math.Pow(k/kp, slope)
}

// fillSpectralVelocity populates û, v̂, ŵ with random divergence-free modes
// whose shell energy follows espec(k). Hermitian symmetry is enforced by
// generating a real white-noise field first and shaping it in spectral
// space, which keeps the inverse transform real.
func fillSpectralVelocity(gu, gv, gw *spectral.Grid3, rng *rand.Rand, espec func(float64) float64) {
	n := gu.Nx
	npts := n * n * n
	// Start from real white noise so spectral coefficients automatically
	// satisfy the Hermitian symmetry of a real field.
	for _, g := range []*spectral.Grid3{gu, gv, gw} {
		noise := make([]float64, npts)
		for i := range noise {
			noise[i] = rng.NormFloat64()
		}
		g.FromReal(noise)
		g.FFT3()
	}
	for k := 0; k < n; k++ {
		kz := spectral.WaveNumber(k, n)
		for j := 0; j < n; j++ {
			ky := spectral.WaveNumber(j, n)
			for i := 0; i < n; i++ {
				kx := spectral.WaveNumber(i, n)
				idx := (k*n+j)*n + i
				k2 := kx*kx + ky*ky + kz*kz
				// Zero the mean mode and the Nyquist planes: Nyquist modes
				// are self-conjugate, so the solenoidal projection (whose
				// k-vector does not flip sign there) would break Hermitian
				// symmetry and leak divergence into the real part.
				if k2 == 0 || i == n/2 || j == n/2 || k == n/2 {
					gu.Data[idx], gv.Data[idx], gw.Data[idx] = 0, 0, 0
					continue
				}
				kmag := math.Sqrt(k2)
				// Divergence-free (solenoidal) projection: û ← û - k̂(k̂·û).
				du, dv, dw := gu.Data[idx], gv.Data[idx], gw.Data[idx]
				dot := (complex(kx, 0)*du + complex(ky, 0)*dv + complex(kz, 0)*dw) / complex(k2, 0)
				du -= complex(kx, 0) * dot
				dv -= complex(ky, 0) * dot
				dw -= complex(kz, 0) * dot
				// Shape to the target spectrum: amplitude ∝ sqrt(E(k)/k²)
				// (shell surface area absorbs k² in 3-D).
				amp := math.Sqrt(espec(kmag) / k2)
				gu.Data[idx] = du * complex(amp, 0)
				gv.Data[idx] = dv * complex(amp, 0)
				gw.Data[idx] = dw * complex(amp, 0)
			}
		}
	}
}

// rescaleRMSCommon scales all components by one factor chosen so the mean
// per-component RMS equals target. A uniform factor commutes with the
// divergence operator, so solenoidal fields stay solenoidal.
func rescaleRMSCommon(target float64, comps ...[]float64) {
	s, n := 0.0, 0
	for _, c := range comps {
		for _, x := range c {
			s += x * x
		}
		n += len(c)
	}
	if n == 0 {
		return
	}
	rms := math.Sqrt(s / float64(n))
	if rms == 0 {
		return
	}
	f := target / rms
	for _, c := range comps {
		for i := range c {
			c[i] *= f
		}
	}
}

// GESTSDataset builds the single-snapshot GESTS-like dataset with Table 1
// metadata (inputs u,v,w,ε; output p; KCV enstrophy).
func GESTSDataset(label string, cfg IsotropicConfig) *grid.Dataset {
	f := Isotropic(cfg)
	return &grid.Dataset{
		Label:       label,
		Description: "3D forced isotropic turbulence (synthetic GESTS analogue)",
		Snapshots:   []*grid.Field{f},
		InputVars:   []string{"u", "v", "w", "dissipation"},
		OutputVars:  []string{"p"},
		ClusterVar:  "enstrophy",
	}
}
