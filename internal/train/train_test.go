package train

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cfd3d"
	"repro/internal/energy"
	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

func TestLSTMModelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewLSTMModel(rng, 4, 8, 1)
	x := tensor.Randn(rng, 1, 3, 5, 4).Reshape(3, 5, 4) // [B=3,T=5,C=4]
	y := m.Forward(x)
	if y.Dim(0) != 3 || y.Dim(1) != 1 {
		t.Fatalf("LSTM output shape %v, want [3 1]", y.Shape)
	}
	_, g := nn.MSELoss(y, tensor.Randn(rng, 1, 3, 1).Reshape(3, 1))
	m.Backward(g) // must not panic; grads accumulate
	if nn.GradNorm(m) == 0 {
		t.Fatal("no gradients accumulated")
	}
}

// TestTable2Shapes verifies the I/O contract of all three architectures as
// listed in the paper's Table 2.
func TestTable2Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := 8

	// MLP-Transformer: [B, T, N, C] -> [B, T, C', G, G, G].
	mt := NewMLPTransformer(rng, 3, 16, 2, 1, g)
	x := tensor.Randn(rng, 1, 2, 2, 10, 3).Reshape(2, 2, 10, 3)
	y := mt.Forward(x)
	want := []int{2, 2, 1, g, g, g}
	for i, w := range want {
		if y.Dim(i) != w {
			t.Fatalf("MLP-Transformer shape %v, want %v", y.Shape, want)
		}
	}
	_, gr := nn.MSELoss(y, tensor.Randn(rng, 1, want...))
	mt.Backward(gr)
	if nn.GradNorm(mt) == 0 {
		t.Fatal("MLP-Transformer: no grads")
	}

	// CNN-Transformer: [B, T, C, G, G, G] -> [B, T, C', G, G, G].
	ct := NewCNNTransformer(rng, 2, 16, 2, 1, g)
	x2 := tensor.Randn(rng, 1, 2, 2, 2, g, g, g).Reshape(2, 2, 2, g, g, g)
	y2 := ct.Forward(x2)
	want2 := []int{2, 2, 1, g, g, g}
	for i, w := range want2 {
		if y2.Dim(i) != w {
			t.Fatalf("CNN-Transformer shape %v, want %v", y2.Shape, want2)
		}
	}
	_, gr2 := nn.MSELoss(y2, tensor.Randn(rng, 1, want2...))
	ct.Backward(gr2)
	if nn.GradNorm(ct) == 0 {
		t.Fatal("CNN-Transformer: no grads")
	}

	// MATEY: same dense contract.
	ma := NewMATEYModel(rng, 2, 16, 2, 1, g)
	y3 := ma.Forward(x2)
	for i, w := range want2 {
		if y3.Dim(i) != w {
			t.Fatalf("MATEY shape %v, want %v", y3.Shape, want2)
		}
	}
	_, gr3 := nn.MSELoss(y3, tensor.Randn(rng, 1, want2...))
	ma.Backward(gr3)
	if nn.GradNorm(ma) == 0 {
		t.Fatal("MATEY: no grads")
	}
}

// syntheticRegression builds examples with a learnable linear structure.
func syntheticRegression(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		in := tensor.Randn(rng, 1, 3, 2).Reshape(3, 2) // [T=3, C=2]
		s := 0.0
		for _, v := range in.Data {
			s += v
		}
		out[i] = Example{Input: in, Target: tensor.FromSlice([]float64{s / 6}, 1)}
	}
	return out
}

func TestTrainLSTMReducesLoss(t *testing.T) {
	ex := syntheticRegression(80, 3)
	factory := func(rng *rand.Rand) Model { return NewLSTMModel(rng, 2, 8, 1) }
	_, hist, err := Train(context.Background(), factory, ex, Config{Epochs: 40, Batch: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1]
	if !(last < first*0.5) {
		t.Fatalf("training failed to reduce loss: %v -> %v", first, last)
	}
	if hist.FinalLoss <= 0 && hist.FinalLoss != 0 {
		t.Fatalf("bad final loss %v", hist.FinalLoss)
	}
	if hist.Params == 0 {
		t.Fatal("param count missing")
	}
}

func TestDDPMatchesSerial(t *testing.T) {
	ex := syntheticRegression(40, 5)
	factory := func(rng *rand.Rand) Model { return NewLSTMModel(rng, 2, 6, 1) }
	_, serial, err := Train(context.Background(), factory, ex, Config{Epochs: 5, Batch: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, ddp, err := Train(context.Background(), factory, ex, Config{Epochs: 5, Batch: 8, Seed: 6, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.TrainLoss {
		if math.Abs(serial.TrainLoss[i]-ddp.TrainLoss[i]) > 1e-6*(1+math.Abs(serial.TrainLoss[i])) {
			t.Fatalf("epoch %d: serial %v vs ddp %v", i, serial.TrainLoss[i], ddp.TrainLoss[i])
		}
	}
}

func TestTrainChargesEnergy(t *testing.T) {
	ex := syntheticRegression(20, 7)
	m := energy.NewMeter()
	factory := func(rng *rand.Rand) Model { return NewLSTMModel(rng, 2, 4, 1) }
	if _, _, err := Train(context.Background(), factory, ex, Config{Epochs: 2, Batch: 8, Seed: 8, Meter: m}); err != nil {
		t.Fatal(err)
	}
	if m.Joules() <= 0 {
		t.Fatal("training charged no energy")
	}
}

func TestTrainTooFewExamples(t *testing.T) {
	factory := func(rng *rand.Rand) Model { return NewLSTMModel(rng, 2, 4, 1) }
	if _, _, err := Train(context.Background(), factory, syntheticRegression(1, 9), Config{}); err == nil {
		t.Fatal("expected error for 1 example")
	}
}

func TestSplitTrainTest(t *testing.T) {
	ex := syntheticRegression(100, 10)
	tr, te := SplitTrainTest(ex, 0.1, 1)
	if len(te) != 10 || len(tr) != 90 {
		t.Fatalf("split %d/%d, want 90/10", len(tr), len(te))
	}
	// Deterministic under seed.
	tr2, _ := SplitTrainTest(ex, 0.1, 1)
	if tr[0].Input != tr2[0].Input {
		t.Fatal("split not deterministic")
	}
}

// pipelineDataset builds a small SST-like trajectory plus cube samples.
func pipelineDataset(t testing.TB, method string) (*grid.Dataset, []sampling.CubeSample) {
	t.Helper()
	d := cfd3d.EvolveDataset("SST-P1F4-mini", 4, 1, cfd3d.Config{N: 16, Seed: 11})
	cfg := sampling.PipelineConfig{
		Hypercubes: "random", Method: method,
		NumHypercubes: 2, NumSamples: 40,
		CubeSx: 8, CubeSy: 8, CubeSz: 8, NumClusters: 4, Seed: 12,
	}
	cubes, err := sampling.SubsampleDataset(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, cubes
}

func TestBuildSampleFull(t *testing.T) {
	d, cubes := pipelineDataset(t, "maxent")
	ex, err := BuildSampleFull(d, cubes, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cubes × (4-2+1) windows = 6 examples.
	if len(ex) != 6 {
		t.Fatalf("built %d examples, want 6", len(ex))
	}
	in := ex[0].Input
	if in.Dim(0) != 2 || in.Dim(1) != 40 || in.Dim(2) != len(d.InputVars) {
		t.Fatalf("input shape %v", in.Shape)
	}
	tgt := ex[0].Target
	if tgt.Dim(0) != 1 || tgt.Dim(1) != 1 || tgt.Dim(2) != 8 {
		t.Fatalf("target shape %v", tgt.Shape)
	}
}

func TestBuildFullFull(t *testing.T) {
	d, cubes := pipelineDataset(t, "full")
	ex, err := BuildFullFull(d, cubes, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := ex[0].Input
	if in.Dim(0) != 1 || in.Dim(1) != len(d.InputVars) || in.Dim(2) != 8 {
		t.Fatalf("input shape %v", in.Shape)
	}
}

func TestBuildSampleSingleNeedsTargets(t *testing.T) {
	d, cubes := pipelineDataset(t, "random")
	if _, err := BuildSampleSingle(d, cubes, 2); err == nil {
		t.Fatal("expected error: dataset has no global targets")
	}
	d.GlobalTargets = []float64{1, 2, 3, 4}
	ex, err := BuildSampleSingle(d, cubes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 3 { // 4 snapshots, window 2 -> 3 windows
		t.Fatalf("built %d examples, want 3", len(ex))
	}
	if ex[0].Input.Dim(1) != 2*len(d.InputVars) {
		t.Fatalf("summary feature dim %v", ex[0].Input.Shape)
	}
	if ex[2].Target.Data[0] != 4 {
		t.Fatalf("target alignment wrong: %v", ex[2].Target.Data)
	}
}

func TestEndToEndMLPTransformerTrains(t *testing.T) {
	d, cubes := pipelineDataset(t, "maxent")
	ex, err := BuildSampleFull(d, cubes, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(rng *rand.Rand) Model {
		return NewMLPTransformer(rng, len(d.InputVars), 8, 2, len(d.OutputVars), 8)
	}
	_, hist, err := Train(context.Background(), factory, ex, Config{Epochs: 8, Batch: 4, Seed: 13, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1]
	if !(last < first) {
		t.Fatalf("MLP-Transformer loss did not decrease: %v -> %v", first, last)
	}
}

func TestEndToEndCNNTransformerTrains(t *testing.T) {
	d, cubes := pipelineDataset(t, "full")
	ex, err := BuildFullFull(d, cubes, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(rng *rand.Rand) Model {
		return NewCNNTransformer(rng, len(d.InputVars), 8, 2, len(d.OutputVars), 8)
	}
	_, hist, err := Train(context.Background(), factory, ex, Config{Epochs: 6, Batch: 4, Seed: 14, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1]
	if !(last < first) {
		t.Fatalf("CNN-Transformer loss did not decrease: %v -> %v", first, last)
	}
}

func BenchmarkTrainEpochMLPTransformer(b *testing.B) {
	d, cubes := pipelineDataset(b, "maxent")
	ex, err := BuildSampleFull(d, cubes, 1)
	if err != nil {
		b.Fatal(err)
	}
	factory := func(rng *rand.Rand) Model {
		return NewMLPTransformer(rng, len(d.InputVars), 8, 2, len(d.OutputVars), 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(context.Background(), factory, ex, Config{Epochs: 1, Batch: 4, Seed: 15})
	}
}

// TestTrainCancelBetweenEpochs: cancellation from the per-epoch progress
// hook stops the run before the next epoch and returns ctx.Err().
func TestTrainCancelBetweenEpochs(t *testing.T) {
	ex := syntheticRegression(40, 21)
	factory := func(rng *rand.Rand) Model { return NewLSTMModel(rng, 2, 4, 1) }
	ctx, cancel := context.WithCancel(context.Background())
	var epochs []int
	_, _, err := Train(ctx, factory, ex, Config{
		Epochs: 10, Batch: 8, Seed: 22,
		Progress: func(done, total int) {
			epochs = append(epochs, done)
			if done == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(epochs) != 2 || epochs[len(epochs)-1] != 2 {
		t.Fatalf("progress epochs = %v; training did not stop after the canceling epoch", epochs)
	}
}
