package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/pkg/api"
)

func TestStartSpanMintsAndParents(t *testing.T) {
	tr := NewTracer("test", 16)
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatal("root span missing IDs")
	}
	_, child := tr.StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	child.End()
	root.End()
	root.End() // idempotent

	spans := tr.Spans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].ParentID != root.SpanID() {
		t.Errorf("child parent = %q, want %q", byName["child"].ParentID, root.SpanID())
	}
	if byName["root"].ParentID != "" {
		t.Errorf("root has parent %q", byName["root"].ParentID)
	}
	if byName["child"].Attrs["k"] != "v" {
		t.Errorf("child attrs = %v", byName["child"].Attrs)
	}
	if byName["root"].Tier != "test" {
		t.Errorf("tier = %q", byName["root"].Tier)
	}
}

func TestStartSpanInheritsUpstreamTrace(t *testing.T) {
	tr := NewTracer("test", 16)
	up := api.TraceContext{TraceID: "abc123", SpanID: "def456"}
	ctx := api.WithTrace(context.Background(), up)
	childCtx, sp := tr.StartSpan(ctx, "op")
	if sp.TraceID() != "abc123" {
		t.Errorf("trace = %q, want upstream abc123", sp.TraceID())
	}
	sp.End()
	if got := tr.Spans("abc123"); len(got) != 1 || got[0].ParentID != "def456" {
		t.Errorf("span not parented to upstream: %+v", got)
	}
	tc, ok := api.TraceFrom(childCtx)
	if !ok || tc.SpanID != sp.SpanID() {
		t.Errorf("child ctx carries %+v, want span %s", tc, sp.SpanID())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer("test", 4)
	for i := 0; i < 6; i++ {
		tr.Record(Span{TraceID: fmt.Sprintf("t%d", i), Name: "s", Start: time.Now()})
	}
	if got := tr.Spans("t0"); len(got) != 0 {
		t.Errorf("oldest span survived a full ring")
	}
	if got := tr.Spans("t5"); len(got) != 1 {
		t.Errorf("newest span missing")
	}
	if infos := tr.Traces(0); len(infos) != 4 {
		t.Errorf("ring holds %d traces, want 4", len(infos))
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "x")
	sp.SetAttr("a", "b")
	sp.End()
	if ctx == nil {
		t.Fatal("nil tracer must return the ctx")
	}
	tr.Record(Span{TraceID: "x"})
	if tr.Spans("x") != nil || tr.Traces(5) != nil {
		t.Fatal("nil tracer must return nothing")
	}
}

func TestTraceHTTPHandlers(t *testing.T) {
	tr := NewTracer("test", 16)
	_, sp := tr.StartSpan(context.Background(), "op")
	sp.End()
	mux := NewDebugMux(NewRegistry(), tr)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list TraceListPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != sp.TraceID() {
		t.Fatalf("list = %+v", list)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+sp.TraceID(), nil))
	var payload TracePayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].Name != "op" {
		t.Fatalf("payload = %+v", payload)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/nosuch", nil))
	if rec.Code != 404 {
		t.Errorf("missing trace -> %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("debug mux /metrics -> %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("pprof index -> %d", rec.Code)
	}
}

// TestTracerConcurrency exercises the ring under parallel writers and
// readers; with -race this is the tracer's thread-safety proof.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer("test", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "op")
				_, child := tr.StartSpan(ctx, "child")
				child.End()
				sp.End()
				if i%20 == 0 {
					tr.Traces(10)
					tr.Spans(sp.TraceID())
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Traces(0)); got == 0 {
		t.Fatal("no traces recorded")
	}
}
