package stats

import (
	"fmt"
	"math"
)

// NDHistogram is a fixed-width histogram over a d-dimensional unit-scaled
// feature space. It is the density estimator behind the binned variant of
// uniform-in-phase-space (UIPS) sampling: phase-space occupancy is counted
// per cell and converted into acceptance probabilities.
type NDHistogram struct {
	Dims    int
	Bins    int // bins per dimension
	Lo, Hi  []float64
	Counts  map[int]int // sparse: cell index -> count
	N       int
	strides []int
}

// NewNDHistogram creates a histogram with bins cells per dimension over the
// box [lo, hi) in each dimension.
func NewNDHistogram(lo, hi []float64, bins int) *NDHistogram {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic("stats: NDHistogram needs matching non-empty bounds")
	}
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NDHistogram needs >=1 bin, got %d", bins))
	}
	d := len(lo)
	strides := make([]int, d)
	s := 1
	for i := d - 1; i >= 0; i-- {
		strides[i] = s
		s *= bins
	}
	return &NDHistogram{
		Dims: d, Bins: bins,
		Lo: append([]float64(nil), lo...), Hi: append([]float64(nil), hi...),
		Counts: make(map[int]int), strides: strides,
	}
}

// NDHistogramFromPoints builds a histogram spanning the bounding box of pts.
func NDHistogramFromPoints(pts [][]float64, bins int) *NDHistogram {
	if len(pts) == 0 {
		panic("stats: NDHistogramFromPoints with no points")
	}
	d := len(pts[0])
	lo := append([]float64(nil), pts[0]...)
	hi := append([]float64(nil), pts[0]...)
	for _, p := range pts {
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	for j := 0; j < d; j++ {
		if hi[j] == lo[j] {
			hi[j] = lo[j] + 1
		} else {
			hi[j] += (hi[j] - lo[j]) * 1e-9
		}
	}
	h := NewNDHistogram(lo, hi, bins)
	for _, p := range pts {
		h.Add(p)
	}
	return h
}

// CellIndex returns the flattened cell index of point p (clamped to range).
func (h *NDHistogram) CellIndex(p []float64) int {
	if len(p) != h.Dims {
		panic(fmt.Sprintf("stats: point dim %d, histogram dim %d", len(p), h.Dims))
	}
	idx := 0
	for j, v := range p {
		b := int(float64(h.Bins) * (v - h.Lo[j]) / (h.Hi[j] - h.Lo[j]))
		if b < 0 {
			b = 0
		}
		if b >= h.Bins {
			b = h.Bins - 1
		}
		idx += b * h.strides[j]
	}
	return idx
}

// Add records one point.
func (h *NDHistogram) Add(p []float64) {
	h.Counts[h.CellIndex(p)]++
	h.N++
}

// AddWeighted records w collapsed observations at p in one update — the
// batch entry point for rank-parallel statistics, where one representative
// point stands for a whole group that landed in the same cell. w must be
// non-negative; w == 0 is a no-op.
func (h *NDHistogram) AddWeighted(p []float64, w int) {
	if w < 0 {
		panic(fmt.Sprintf("stats: negative histogram weight %d", w))
	}
	if w == 0 {
		return
	}
	h.Counts[h.CellIndex(p)] += w
	h.N += w
}

// Merge folds other's counts into h. The two histograms must share the same
// geometry (dimensionality, bin count, and bounds); rank-parallel pipelines
// rely on this to combine per-rank sketches into a global one.
func (h *NDHistogram) Merge(other *NDHistogram) error {
	if other.Dims != h.Dims || other.Bins != h.Bins {
		return fmt.Errorf("stats: merge shape mismatch: %dd/%d bins vs %dd/%d bins",
			h.Dims, h.Bins, other.Dims, other.Bins)
	}
	for j := 0; j < h.Dims; j++ {
		if h.Lo[j] != other.Lo[j] || h.Hi[j] != other.Hi[j] {
			return fmt.Errorf("stats: merge bounds mismatch on dim %d: [%v,%v) vs [%v,%v)",
				j, h.Lo[j], h.Hi[j], other.Lo[j], other.Hi[j])
		}
	}
	for cell, c := range other.Counts {
		h.Counts[cell] += c
	}
	h.N += other.N
	return nil
}

// TotalCells returns the total number of cells (Bins^Dims), occupied or not.
func (h *NDHistogram) TotalCells() int {
	n := 1
	for i := 0; i < h.Dims; i++ {
		n *= h.Bins
	}
	return n
}

// Probability returns the empirical probability mass of the cell containing p.
func (h *NDHistogram) Probability(p []float64) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[h.CellIndex(p)]) / float64(h.N)
}

// OccupiedCells returns the number of cells with at least one sample.
func (h *NDHistogram) OccupiedCells() int { return len(h.Counts) }

// UniformityIndex quantifies how uniformly a point set fills its occupied
// phase-space cells, as exp(H)/cells where H is the entropy of the cell
// occupancy distribution. 1.0 means perfectly uniform occupancy; values
// near 0 mean the samples clump into few cells. This is the scalar used to
// reproduce the paper's Fig. 4 UIPS-clumping comparison.
func (h *NDHistogram) UniformityIndex() float64 {
	if h.N == 0 || len(h.Counts) == 0 {
		return 0
	}
	p := make([]float64, 0, len(h.Counts))
	for _, c := range h.Counts {
		p = append(p, float64(c))
	}
	hent := Entropy(p)
	// exp(H) is the perplexity: the effective number of uniformly used cells.
	return math.Exp(hent) / float64(len(h.Counts))
}
