package spectral

import "math"

// SolvePoisson solves ∇²p = f on a triply periodic [0,2π)³ domain using the
// spectral method: p̂(k) = -f̂(k)/|k|². The k=0 mode (mean of p) is set to
// zero. f is x-fastest real data; the solution is returned in the same
// layout.
func SolvePoisson(f []float64, nx, ny, nz int) []float64 {
	g := NewGrid3(nx, ny, nz)
	g.FromReal(f)
	g.FFT3()
	for k := 0; k < nz; k++ {
		kz := WaveNumber(k, nz)
		for j := 0; j < ny; j++ {
			ky := WaveNumber(j, ny)
			for i := 0; i < nx; i++ {
				kx := WaveNumber(i, nx)
				k2 := kx*kx + ky*ky + kz*kz
				idx := (k*ny+j)*nx + i
				if k2 == 0 {
					g.Data[idx] = 0
					continue
				}
				g.Data[idx] = -g.Data[idx] / complex(k2, 0)
			}
		}
	}
	g.IFFT3()
	return g.RealPart(nil)
}

// PressureFromVelocity computes the pressure field of an incompressible
// flow from the Poisson equation ∇²p = -∂ᵢuⱼ∂ⱼuᵢ, evaluated spectrally.
// This mirrors how the GESTS post-processing derives pressure from the
// velocity checkpoint. u, v, w are x-fastest fields on a periodic [0,2π)³
// grid.
func PressureFromVelocity(u, v, w []float64, nx, ny, nz int) []float64 {
	// Velocity gradients via spectral differentiation.
	grads := make([][]float64, 9) // [du/dx, du/dy, du/dz, dv/dx, ...]
	vels := [][]float64{u, v, w}
	for a, vel := range vels {
		for d := 0; d < 3; d++ {
			grads[a*3+d] = Derivative(vel, nx, ny, nz, d)
		}
	}
	// Source term: -∂ᵢuⱼ ∂ⱼuᵢ = -Σᵢⱼ (∂uⱼ/∂xᵢ)(∂uᵢ/∂xⱼ).
	src := make([]float64, len(u))
	for p := range src {
		s := 0.0
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				s += grads[a*3+b][p] * grads[b*3+a][p]
			}
		}
		src[p] = -s
	}
	return SolvePoisson(src, nx, ny, nz)
}

// Derivative computes ∂f/∂x_axis spectrally (axis: 0=x, 1=y, 2=z) on a
// periodic [0,2π)³ grid.
func Derivative(f []float64, nx, ny, nz, axis int) []float64 {
	g := NewGrid3(nx, ny, nz)
	g.FromReal(f)
	g.FFT3()
	for k := 0; k < nz; k++ {
		kz := WaveNumber(k, nz)
		for j := 0; j < ny; j++ {
			ky := WaveNumber(j, ny)
			for i := 0; i < nx; i++ {
				kx := WaveNumber(i, nx)
				var kv float64
				var m, n int
				switch axis {
				case 0:
					kv, m, n = kx, i, nx
				case 1:
					kv, m, n = ky, j, ny
				default:
					kv, m, n = kz, k, nz
				}
				idx := (k*ny+j)*nx + i
				// The Nyquist mode is self-conjugate; multiplying it by
				// i·k would make the result complex. Its derivative is
				// conventionally set to zero.
				if m == n/2 && n > 1 {
					g.Data[idx] = 0
					continue
				}
				// Multiply by i·k.
				g.Data[idx] *= complex(0, kv)
			}
		}
	}
	g.IFFT3()
	return g.RealPart(nil)
}

// EnergySpectrum computes the shell-averaged kinetic-energy spectrum E(k)
// of the velocity field (u, v, w) on a periodic cube. Returns E indexed by
// integer wavenumber shell.
func EnergySpectrum(u, v, w []float64, nx, ny, nz int) []float64 {
	kmax := int(math.Sqrt(float64(nx*nx+ny*ny+nz*nz))/2) + 1
	e := make([]float64, kmax)
	norm := 1 / float64(nx*ny*nz)
	for _, vel := range [][]float64{u, v, w} {
		g := NewGrid3(nx, ny, nz)
		g.FromReal(vel)
		g.FFT3()
		for k := 0; k < nz; k++ {
			kz := WaveNumber(k, nz)
			for j := 0; j < ny; j++ {
				ky := WaveNumber(j, ny)
				for i := 0; i < nx; i++ {
					kx := WaveNumber(i, nx)
					kmag := math.Sqrt(kx*kx + ky*ky + kz*kz)
					shell := int(kmag + 0.5)
					if shell >= kmax {
						continue
					}
					c := g.Data[(k*ny+j)*nx+i]
					amp := real(c)*real(c) + imag(c)*imag(c)
					e[shell] += 0.5 * amp * norm * norm
				}
			}
		}
	}
	return e
}
