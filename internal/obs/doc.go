// Package obs is the shared observability layer for the serve/shard/stream
// stack: one metrics registry, one tracing substrate, and the debug/pprof
// plumbing, so every tier exports the same way.
//
//   - registry.go — Registry: counters, gauges, and proper le-bucketed
//     histograms (with labeled vecs and live -Func probes) rendered as
//     Prometheus text exposition, # HELP/# TYPE lines included. All value
//     types are lock-free (atomic float bits) and nil-safe, so
//     instrumentation can be threaded through hot paths unconditionally.
//   - trace.go — Tracer: trace/span recording into a bounded in-memory
//     ring. Trace identity (IDs, the X-Sickle-Trace header, context
//     propagation) lives in pkg/api so clients outside internal/ can mint
//     and propagate traces; this package records and serves the spans.
//   - debug.go — HTTP surface: /debug/traces + /debug/traces/{id} JSON
//     handlers over a Tracer's ring, and NewDebugMux, the opt-in
//     -debug-addr mux bundling net/http/pprof with /metrics and the trace
//     endpoints.
//   - runtime.go — RegisterRuntime: process-level gauges (goroutines,
//     heap, GC pause, start time, sickle_build_info) plus tensor.Pool
//     worker-utilization gauges, registered onto any Registry.
//   - lint.go — LintExposition: a line-by-line exposition-format checker
//     used by tests and the CI smoke step to reject malformed series.
//
// internal/obs/log (package olog) is the structured leveled logger the
// binaries and the serve/shard request paths share.
package obs
