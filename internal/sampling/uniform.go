package sampling

import (
	"math/rand"

	"repro/internal/energy"
)

// Uniform selects every k-th point (constant stride), the "uniform"
// baseline of the paper's Fig. 9 foundation-model comparison. The stride is
// chosen to spread n samples evenly over the point ordering (which follows
// the grid, so the samples form a regular spatial lattice).
type Uniform struct {
	Meter *energy.Meter
}

// Name implements PointSampler.
func (Uniform) Name() string { return "uniform" }

// SelectPoints implements PointSampler.
func (u Uniform) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	validateRequest(d, n)
	total := d.N()
	if n >= total {
		return allIndices(total)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = i * total / n
	}
	chargeSampling(u.Meter, n, dims(d), 1)
	return out
}
