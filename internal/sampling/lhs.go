package sampling

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/energy"
)

// LHS adapts Latin hypercube sampling to subset selection: it generates an
// n-point Latin hypercube design in the normalized feature space and picks
// the nearest unused data point to each design site. This gives the
// one-dimensional stratification guarantee of LHS over whatever region the
// data occupies.
type LHS struct {
	Meter *energy.Meter
}

// Name implements PointSampler.
func (LHS) Name() string { return "lhs" }

// SelectPoints implements PointSampler.
func (l LHS) SelectPoints(d *Data, n int, rng *rand.Rand) []int {
	validateRequest(d, n)
	total := d.N()
	if n >= total {
		return allIndices(total)
	}
	pts := normalizedCopy(d.Features)
	dim := len(pts[0])

	// Latin hypercube design: each dimension is an independent permutation
	// of the n strata with a uniform jitter inside each stratum.
	design := make([][]float64, n)
	for s := range design {
		design[s] = make([]float64, dim)
	}
	for j := 0; j < dim; j++ {
		perm := rng.Perm(n)
		for s := 0; s < n; s++ {
			design[s][j] = (float64(perm[s]) + rng.Float64()) / float64(n)
		}
	}

	used := make([]bool, total)
	out := make([]int, 0, n)
	for _, site := range design {
		best, bestD := -1, math.MaxFloat64
		for i, p := range pts {
			if used[i] {
				continue
			}
			dd := 0.0
			for j := range site {
				diff := p[j] - site[j]
				dd += diff * diff
			}
			if dd < bestD {
				best, bestD = i, dd
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, best)
		}
	}
	sort.Ints(out)
	chargeSampling(l.Meter, total*n/64+n, dim, 2) // nearest-site scan cost
	return out
}
