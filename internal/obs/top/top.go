// Package top is the library behind cmd/sickle-top: it polls one serving
// target (a sickle-shard router or a bare sickle-serve) over its
// /healthz, /debug/slo, /debug/events, and /debug/history endpoints and
// derives the operator's view — per-replica QPS, p50/p99 latency, error
// rate, SLO burn rates, and the live event tail. The e2e tests consume
// Collect directly; the binary renders the same Snapshot as an ANSI
// dashboard (or, with -once, as one JSON document for CI).
package top

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/events"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/pkg/api"
	"repro/pkg/client"
)

// DefaultWindow is the trailing window the rate/latency stats cover.
const DefaultWindow = 60 * time.Second

// ReplicaStats is one replica's derived load view. Replica "" is the
// target tier itself (the router's own request path, or a bare serve).
type ReplicaStats struct {
	Replica   string  `json:"replica,omitempty"`
	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"errorRate"` // errors / requests over the window
	P50       float64 `json:"p50"`       // seconds
	P99       float64 `json:"p99"`       // seconds
	Requests  float64 `json:"requests"`  // absolute count over the window
}

// Snapshot is one Collect result: the raw debug payloads plus the
// derived per-replica stats. It marshals to the -once JSON document.
type Snapshot struct {
	Target   string          `json:"target"`
	Time     time.Time       `json:"time"`
	Health   *api.Health     `json:"health,omitempty"`
	SLO      *slo.Report     `json:"slo,omitempty"`
	Events   *events.Payload `json:"events,omitempty"`
	History  *tsdb.Payload   `json:"history,omitempty"`
	Replicas []ReplicaStats  `json:"replicas"`

	// Errors lists endpoints that could not be fetched (the dashboard
	// degrades instead of dying with the target).
	Errors []string `json:"errors,omitempty"`
}

// Collect polls every debug endpoint of target and derives the stats
// over the trailing window (0 = DefaultWindow). Endpoint failures are
// recorded in Snapshot.Errors, not returned: a half-answering target
// still yields a usable view.
func Collect(ctx context.Context, c *client.Client, target string, window time.Duration) *Snapshot {
	if window <= 0 {
		window = DefaultWindow
	}
	s := &Snapshot{Target: target, Time: time.Now(), Replicas: []ReplicaStats{}}
	note := func(what string, err error) {
		s.Errors = append(s.Errors, what+": "+err.Error())
	}

	if h, err := c.Health(ctx); err != nil {
		note("healthz", err)
	} else {
		s.Health = h
	}
	if raw, err := c.DebugSLOJSON(ctx); err != nil {
		note("slo", err)
	} else {
		var rep slo.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			note("slo", err)
		} else {
			s.SLO = &rep
		}
	}
	if raw, err := c.DebugEventsJSON(ctx, "limit=64"); err != nil {
		note("events", err)
	} else {
		var p events.Payload
		if err := json.Unmarshal(raw, &p); err != nil {
			note("events", err)
		} else {
			s.Events = &p
		}
	}
	q := fmt.Sprintf("since=%s", window)
	if raw, err := c.DebugHistoryJSON(ctx, q); err != nil {
		note("history", err)
	} else {
		var p tsdb.Payload
		if err := json.Unmarshal(raw, &p); err != nil {
			note("history", err)
		} else {
			s.History = &p
			s.Replicas = DeriveReplicaStats(&p, window)
		}
	}
	return s
}

// request-path metric families, both tiers' vocabularies.
func isRequests(name string) bool {
	return name == "sickle_requests_total" || name == "sickle_shard_requests_total"
}
func isErrors(name string) bool {
	return name == "sickle_request_errors_total" || name == "sickle_shard_request_errors_total"
}
func isLatency(name string) bool {
	return name == "sickle_request_seconds" || name == "sickle_shard_request_seconds"
}

// DeriveReplicaStats reduces a history payload to per-replica QPS, error
// rate, and latency quantiles over the trailing window. The payload's
// newest sample timestamp anchors the window, so the math is immune to
// clock skew between collector and target.
func DeriveReplicaStats(p *tsdb.Payload, window time.Duration) []ReplicaStats {
	type acc struct {
		requests, errors float64
		buckets          []float64
		counts           []uint64
		tMin, tMax       float64
	}
	// Find the newest timestamp across the payload to anchor the window.
	newest := 0.0
	for _, sr := range p.Series {
		for _, pt := range sr.Points {
			if pt.T > newest {
				newest = pt.T
			}
		}
		for _, hp := range sr.HistPoints {
			if hp.T > newest {
				newest = hp.T
			}
		}
	}
	cutoff := newest - window.Seconds()

	accs := map[string]*acc{}
	get := func(replica string) *acc {
		a, ok := accs[replica]
		if !ok {
			a = &acc{}
			accs[replica] = a
		}
		return a
	}
	span := func(a *acc, t float64) {
		if a.tMin == 0 || t < a.tMin {
			a.tMin = t
		}
		if t > a.tMax {
			a.tMax = t
		}
	}
	for _, sr := range p.Series {
		switch {
		case isRequests(sr.Name):
			a := get(sr.Replica)
			for _, pt := range sr.Points {
				if pt.T < cutoff {
					continue
				}
				a.requests += pt.V
				span(a, pt.T)
			}
		case isErrors(sr.Name):
			a := get(sr.Replica)
			for _, pt := range sr.Points {
				if pt.T < cutoff {
					continue
				}
				a.errors += pt.V
			}
		case isLatency(sr.Name):
			a := get(sr.Replica)
			if a.buckets == nil {
				a.buckets = sr.Buckets
				a.counts = make([]uint64, len(sr.Buckets)+1)
			}
			for _, hp := range sr.HistPoints {
				if hp.T < cutoff {
					continue
				}
				for i, c := range hp.Counts {
					if i < len(a.counts) {
						a.counts[i] += c
					}
				}
			}
		}
	}

	out := make([]ReplicaStats, 0, len(accs))
	for replica, a := range accs {
		elapsed := a.tMax - a.tMin
		if elapsed <= 0 {
			elapsed = 1
		}
		rs := ReplicaStats{
			Replica:  replica,
			QPS:      a.requests / elapsed,
			Requests: a.requests,
			P50:      Quantile(a.buckets, a.counts, 0.50),
			P99:      Quantile(a.buckets, a.counts, 0.99),
		}
		if a.requests > 0 {
			rs.ErrorRate = a.errors / a.requests
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) from per-bucket
// observation counts (+Inf last), interpolating linearly inside the
// winning bucket in the Prometheus histogram_quantile style. Returns 0
// with no observations; an answer in the +Inf bucket clamps to the last
// finite bound.
func Quantile(buckets []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(buckets) { // +Inf bucket
			if len(buckets) == 0 {
				return 0
			}
			return buckets[len(buckets)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = buckets[i-1]
		}
		upper := buckets[i]
		if c == 0 {
			return upper
		}
		within := rank - float64(cum-c)
		return lower + (upper-lower)*(within/float64(c))
	}
	if len(buckets) == 0 {
		return 0
	}
	return buckets[len(buckets)-1]
}

// ---- rendering ----

// ANSI bits, gated by the color flag.
const (
	ansiReset = "\x1b[0m"
	ansiBold  = "\x1b[1m"
	ansiDim   = "\x1b[2m"
	ansiRed   = "\x1b[31m"
	ansiGreen = "\x1b[32m"
	ansiYell  = "\x1b[33m"
)

// Render draws the Snapshot as a plain-ANSI dashboard. With color off
// the output is pure ASCII (stable for CI logs and tests).
func Render(s *Snapshot, color bool) string {
	paint := func(code, txt string) string {
		if !color {
			return txt
		}
		return code + txt + ansiReset
	}
	var b strings.Builder

	status := "unknown"
	if s.Health != nil {
		status = s.Health.Status
	}
	statusTxt := status
	switch status {
	case "ok":
		statusTxt = paint(ansiGreen, status)
	case "degraded":
		statusTxt = paint(ansiYell, status)
	default:
		statusTxt = paint(ansiRed, status)
	}
	fmt.Fprintf(&b, "%s  %s  status=%s  %s\n",
		paint(ansiBold, "sickle-top"), s.Target, statusTxt,
		s.Time.Format(time.RFC3339))
	if s.Health != nil {
		fmt.Fprintf(&b, "uptime=%.0fs queue=%d models=%d\n",
			s.Health.UptimeSeconds, s.Health.QueueDepth, len(s.Health.Models))
	}

	if s.Health != nil && len(s.Health.Replicas) > 0 {
		b.WriteString(paint(ansiBold, "\nreplicas\n"))
		for _, r := range s.Health.Replicas {
			state := paint(ansiGreen, "up")
			if !r.Up {
				state = paint(ansiRed, "DOWN")
			} else if r.Status == "degraded" {
				state = paint(ansiYell, "degraded")
			}
			fmt.Fprintf(&b, "  %-4s %-28s %s", r.ID, r.URL, state)
			if r.Error != "" {
				fmt.Fprintf(&b, "  %s", paint(ansiDim, r.Error))
			}
			b.WriteByte('\n')
		}
	}

	if len(s.Replicas) > 0 {
		b.WriteString(paint(ansiBold, "\nload (trailing window)\n"))
		fmt.Fprintf(&b, "  %-8s %8s %9s %9s %7s\n", "replica", "qps", "p50", "p99", "err%")
		for _, r := range s.Replicas {
			name := r.Replica
			if name == "" {
				name = "(self)"
			}
			fmt.Fprintf(&b, "  %-8s %8.1f %8.1fms %8.1fms %6.2f%%\n",
				name, r.QPS, r.P50*1000, r.P99*1000, r.ErrorRate*100)
		}
	}

	if s.SLO != nil && len(s.SLO.Objectives) > 0 {
		b.WriteString(paint(ansiBold, "\nslo burn rates\n"))
		fmt.Fprintf(&b, "  %-34s %8s %8s %8s %8s\n", "objective", "fast", "mid", "slow", "budget")
		for _, o := range s.SLO.Objectives {
			burn := map[string]float64{}
			for _, w := range o.Windows {
				burn[w.Window] = w.BurnRate
			}
			line := fmt.Sprintf("  %-34s %8.2f %8.2f %8.2f %7.0f%%",
				o.Name, burn["fast"], burn["mid"], burn["slow"], o.BudgetRemaining*100)
			if o.Breached {
				line = paint(ansiRed, line+"  BREACHED")
			}
			b.WriteString(line + "\n")
		}
	}

	if s.Events != nil && len(s.Events.Events) > 0 {
		b.WriteString(paint(ansiBold, "\nevents\n"))
		tail := s.Events.Events
		if len(tail) > 12 {
			tail = tail[len(tail)-12:]
		}
		for _, e := range tail {
			line := fmt.Sprintf("  %s %-12s %s",
				e.Time.Format("15:04:05"), e.Type, e.Msg)
			if e.Attrs["replica"] != "" {
				line += " [" + e.Attrs["replica"] + "]"
			}
			if e.TraceID != "" {
				line += paint(ansiDim, " trace="+e.TraceID)
			}
			switch e.Type {
			case events.TypeEjection, events.TypeSLOBreach, events.TypeJobPanic, events.TypeDegraded:
				line = paint(ansiRed, line)
			case events.TypeReadmission, events.TypeSLORecover, events.TypeRecovered:
				line = paint(ansiGreen, line)
			}
			b.WriteString(line + "\n")
		}
	}

	for _, e := range s.Errors {
		b.WriteString(paint(ansiDim, "  ! "+e) + "\n")
	}
	return b.String()
}
