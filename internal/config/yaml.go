// Package config provides a minimal YAML-subset parser (nested maps by
// indentation, scalars, inline [a, b] lists and "- item" lists, comments)
// plus the typed case-file schema that drives SICKLE-Go's pipeline — the
// same interface the paper's artifact exposes through PyYAML case files.
package config

import (
	"fmt"
	"strconv"
	"strings"
)

// Map is a parsed YAML mapping.
type Map map[string]any

// ParseYAML parses the supported YAML subset into a Map.
//
// Supported: `key: value` scalars, `key:` + indented block mappings,
// inline lists `[a, b, c]`, block lists of scalars (`- item`), `#` comments
// and blank lines. Tabs are rejected (as in YAML). Scalars are typed:
// int → int64, float → float64, true/false → bool, null/~ → nil,
// otherwise string (quotes stripped).
func ParseYAML(src string) (Map, error) {
	lines := strings.Split(src, "\n")
	p := &parser{lines: lines}
	m, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	lines []string
	pos   int
	err   error
}

// peek returns the next meaningful line's indent and content without
// consuming it, or ok=false at EOF.
func (p *parser) peek() (indent int, content string, ok bool) {
	for i := p.pos; i < len(p.lines); i++ {
		raw := p.lines[i]
		trimmed := strings.TrimSpace(stripComment(raw))
		if trimmed == "" {
			continue
		}
		ind := 0
		for _, r := range raw {
			if r == ' ' {
				ind++
			} else {
				break
			}
		}
		return ind, trimmed, true
	}
	return 0, "", false
}

// next consumes and returns the next meaningful line.
func (p *parser) next() (indent int, content string, ok bool) {
	for p.pos < len(p.lines) {
		raw := p.lines[p.pos]
		p.pos++
		if strings.Contains(raw, "\t") {
			// Surface the 1-based line number for the offending tab.
			panicLine := p.pos
			p.err = fmt.Errorf("config: tab character on line %d (YAML requires spaces)", panicLine)
			return 0, "", false
		}
		trimmed := strings.TrimSpace(stripComment(raw))
		if trimmed == "" {
			continue
		}
		ind := 0
		for _, r := range raw {
			if r == ' ' {
				ind++
			} else {
				break
			}
		}
		return ind, trimmed, true
	}
	return 0, "", false
}

func stripComment(s string) string {
	inQuote := rune(0)
	for i, r := range s {
		switch {
		case inQuote != 0:
			if r == inQuote {
				inQuote = 0
			}
		case r == '\'' || r == '"':
			inQuote = r
		case r == '#':
			return s[:i]
		}
	}
	return s
}

func (p *parser) parseBlock(indent int) (Map, error) {
	out := Map{}
	for {
		ind, line, ok := p.peek()
		if p.err != nil {
			return nil, p.err
		}
		if !ok || ind < indent {
			return out, nil
		}
		if ind > indent {
			return nil, fmt.Errorf("config: unexpected indent %d (block at %d): %q", ind, indent, line)
		}
		p.next()
		key, rest, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("config: expected 'key: value', got %q", line)
		}
		key = strings.TrimSpace(key)
		rest = strings.TrimSpace(rest)
		if rest != "" {
			out[key] = parseScalarOrList(rest)
			continue
		}
		// Block value: nested map or dash list.
		cind, cline, cok := p.peek()
		if !cok || cind <= indent {
			out[key] = nil
			continue
		}
		if strings.HasPrefix(cline, "- ") || cline == "-" {
			var list []any
			for {
				lind, lline, lok := p.peek()
				if !lok || lind < cind || !strings.HasPrefix(lline, "-") {
					break
				}
				p.next()
				item := strings.TrimSpace(strings.TrimPrefix(lline, "-"))
				list = append(list, parseScalar(item))
			}
			out[key] = list
			continue
		}
		sub, err := p.parseBlock(cind)
		if err != nil {
			return nil, err
		}
		out[key] = sub
	}
}

func parseScalarOrList(s string) any {
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		parts := strings.Split(inner, ",")
		out := make([]any, len(parts))
		for i, part := range parts {
			out[i] = parseScalar(strings.TrimSpace(part))
		}
		return out
	}
	return parseScalar(s)
}

func parseScalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "null", "~", "":
		return nil
	case "true", "True":
		return true
	case "false", "False":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// Accessor helpers with defaults. Missing keys return the fallback.

// GetString fetches a string value.
func (m Map) GetString(key, def string) string {
	if v, ok := m[key]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// GetInt fetches an integer value.
func (m Map) GetInt(key string, def int) int {
	switch v := m[key].(type) {
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return def
}

// GetFloat fetches a float value.
func (m Map) GetFloat(key string, def float64) float64 {
	switch v := m[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	}
	return def
}

// GetBool fetches a boolean value.
func (m Map) GetBool(key string, def bool) bool {
	if v, ok := m[key].(bool); ok {
		return v
	}
	return def
}

// GetStringList fetches a list of strings.
func (m Map) GetStringList(key string) []string {
	v, ok := m[key].([]any)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(v))
	for _, item := range v {
		if s, ok := item.(string); ok {
			out = append(out, s)
		} else {
			out = append(out, fmt.Sprint(item))
		}
	}
	return out
}

// GetMap fetches a nested mapping.
func (m Map) GetMap(key string) Map {
	if v, ok := m[key].(Map); ok {
		return v
	}
	return Map{}
}
