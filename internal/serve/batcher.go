package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/tensor"
)

// inferRequest is one example awaiting inference. The batcher owns it from
// enqueue until a result (or error) is delivered on resp.
type inferRequest struct {
	input *tensor.Tensor // per-example tensor, no batch dimension
	resp  chan inferResult
}

type inferResult struct {
	output    *tensor.Tensor
	version   int
	batchSize int
	err       error
}

// Batcher implements the service's micro-batch scheduler: per-model queues
// feed per-model dispatcher goroutines that collect up to MaxBatch requests
// or wait at most Window after the first arrival, then hand the batch to a
// bounded worker pool (default GOMAXPROCS workers) that runs ONE forward
// pass for the whole batch on a pooled model replica. Batching amortizes
// per-request overhead exactly like inventory batching in queueing systems:
// under load the mean batch size rises and per-item cost falls, while the
// Window bound caps the latency a lone request pays.
//
// Row independence of the Table 2 architectures (matmuls, layer norms,
// attention and convolutions never mix batch rows) makes batched outputs
// bit-identical to single-request inference — the invariant the tests and
// the load generator check.
type Batcher struct {
	reg      *Registry
	met      *Metrics
	maxBatch int
	window   time.Duration

	jobs chan func()

	mu     sync.Mutex
	queues map[string]chan *inferRequest

	stop     chan struct{}
	stopOnce sync.Once
	wgDisp   sync.WaitGroup // dispatcher goroutines
	wgWork   sync.WaitGroup // worker goroutines
}

// queueCap bounds each per-model queue; enqueues beyond it block, applying
// backpressure to clients instead of growing memory without bound.
const queueCap = 1024

// NewBatcher starts the worker pool. maxBatch <= 0 defaults to 16, window
// <= 0 to 2ms, workers <= 0 to GOMAXPROCS.
func NewBatcher(reg *Registry, met *Metrics, maxBatch int, window time.Duration, workers int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &Batcher{
		reg: reg, met: met, maxBatch: maxBatch, window: window,
		jobs:   make(chan func(), workers),
		queues: map[string]chan *inferRequest{},
		stop:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		b.wgWork.Add(1)
		go func() {
			defer b.wgWork.Done()
			for job := range b.jobs {
				job()
			}
		}()
	}
	met.SetQueueDepthFunc(b.QueueDepth)
	return b
}

// Infer enqueues one example for the named model and blocks until its
// result is ready.
func (b *Batcher) Infer(model string, input *tensor.Tensor) (*tensor.Tensor, int, int, error) {
	if _, ok := b.reg.Lookup(model); !ok {
		return nil, 0, 0, fmt.Errorf("serve: unknown model %q", model)
	}
	req := &inferRequest{input: input, resp: make(chan inferResult, 1)}
	b.queueFor(model) <- req
	res := <-req.resp
	return res.output, res.version, res.batchSize, res.err
}

func (b *Batcher) queueFor(model string) chan *inferRequest {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[model]
	if !ok {
		q = make(chan *inferRequest, queueCap)
		b.queues[model] = q
		b.wgDisp.Add(1)
		go b.dispatch(model, q)
	}
	return q
}

// QueueDepth returns the total number of queued (not yet dispatched)
// requests across models.
func (b *Batcher) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, q := range b.queues {
		n += len(q)
	}
	return n
}

// dispatch is the per-model collection loop.
func (b *Batcher) dispatch(model string, q chan *inferRequest) {
	defer b.wgDisp.Done()
	for {
		var first *inferRequest
		select {
		case <-b.stop:
			return
		case first = <-q:
		}
		batch := []*inferRequest{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r := <-q:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.met.ObserveBatch(len(batch))
		select {
		case <-b.stop:
			// Shutdown raced the dispatch; run inline so waiters drain.
			b.runBatch(model, batch)
		case b.jobs <- func() { b.runBatch(model, batch) }:
		}
	}
}

// runBatch stacks the batch, runs one forward pass on a pooled replica,
// and scatters the output rows back to the waiting requests.
func (b *Batcher) runBatch(model string, batch []*inferRequest) {
	fail := func(err error) {
		for _, r := range batch {
			r.resp <- inferResult{err: err}
		}
	}
	entry, ok := b.reg.Lookup(model)
	if !ok {
		fail(fmt.Errorf("serve: model %q disappeared", model))
		return
	}
	shape := batch[0].input.Shape
	for _, r := range batch[1:] {
		if !sameShape(r.input.Shape, shape) {
			// Mixed shapes cannot share a forward pass; split rather than
			// reject, so clients with heterogeneous windows still work.
			b.runBatch(model, []*inferRequest{r})
		}
	}
	uniform := batch[:0]
	for _, r := range batch {
		if sameShape(r.input.Shape, shape) {
			uniform = append(uniform, r)
		}
	}
	batch = uniform

	in := stackInputs(batch)
	rep := entry.Acquire()
	out, err := forward(rep, in)
	entry.Release(rep)
	// The stacked input is dead once the forward pass returns (replicas
	// re-cache on the next forward), so recycle it into the workspace:
	// steady-state batching allocates no input buffers.
	tensor.Put(in)
	if err != nil {
		fail(err)
		return
	}
	if out.Dim(0) != len(batch) {
		fail(fmt.Errorf("serve: model %q returned batch %d for input batch %d", model, out.Dim(0), len(batch)))
		return
	}
	rowShape := append([]int(nil), out.Shape[1:]...)
	stride := out.Len() / out.Dim(0)
	for i, r := range batch {
		row := tensor.New(rowShape...)
		copy(row.Data, out.Data[i*stride:(i+1)*stride])
		r.resp <- inferResult{output: row, version: entry.Version, batchSize: len(batch)}
	}
}

// forward runs the model's forward pass, converting panics (shape
// mismatches inside the nn stack) into errors so a malformed request cannot
// crash the service.
func forward(m interface {
	Forward(*tensor.Tensor) *tensor.Tensor
}, in *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: forward pass failed: %v", r)
		}
	}()
	return m.Forward(in), nil
}

// stackInputs assembles [B, ...] from per-example tensors of equal shape,
// drawing the batch buffer from the tensor workspace.
func stackInputs(batch []*inferRequest) *tensor.Tensor {
	shape := append([]int{len(batch)}, batch[0].input.Shape...)
	out := tensor.Get(shape...)
	stride := batch[0].input.Len()
	for i, r := range batch {
		copy(out.Data[i*stride:(i+1)*stride], r.input.Data)
	}
	return out
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stop terminates the dispatchers and workers. Call only after the HTTP
// server has drained: requests still queued at Stop time are completed
// inline by their dispatcher before it exits.
func (b *Batcher) Stop() {
	b.stopOnce.Do(func() {
		close(b.stop)
		// Wait for dispatchers first: they are the only senders on b.jobs,
		// so closing it is only safe once they have exited.
		b.wgDisp.Wait()
		b.mu.Lock()
		queues := make([]chan *inferRequest, 0, len(b.queues))
		for _, q := range b.queues {
			queues = append(queues, q)
		}
		b.mu.Unlock()
		for _, q := range queues {
		drain:
			for {
				select {
				case r := <-q:
					r.resp <- inferResult{err: fmt.Errorf("serve: shutting down")}
				default:
					break drain
				}
			}
		}
		close(b.jobs)
		b.wgWork.Wait()
	})
}
