package stream

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cfd2d"
	"repro/internal/cfd3d"
	"repro/internal/grid"
	"repro/internal/synth"
)

// SourceMeta describes what a SnapshotSource emits: the learning-problem
// variable roles (Table 1 columns) and, when known in advance, how many
// snapshots the stream will carry. TotalSnapshots == 0 means unbounded or
// unknown — the pipeline runs until Next returns io.EOF either way.
type SourceMeta struct {
	Label          string
	InputVars      []string
	OutputVars     []string
	ClusterVar     string
	TotalSnapshots int
}

// SnapshotSource is the producer side of the in-situ pipeline: anything that
// can emit simulation snapshots one at a time — a live solver, a synthetic
// generator, or a replay of an on-disk dataset. Next returns io.EOF when the
// stream is exhausted. Sources need not be safe for concurrent use; the
// pipeline calls Next from a single producer goroutine.
type SnapshotSource interface {
	Meta() SourceMeta
	Next() (*grid.Field, error)
	Close() error
}

// ---------------------------------------------------------------------------
// Replay adapter: stream an already-materialized dataset.

// ReplaySource replays a materialized dataset snapshot by snapshot. It is
// the bridge from the offline world (and the reference the parity tests
// stream against): the pipeline sees exactly the fields the offline
// subsample saw, in order.
type ReplaySource struct {
	d   *grid.Dataset
	pos int
}

// NewReplaySource wraps a dataset for streaming replay.
func NewReplaySource(d *grid.Dataset) *ReplaySource { return &ReplaySource{d: d} }

// Meta implements SnapshotSource.
func (s *ReplaySource) Meta() SourceMeta {
	return SourceMeta{
		Label:          s.d.Label,
		InputVars:      s.d.InputVars,
		OutputVars:     s.d.OutputVars,
		ClusterVar:     s.d.ClusterVar,
		TotalSnapshots: len(s.d.Snapshots),
	}
}

// Next implements SnapshotSource.
func (s *ReplaySource) Next() (*grid.Field, error) {
	if s.pos >= len(s.d.Snapshots) {
		return nil, io.EOF
	}
	f := s.d.Snapshots[s.pos]
	s.pos++
	return f, nil
}

// Close implements SnapshotSource.
func (s *ReplaySource) Close() error { return nil }

// ---------------------------------------------------------------------------
// Live solver adapters: one per solver family. Each advances its solver
// in-situ and emits derived-variable-complete snapshots, so no trajectory is
// ever materialized beyond the pipeline's bounded window.

// CFD2DSource streams snapshots from the live lattice-Boltzmann cylinder
// solver (the OF2D family): warmup steps first, then one snapshot every
// StepsPer steps, NumSnapshots times.
type CFD2DSource struct {
	solver       *cfd2d.Solver
	warmup       int
	stepsPer     int
	numSnapshots int
	emitted      int
}

// NewCFD2DSource builds a live OF2D-family source.
func NewCFD2DSource(cfg cfd2d.Config, warmup, numSnapshots, stepsPer int) *CFD2DSource {
	if numSnapshots <= 0 {
		numSnapshots = 1
	}
	if stepsPer <= 0 {
		stepsPer = 1
	}
	return &CFD2DSource{
		solver: cfd2d.New(cfg), warmup: warmup,
		stepsPer: stepsPer, numSnapshots: numSnapshots,
	}
}

// Meta implements SnapshotSource (the OF2D variable roles of Table 1).
func (s *CFD2DSource) Meta() SourceMeta {
	return SourceMeta{
		Label:          "OF2D-stream",
		InputVars:      []string{"u", "v"},
		OutputVars:     []string{"p"},
		ClusterVar:     "wz",
		TotalSnapshots: s.numSnapshots,
	}
}

// Next implements SnapshotSource.
func (s *CFD2DSource) Next() (*grid.Field, error) {
	if s.emitted >= s.numSnapshots {
		return nil, io.EOF
	}
	if s.emitted == 0 {
		for i := 0; i < s.warmup; i++ {
			s.solver.Step()
		}
	}
	for i := 0; i < s.stepsPer; i++ {
		s.solver.Step()
	}
	s.emitted++
	return s.solver.Snapshot(), nil
}

// Close implements SnapshotSource.
func (s *CFD2DSource) Close() error { return nil }

// CFD3DSource streams snapshots from the live Boussinesq Taylor-Green
// solver (the SST-P1F4 family). Snapshot 0 is the initial condition, then
// one snapshot every StepsPer steps — the same schedule as
// cfd3d.EvolveDataset, so a streamed run sees the identical trajectory.
type CFD3DSource struct {
	solver       *cfd3d.Solver
	stepsPer     int
	numSnapshots int
	emitted      int
}

// NewCFD3DSource builds a live SST-family source.
func NewCFD3DSource(cfg cfd3d.Config, numSnapshots, stepsPer int) *CFD3DSource {
	if numSnapshots <= 0 {
		numSnapshots = 1
	}
	if stepsPer <= 0 {
		stepsPer = 1
	}
	return &CFD3DSource{
		solver: cfd3d.NewTaylorGreen(cfg), stepsPer: stepsPer, numSnapshots: numSnapshots,
	}
}

// Meta implements SnapshotSource (the SST variable roles of Table 1).
func (s *CFD3DSource) Meta() SourceMeta {
	return SourceMeta{
		Label:          "SST-stream",
		InputVars:      []string{"u", "v", "w", "r"},
		OutputVars:     []string{"p"},
		ClusterVar:     "pv",
		TotalSnapshots: s.numSnapshots,
	}
}

// Next implements SnapshotSource.
func (s *CFD3DSource) Next() (*grid.Field, error) {
	if s.emitted >= s.numSnapshots {
		return nil, io.EOF
	}
	if s.emitted > 0 {
		for i := 0; i < s.stepsPer; i++ {
			s.solver.Step()
		}
	}
	s.emitted++
	return s.solver.Snapshot(), nil
}

// Close implements SnapshotSource.
func (s *CFD3DSource) Close() error { return nil }

// SynthSource streams independent stratified-turbulence realizations from
// the synth family with the same seed-drift/decay schedule as
// synth.SSTDataset, generating each snapshot only when the pipeline asks
// for it.
type SynthSource struct {
	cfg          synth.StratifiedConfig
	numSnapshots int
	emitted      int
}

// NewSynthSource builds a generator-backed SST-analogue source.
func NewSynthSource(cfg synth.StratifiedConfig, numSnapshots int) *SynthSource {
	if numSnapshots <= 0 {
		numSnapshots = 1
	}
	return &SynthSource{cfg: cfg, numSnapshots: numSnapshots}
}

// Meta implements SnapshotSource.
func (s *SynthSource) Meta() SourceMeta {
	return SourceMeta{
		Label:          "SST-synth-stream",
		InputVars:      []string{"u", "v", "w", "r"},
		OutputVars:     []string{"p"},
		ClusterVar:     "pv",
		TotalSnapshots: s.numSnapshots,
	}
}

// Next implements SnapshotSource.
func (s *SynthSource) Next() (*grid.Field, error) {
	if s.emitted >= s.numSnapshots {
		return nil, io.EOF
	}
	t := s.emitted
	c := s.cfg
	c.Seed = s.cfg.Seed + int64(t)*1009
	c.URMS = s.cfg.URMS
	if c.URMS == 0 {
		c.URMS = 1
	}
	c.URMS *= math.Exp(-0.02 * float64(t))
	f := synth.Stratified(c)
	f.Time = float64(t)
	s.emitted++
	return f, nil
}

// Close implements SnapshotSource.
func (s *SynthSource) Close() error { return nil }

// countingSource wraps a source and fails fast on nil fields, guarding
// adapter bugs at the pipeline boundary.
type countingSource struct {
	src  SnapshotSource
	seen int
}

func (c *countingSource) next() (*grid.Field, error) {
	f, err := c.src.Next()
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("stream: source %q returned nil field at snapshot %d",
			c.src.Meta().Label, c.seen)
	}
	c.seen++
	return f, nil
}
