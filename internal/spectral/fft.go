// Package spectral implements the Fourier machinery the synthetic-turbulence
// substrates need: an iterative radix-2 complex FFT, 3-D transforms, a
// spectral Poisson solver (used to derive pressure from velocity, as the
// GESTS pseudo-spectral code does), and shell-averaged energy spectra.
package spectral

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/tensor"
)

// FFT computes the in-place forward discrete Fourier transform of x,
// whose length must be a power of two. The convention is
// X[k] = Σ_n x[n]·exp(-2πi·kn/N) (no normalization).
func FFT(x []complex128) {
	fftInternal(x, false)
}

// IFFT computes the in-place inverse transform, including the 1/N factor,
// so IFFT(FFT(x)) == x.
func IFFT(x []complex128) {
	fftInternal(x, true)
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

func fftInternal(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("spectral: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// DFTNaive is the O(N²) reference transform used to validate FFT in tests.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = s
	}
	return out
}

// Grid3 is an Nx×Ny×Nz complex field stored x-fastest, matching grid.Field
// layout, with spectral transforms along each axis.
type Grid3 struct {
	Nx, Ny, Nz int
	Data       []complex128
}

// NewGrid3 allocates a zeroed complex grid. All dimensions must be powers
// of two.
func NewGrid3(nx, ny, nz int) *Grid3 {
	for _, n := range []int{nx, ny, nz} {
		if n <= 0 || n&(n-1) != 0 {
			panic(fmt.Sprintf("spectral: grid dims must be powers of two, got %d×%d×%d", nx, ny, nz))
		}
	}
	return &Grid3{Nx: nx, Ny: ny, Nz: nz, Data: make([]complex128, nx*ny*nz)}
}

// FromReal fills the grid from a real-valued field of the same layout.
func (g *Grid3) FromReal(v []float64) {
	if len(v) != len(g.Data) {
		panic("spectral: FromReal length mismatch")
	}
	tensor.DefaultPool().ParallelFor(len(v), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.Data[i] = complex(v[i], 0)
		}
	})
}

// RealPart extracts the real part into dst (allocated if nil).
func (g *Grid3) RealPart(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(g.Data))
	}
	tensor.DefaultPool().ParallelFor(len(g.Data), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = real(g.Data[i])
		}
	})
	return dst
}

func (g *Grid3) idx(i, j, k int) int { return (k*g.Ny+j)*g.Nx + i }

// FFT3 performs the forward 3-D transform in place.
func (g *Grid3) FFT3() { g.transform(false) }

// IFFT3 performs the inverse 3-D transform (normalized) in place.
func (g *Grid3) IFFT3() { g.transform(true) }

// transform runs the separable 3-D FFT as three passes of independent 1-D
// line transforms; each pass fans its lines out across the kernel pool
// (every line touches a disjoint set of grid cells, so parallel and serial
// execution are bit-identical).
func (g *Grid3) transform(inverse bool) {
	do := func(line []complex128) {
		if inverse {
			IFFT(line)
		} else {
			FFT(line)
		}
	}
	p := tensor.DefaultPool()
	// x-lines are contiguous; one unit per (k, j) line.
	p.ParallelFor(g.Nz*g.Ny, 8, func(u0, u1 int) {
		for u := u0; u < u1; u++ {
			k, j := u/g.Ny, u%g.Ny
			base := g.idx(0, j, k)
			do(g.Data[base : base+g.Nx])
		}
	})
	// y-lines; one unit per (k, i) line, with a per-chunk gather buffer.
	p.ParallelFor(g.Nz*g.Nx, 8, func(u0, u1 int) {
		buf := make([]complex128, g.Ny)
		for u := u0; u < u1; u++ {
			k, i := u/g.Nx, u%g.Nx
			for j := 0; j < g.Ny; j++ {
				buf[j] = g.Data[g.idx(i, j, k)]
			}
			do(buf)
			for j := 0; j < g.Ny; j++ {
				g.Data[g.idx(i, j, k)] = buf[j]
			}
		}
	})
	// z-lines; one unit per (j, i) line.
	if g.Nz > 1 {
		p.ParallelFor(g.Ny*g.Nx, 8, func(u0, u1 int) {
			bufz := make([]complex128, g.Nz)
			for u := u0; u < u1; u++ {
				j, i := u/g.Nx, u%g.Nx
				for k := 0; k < g.Nz; k++ {
					bufz[k] = g.Data[g.idx(i, j, k)]
				}
				do(bufz)
				for k := 0; k < g.Nz; k++ {
					g.Data[g.idx(i, j, k)] = bufz[k]
				}
			}
		})
	}
}

// WaveNumber maps FFT index m on an axis of length n (domain length 2π) to
// the signed integer wavenumber.
func WaveNumber(m, n int) float64 {
	if m <= n/2 {
		return float64(m)
	}
	return float64(m - n)
}
