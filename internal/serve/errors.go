package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/pkg/api"
)

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// writeAPIError writes the v2 typed envelope
// {"error":{"code":...,"message":...}} with the code's HTTP status, adding
// Retry-After for backpressure responses so well-behaved clients pace
// themselves.
func writeAPIError(w http.ResponseWriter, err error) error {
	ae := api.AsError(err)
	if ae.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSeconds))
	}
	writeJSON(w, ae.Code.HTTPStatus(), api.ErrorEnvelope{Error: ae})
	return ae
}

// writeLegacyError writes the frozen v1 envelope {"error":"message"}. The
// status comes from the typed code except where the original v1 handlers
// used a coarser mapping, which forceStatus preserves (e.g. /v1/subsample
// answered 400 for every pipeline failure).
func writeLegacyError(w http.ResponseWriter, err error, forceStatus int) error {
	ae := api.AsError(err)
	status := ae.Code.HTTPStatus()
	if forceStatus != 0 && status != http.StatusMethodNotAllowed &&
		status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		status = forceStatus
	}
	if ae.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSeconds))
	}
	writeJSON(w, status, map[string]string{"error": ae.Message})
	return ae
}
