package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks. ReportAllocs is on everywhere: the Into/Accum
// kernels must be zero-alloc, and MatMul's only allocation is its output.
// Run `go test -bench 'MatMul|Ewise|Reduce' -benchmem ./internal/tensor/`.

func benchMats(m, k, n int) (*Tensor, *Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	return Randn(rng, 1, m, k), Randn(rng, 1, k, n), New(m, n)
}

func BenchmarkMatMulInto(b *testing.B) {
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			x, y, dst := benchMats(size, size, size)
			flops := 2 * int64(size) * int64(size) * int64(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, x, y)
			}
			b.SetBytes(flops) // reported as "bytes/op" == flops/op
		})
	}
}

func BenchmarkMatMulIntoSerial(b *testing.B) {
	SetParallel(false)
	defer SetParallel(true)
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			x, y, dst := benchMats(size, size, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, x, y)
			}
		})
	}
}

func BenchmarkMatMulTransBInto(b *testing.B) {
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, 1, size, size)
			w := Randn(rng, 1, size, size)
			dst := New(size, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(dst, x, w)
			}
		})
	}
}

// BenchmarkTransposeThenMatMul measures the pattern the nn layers used
// before this engine existed (materialize Wᵀ every call), for comparison
// with BenchmarkMatMulTransBInto.
func BenchmarkTransposeThenMatMul(b *testing.B) {
	size := 128
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, size, size)
	w := Randn(rng, 1, size, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, Transpose(w))
	}
}

func BenchmarkEwiseAddInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 1<<16)
	y := Randn(rng, 1, 1<<16)
	dst := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddInto(dst, x, y)
	}
}

func BenchmarkReduceSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = x.Sum()
	}
	_ = s
}

func BenchmarkParallelForOverhead(b *testing.B) {
	p := NewPool(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ParallelFor(1<<14, ewiseGrain, func(lo, hi int) {})
	}
}
